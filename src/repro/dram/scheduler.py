"""Command-level DRAM model: FR-FCFS scheduling over banks and a bus.

The simple :class:`~repro.dram.channel.DramChannel` is a latency model —
each access is priced in isolation.  This module is the high-fidelity
backend for the paper's **channel contention** discussion (Section 2.2):
when translation traffic shares a channel with data traffic, requests
queue behind each other; on a dedicated channel they do not.  To show
that, commands must actually contend for banks and the data bus.

Model (all times in memory-bus cycles):

* open-page banks with ``ACT -> RD/WR -> (PRE)`` sequencing, respecting
  tRCD, tCAS/tCWL, tRP, tRAS, tWR, tCCD and the four-activate window
  tFAW;
* one shared data bus per channel: bursts serialize;
* **FR-FCFS** arbitration: among arrived requests, row hits go first,
  then oldest-first — the standard policy Ramulator defaults to.

Use :meth:`CommandScheduler.run` on a list of :class:`Request`\\ s; each
comes back with issue/completion times, from which per-class latency
statistics are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common import addr
from ..common.config import DramTimingConfig
from ..common.stats import StatGroup
from .mapping import AddressMapper


@dataclass
class Request:
    """One memory request entering the channel queue."""

    paddr: int
    arrival: int              # bus cycle the request reaches the controller
    is_write: bool = False
    tag: str = "data"         # request class, e.g. "data" or "tlb"
    # Filled by the scheduler:
    completion: int = field(default=-1, compare=False)

    @property
    def latency(self) -> int:
        """Queueing + service latency in bus cycles (after run())."""
        if self.completion < 0:
            raise ValueError("request not yet serviced")
        return self.completion - self.arrival


class _BankState:
    """Timing state of one bank."""

    __slots__ = ("open_row", "ready_at", "ras_until", "write_recovery_until",
                 "precharged_at")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready_at = 0              # row buffer usable from here
        self.ras_until = 0             # earliest PRE after the last ACT
        self.write_recovery_until = 0  # earliest PRE after the last WR
        self.precharged_at = 0         # bank idle from here


class CommandScheduler:
    """FR-FCFS open-page scheduler for one channel."""

    def __init__(self, timing: DramTimingConfig,
                 stats: Optional[StatGroup] = None) -> None:
        self.timing = timing
        self.stats = stats or StatGroup("sched")
        self.mapper = AddressMapper(timing)
        self._banks = [_BankState() for _ in range(timing.banks)]
        self._bus_free_at = 0
        self._act_times: List[int] = []  # for the tFAW window
        # Derived timings.
        self._tcl = timing.tcas
        self._tcwl = max(1, timing.tcas - 2)
        self._burst = max(1, -(-addr.CACHE_LINE_SIZE
                               // max(1, timing.bus_bits // 8 * 2)))
        self._tras = getattr(timing, "tras", timing.trcd + timing.tcas + 8)
        self._twr = getattr(timing, "twr", timing.tcas)
        self._tfaw = getattr(timing, "tfaw", 4 * timing.trcd)
        self._tccd = getattr(timing, "tccd", max(2, self._burst))

    # -- arbitration ----------------------------------------------------------

    def _pick(self, queue: List[Request], now: int) -> int:
        """FR-FCFS: first row hit among arrived requests, else oldest."""
        oldest = None
        for index, request in enumerate(queue):
            if request.arrival > now:
                break
            coord = self.mapper.map(request.paddr)
            if self._banks[coord.bank].open_row == coord.row:
                return index
            if oldest is None:
                oldest = index
        return oldest if oldest is not None else 0

    # -- command timing ----------------------------------------------------

    def _activate(self, bank: _BankState, row: int, earliest: int) -> int:
        """Schedule PRE (if needed) + ACT; returns when the row is ready."""
        start = max(earliest, bank.precharged_at)
        if bank.open_row is not None:
            pre_at = max(start, bank.ras_until, bank.write_recovery_until)
            start = pre_at + self.timing.trp
            self.stats.inc("precharges")
        # tFAW: at most 4 activates per rolling window.
        if len(self._act_times) >= 4:
            window_start = self._act_times[-4]
            start = max(start, window_start + self._tfaw)
        self._act_times.append(start)
        if len(self._act_times) > 8:
            del self._act_times[:4]
        bank.open_row = row
        bank.ready_at = start + self.timing.trcd
        bank.ras_until = start + self._tras
        self.stats.inc("activates")
        return bank.ready_at

    def _service(self, request: Request, now: int) -> int:
        """Issue the column command; returns the completion time."""
        coord = self.mapper.map(request.paddr)
        bank = self._banks[coord.bank]
        if bank.open_row == coord.row:
            ready = max(now, bank.ready_at)
            self.stats.inc("row_hits")
        else:
            ready = self._activate(bank, coord.row, now)
            self.stats.inc("row_misses" if bank.precharged_at >= bank.ras_until
                           else "row_conflicts")
        # Column command + data burst must win the shared bus.
        if request.is_write:
            issue = max(ready, self._bus_free_at - self._tcwl + self._tccd)
            data_start = issue + self._tcwl
            self.stats.inc("writes")
        else:
            issue = max(ready, self._bus_free_at - self._tcl + self._tccd)
            data_start = issue + self._tcl
            self.stats.inc("reads")
        data_start = max(data_start, self._bus_free_at)
        completion = data_start + self._burst
        self._bus_free_at = completion
        if request.is_write:
            bank.write_recovery_until = completion + self._twr
        return completion

    # -- driving --------------------------------------------------------------

    def run(self, requests: Sequence[Request]) -> List[Request]:
        """Service every request; fills ``completion``, returns the list.

        Requests may arrive in any order; the queue drains under FR-FCFS.
        """
        queue = sorted(requests, key=lambda r: (r.arrival, r.paddr))
        now = 0
        while queue:
            now = max(now, queue[0].arrival)
            index = self._pick(queue, now)
            request = queue.pop(index)
            now = max(now, request.arrival)
            request.completion = self._service(request, now)
            # Arbitration advances with the bus: requests that arrived
            # while this burst was in flight are visible next round.
            now = max(now, request.completion - self._burst)
            self.stats.inc("serviced")
        return list(requests)


@dataclass(frozen=True)
class LatencySummary:
    """Per-class latency statistics out of a scheduler run."""

    count: int
    mean: float
    p95: float
    worst: int


def summarize_latencies(requests: Sequence[Request],
                        tag: Optional[str] = None) -> LatencySummary:
    """Latency summary over (a class of) serviced requests."""
    chosen = [r for r in requests if tag is None or r.tag == tag]
    if not chosen:
        return LatencySummary(count=0, mean=0.0, p95=0.0, worst=0)
    latencies = sorted(r.latency for r in chosen)
    index = min(len(latencies) - 1, int(0.95 * len(latencies)))
    return LatencySummary(
        count=len(latencies),
        mean=sum(latencies) / len(latencies),
        p95=float(latencies[index]),
        worst=latencies[-1],
    )
