"""Physical-address to DRAM-coordinate mapping.

We use the row-interleaved mapping common in die-stacked parts: consecutive
row-buffer-sized blocks of the physical address space rotate across banks.
This maximises row-buffer locality for sequential streams (addresses within
one 2 KiB block share a bank row) while spreading independent streams over
banks — exactly the behaviour the paper's Section 4.4 row-buffer-hit study
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common import addr
from ..common.config import DramTimingConfig


@dataclass(frozen=True)
class DramCoordinate:
    """Location of one access: which bank, which row, column byte offset."""

    bank: int
    row: int
    column: int


class AddressMapper:
    """Maps byte addresses to (bank, row, column) for one channel."""

    def __init__(self, timing: DramTimingConfig) -> None:
        self._row_shift = addr.ilog2(timing.row_buffer_bytes)
        self._bank_mask = timing.banks - 1
        self._bank_bits = addr.ilog2(timing.banks)
        self._col_mask = timing.row_buffer_bytes - 1

    def map(self, paddr: int) -> DramCoordinate:
        """Decompose ``paddr``: column inside row, bank from low row bits."""
        block = paddr >> self._row_shift
        return DramCoordinate(
            bank=block & self._bank_mask,
            row=block >> self._bank_bits,
            column=paddr & self._col_mask,
        )

    def same_row(self, a: int, b: int) -> bool:
        """True when two addresses land in the same bank row."""
        ca, cb = self.map(a), self.map(b)
        return ca.bank == cb.bank and ca.row == cb.row
