"""Ramulator-like DRAM latency model (banks, row buffers, channels)."""

from .bank import DramBank
from .channel import DramChannel, typical_latencies
from .mapping import AddressMapper, DramCoordinate
from .scheduler import CommandScheduler, LatencySummary, Request, summarize_latencies

__all__ = [
    "AddressMapper",
    "DramBank",
    "DramChannel",
    "CommandScheduler",
    "DramCoordinate",
    "LatencySummary",
    "Request",
    "summarize_latencies",
    "typical_latencies",
]
