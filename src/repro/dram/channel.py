"""DRAM channel: banks + address mapping + data-burst transfer cost.

The channel is the unit the rest of the simulator talks to.  It returns
access latencies in **CPU cycles** so callers never deal with clock-domain
conversion.  The model is deliberately a latency model, not a cycle-exact
command scheduler: the paper's evaluation needs row-buffer behaviour and
hit/miss/conflict latencies (Ramulator-like), not inter-command timing
corner cases.
"""

from __future__ import annotations

from ..common import addr
from ..common.config import DramTimingConfig
from ..common.stats import StatGroup
from ..obs import events
from ..obs.tracer import NULL_TRACER
from .bank import DramBank
from .mapping import AddressMapper


class DramChannel:
    """One independent DRAM channel (die-stacked or DDR4)."""

    def __init__(self, timing: DramTimingConfig, cpu_mhz: int,
                 stats: StatGroup) -> None:
        self.timing = timing
        self.cpu_mhz = cpu_mhz
        self.stats = stats
        self.mapper = AddressMapper(timing)
        self._banks = [DramBank(i, timing, stats) for i in range(timing.banks)]
        #: Event tracer; the null object unless Observability attaches one.
        self.trace = NULL_TRACER
        #: Optional latency histogram (set by Observability on the
        #: stacked-DRAM channel); None keeps the hot path untouched.
        self.histogram = None
        # Hot-path constants: the address decomposition (mirrors
        # ``self.mapper``), the cache-line burst cost, the clock-domain
        # ratio and resolved counter slots.
        self._row_shift = addr.ilog2(timing.row_buffer_bytes)
        self._bank_mask = timing.banks - 1
        self._bank_bits = addr.ilog2(timing.banks)
        self._controller_cycles = timing.controller_cycles
        self._line_burst = self._burst_cycles(addr.CACHE_LINE_SIZE)
        self._bus_mhz = timing.bus_mhz
        self._accesses = stats.counter("accesses")
        self._bytes = stats.counter("bytes")

    def _burst_cycles(self, nbytes: int) -> int:
        """Bus cycles to move ``nbytes`` over a double-data-rate bus."""
        bytes_per_bus_cycle = max(1, self.timing.bus_bits // 8 * 2)
        return -(-nbytes // bytes_per_bus_cycle)

    def access(self, paddr: int, nbytes: int = addr.CACHE_LINE_SIZE) -> int:
        """Read/write ``nbytes`` at ``paddr``; returns CPU-cycle latency."""
        block = paddr >> self._row_shift
        bank_idx = block & self._bank_mask
        row = block >> self._bank_bits
        bank = self._banks[bank_idx]
        tracing = self.trace.active
        # DramBank.access unrolled over the bank's slots (row-buffer
        # outcome, cost, state update) — one call frame per DRAM access
        # was measurable on the miss-bound schemes.
        open_row = bank._open_row
        if open_row == row:
            slot = bank._row_hits
            bank_cost = bank._hit_cost
        else:
            if open_row is None:
                slot = bank._row_misses
                bank_cost = bank._miss_cost
            else:
                slot = bank._row_conflicts
                bank_cost = bank._conflict_cost
            bank._open_row = row
        slot.value += 1
        slot.touched = True
        if tracing:
            outcome = ("hit" if open_row == row
                       else "miss" if open_row is None else "conflict")
        burst = (self._line_burst if nbytes == addr.CACHE_LINE_SIZE
                 else self._burst_cycles(nbytes))
        bus_cycles = self._controller_cycles + bank_cost + burst
        slot = self._accesses
        slot.value += 1
        slot.touched = True
        slot = self._bytes
        slot.value += nbytes
        slot.touched = True
        # Inline of DramTimingConfig.cpu_cycles (ceiling division).
        cycles = -(-bus_cycles * self.cpu_mhz // self._bus_mhz)
        if self.histogram is not None:
            self.histogram.record(cycles)
        if tracing:
            self.trace.emit(events.DRAM_ACCESS, cycles=cycles,
                            bank=bank_idx, row=row, outcome=outcome)
        return cycles

    def row_buffer_hit_rate(self) -> float:
        """Fraction of accesses served from an open row buffer."""
        return self.stats.ratio(
            "row_hits",
            "accesses") if self.stats["accesses"] else 0.0

    def precharge_all(self) -> None:
        """Close every open row (models a refresh interval boundary)."""
        for bank in self._banks:
            bank.precharge()

    @property
    def banks(self) -> int:
        return len(self._banks)


def typical_latencies(timing: DramTimingConfig, cpu_mhz: int) -> dict:
    """CPU-cycle latencies of the three access classes, for documentation.

    Handy when sanity-checking configuration tables: e.g. with the paper's
    stacked-DRAM parameters at a 4 GHz core a row hit costs ~70 cycles.
    """
    burst = -(-addr.CACHE_LINE_SIZE // max(1, timing.bus_bits // 8 * 2))
    base = timing.controller_cycles + burst
    return {
        "row_hit": timing.cpu_cycles(base + timing.tcas, cpu_mhz),
        "row_miss": timing.cpu_cycles(base + timing.trcd + timing.tcas, cpu_mhz),
        "row_conflict": timing.cpu_cycles(
            base + timing.trp + timing.trcd + timing.tcas, cpu_mhz),
    }
