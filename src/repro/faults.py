"""Deterministic fault injection for the resilient campaign engine.

The resilience machinery (:mod:`repro.resilience`) is only trustworthy
if its failure paths are exercised on purpose.  A :class:`FaultPlan`
describes *which* runs fail and *how*; the campaign executor, the
checkpoint store and the simulator consult it behind a null-object
default (:data:`NO_FAULTS`) — the same pattern :mod:`repro.obs` uses —
so production runs pay one attribute check and tests drive every
failure mode deterministically.

Fault-spec grammar (the hidden ``pomtlb campaign --inject-faults``)::

    SPEC      := directive ("," directive)*
    directive := kind ["@" benchmark ["/" scheme]] ["#" count] [":" "n=" N]

* ``kind`` — one of :data:`KINDS`:

  - ``crash``          worker process dies without a result (exit 134)
  - ``hang``           worker stops making progress until the timeout kills it
  - ``raise``          :class:`~repro.common.errors.FaultInjected` at the
                       ``n``-th translation (default 1) — a transient error
  - ``corrupt-trace``  one trace record is corrupted before validation — a
                       permanent :class:`~repro.common.errors.TraceFormatError`
  - ``ckpt-io``        the next checkpoint write raises ``OSError``
  - ``interrupt``      ``KeyboardInterrupt`` before the run launches
                       (a deterministic Ctrl-C for tests)

* ``benchmark`` / ``scheme`` — exact names or ``*`` (default both ``*``)
* ``count`` — how many times the directive fires: an integer (default 1)
  or ``*`` for every match.  A count of 1 on ``crash`` makes the failure
  transient: the retry succeeds.

Examples: ``crash@gups/pom``, ``hang@mcf/*#2``, ``raise@*/pom:n=100``,
``ckpt-io#1``, ``interrupt@lbm/tsb``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .common.errors import ConfigError, FaultInjected

#: Recognised directive kinds, split by where they are consulted.
RUN_KINDS = ("crash", "hang", "raise", "corrupt-trace", "interrupt")
KINDS = RUN_KINDS + ("ckpt-io",)

#: Directive count meaning "fire on every match".
UNLIMITED = -1


@dataclass
class FaultRule:
    """One parsed directive of a fault spec."""

    kind: str
    benchmark: str = "*"
    scheme: str = "*"
    remaining: int = 1
    n: int = 1  # for ``raise``: which translation trips

    def matches(self, benchmark: str, scheme: str) -> bool:
        return (self.remaining != 0
                and self.benchmark in ("*", benchmark)
                and self.scheme in ("*", scheme))

    def consume(self) -> None:
        if self.remaining > 0:
            self.remaining -= 1


def _parse_directive(text: str) -> FaultRule:
    directive = text.strip()
    original = directive
    n = 1
    if ":" in directive:
        directive, _, param = directive.partition(":")
        key, _, value = param.partition("=")
        if key != "n":
            raise ConfigError(f"fault directive {original!r}: unknown "
                              f"parameter {key!r} (only n=N is supported)")
        try:
            n = int(value)
        except ValueError:
            raise ConfigError(f"fault directive {original!r}: bad n={value!r}"
                              ) from None
    remaining = 1
    if "#" in directive:
        directive, _, count = directive.partition("#")
        if count == "*":
            remaining = UNLIMITED
        else:
            try:
                remaining = int(count)
            except ValueError:
                raise ConfigError(f"fault directive {original!r}: bad count "
                                  f"{count!r}") from None
            if remaining < 1:
                raise ConfigError(f"fault directive {original!r}: count must "
                                  f"be >= 1 or '*'")
    benchmark = scheme = "*"
    if "@" in directive:
        directive, _, target = directive.partition("@")
        benchmark, _, scheme = target.partition("/")
        benchmark = benchmark or "*"
        scheme = scheme or "*"
    kind = directive
    if kind not in KINDS:
        raise ConfigError(f"fault directive {original!r}: unknown kind "
                          f"{kind!r} (expected one of {', '.join(KINDS)})")
    if n < 1:
        raise ConfigError(f"fault directive {original!r}: n must be >= 1")
    return FaultRule(kind=kind, benchmark=benchmark, scheme=scheme,
                     remaining=remaining, n=n)


class FaultPlan:
    """An ordered set of fault rules consumed as the campaign executes.

    The plan lives in the campaign parent process; matched run-level
    directives are handed to workers as plain ``(kind, n)`` tuples so
    counts are bookkept in exactly one place.
    """

    enabled = True

    def __init__(self, rules: Optional[List[FaultRule]] = None) -> None:
        self.rules = list(rules or [])

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--inject-faults`` spec string (see module docstring)."""
        rules = [_parse_directive(part)
                 for part in spec.split(",") if part.strip()]
        if not rules:
            raise ConfigError(f"fault spec {spec!r} contains no directives")
        return cls(rules)

    def take_run_fault(self, benchmark: str, scheme: str
                       ) -> Optional[Tuple[str, int]]:
        """Consume and return the next run-level fault for this attempt.

        At most one directive fires per run attempt; rules are consulted
        in spec order.  Returns ``(kind, n)`` or ``None``.
        """
        for rule in self.rules:
            if rule.kind in RUN_KINDS and rule.matches(benchmark, scheme):
                rule.consume()
                return rule.kind, rule.n
        return None

    def take_checkpoint_fault(self) -> bool:
        """Consume one ``ckpt-io`` directive; True when a write must fail."""
        for rule in self.rules:
            if rule.kind == "ckpt-io" and rule.remaining != 0:
                rule.consume()
                return True
        return False


class NullFaultPlan(FaultPlan):
    """The no-faults default: every query answers 'no' at minimal cost."""

    enabled = False

    def __init__(self) -> None:
        super().__init__([])

    def take_run_fault(self, benchmark: str, scheme: str) -> None:
        return None

    def take_checkpoint_fault(self) -> bool:
        return False


#: Shared null object; everything that accepts a plan defaults to it.
NO_FAULTS = NullFaultPlan()


# -- in-simulation fault hooks -------------------------------------------------

class NullTranslationFaulter:
    """Machine-side null hook: ``active`` False keeps the hot path clean."""

    active = False

    def on_translation(self) -> None:  # pragma: no cover - never called
        pass


#: Default for :class:`~repro.core.system.Machine`'s ``faults`` knob.
NO_TRANSLATION_FAULTS = NullTranslationFaulter()


class RaiseAtTranslation:
    """Raise :class:`FaultInjected` when the ``n``-th translation starts."""

    active = True

    def __init__(self, n: int = 1) -> None:
        self.n = n
        self.seen = 0

    def on_translation(self) -> None:
        self.seen += 1
        if self.seen >= self.n:
            raise FaultInjected(
                f"injected failure at translation {self.seen}")


def corrupt_streams(streams) -> None:
    """Corrupt one record of the first non-empty stream, in place.

    The middle reference's address is replaced with ``-1`` — exactly the
    kind of damage a truncated or bit-flipped trace file produces, and
    what strict validation must reject.
    """
    for stream in streams:
        refs = list(stream.references)
        if not refs:
            continue
        middle = len(refs) // 2
        refs[middle] = refs[middle]._replace(vaddr=-1)
        stream.references = refs
        return
