"""Frozen seed-era reference engine — the counter-equivalence oracle.

This module preserves, verbatim in structure and behaviour, the
per-reference simulation path the repository shipped **before** the
fast-path engine rewrite:

* per-probe :class:`~repro.tlb.entry.TlbKey` NamedTuple construction,
* string-keyed ``StatGroup.inc`` calls on every hit/miss,
* per-set :class:`~repro.cache.replacement.LruPolicy` objects next to
  the set dictionaries,
* newest-first list storage inside the POM-TLB sets, and
* the un-batched heap-merge replay loop of ``Machine.run``.

It exists for two reasons:

1. **Differential testing** — ``tests/integration/test_engine_equivalence.py``
   replays identical workloads through this oracle and through the
   optimized engine and asserts that every ``StatRegistry`` counter and
   every ``SimulationResult`` field is bit-identical.  Any future
   optimization that changes simulated behaviour fails that test.
2. **Throughput baseline** — ``benchmarks/test_bench_engine_throughput.py``
   measures references/second against this engine, so the speedup
   reported in ``BENCH_engine.json`` is a machine-independent ratio, not
   a recorded absolute number.

DO NOT optimize this module.  Its slowness is the point: it is the
recorded pre-rewrite baseline.  The substrate it runs on — data caches,
DRAM channel, page tables, paging-structure caches, walkers, demand
paging — comes from :mod:`repro.core._refimpl`, a package of verbatim
pre-rewrite copies, so the oracle is independent of every live module
the rewrite optimized.  Components the rewrite left untouched
(predictor, TSB, POM-TLB addressing, SRAM latency model, replacement
policies, physical memory, THP policy) are shared live.

Scope: the replayed translate/run path (what ``Machine.run`` exercises).
Shootdown modelling is not replicated here; it is off the replay loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..cache.replacement import LruPolicy
from ..common import addr
from ..common.config import (SharedL2Config, SystemConfig, TlbConfig,
                             TsbConfig)
from ..common.stats import StatGroup, StatRegistry
from ..faults import NO_TRANSLATION_FAULTS
from ..obs import Observability
from ..obs.tracer import NULL_TRACER
from ..tlb import latency as sram_latency
from ..tlb.entry import TlbEntry, TlbKey
from ..vmm.thp import ThpPolicy
from ..workloads.trace import CoreStream, interleave
from ._refimpl.channel import DramChannel
from ._refimpl.hierarchy import CacheHierarchy
from ._refimpl.vm import Host, NativeProcess, ResolvedPage
from ._refimpl.walkers import WalkerPool
from .addressing import PomTlbAddressing
from .mmu import TranslationResult
from .predictor import SizeBypassPredictor
from .system import SimulationResult
from .tsb import TranslationStorageBuffer


def _key_for(vm_id: int, asid: int, vaddr: int, large: bool) -> TlbKey:
    return TlbKey(vm_id=vm_id, asid=asid, vpn=vaddr >> addr.page_shift(large),
                  large=large)


# -- seed-era SRAM TLB (dict sets + LruPolicy side structure) -----------------


class RefSramTlb:
    """Seed-era SRAM TLB: NamedTuple keys, separate per-set LRU objects."""

    def __init__(self, config: TlbConfig, stats: StatGroup) -> None:
        self.config = config
        self.stats = stats
        self._num_sets = config.num_sets
        self._set_mask = self._num_sets - 1
        self._sets: Tuple[Dict[TlbKey, TlbEntry], ...] = tuple(
            {} for _ in range(self._num_sets))
        self._lru: Tuple[LruPolicy, ...] = tuple(
            LruPolicy() for _ in range(self._num_sets))

    def _set_index(self, key: TlbKey) -> int:
        return (key.vpn ^ (key.vm_id * 0x9E37)
                ^ (key.asid * 0x85EB)) & self._set_mask

    def lookup(self, key: TlbKey) -> Optional[TlbEntry]:
        set_idx = self._set_index(key)
        entry = self._sets[set_idx].get(key)
        if entry is not None:
            self.stats.inc("hits")
            self._lru[set_idx].touch(key)
            return entry
        self.stats.inc("misses")
        return None

    def insert(self, key: TlbKey, entry: TlbEntry) -> Optional[TlbKey]:
        set_idx = self._set_index(key)
        entries = self._sets[set_idx]
        lru = self._lru[set_idx]
        evicted: Optional[TlbKey] = None
        if key not in entries and len(entries) >= self.config.ways:
            evicted = lru.victim()
            del entries[evicted]
            lru.remove(evicted)
            self.stats.inc("evictions")
        entries[key] = entry
        lru.touch(key)
        self.stats.inc("fills")
        return evicted


class RefSharedLastLevelTlb:
    """Seed-era shared last-level TLB wrapper over :class:`RefSramTlb`."""

    def __init__(self, config: SharedL2Config, num_cores: int,
                 stats: StatGroup) -> None:
        self.config = config
        base = config.tlb_config(num_cores)
        if config.banked:
            access = config.array_latency_cycles
        else:
            array_bytes = sram_latency.tlb_array_bytes(base.entries)
            access = sram_latency.latency_cycles(array_bytes)
        self.tlb_config = TlbConfig(
            name=base.name, entries=base.entries, ways=base.ways,
            latency_cycles=access + config.interconnect_cycles)
        self._tlb = RefSramTlb(self.tlb_config, stats)

    @property
    def latency(self) -> int:
        return self.tlb_config.latency_cycles

    def lookup(self, key: TlbKey) -> Optional[TlbEntry]:
        return self._tlb.lookup(key)

    def insert(self, key: TlbKey, entry: TlbEntry) -> Optional[TlbKey]:
        return self._tlb.insert(key, entry)


# -- seed-era POM-TLB (newest-first list sets) --------------------------------

#: One set: newest-first list of (key, entry); len <= ways.
_Set = List[Tuple[TlbKey, TlbEntry]]


class RefPomTlb:
    """Seed-era POM-TLB: sparse dict of newest-first per-set lists."""

    def __init__(self, config: SystemConfig, stats: StatRegistry) -> None:
        self.config = config.pom_tlb
        self.addressing = PomTlbAddressing(self.config)
        self.stats: StatGroup = stats.group("pom_tlb")
        self.dram = DramChannel(config.stacked_dram, config.cpu_mhz,
                                stats.group("stacked_dram"))
        self._ways = self.config.ways
        self._sets: Dict[bool, Dict[int, _Set]] = {False: {}, True: {}}

    def set_address(self, vaddr: int, vm_id: int, large: bool) -> int:
        return self.addressing.set_address(vaddr, vm_id, large)

    def dram_access(self, set_paddr: int) -> int:
        return self.dram.access(set_paddr)

    def probe(self, vaddr: int, key: TlbKey) -> Optional[TlbEntry]:
        index = self.addressing.set_index(vaddr, key.vm_id, key.large)
        entries = self._sets[key.large].get(index)
        if entries:
            for position, (resident, entry) in enumerate(entries):
                if resident == key:
                    if position:
                        entries.insert(0, entries.pop(position))
                    self.stats.inc("hits_large" if key.large else "hits_small")
                    return entry
        self.stats.inc("misses_large" if key.large else "misses_small")
        return None

    def insert(self, vaddr: int, key: TlbKey,
               entry: TlbEntry) -> Tuple[int, Optional[TlbKey]]:
        index = self.addressing.set_index(vaddr, key.vm_id, key.large)
        sets = self._sets[key.large]
        entries = sets.get(index)
        if entries is None:
            entries = sets[index] = []
        evicted: Optional[TlbKey] = None
        for position, (resident, _old) in enumerate(entries):
            if resident == key:
                del entries[position]
                break
        else:
            if len(entries) >= self._ways:
                evicted, _ = entries.pop()  # LRU is last
                self.stats.inc("evictions")
        entries.insert(0, (key, entry))
        self.stats.inc("fills")
        set_paddr = self.set_address(vaddr, key.vm_id, key.large)
        return set_paddr, evicted


_WAY_MIX = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F)
_VM_SPREAD = 0x9E37


class RefSkewedPomTlb:
    """Seed-era skew-associative POM-TLB (NamedTuple-key hashing)."""

    def __init__(self, config: SystemConfig, stats) -> None:
        self.config = config.pom_tlb
        self.stats: StatGroup = stats.group("pom_tlb")
        self.dram = DramChannel(config.stacked_dram, config.cpu_mhz,
                                stats.group("stacked_dram"))
        self._ways = self.config.ways
        total_entries = self.config.size_bytes // self.config.entry_bytes
        self._slots_per_way = total_entries // self._ways
        self._mask = self._slots_per_way - 1
        self._way_bytes = self.config.size_bytes // self._ways
        self._slots: Dict[Tuple[int, int], Tuple[TlbKey, TlbEntry, int]] = {}
        self._clock = 0

    def _hash(self, key: TlbKey, way: int) -> int:
        vpn = key.vpn
        mixed = (vpn * _WAY_MIX[way]) ^ (vpn >> 13) ^ (key.vm_id * _VM_SPREAD)
        mixed ^= key.asid * 0x85EB
        if key.large:
            mixed ^= 0x5A5A5A5A
        return mixed & self._mask

    def _line_address(self, way: int, slot: int) -> int:
        way_base = self.config.base_address + way * self._way_bytes
        return way_base + (slot >> 2 << addr.CACHE_LINE_SHIFT)

    def lines_for_key(self, key: TlbKey) -> List[int]:
        return [self._line_address(way, self._hash(key, way))
                for way in range(self._ways)]

    def dram_access(self, line_addr: int) -> int:
        return self.dram.access(line_addr)

    def probe_way(self, key: TlbKey, way: int) -> Optional[TlbEntry]:
        slot = self._hash(key, way)
        resident = self._slots.get((way, slot))
        if resident is not None and resident[0] == key:
            self._clock += 1
            self._slots[(way, slot)] = (resident[0], resident[1], self._clock)
            self.stats.inc("hits_large" if key.large else "hits_small")
            return resident[1]
        if way == self._ways - 1:
            self.stats.inc("misses_large" if key.large else "misses_small")
        return None

    def insert(self, key: TlbKey,
               entry: TlbEntry) -> Tuple[int, Optional[TlbKey]]:
        self._clock += 1
        candidates = [(way, self._hash(key, way)) for way in range(self._ways)]
        for way, slot in candidates:
            resident = self._slots.get((way, slot))
            if resident is not None and resident[0] == key:
                self._slots[(way, slot)] = (key, entry, self._clock)
                self.stats.inc("fills")
                return self._line_address(way, slot), None
        for way, slot in candidates:
            if (way, slot) not in self._slots:
                self._slots[(way, slot)] = (key, entry, self._clock)
                self.stats.inc("fills")
                return self._line_address(way, slot), None
        way, slot = min(candidates, key=lambda c: self._slots[c][2])
        evicted = self._slots[(way, slot)][0]
        self._slots[(way, slot)] = (key, entry, self._clock)
        self.stats.inc("fills")
        self.stats.inc("evictions")
        return self._line_address(way, slot), evicted


# -- seed-era translation schemes ---------------------------------------------


class _RefCoreTlbs:
    """Private L1 (split) + L2 (unified) TLBs of one core."""

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 core: int) -> None:
        mmu = config.mmu
        self.l1_small = RefSramTlb(mmu.l1_small,
                                   stats.group(f"core{core}.l1_tlb_4k"))
        self.l1_large = RefSramTlb(mmu.l1_large,
                                   stats.group(f"core{core}.l1_tlb_2m"))
        self.l2 = RefSramTlb(mmu.l2_unified, stats.group(f"core{core}.l2_tlb"))
        self.l1_latency = mmu.l1_small.latency_cycles
        self.l2_latency = mmu.l2_unified.latency_cycles
        self.l2_miss_overhead = mmu.l2_unified.miss_penalty_cycles

    def l1(self, large: bool) -> RefSramTlb:
        return self.l1_large if large else self.l1_small


class RefTranslationScheme:
    """Seed-era base scheme: front end + template for the miss path."""

    name = "abstract"

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 hierarchy: CacheHierarchy, walkers: WalkerPool) -> None:
        self.config = config
        self.stats = stats
        self.hierarchy = hierarchy
        self.walkers = walkers
        self.cores: List[_RefCoreTlbs] = [
            _RefCoreTlbs(config, stats, core)
            for core in range(config.num_cores)]
        self.mmu_stats = stats.group("mmu")
        self.trace = NULL_TRACER

    def translate(self, core: int, vm_id: int, asid: int, vaddr: int,
                  page: ResolvedPage) -> TranslationResult:
        tlbs = self.cores[core]
        key = _key_for(vm_id, asid, vaddr, page.large)
        cycles = tlbs.l1_latency
        if tlbs.l1(page.large).lookup(key) is not None:
            return TranslationResult(cycles, False, 0)
        cycles += tlbs.l2_latency
        if tlbs.l2.lookup(key) is not None:
            tlbs.l1(page.large).insert(
                key, TlbEntry(page.host_frame >> addr.page_shift(page.large)))
            return TranslationResult(cycles, False, 0)
        self.mmu_stats.inc("l2_tlb_misses")
        penalty = self._resolve_miss(core, vm_id, asid, vaddr, page)
        entry = TlbEntry(page.host_frame >> addr.page_shift(page.large))
        tlbs.l2.insert(key, entry)
        tlbs.l1(page.large).insert(key, entry)
        self.mmu_stats.inc("penalty_cycles", penalty)
        return TranslationResult(cycles + penalty, True, penalty)

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:
        raise NotImplementedError

    def _walk(self, core: int, vm_id: int, asid: int, vaddr: int) -> int:
        result = self.walkers.walk(core, vm_id, asid, vaddr)
        self.mmu_stats.inc("page_walks")
        self.mmu_stats.inc("page_walk_cycles", result.cycles)
        return result.cycles


class RefBaselineWalkScheme(RefTranslationScheme):
    name = "baseline"

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:
        return (self.cores[core].l2_miss_overhead
                + self._walk(core, vm_id, asid, vaddr))


class RefPomTlbScheme(RefTranslationScheme):
    name = "pom"

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 hierarchy: CacheHierarchy, walkers: WalkerPool) -> None:
        super().__init__(config, stats, hierarchy, walkers)
        self.pom = RefPomTlb(config, stats)
        self.predictors: List[SizeBypassPredictor] = [
            SizeBypassPredictor(config.predictor,
                                stats.group(f"core{core}.predictor"))
            for core in range(config.num_cores)]
        self.flow_stats = stats.group("pom_flow")
        self._cache_entries = config.cache_tlb_entries
        self._prefetch = config.tlb_prefetch

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:
        predictor = self.predictors[core]
        cycles = 1  # predictor lookup
        predicted_large = predictor.predict_size(vaddr)
        bypass = (self._cache_entries
                  and self.config.predictor.bypass_enabled
                  and predictor.predict_bypass(vaddr))
        true_addr = self.pom.set_address(vaddr, vm_id, page.large)
        line_was_cached = (self._cache_entries
                           and self.hierarchy.tlb_line_cached(core, true_addr))

        entry: Optional[TlbEntry] = None
        for attempt, large in enumerate((predicted_large, not predicted_large)):
            set_addr = self.pom.set_address(vaddr, vm_id, large)
            cycles += self._fetch_set(core, set_addr, bypass)
            entry = self.pom.probe(vaddr, _key_for(vm_id, asid, vaddr, large))
            if entry is not None:
                self.flow_stats.inc("resolved_first_try" if attempt == 0
                                    else "resolved_second_try")
                break
        if entry is None:
            cycles += self._walk(core, vm_id, asid, vaddr)
            self.flow_stats.inc("resolved_by_walk")
            key = _key_for(vm_id, asid, vaddr, page.large)
            shift = addr.page_shift(page.large)
            set_paddr, _evicted = self.pom.insert(
                vaddr, key, TlbEntry(page.host_frame >> shift))
            self.hierarchy.invalidate_line(set_paddr)
            if self._cache_entries:
                self.hierarchy.tlb_line_fill(core, set_paddr)
        predictor.record_size(vaddr, page.large)
        if self._cache_entries and entry is not None:
            predictor.record_bypass(vaddr, line_was_cached)
        if self._prefetch and self._cache_entries:
            self._prefetch_next(core, vm_id, vaddr, page.large)
        return cycles

    def _prefetch_next(self, core: int, vm_id: int, vaddr: int,
                       large: bool) -> None:
        next_vaddr = vaddr + addr.page_size(large)
        set_addr = self.pom.set_address(next_vaddr, vm_id, large)
        if self.hierarchy.tlb_line_cached(core, set_addr):
            return
        self.pom.dram_access(set_addr)
        self.hierarchy.tlb_line_fill(core, set_addr)
        self.flow_stats.inc("prefetches")

    def _fetch_set(self, core: int, set_addr: int, bypass: bool) -> int:
        if not self._cache_entries or bypass:
            cycles = self.pom.dram_access(set_addr)
            if bypass:
                self.hierarchy.tlb_line_fill(core, set_addr)
            source = "dram_bypass" if bypass else "dram_uncached"
        else:
            cycles, level = self.hierarchy.tlb_line_probe(core, set_addr)
            if level is None:
                cycles += self.pom.dram_access(set_addr)
                self.hierarchy.tlb_line_fill(core, set_addr)
                source = "dram"
            else:
                source = level
        self.flow_stats.inc(f"set_from_{source}")
        return cycles


class RefSharedL2Scheme(RefTranslationScheme):
    name = "shared_l2"

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 hierarchy: CacheHierarchy, walkers: WalkerPool,
                 shared_config: Optional[SharedL2Config] = None) -> None:
        super().__init__(config, stats, hierarchy, walkers)
        self.shared = RefSharedLastLevelTlb(
            shared_config or SharedL2Config(), config.num_cores,
            stats.group("shared_l2_tlb"))
        self._shadow: List[RefSramTlb] = [
            RefSramTlb(config.mmu.l2_unified,
                       stats.group(f"core{c}.shadow_l2_tlb"))
            for c in range(config.num_cores)]
        self._baseline_l2_latency = config.mmu.l2_unified.latency_cycles

    def translate(self, core: int, vm_id: int, asid: int, vaddr: int,
                  page: ResolvedPage) -> TranslationResult:
        tlbs = self.cores[core]
        key = _key_for(vm_id, asid, vaddr, page.large)
        cycles = tlbs.l1_latency
        if tlbs.l1(page.large).lookup(key) is not None:
            return TranslationResult(cycles, False, 0)
        entry_template = TlbEntry(page.host_frame
                                  >> addr.page_shift(page.large))
        shadow = self._shadow[core]
        shadow_miss = shadow.lookup(key) is None
        if shadow_miss:
            shadow.insert(key, entry_template)
            self.mmu_stats.inc("l2_tlb_misses")
        cycles += self.shared.latency
        extra_hit_cost = max(0, self.shared.latency - self._baseline_l2_latency)
        entry = self.shared.lookup(key)
        if entry is not None:
            tlbs.l1(page.large).insert(key, entry)
            self.mmu_stats.inc("penalty_cycles", extra_hit_cost)
            return TranslationResult(cycles, shadow_miss, extra_hit_cost)
        penalty = extra_hit_cost + tlbs.l2_miss_overhead
        penalty += self._walk(core, vm_id, asid, vaddr)
        self.shared.insert(key, entry_template)
        tlbs.l1(page.large).insert(key, entry_template)
        self.mmu_stats.inc("penalty_cycles", penalty)
        return TranslationResult(cycles + penalty, shadow_miss, penalty)

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:  # pragma: no cover
        raise AssertionError("RefSharedL2Scheme overrides translate()")


class RefTsbScheme(RefTranslationScheme):
    name = "tsb"

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 hierarchy: CacheHierarchy, walkers: WalkerPool,
                 tsb_config: Optional[TsbConfig] = None) -> None:
        super().__init__(config, stats, hierarchy, walkers)
        self.tsb_config = tsb_config or TsbConfig()
        self.tsb = TranslationStorageBuffer(self.tsb_config,
                                            stats.group("tsb"))

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:
        cfg = self.tsb_config
        cycles = cfg.trap_cycles
        vpn = vaddr >> addr.page_shift(page.large)
        gpa_addr = page.guest_frame | addr.page_offset(vaddr, page.large)
        gpa_vpn = self.tsb.gpa_vpn(gpa_addr)
        cycles += self.hierarchy.data_access(
            core, self.tsb.guest_entry_address(vm_id, asid, vpn))
        gpa_frame = self.tsb.probe_guest(vm_id, asid, vpn, page.large)
        resolved = False
        if gpa_frame is not None:
            cycles += self.hierarchy.data_access(
                core, self.tsb.host_entry_address(vm_id, gpa_vpn))
            resolved = self.tsb.probe_host(vm_id, gpa_vpn) is not None
        if not resolved:
            cycles += self._walk(core, vm_id, asid, vaddr)
            self.tsb.fill_guest(vm_id, asid, vpn, page.large, page.guest_frame)
            hpa_addr = page.host_frame + (gpa_addr - page.guest_frame)
            self.tsb.fill_host(vm_id, gpa_vpn,
                               hpa_addr & ~(addr.SMALL_PAGE_SIZE - 1))
            cycles += self.hierarchy.data_access(
                core, self.tsb.guest_entry_address(vm_id, asid, vpn),
                is_write=True)
            cycles += self.hierarchy.data_access(
                core, self.tsb.host_entry_address(vm_id, gpa_vpn),
                is_write=True)
        return cycles


class RefSkewedPomScheme(RefTranslationScheme):
    name = "pom_skewed"

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 hierarchy: CacheHierarchy, walkers: WalkerPool) -> None:
        super().__init__(config, stats, hierarchy, walkers)
        self.pom = RefSkewedPomTlb(config, stats)
        self.predictors: List[SizeBypassPredictor] = [
            SizeBypassPredictor(config.predictor,
                                stats.group(f"core{core}.predictor"))
            for core in range(config.num_cores)]
        self.flow_stats = stats.group("pom_flow")
        self._cache_entries = config.cache_tlb_entries

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:
        predictor = self.predictors[core]
        cycles = 1  # predictor lookup
        predicted_large = predictor.predict_size(vaddr)
        bypass = (self._cache_entries
                  and self.config.predictor.bypass_enabled
                  and predictor.predict_bypass(vaddr))
        true_key = _key_for(vm_id, asid, vaddr, page.large)
        first_line = self.pom.lines_for_key(true_key)[0]
        line_was_cached = (self._cache_entries
                           and self.hierarchy.tlb_line_cached(core, first_line))

        entry: Optional[TlbEntry] = None
        for attempt, large in enumerate((predicted_large, not predicted_large)):
            key = _key_for(vm_id, asid, vaddr, large)
            for way, line_addr in enumerate(self.pom.lines_for_key(key)):
                cycles += self._fetch_line(core, line_addr, bypass)
                entry = self.pom.probe_way(key, way)
                if entry is not None:
                    break
            if entry is not None:
                self.flow_stats.inc("resolved_first_try" if attempt == 0
                                    else "resolved_second_try")
                break
        if entry is None:
            cycles += self._walk(core, vm_id, asid, vaddr)
            self.flow_stats.inc("resolved_by_walk")
            shift = addr.page_shift(page.large)
            line_addr, _evicted = self.pom.insert(
                true_key, TlbEntry(page.host_frame >> shift))
            self.hierarchy.invalidate_line(line_addr)
            if self._cache_entries:
                self.hierarchy.tlb_line_fill(core, line_addr)
        predictor.record_size(vaddr, page.large)
        if self._cache_entries and entry is not None:
            predictor.record_bypass(vaddr, line_was_cached)
        return cycles

    def _fetch_line(self, core: int, line_addr: int, bypass: bool) -> int:
        if not self._cache_entries or bypass:
            cycles = self.pom.dram_access(line_addr)
            if bypass:
                self.hierarchy.tlb_line_fill(core, line_addr)
            source = "dram_bypass" if bypass else "dram_uncached"
        else:
            cycles, level = self.hierarchy.tlb_line_probe(core, line_addr)
            if level is None:
                cycles += self.pom.dram_access(line_addr)
                self.hierarchy.tlb_line_fill(core, line_addr)
                source = "dram"
            else:
                source = level
        self.flow_stats.inc(f"set_from_{source}")
        return cycles


REF_SCHEMES = {
    scheme.name: scheme
    for scheme in (RefBaselineWalkScheme, RefPomTlbScheme,
                   RefSkewedPomScheme, RefSharedL2Scheme, RefTsbScheme)
}


# -- seed-era machine + replay loop -------------------------------------------


class ReferenceMachine:
    """Seed-era system wiring + the un-batched per-reference replay loop.

    Construction mirrors :class:`~repro.core.system.Machine` exactly
    (same component creation order, so demand-paging frame allocation is
    reproducible), but the translation scheme and the ``run`` loop are
    the frozen pre-rewrite implementations above.
    """

    def __init__(self, config: SystemConfig, scheme: str = "pom",
                 thp_large_fraction: float = 0.0, seed: int = 0,
                 tlb_priority: bool = False,
                 host_memory_bytes: int = 64 * addr.GiB,
                 thp_fractions: Optional[Dict[int, float]] = None,
                 obs: Optional[Observability] = None,
                 **scheme_kwargs) -> None:
        self.config = config
        self.seed = seed
        self.thp_large_fraction = thp_large_fraction
        self.thp_fractions = thp_fractions or {}
        self.stats = StatRegistry()
        self.hierarchy = CacheHierarchy(config, self.stats,
                                        tlb_priority=tlb_priority)
        self.host = Host(memory_bytes=host_memory_bytes)
        self._native_processes: Dict[int, NativeProcess] = {}
        self.walkers = WalkerPool(config, self.stats, self.hierarchy,
                                  self.host,
                                  native_resolver=self._native_process)
        try:
            scheme_cls = REF_SCHEMES[scheme]
        except KeyError:
            raise ValueError(f"unknown scheme {scheme!r}; pick one of "
                             f"{sorted(REF_SCHEMES)}") from None
        self.scheme = scheme_cls(config, self.stats, self.hierarchy,
                                 self.walkers, **scheme_kwargs)
        self.obs = obs if obs is not None else Observability()
        self.obs.attach(self)
        self.faults = NO_TRANSLATION_FAULTS

    def _thp(self, context_seed: int) -> ThpPolicy:
        fraction = self.thp_fractions.get(context_seed,
                                          self.thp_large_fraction)
        return ThpPolicy(fraction, seed=self.seed * 1000 + context_seed)

    def _native_process(self, asid: int) -> NativeProcess:
        proc = self._native_processes.get(asid)
        if proc is None:
            proc = NativeProcess(asid, self.host.memory, self._thp(asid))
            self._native_processes[asid] = proc
        return proc

    def touch(self, vm_id: int, asid: int, vaddr: int) -> ResolvedPage:
        if self.config.virtualized:
            vm = self.host.vms.get(vm_id)
            if vm is None:
                vm = self.host.create_vm(vm_id, self._thp(vm_id))
            return vm.touch(asid, vaddr)
        return self._native_process(asid).touch(vaddr)

    def run(self, streams: Iterable[CoreStream],
            max_references: Optional[int] = None,
            warmup_references: Union[int, Mapping[int, int]] = 0
            ) -> SimulationResult:
        """The seed-era replay loop, one heap-merged reference at a time."""
        streams = list(streams)
        for stream in streams:
            if stream.core >= self.config.num_cores:
                raise ValueError(f"stream core {stream.core} >= "
                                 f"{self.config.num_cores} cores")
        mmu_stats = self.stats.group("mmu")
        obs = self.obs
        tracer = obs.tracer
        histograms = obs.histograms
        translation_hist = penalty_hist = None
        if histograms is not None:
            translation_hist = histograms["translation_cycles"]
            penalty_hist = histograms["penalty_cycles"]
        windows = obs.windows
        references = 0
        translation_cycles = 0
        data_cycles = 0
        if isinstance(warmup_references, int):
            warmup_remaining: Dict[int, int] = (
                {-1: warmup_references} if warmup_references else {})
        else:
            warmup_remaining = {core: count for core, count
                                in warmup_references.items() if count > 0}
        in_warmup = bool(warmup_remaining)
        warmup_boundary: Dict[int, int] = {}
        last_icount: Dict[int, int] = {}
        for stream, ref in interleave(streams):
            if in_warmup and not warmup_remaining:
                in_warmup = False
                references = 0
                translation_cycles = 0
                data_cycles = 0
                self.stats.reset()
                obs.reset()
                if tracer.enabled:
                    tracer.marker("stats_reset")
                warmup_boundary = dict(last_icount)
            if in_warmup:
                key = -1 if -1 in warmup_remaining else stream.core
                if key in warmup_remaining:
                    warmup_remaining[key] -= 1
                    if warmup_remaining[key] <= 0:
                        del warmup_remaining[key]
            page = self.touch(stream.vm_id, stream.asid, ref.vaddr)
            result = self.scheme.translate(
                stream.core, stream.vm_id, stream.asid, ref.vaddr, page)
            translation_cycles += result.cycles
            hpa = page.host_frame | addr.page_offset(ref.vaddr, page.large)
            data_cycles += self.hierarchy.data_access(stream.core, hpa,
                                                      is_write=ref.write)
            if translation_hist is not None:
                translation_hist.record(result.cycles)
                if result.l2_miss:
                    penalty_hist.record(result.penalty)
            if windows is not None:
                windows.record(result.cycles, result.l2_miss, result.penalty)
            last_icount[stream.core] = ref.icount
            references += 1
            if max_references is not None and references >= max_references:
                break
        if in_warmup:
            raise ValueError(
                f"warmup ({warmup_references}) consumed the whole trace")
        if windows is not None:
            windows.finish()
        instructions = sum(
            last_icount[core] - warmup_boundary.get(core, 0)
            for core in last_icount)
        return SimulationResult(
            scheme=self.scheme.name,
            references=references,
            instructions=instructions,
            l2_tlb_misses=int(mmu_stats["l2_tlb_misses"]),
            penalty_cycles=int(mmu_stats["penalty_cycles"]),
            translation_cycles=translation_cycles,
            data_cycles=data_cycles,
            page_walks=int(mmu_stats["page_walks"]),
            stats=self.stats,
            histograms=histograms,
            windows=windows,
        )


def run_reference(benchmark: str, scheme: str, params) -> SimulationResult:
    """Replay one suite benchmark through the frozen reference engine.

    ``params`` is an :class:`~repro.experiments.runner.ExperimentParams`;
    workload generation and warmup policy match
    :func:`~repro.experiments.runner.simulate_run` so the result is
    directly comparable to the optimized engine's.
    """
    from ..workloads.suite import get_profile

    profile = get_profile(benchmark)
    workload = profile.build(num_cores=params.num_cores,
                             refs_per_core=params.refs_per_core,
                             seed=params.seed, scale=params.scale)
    machine = ReferenceMachine(params.system_config(), scheme=scheme,
                               thp_large_fraction=profile.thp_large_fraction,
                               seed=params.seed,
                               tlb_priority=params.tlb_priority)
    return machine.run(workload.streams,
                       warmup_references=workload.warmup_by_core
                       or workload.warmup_references)
