"""The paper's contribution: POM-TLB, predictors, schemes, system model."""

from .addressing import PomTlbAddressing
from .mmu import (
    SCHEMES,
    SkewedPomScheme,
    BaselineWalkScheme,
    PomTlbScheme,
    SharedL2Scheme,
    TranslationResult,
    TranslationScheme,
    TsbScheme,
    make_scheme,
)
from .perfmodel import BaselineAnchor, PerformanceEstimate, estimate, geometric_mean
from .pom_tlb import PomTlb
from .skewed_pom import SkewedPomTlb
from .predictor import SizeBypassPredictor
from .system import Machine, SimulationResult
from .tsb import TranslationStorageBuffer
from .walkers import WalkerPool, WalkResult

__all__ = [
    "SCHEMES",
    "BaselineAnchor",
    "BaselineWalkScheme",
    "Machine",
    "PerformanceEstimate",
    "PomTlb",
    "PomTlbAddressing",
    "PomTlbScheme",
    "SharedL2Scheme",
    "SimulationResult",
    "SkewedPomScheme",
    "SkewedPomTlb",
    "SizeBypassPredictor",
    "TranslationResult",
    "TranslationScheme",
    "TranslationStorageBuffer",
    "TsbScheme",
    "WalkResult",
    "WalkerPool",
    "estimate",
    "geometric_mean",
    "make_scheme",
]
