"""The POM-TLB: a very large L3 TLB resident in (die-stacked) DRAM.

Functional content and DRAM timing of the structure of paper Section 2.1:

* two physical partitions (4 KiB / 2 MiB entries), statically sized;
* 16 B entries, 4-way associative sets = one 64 B line, so one DRAM
  burst fetches a whole set and the LRU decision needs no extra access;
* per-set true LRU via the 2 attribute bits of each entry;
* memory-mapped: every set has a physical address
  (:class:`~repro.core.addressing.PomTlbAddressing`), which is what lets
  the MMU cache sets in the L2/L3 data caches;
* backed by one dedicated channel of die-stacked DRAM whose bank/row
  state produces the Figure 11 row-buffer behaviour.

The *timing* of an access (probe through caches, bypass, fills) is
orchestrated by the MMU (:mod:`repro.core.mmu`); this class answers
functional questions (is the translation present? what got evicted?) and
charges stacked-DRAM cycles on demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.config import PomTlbConfig, SystemConfig
from ..common.stats import StatGroup, StatRegistry
from ..dram import DramChannel
from ..tlb.entry import TlbEntry, TlbKey
from .addressing import PomTlbAddressing

#: One set: newest-first list of (key, entry); len <= ways.
_Set = List[Tuple[TlbKey, TlbEntry]]


class PomTlb:
    """Functional state + DRAM timing of the part-of-memory TLB."""

    def __init__(self, config: SystemConfig, stats: StatRegistry) -> None:
        self.config: PomTlbConfig = config.pom_tlb
        self.addressing = PomTlbAddressing(self.config)
        self.stats: StatGroup = stats.group("pom_tlb")
        self.dram = DramChannel(config.stacked_dram, config.cpu_mhz,
                                stats.group("stacked_dram"))
        self._ways = self.config.ways
        # Sparse set storage per partition, keyed by set index.
        self._sets: Dict[bool, Dict[int, _Set]] = {False: {}, True: {}}

    # -- addressing -----------------------------------------------------------

    def set_address(self, vaddr: int, vm_id: int, large: bool) -> int:
        """Physical address of the set ``vaddr`` maps to in a partition."""
        return self.addressing.set_address(vaddr, vm_id, large)

    def dram_access(self, set_paddr: int) -> int:
        """Charge one 64 B stacked-DRAM burst for a set; returns cycles."""
        return self.dram.access(set_paddr)

    # -- functional content -----------------------------------------------------

    def probe(self, vaddr: int, key: TlbKey) -> Optional[TlbEntry]:
        """Search the set for ``key``; refreshes LRU on hit.

        ``vaddr`` picks the set (index bits); ``key`` must carry the
        matching page size — probing the small partition with a large
        key is a contract violation the caller never commits.
        """
        index = self.addressing.set_index(vaddr, key.vm_id, key.large)
        entries = self._sets[key.large].get(index)
        if entries:
            for position, (resident, entry) in enumerate(entries):
                if resident == key:
                    if position:
                        entries.insert(0, entries.pop(position))
                    self.stats.inc("hits_large" if key.large else "hits_small")
                    return entry
        self.stats.inc("misses_large" if key.large else "misses_small")
        return None

    def contains(self, vaddr: int, key: TlbKey) -> bool:
        """Presence check with no LRU or stats side effects."""
        index = self.addressing.set_index(vaddr, key.vm_id, key.large)
        entries = self._sets[key.large].get(index, [])
        return any(resident == key for resident, _ in entries)

    def insert(self, vaddr: int, key: TlbKey,
               entry: TlbEntry) -> Tuple[int, Optional[TlbKey]]:
        """Install a translation after a page walk.

        Returns ``(set_paddr, evicted_key)`` so the MMU can keep cached
        copies of the set coherent and account the eviction.
        """
        index = self.addressing.set_index(vaddr, key.vm_id, key.large)
        sets = self._sets[key.large]
        entries = sets.get(index)
        if entries is None:
            entries = sets[index] = []
        evicted: Optional[TlbKey] = None
        for position, (resident, _old) in enumerate(entries):
            if resident == key:
                del entries[position]
                break
        else:
            if len(entries) >= self._ways:
                evicted, _ = entries.pop()  # LRU is last
                self.stats.inc("evictions")
        entries.insert(0, (key, entry))
        self.stats.inc("fills")
        set_paddr = self.set_address(vaddr, key.vm_id, key.large)
        return set_paddr, evicted

    # -- shootdown support -------------------------------------------------

    def invalidate(self, vaddr: int, key: TlbKey) -> Optional[int]:
        """Drop one translation; returns the set address if it was present."""
        index = self.addressing.set_index(vaddr, key.vm_id, key.large)
        entries = self._sets[key.large].get(index)
        if not entries:
            return None
        for position, (resident, _entry) in enumerate(entries):
            if resident == key:
                del entries[position]
                self.stats.inc("shootdowns")
                return self.set_address(vaddr, key.vm_id, key.large)
        return None

    def invalidate_vm(self, vm_id: int) -> int:
        """Drop every translation of one VM; returns the count."""
        dropped = 0
        for sets in self._sets.values():
            for entries in sets.values():
                before = len(entries)
                entries[:] = [(k, e) for k, e in entries if k.vm_id != vm_id]
                dropped += before - len(entries)
        if dropped:
            self.stats.inc("shootdowns", dropped)
        return dropped

    # -- reporting ---------------------------------------------------------

    def hit_rate(self) -> float:
        hits = self.stats["hits_small"] + self.stats["hits_large"]
        total = hits + self.stats["misses_small"] + self.stats["misses_large"]
        return hits / total if total else 0.0

    def occupancy(self) -> Dict[str, int]:
        """Resident entry counts per partition."""
        return {
            "small": sum(len(v) for v in self._sets[False].values()),
            "large": sum(len(v) for v in self._sets[True].values()),
        }

    @property
    def reach_bytes(self) -> int:
        """Address space covered when both partitions are full."""
        small_entries = self.config.small_sets * self._ways
        large_entries = self.config.large_sets * self._ways
        return small_entries * 4096 + large_entries * 2 * 1024 * 1024
