"""The POM-TLB: a very large L3 TLB resident in (die-stacked) DRAM.

Functional content and DRAM timing of the structure of paper Section 2.1:

* two physical partitions (4 KiB / 2 MiB entries), statically sized;
* 16 B entries, 4-way associative sets = one 64 B line, so one DRAM
  burst fetches a whole set and the LRU decision needs no extra access;
* per-set true LRU via the 2 attribute bits of each entry;
* memory-mapped: every set has a physical address
  (:class:`~repro.core.addressing.PomTlbAddressing`), which is what lets
  the MMU cache sets in the L2/L3 data caches;
* backed by one dedicated channel of die-stacked DRAM whose bank/row
  state produces the Figure 11 row-buffer behaviour.

The *timing* of an access (probe through caches, bypass, fills) is
orchestrated by the MMU (:mod:`repro.core.mmu`); this class answers
functional questions (is the translation present? what got evicted?) and
charges stacked-DRAM cycles on demand.

Keys are packed integers (:func:`repro.tlb.entry.pack_key`).  The MMU
already holds ``vm_id``/``large`` as locals, so the hot entry points take
them as arguments instead of re-extracting them from the key.  Each set
is a dict in recency order (first key = LRU victim), replacing the
seed-era newest-first list with the same victim sequence.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..common import addr
from ..common.config import PomTlbConfig, SystemConfig
from ..common.stats import StatGroup, StatRegistry
from ..dram import DramChannel
from ..tlb.entry import KEY_VM_FIELD_MASK, TlbEntry, pack_context
from .addressing import PomTlbAddressing

#: One set: dict of packed key -> entry in recency order (oldest first).
_Set = Dict[int, TlbEntry]

# Inlined PomTlbAddressing arithmetic (same constants as addressing.py);
# the probe/insert paths run once per L2 TLB miss and a method call plus
# ``addr.page_shift`` per index was measurable there.
_VM_SPREAD = 0x9E37
_SMALL_SHIFT = addr.SMALL_PAGE_SHIFT
_LARGE_SHIFT = addr.LARGE_PAGE_SHIFT
_LINE = addr.CACHE_LINE_SIZE


class PomTlb:
    """Functional state + DRAM timing of the part-of-memory TLB."""

    #: Batch-replay contract (:mod:`repro.core.batch`): resolving a miss
    #: through this structure touches the stacked DRAM and the L2/L3
    #: SRAM caches (TLB-kind lines) but never another core's L1 TLB or
    #: L1 data cache — the property that keeps the batched engine's
    #: same-stream duplicate collapsing and inline L1 probes exact.
    L1_PRIVATE = True

    def __init__(self, config: SystemConfig, stats: StatRegistry) -> None:
        self.config: PomTlbConfig = config.pom_tlb
        self.addressing = PomTlbAddressing(self.config)
        self.stats: StatGroup = stats.group("pom_tlb")
        self.dram = DramChannel(config.stacked_dram, config.cpu_mhz,
                                stats.group("stacked_dram"))
        self._ways = self.config.ways
        # Partition geometry, hoisted for the inlined index math below.
        self._small_mask = self.config.small_sets - 1
        self._large_mask = self.config.large_sets - 1
        self._small_base = self.config.small_base
        self._large_base = self.config.large_base
        # Sparse set storage per partition, keyed by set index.
        self._sets: Tuple[Dict[int, _Set], Dict[int, _Set]] = ({}, {})
        # Indexed by the ``large`` flag (False == 0, True == 1).
        self._hits = (self.stats.counter("hits_small"),
                      self.stats.counter("hits_large"))
        self._misses = (self.stats.counter("misses_small"),
                        self.stats.counter("misses_large"))
        self._fills = self.stats.counter("fills")
        self._evictions = self.stats.counter("evictions")

    # -- addressing -----------------------------------------------------------

    def set_address(self, vaddr: int, vm_id: int, large: bool) -> int:
        """Physical address of the set ``vaddr`` maps to in a partition."""
        if large:
            index = ((vaddr >> _LARGE_SHIFT)
                     ^ (vm_id * _VM_SPREAD)) & self._large_mask
            return self._large_base + index * _LINE
        index = ((vaddr >> _SMALL_SHIFT)
                 ^ (vm_id * _VM_SPREAD)) & self._small_mask
        return self._small_base + index * _LINE

    def dram_access(self, set_paddr: int) -> int:
        """Charge one 64 B stacked-DRAM burst for a set; returns cycles."""
        return self.dram.access(set_paddr)

    # -- functional content -----------------------------------------------------

    def probe(self, vaddr: int, key: int, vm_id: Optional[int] = None,
              large: Optional[bool] = None) -> Optional[TlbEntry]:
        """Search the set for ``key``; refreshes LRU on hit.

        ``vaddr`` picks the set (index bits); ``vm_id``/``large`` must
        match the key's fields — the MMU passes them explicitly because
        it already holds them as locals, other callers may omit them.
        """
        if vm_id is None:
            vm_id = (key >> 1) & 0xFFFF
            large = bool(key & 1)
        if large:
            index = ((vaddr >> _LARGE_SHIFT)
                     ^ (vm_id * _VM_SPREAD)) & self._large_mask
        else:
            index = ((vaddr >> _SMALL_SHIFT)
                     ^ (vm_id * _VM_SPREAD)) & self._small_mask
        entries = self._sets[large].get(index)
        if entries:
            entry = entries.get(key)
            if entry is not None:
                if next(reversed(entries)) != key:
                    del entries[key]
                    entries[key] = entry
                slot = self._hits[large]
                slot.value += 1
                slot.touched = True
                return entry
        slot = self._misses[large]
        slot.value += 1
        slot.touched = True
        return None

    def contains(self, vaddr: int, key: int, vm_id: Optional[int] = None,
                 large: Optional[bool] = None) -> bool:
        """Presence check with no LRU or stats side effects."""
        if vm_id is None:
            vm_id = (key >> 1) & 0xFFFF
            large = bool(key & 1)
        index = self.addressing.set_index(vaddr, vm_id, large)
        entries = self._sets[large].get(index)
        return entries is not None and key in entries

    def insert(self, vaddr: int, key: int, entry: TlbEntry,
               vm_id: Optional[int] = None,
               large: Optional[bool] = None) -> Tuple[int, Optional[int]]:
        """Install a translation after a page walk.

        Returns ``(set_paddr, evicted_key)`` so the MMU can keep cached
        copies of the set coherent and account the eviction.
        """
        if vm_id is None:
            vm_id = (key >> 1) & 0xFFFF
            large = bool(key & 1)
        if large:
            index = ((vaddr >> _LARGE_SHIFT)
                     ^ (vm_id * _VM_SPREAD)) & self._large_mask
            set_paddr = self._large_base + index * _LINE
        else:
            index = ((vaddr >> _SMALL_SHIFT)
                     ^ (vm_id * _VM_SPREAD)) & self._small_mask
            set_paddr = self._small_base + index * _LINE
        sets = self._sets[large]
        entries = sets.get(index)
        if entries is None:
            entries = sets[index] = {}
        evicted: Optional[int] = None
        if key in entries:
            del entries[key]
        elif len(entries) >= self._ways:
            evicted = next(iter(entries))  # LRU is first
            del entries[evicted]
            slot = self._evictions
            slot.value += 1
            slot.touched = True
        entries[key] = entry
        slot = self._fills
        slot.value += 1
        slot.touched = True
        return set_paddr, evicted

    # -- shootdown support -------------------------------------------------

    def invalidate(self, vaddr: int, key: int, vm_id: Optional[int] = None,
                   large: Optional[bool] = None) -> Optional[int]:
        """Drop one translation; returns the set address if it was present."""
        if vm_id is None:
            vm_id = (key >> 1) & 0xFFFF
            large = bool(key & 1)
        index = self.addressing.set_index(vaddr, vm_id, large)
        entries = self._sets[large].get(index)
        if entries and key in entries:
            del entries[key]
            self.stats.inc("shootdowns")
            return self.addressing.set_address(vaddr, vm_id, large)
        return None

    def invalidate_vm(self, vm_id: int) -> List[int]:
        """Drop every translation of one VM (VM teardown).

        Returns the physical address of every 64 B set that lost an
        entry (one occurrence per dropped entry) so the caller can
        invalidate stale cached copies of those sets — without this the
        L2D$/L3D$ keep serving the dead VM's sets.
        """
        vm_bits = pack_context(vm_id, 0) & KEY_VM_FIELD_MASK
        touched: List[int] = []
        for large, sets in enumerate(self._sets):
            base = self._large_base if large else self._small_base
            for index, entries in sets.items():
                doomed = [k for k in entries
                          if k & KEY_VM_FIELD_MASK == vm_bits]
                for k in doomed:
                    del entries[k]
                touched.extend([base + index * _LINE] * len(doomed))
        if touched:
            self.stats.inc("shootdowns", len(touched))
        return touched

    # -- introspection -----------------------------------------------------

    def resident(self) -> Iterator[Tuple[bool, int, int]]:
        """Yield ``(large, set_index, packed_key)`` for every entry."""
        for large, sets in enumerate(self._sets):
            for index, entries in sets.items():
                for key in entries:
                    yield bool(large), index, key

    def set_sizes(self) -> Iterator[Tuple[bool, int, int]]:
        """Yield ``(large, set_index, occupancy)`` per non-empty set."""
        for large, sets in enumerate(self._sets):
            for index, entries in sets.items():
                yield bool(large), index, len(entries)

    # -- reporting ---------------------------------------------------------

    def hit_rate(self) -> float:
        hits = self.stats["hits_small"] + self.stats["hits_large"]
        total = hits + self.stats["misses_small"] + self.stats["misses_large"]
        return hits / total if total else 0.0

    def occupancy(self) -> Dict[str, int]:
        """Resident entry counts per partition."""
        return {
            "small": sum(len(v) for v in self._sets[False].values()),
            "large": sum(len(v) for v in self._sets[True].values()),
        }

    @property
    def reach_bytes(self) -> int:
        """Address space covered when both partitions are full."""
        small_entries = self.config.small_sets * self._ways
        large_entries = self.config.large_sets * self._ways
        return small_entries * 4096 + large_entries * 2 * 1024 * 1024
