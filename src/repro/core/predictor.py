"""Page-size and cache-bypass predictor (paper Sections 2.1.4 and 2.1.5).

One 512-entry table per core; each entry is 2 bits:

* bit 0 — predicted page size (0 = 4 KiB, 1 = 2 MiB), and
* bit 1 — predicted cache bypass (1 = skip the L2D$/L3D$ probes and go
  straight to the POM-TLB DRAM).

The table is indexed with 9 VA bits above the 4 KiB offset.  Both bits
are trained on outcome: a wrong size prediction flips bit 0 (the paper's
"the prediction entry for the index is updated"); the bypass bit is set
when the needed POM-TLB line turned out to be absent from the data
caches and cleared when it was present.

The structure costs 128 bytes of SRAM per core (512 x 2 bits), matching
the paper's overhead claim; the lookup is charged one cycle by the MMU.
"""

from __future__ import annotations

from ..common.config import PredictorConfig
from ..common.stats import StatGroup
from ..obs import events
from ..obs.tracer import NULL_TRACER


class SizeBypassPredictor:
    """Per-core combined page-size + bypass predictor."""

    def __init__(self, config: PredictorConfig, stats: StatGroup) -> None:
        self.config = config
        self.stats = stats
        #: Event tracer; the null object unless Observability attaches one.
        self.trace = NULL_TRACER
        self._mask = config.entries - 1
        self._shift = config.index_shift
        # Saturating counter per entry; >= threshold predicts 2 MiB.
        self._size_max = (1 << config.size_counter_bits) - 1
        self._size_threshold = 1 << (config.size_counter_bits - 1)
        self._size_counters = [0] * config.entries
        self._bypass_bits = [0] * config.entries
        # Counter slots resolved once; this path runs on every L2 TLB
        # miss of the POM schemes.
        self._size_correct = stats.counter("size_correct")
        self._size_wrong = stats.counter("size_wrong")
        self._bypass_correct = stats.counter("bypass_correct")
        self._bypass_wrong = stats.counter("bypass_wrong")

    def _index(self, vaddr: int) -> int:
        return (vaddr >> self._shift) & self._mask

    # -- page size ---------------------------------------------------------

    def predict_size(self, vaddr: int) -> bool:
        """Predict the page size of ``vaddr`` (True = 2 MiB)."""
        idx = (vaddr >> self._shift) & self._mask
        return self._size_counters[idx] >= self._size_threshold

    def record_size(self, vaddr: int, actual_large: bool) -> bool:
        """Train on the actual size; returns whether the prediction was right.

        With 1-bit counters this is the paper's update rule (flip the
        entry on a wrong prediction); multi-bit counters saturate toward
        the observed size, adding hysteresis (paper footnote 2).
        """
        idx = (vaddr >> self._shift) & self._mask
        counter = self._size_counters[idx]
        correct = (counter >= self._size_threshold) == actual_large
        slot = self._size_correct if correct else self._size_wrong
        slot.value += 1
        slot.touched = True
        if self.trace.active:
            self.trace.emit(events.PREDICTOR_TRAIN, kind="size",
                            correct=correct)
        if actual_large:
            if counter < self._size_max:
                self._size_counters[idx] = counter + 1
        elif counter > 0:
            self._size_counters[idx] = counter - 1
        return correct

    # -- cache bypass ----------------------------------------------------------

    def predict_bypass(self, vaddr: int) -> bool:
        """Predict whether to skip the data-cache probes."""
        return bool(self._bypass_bits[(vaddr >> self._shift) & self._mask])

    def record_bypass(self, vaddr: int, line_was_cached: bool) -> bool:
        """Train on whether the POM-TLB line was actually in the caches.

        Bypassing is the right call exactly when the line was *not*
        cached; returns whether the prediction made was right.
        """
        idx = (vaddr >> self._shift) & self._mask
        predicted = bool(self._bypass_bits[idx])
        should_bypass = not line_was_cached
        correct = predicted == should_bypass
        slot = self._bypass_correct if correct else self._bypass_wrong
        slot.value += 1
        slot.touched = True
        if self.trace.active:
            self.trace.emit(events.PREDICTOR_TRAIN, kind="bypass",
                            correct=correct)
        self._bypass_bits[idx] = int(should_bypass)
        return correct

    # -- reporting ----------------------------------------------------------

    def size_accuracy(self) -> float:
        total = self.stats["size_correct"] + self.stats["size_wrong"]
        return self.stats["size_correct"] / total if total else 0.0

    def bypass_accuracy(self) -> float:
        total = self.stats["bypass_correct"] + self.stats["bypass_wrong"]
        return self.stats["bypass_correct"] / total if total else 0.0

    @property
    def storage_bytes(self) -> int:
        """SRAM footprint (paper design: 2 bits/entry = 128 B per core)."""
        bits_per_entry = self.config.size_counter_bits + 1
        return self.config.entries * bits_per_entry // 8
