"""Linear additive performance model (paper Section 3.2/3.3, Eq. 2-5).

The paper anchors every estimate on *measured* baseline numbers: total
cycles ``C_total``, L2 TLB misses ``M_total`` and total miss penalty
``P_total`` come from perf counters on real Skylake hardware, and the
simulator only supplies the scheme's average penalty per miss.  Formally:

    C_ideal        = C_total - P_total                     (Eq. 2)
    P_baseline_avg = P_total / M_total                     (Eq. 3)
    C_scheme       = C_ideal + M_total * P_scheme_avg      (Eq. 4)
    IPC_scheme     = I_total / C_scheme                    (Eq. 5)

We reproduce exactly that: the anchor is a benchmark's Table 2 row
(translation overhead %, baseline cycles per L2 TLB miss), scaled to the
trace by the simulated miss count, and the scheme's simulated penalty
plugs into Eq. 4.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BaselineAnchor:
    """Measured baseline behaviour of one benchmark (one Table 2 column)."""

    #: % of total execution cycles spent in translation after L2 TLB misses
    overhead_pct: float
    #: average penalty cycles per L2 TLB miss
    cycles_per_l2_miss: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.overhead_pct < 100.0:
            raise ValueError("overhead_pct must be in [0, 100)")
        if self.cycles_per_l2_miss < 0:
            raise ValueError("cycles_per_l2_miss must be non-negative")


@dataclass(frozen=True)
class PerformanceEstimate:
    """Every quantity of Eq. 2-5, in trace-scaled cycles."""

    baseline_cycles: float   # C_total
    ideal_cycles: float      # C_ideal
    scheme_cycles: float     # C_scheme
    baseline_penalty: float  # P_total
    scheme_penalty: float    # M_total * P_scheme_avg

    @property
    def speedup(self) -> float:
        """IPC_scheme / IPC_baseline = C_total / C_scheme."""
        if self.scheme_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.scheme_cycles

    @property
    def improvement_percent(self) -> float:
        """Performance improvement in % (the Figure 8 y-axis)."""
        return (self.speedup - 1.0) * 100.0


def estimate(anchor: BaselineAnchor, l2_tlb_misses: int,
             scheme_penalty_cycles: float) -> PerformanceEstimate:
    """Apply Eq. 2-5 over one simulated trace.

    ``l2_tlb_misses`` is the simulated miss count M (the trace-scaled
    M_total); ``scheme_penalty_cycles`` is the simulator's total penalty
    for the scheme over the same trace (M * P_scheme_avg).
    """
    if l2_tlb_misses < 0 or scheme_penalty_cycles < 0:
        raise ValueError("miss count and penalties must be non-negative")
    baseline_penalty = l2_tlb_misses * anchor.cycles_per_l2_miss
    if l2_tlb_misses == 0:
        # No misses to scale by: Eq. 4's scheme term is M * P_avg = 0,
        # so the model says wash regardless of the measured penalty
        # (which cannot be normalised per miss anyway).
        return PerformanceEstimate(
            baseline_cycles=0.0, ideal_cycles=0.0, scheme_cycles=0.0,
            baseline_penalty=0.0, scheme_penalty=scheme_penalty_cycles)
    if baseline_penalty == 0 or anchor.overhead_pct == 0:
        # Degenerate anchor: the baseline pays nothing for translation,
        # so its measured cycles are all execution.  C_ideal is then the
        # anchor's M * P_avg product and Eq. 4 still charges whatever
        # penalty the scheme *adds* — a scheme with extra penalty
        # reports a slowdown rather than hiding behind a wash.
        ideal = baseline_penalty
        return PerformanceEstimate(
            baseline_cycles=ideal,
            ideal_cycles=ideal,
            scheme_cycles=ideal + scheme_penalty_cycles,
            baseline_penalty=0.0, scheme_penalty=scheme_penalty_cycles)
    baseline_cycles = baseline_penalty / (anchor.overhead_pct / 100.0)
    ideal_cycles = baseline_cycles - baseline_penalty          # Eq. 2
    scheme_cycles = ideal_cycles + scheme_penalty_cycles       # Eq. 4
    return PerformanceEstimate(
        baseline_cycles=baseline_cycles,
        ideal_cycles=ideal_cycles,
        scheme_cycles=scheme_cycles,
        baseline_penalty=baseline_penalty,
        scheme_penalty=scheme_penalty_cycles,
    )


def geometric_mean(values) -> float:
    """Geometric mean of speedup-like factors (used for suite summaries)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of nothing")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
