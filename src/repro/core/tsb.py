"""SPARC-style Translation Storage Buffer baseline (paper Section 3.3).

The TSB is a large **software-managed** translation cache in ordinary
(off-chip) memory.  The paper's comparison points, all modelled here:

* every L2 TLB miss takes an **OS trap** before any lookup can start;
* the structure is **direct-mapped**, so it suffers conflict misses the
  4-way POM-TLB avoids;
* entries are **not direct gVA -> hPA translations**: completing one
  translation takes multiple dependent TSB accesses.  We model the two
  halves explicitly — a guest half (gVA -> gPA) and a host half
  (gPA -> hPA) — each direct-mapped over half the capacity;
* TSB entries live in cacheable memory, so lookups go through the data
  caches like any software load (the MMU charges that path).

On a TSB miss the OS performs the nested software walk and refills both
halves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common import addr
from ..common.config import TsbConfig
from ..common.stats import StatGroup

_SPREAD = 0x9E37


class TranslationStorageBuffer:
    """Functional content + entry addressing of the two TSB halves."""

    #: Batch-replay contract (:mod:`repro.core.batch`): resolving a miss
    #: through this structure never touches another core's L1 TLB or L1
    #: data cache (see :class:`repro.core.pom_tlb.PomTlb`).
    L1_PRIVATE = True

    def __init__(self, config: TsbConfig, stats: StatGroup) -> None:
        self.config = config
        self.stats = stats
        self._half_entries = config.num_entries // 2
        self._mask = self._half_entries - 1
        self._guest_base = config.base_address
        self._host_base = config.base_address + self._half_entries * config.entry_bytes
        # index -> (tag, payload); direct-mapped means one resident per index.
        self._guest: Dict[int, Tuple[Tuple[int, int, int, bool], int]] = {}
        self._host: Dict[int, Tuple[Tuple[int, int], int]] = {}
        # Counter slots resolved once; probes run on every L2 TLB miss.
        self._guest_hits = stats.counter("guest_hits")
        self._guest_misses = stats.counter("guest_misses")
        self._host_hits = stats.counter("host_hits")
        self._host_misses = stats.counter("host_misses")

    # -- guest half: gVA -> gPA -------------------------------------------

    def _guest_index(self, vm_id: int, asid: int, vpn: int) -> int:
        return (vpn ^ (vm_id * _SPREAD) ^ (asid * 0x85EB)) & self._mask

    def guest_entry_address(self, vm_id: int, asid: int, vpn: int) -> int:
        index = self._guest_index(vm_id, asid, vpn)
        return self._guest_base + index * self.config.entry_bytes

    def probe_guest(self, vm_id: int, asid: int, vpn: int,
                    large: bool) -> Optional[int]:
        """Guest-half lookup; returns the gPA frame or None."""
        index = (vpn ^ (vm_id * _SPREAD) ^ (asid * 0x85EB)) & self._mask
        resident = self._guest.get(index)
        if resident and resident[0] == (vm_id, asid, vpn, large):
            slot = self._guest_hits
            slot.value += 1
            slot.touched = True
            return resident[1]
        slot = self._guest_misses
        slot.value += 1
        slot.touched = True
        return None

    def fill_guest(self, vm_id: int, asid: int, vpn: int, large: bool,
                   gpa_frame: int) -> None:
        index = self._guest_index(vm_id, asid, vpn)
        if index in self._guest:
            self.stats.inc("guest_conflict_evictions")
        self._guest[index] = ((vm_id, asid, vpn, large), gpa_frame)

    # -- host half: gPA -> hPA ------------------------------------------------

    def _host_index(self, vm_id: int, gpa_vpn: int) -> int:
        return (gpa_vpn ^ (vm_id * _SPREAD)) & self._mask

    def host_entry_address(self, vm_id: int, gpa_vpn: int) -> int:
        index = self._host_index(vm_id, gpa_vpn)
        return self._host_base + index * self.config.entry_bytes

    def probe_host(self, vm_id: int, gpa_vpn: int) -> Optional[int]:
        """Host-half lookup; returns the hPA frame or None."""
        index = (gpa_vpn ^ (vm_id * _SPREAD)) & self._mask
        resident = self._host.get(index)
        if resident and resident[0] == (vm_id, gpa_vpn):
            slot = self._host_hits
            slot.value += 1
            slot.touched = True
            return resident[1]
        slot = self._host_misses
        slot.value += 1
        slot.touched = True
        return None

    def fill_host(self, vm_id: int, gpa_vpn: int, hpa_frame: int) -> None:
        index = self._host_index(vm_id, gpa_vpn)
        if index in self._host:
            self.stats.inc("host_conflict_evictions")
        self._host[index] = ((vm_id, gpa_vpn), hpa_frame)

    # -- shootdown & reporting ------------------------------------------------

    def invalidate_guest(self, vm_id: int, asid: int, vpn: int,
                         large: bool) -> Optional[int]:
        """Drop one guest-half entry; returns its address if present."""
        index = self._guest_index(vm_id, asid, vpn)
        resident = self._guest.get(index)
        if resident and resident[0] == (vm_id, asid, vpn, large):
            del self._guest[index]
            return self._guest_base + index * self.config.entry_bytes
        return None

    def invalidate_vm(self, vm_id: int) -> List[int]:
        """Drop every entry of one VM from both halves (VM teardown).

        Returns the entry addresses dropped so the caller can drop the
        cached copies of those lines — TSB entries live in cacheable
        memory, so the data caches may still serve them otherwise.
        """
        touched: List[int] = []
        entry_bytes = self.config.entry_bytes
        for index in [i for i, (tag, _payload) in self._guest.items()
                      if tag[0] == vm_id]:
            del self._guest[index]
            touched.append(self._guest_base + index * entry_bytes)
        for index in [i for i, (tag, _payload) in self._host.items()
                      if tag[0] == vm_id]:
            del self._host[index]
            touched.append(self._host_base + index * entry_bytes)
        return touched

    def contains_guest(self, vm_id: int, asid: int, vpn: int,
                       large: bool) -> bool:
        """Guest-half presence check with no stats side effects."""
        resident = self._guest.get(self._guest_index(vm_id, asid, vpn))
        return bool(resident) and resident[0] == (vm_id, asid, vpn, large)

    def contains_host(self, vm_id: int, gpa_vpn: int) -> bool:
        """Host-half presence check with no stats side effects."""
        resident = self._host.get(self._host_index(vm_id, gpa_vpn))
        return bool(resident) and resident[0] == (vm_id, gpa_vpn)

    def resident(self) -> Dict[str, List[Tuple]]:
        """Resident tags per half (consistency checks and tests)."""
        return {"guest": [tag for tag, _p in self._guest.values()],
                "host": [tag for tag, _p in self._host.values()]}

    def occupancy(self) -> Dict[str, int]:
        return {"guest": len(self._guest), "host": len(self._host)}

    def full_translation_hit_rate(self) -> float:
        """Fraction of guest-half probes that hit (first dependent access)."""
        hits = self.stats["guest_hits"]
        total = hits + self.stats["guest_misses"]
        return hits / total if total else 0.0

    @staticmethod
    def gpa_vpn(gpa: int) -> int:
        """Host-half tags use 4 KiB granularity of the guest-physical space."""
        return gpa >> addr.SMALL_PAGE_SHIFT
