"""Translation schemes: the POM-TLB flow and the paper's comparison points.

Every scheme shares the front end of a Skylake-like MMU — per-core split
L1 TLBs (4 KiB / 2 MiB) and, except for Shared_L2, a private unified L2
TLB.  They differ in what happens after the last private TLB misses:

* :class:`BaselineWalkScheme` — nested (or native) page walk immediately.
  This is the *simulated* baseline used by the Figure 2/3 characterisation.
* :class:`PomTlbScheme` — the paper's contribution (Figure 7 flow):
  size/bypass prediction, probing the L2D$/L3D$ for the cached POM-TLB
  set, stacked-DRAM access, second-size retry, walk only on a true
  POM-TLB miss.
* :class:`SharedL2Scheme` — private L2 TLBs replaced by one shared SRAM
  TLB with aggregate capacity (Bhattacharjee et al. [9]).
* :class:`TsbScheme` — SPARC-style software-managed TSB: trap + two
  dependent direct-mapped lookups in cacheable memory.

Penalty accounting matches the paper's measurement: ``penalty`` counts
the cycles spent **after the translation misses the (private) L2 TLB**
— plus, for Shared_L2, the extra hit latency of the bigger shared array
relative to a private L2 TLB, since that cost would not exist in the
baseline.

Hot-path structure: :meth:`TranslationScheme.translate_packed` is the
per-reference entry point.  It takes a pre-packed software context
(:func:`repro.tlb.entry.pack_context`, interned per stream by
``Machine.run``), builds the packed key with two shift-ors, and on the
L1-hit path (>95 % of references) touches no stats strings, allocates
nothing, and — when tracing is disabled — never consults the tracer
beyond one ``enabled`` check.  The traced variant
(:meth:`_translate_traced`) keeps the seed-era event sequence and, by
the engine-equivalence test, the exact same counters.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from ..cache.hierarchy import CacheHierarchy
from ..common import addr
from ..common.config import SharedL2Config, SystemConfig, TsbConfig
from ..common.stats import StatRegistry
from ..obs import events
from ..obs.tracer import NULL_TRACER
from ..tlb.entry import TlbEntry, pack_context, pack_key
from ..tlb.shared_l2 import SharedLastLevelTlb
from ..tlb.tlb import SramTlb
from ..vmm.vm import ResolvedPage
from .pom_tlb import PomTlb
from .skewed_pom import SkewedPomTlb
from .predictor import SizeBypassPredictor
from .tsb import TranslationStorageBuffer
from .walkers import WalkerPool

_SMALL_SHIFT = addr.SMALL_PAGE_SHIFT  # 12
_LARGE_SHIFT = addr.LARGE_PAGE_SHIFT  # 21
_SMALL_MASK = addr.SMALL_PAGE_SIZE - 1
_LARGE_MASK = addr.LARGE_PAGE_SIZE - 1


class TranslationResult(NamedTuple):
    """Outcome of translating one reference."""

    cycles: int    # full translation latency for this reference
    l2_miss: bool  # missed the last private TLB level
    penalty: int   # cycles attributed past the L2-TLB-miss point


def _key_for(vm_id: int, asid: int, vaddr: int, large: bool) -> int:
    """Packed key of the translation covering ``vaddr`` (cold paths)."""
    return pack_key(vm_id, asid, vaddr >> addr.page_shift(large), large)


class _CoreTlbs:
    """Private L1 (split) + L2 (unified) TLBs of one core."""

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 core: int) -> None:
        mmu = config.mmu
        self.l1_small = SramTlb(mmu.l1_small, stats.group(f"core{core}.l1_tlb_4k"))
        self.l1_large = SramTlb(mmu.l1_large, stats.group(f"core{core}.l1_tlb_2m"))
        self.l2 = SramTlb(mmu.l2_unified, stats.group(f"core{core}.l2_tlb"))
        self.l1_latency = mmu.l1_small.latency_cycles
        self.l2_latency = mmu.l2_unified.latency_cycles
        self.l2_miss_overhead = mmu.l2_unified.miss_penalty_cycles
        # Hit outcomes are constants of the configuration; the fast path
        # returns these instead of allocating a NamedTuple per hit.
        self.l1_hit_result = TranslationResult(self.l1_latency, False, 0)
        self.l2_hit_result = TranslationResult(
            self.l1_latency + self.l2_latency, False, 0)

    def l1(self, large: bool) -> SramTlb:
        return self.l1_large if large else self.l1_small


class TranslationScheme:
    """Base class: L1/L2 front end + template for the miss path."""

    name = "abstract"

    #: Batch-replay contract (:mod:`repro.core.batch`): the packed
    #: L1-probe prefix of ``translate_packed`` is this base class's
    #: implementation, so the batched engine may resolve L1 hits inline.
    #: A subclass that customizes the L1 front end must clear this.
    batch_l1_inline = True
    #: Same contract for the private-L2 probe prefix (hit counting, MRU
    #: refresh, L1 insert).  Cleared by schemes that replace the private
    #: L2 with different bookkeeping (shared_l2's shadow TLBs).
    batch_l2_inline = True

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 hierarchy: CacheHierarchy, walkers: WalkerPool) -> None:
        self.config = config
        self.stats = stats
        self.hierarchy = hierarchy
        self.walkers = walkers
        self.cores: List[_CoreTlbs] = [
            _CoreTlbs(config, stats, core) for core in range(config.num_cores)]
        self.mmu_stats = stats.group("mmu")
        self._l2_misses = self.mmu_stats.counter("l2_tlb_misses")
        self._penalty_cycles = self.mmu_stats.counter("penalty_cycles")
        self._page_walks = self.mmu_stats.counter("page_walks")
        self._page_walk_cycles = self.mmu_stats.counter("page_walk_cycles")
        #: Event tracer; the null object unless Observability attaches one.
        self.trace = NULL_TRACER

    # -- main entry point ---------------------------------------------------

    def translate(self, core: int, vm_id: int, asid: int, vaddr: int,
                  page: ResolvedPage) -> TranslationResult:
        """Translate one reference; ``page`` is the functional truth."""
        return self.translate_packed(core, pack_context(vm_id, asid),
                                     vaddr, page)

    def translate_packed(self, core: int, ctx: int, vaddr: int,
                         page: ResolvedPage) -> TranslationResult:
        """Translate one reference given a pre-packed (vm, asid) context."""
        if self.trace.enabled:
            return self._translate_traced(core, ctx, vaddr, page)
        tlbs = self.cores[core]
        if page.large:
            key = ((vaddr >> _LARGE_SHIFT) << 33) | ctx | 1
            l1 = tlbs.l1_large
            shift = _LARGE_SHIFT
        else:
            key = ((vaddr >> _SMALL_SHIFT) << 33) | ctx
            l1 = tlbs.l1_small
            shift = _SMALL_SHIFT
        if l1.lookup(key) is not None:
            return tlbs.l1_hit_result
        l1_idx = l1.probe_index
        l2 = tlbs.l2
        if l2.lookup(key) is not None:
            l1.insert_at(l1_idx, key, TlbEntry(page.host_frame >> shift))
            return tlbs.l2_hit_result
        l2_idx = l2.probe_index
        slot = self._l2_misses
        slot.value += 1
        slot.touched = True
        vm_id = (ctx >> 1) & 0xFFFF
        asid = (ctx >> 17) & 0xFFFF
        penalty = self._resolve_miss(core, vm_id, asid, vaddr, page)
        entry = TlbEntry(page.host_frame >> shift)
        l2.insert_at(l2_idx, key, entry)
        l1.insert_at(l1_idx, key, entry)
        slot = self._penalty_cycles
        slot.value += penalty
        slot.touched = True
        return TranslationResult(tlbs.l1_latency + tlbs.l2_latency + penalty,
                                 True, penalty)

    def resolve_packed(self, core: int, ctx: int, vaddr: int,
                       page: ResolvedPage, key: int, l1_idx: int,
                       l2_idx: int) -> Tuple[int, int]:
        """Miss tail of :meth:`translate_packed` for the batched engine.

        The caller (:mod:`repro.core.batch`) has already probed the L1
        and private L2 TLBs through their batch views and tallied both
        miss counters, so this picks up at the L2-miss bookkeeping with
        the packed ``key`` and both set indices precomputed — no
        re-hash, no re-probe.  Returns ``(total_cycles, penalty)``, the
        :class:`TranslationResult` fields the replay loop consumes.
        Only valid on schemes with ``batch_l2_inline`` set.
        """
        slot = self._l2_misses
        slot.value += 1
        slot.touched = True
        penalty = self._resolve_miss(core, (ctx >> 1) & 0xFFFF,
                                     (ctx >> 17) & 0xFFFF, vaddr, page)
        tlbs = self.cores[core]
        if key & 1:
            entry = TlbEntry(page.host_frame >> _LARGE_SHIFT)
            l1 = tlbs.l1_large
        else:
            entry = TlbEntry(page.host_frame >> _SMALL_SHIFT)
            l1 = tlbs.l1_small
        tlbs.l2.insert_at(l2_idx, key, entry)
        l1.insert_at(l1_idx, key, entry)
        slot = self._penalty_cycles
        slot.value += penalty
        slot.touched = True
        return tlbs.l1_latency + tlbs.l2_latency + penalty, penalty

    def _translate_traced(self, core: int, ctx: int, vaddr: int,
                          page: ResolvedPage) -> TranslationResult:
        """Seed-era translate flow with tracer events (counters identical)."""
        tlbs = self.cores[core]
        tr = self.trace
        vm_id = (ctx >> 1) & 0xFFFF
        asid = (ctx >> 17) & 0xFFFF
        tr.begin(core=core, vm=vm_id, asid=asid, vaddr=vaddr,
                 scheme=self.name)
        key = _key_for(vm_id, asid, vaddr, page.large)
        cycles = tlbs.l1_latency
        l1 = tlbs.l1(page.large)
        if l1.lookup(key) is not None:
            if tr.active:
                tr.emit(events.TLB_PROBE, cycles=cycles, level="l1", hit=True)
                tr.end(cycles=cycles, l2_miss=False, penalty=0)
            return TranslationResult(cycles, False, 0)
        l1_idx = l1.probe_index
        if tr.active:
            tr.emit(events.TLB_PROBE, cycles=tlbs.l1_latency, level="l1",
                    hit=False)
        cycles += tlbs.l2_latency
        if tlbs.l2.lookup(key) is not None:
            l1.insert_at(l1_idx, key, TlbEntry(page.host_frame >>
                                               addr.page_shift(page.large)))
            if tr.active:
                tr.emit(events.TLB_PROBE, cycles=tlbs.l2_latency, level="l2",
                        hit=True)
                tr.end(cycles=cycles, l2_miss=False, penalty=0)
            return TranslationResult(cycles, False, 0)
        l2_idx = tlbs.l2.probe_index
        if tr.active:
            tr.emit(events.TLB_PROBE, cycles=tlbs.l2_latency, level="l2",
                    hit=False)
        self._l2_misses.add()
        penalty = self._resolve_miss(core, vm_id, asid, vaddr, page)
        entry = TlbEntry(page.host_frame >> addr.page_shift(page.large))
        tlbs.l2.insert_at(l2_idx, key, entry)
        l1.insert_at(l1_idx, key, entry)
        self._penalty_cycles.add(penalty)
        if tr.active:
            tr.end(cycles=cycles + penalty, l2_miss=True, penalty=penalty)
        return TranslationResult(cycles + penalty, True, penalty)

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:
        """Scheme-specific resolution; returns cycles spent."""
        raise NotImplementedError

    # -- shootdown --------------------------------------------------------------

    #: IPI delivery + lock round-trip that serialises every shootdown
    #: (the paper's consistency discussion; Amit [35] attacks this cost).
    SHOOTDOWN_BASE_CYCLES = 100
    #: per-core cost of the local TLB invalidate instruction
    SHOOTDOWN_PER_CORE_CYCLES = 4

    def shootdown(self, vm_id: int, asid: int, vaddr: int,
                  large: "Optional[bool]" = None) -> int:
        """Invalidate one translation everywhere (mostly-inclusive model).

        Returns the modelled cost in cycles: the IPI/lock round-trip,
        one invalidate per core, plus whatever the scheme's backend
        structure costs (e.g. a stacked-DRAM set write for the POM-TLB).

        Both page sizes are dropped from the private TLBs: a THP
        promotion/demotion leaves the other size's translation stale,
        and every backend already drops both — the front end must agree
        or a dead translation survives privately (mostly-inclusive
        consistency would be silently violated).  ``large`` only names
        the page's current size for cost purposes; ``None`` (page
        already unmapped, size unknowable) is equivalent — the
        invalidation never narrows to one size.
        """
        del large  # the invalidation is size-agnostic; see docstring
        cycles = (self.SHOOTDOWN_BASE_CYCLES
                  + self.SHOOTDOWN_PER_CORE_CYCLES * len(self.cores))
        for size_large in (False, True):
            key = _key_for(vm_id, asid, vaddr, size_large)
            for tlbs in self.cores:
                tlbs.l1(size_large).invalidate_page(key)
                tlbs.l2.invalidate_page(key)
        self.walkers.invalidate(vm_id, asid, vaddr)
        cycles += self._shootdown_backend(vm_id, asid, vaddr) or 0
        self.mmu_stats.inc("shootdowns")
        self.mmu_stats.inc("shootdown_cycles", cycles)
        return cycles

    def _shootdown_backend(self, vm_id: int, asid: int, vaddr: int) -> int:
        """Scheme-specific invalidation (POM set, TSB entry, shared TLB).

        Returns extra cycles the backend structure costs; 0 by default.
        """
        return 0

    def invalidate_vm(self, vm_id: int) -> int:
        """Drop every translation of one VM everywhere (VM teardown).

        Empties the private L1/L2 SRAM TLBs and the paging-structure
        caches, then lets the scheme's backend drop its own entries —
        including any data-cache copies of the backing structure's
        lines, which would otherwise keep serving the dead VM's sets.
        Returns the number of backend entries dropped.
        """
        for tlbs in self.cores:
            tlbs.l1_small.invalidate_vm(vm_id)
            tlbs.l1_large.invalidate_vm(vm_id)
            tlbs.l2.invalidate_vm(vm_id)
        self.walkers.invalidate_vm(vm_id)
        return self._invalidate_vm_backend(vm_id)

    def _invalidate_vm_backend(self, vm_id: int) -> int:
        """Scheme-specific VM-level invalidation; entries dropped."""
        return 0

    def _walk(self, core: int, vm_id: int, asid: int, vaddr: int) -> int:
        cycles = self.walkers.walk(core, vm_id, asid, vaddr).cycles
        slot = self._page_walks
        slot.value += 1
        slot.touched = True
        slot = self._page_walk_cycles
        slot.value += cycles
        slot.touched = True
        return cycles


class BaselineWalkScheme(TranslationScheme):
    """L2 TLB miss -> page walk, nothing in between (simulated baseline).

    The fixed L2-TLB miss overhead (Table 1: 17 cycles of MMU dispatch
    machinery) is charged here — it is part of what the baseline perf
    counters measure.  The POM-TLB flow *replaces* that machinery with
    its predictor + probe path, so the other schemes charge their own
    path instead.
    """

    name = "baseline"

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:
        return (self.cores[core].l2_miss_overhead
                + self._walk(core, vm_id, asid, vaddr))


class _PomFlowStats:
    """Resolve-once handles over the shared ``pom_flow`` stat group."""

    def __init__(self, flow_stats) -> None:
        self.group = flow_stats
        self.resolved = (flow_stats.counter("resolved_first_try"),
                         flow_stats.counter("resolved_second_try"))
        self.resolved_by_walk = flow_stats.counter("resolved_by_walk")
        self.prefetches = flow_stats.counter("prefetches")
        self._sources: Dict[str, object] = {}

    def count_source(self, source: str) -> None:
        slot = self._sources.get(source)
        if slot is None:
            slot = self._sources[source] = self.group.counter(
                f"set_from_{source}")
        slot.value += 1
        slot.touched = True


class PomTlbScheme(TranslationScheme):
    """The paper's design: the Figure 7 access flow."""

    name = "pom"

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 hierarchy: CacheHierarchy, walkers: WalkerPool) -> None:
        super().__init__(config, stats, hierarchy, walkers)
        self.pom = PomTlb(config, stats)
        self.predictors: List[SizeBypassPredictor] = [
            SizeBypassPredictor(config.predictor, stats.group(f"core{core}.predictor"))
            for core in range(config.num_cores)]
        self.flow_stats = stats.group("pom_flow")
        self._flow = _PomFlowStats(self.flow_stats)
        self._cache_entries = config.cache_tlb_entries
        self._prefetch = config.tlb_prefetch
        # The first two conjuncts of the bypass decision are run-constant.
        self._bypass_pred = bool(self._cache_entries
                                 and config.predictor.bypass_enabled)

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:
        predictor = self.predictors[core]
        pom = self.pom
        hierarchy = self.hierarchy
        tr = self.trace
        cycles = 1  # predictor lookup
        predicted_large = predictor.predict_size(vaddr)
        bypass = self._bypass_pred and predictor.predict_bypass(vaddr)
        if tr.active:
            tr.emit(events.PREDICTOR, cycles=1,
                    predicted_large=predicted_large, bypass=bool(bypass))
        page_large = page.large
        true_addr = pom.set_address(vaddr, vm_id, page_large)
        line_was_cached = (self._cache_entries
                           and hierarchy.tlb_line_cached(core, true_addr))

        ctx = (asid << 17) | (vm_id << 1)
        entry: Optional[TlbEntry] = None
        # Attempt loop unrolled: first probe at the predicted size, then
        # the other size.  Exactly one attempt matches ``page_large``, so
        # its set address is ``true_addr`` from above — no re-hash.
        attempt = 0
        large = predicted_large
        while True:
            set_addr = (true_addr if large == page_large
                        else pom.set_address(vaddr, vm_id, large))
            cycles += self._fetch_set(core, set_addr, bypass)
            if large:
                key = ((vaddr >> _LARGE_SHIFT) << 33) | ctx | 1
            else:
                key = ((vaddr >> _SMALL_SHIFT) << 33) | ctx
            entry = pom.probe(vaddr, key, vm_id, large)
            if tr.active:
                tr.emit(events.POM_PROBE, attempt=attempt, large=large,
                        hit=entry is not None)
            if entry is not None:
                slot = self._flow.resolved[attempt]
                slot.value += 1
                slot.touched = True
                break
            if attempt:
                break
            attempt = 1
            large = not predicted_large
        if entry is None:
            cycles += self._walk(core, vm_id, asid, vaddr)
            self._flow.resolved_by_walk.add()
            if page_large:
                key = ((vaddr >> _LARGE_SHIFT) << 33) | ctx | 1
                shift = _LARGE_SHIFT
            else:
                key = ((vaddr >> _SMALL_SHIFT) << 33) | ctx
                shift = _SMALL_SHIFT
            set_paddr, _evicted = pom.insert(
                vaddr, key, TlbEntry(page.host_frame >> shift),
                vm_id, page_large)
            # The set's cached copies are stale now; refresh the
            # requester's path, drop everyone else's.
            hierarchy.invalidate_tlb_line(set_paddr)
            if self._cache_entries:
                hierarchy.tlb_line_fill(core, set_paddr)
        predictor.record_size(vaddr, page_large)
        if self._cache_entries and entry is not None:
            # Train the bypass bit only on POM-resolved misses: a
            # compulsory miss says nothing about whether probing the
            # caches is worthwhile (the line did not exist yet).
            predictor.record_bypass(vaddr, line_was_cached)
        if self._prefetch and self._cache_entries:
            self._prefetch_next(core, vm_id, vaddr, page.large)
        return cycles

    def _prefetch_next(self, core: int, vm_id: int, vaddr: int,
                       large: bool) -> None:
        """Prefetch the next page's POM-TLB set into the data caches.

        The Related-Work extension: a sequential next-page prefetcher in
        front of the POM-TLB.  The fetch happens off the critical path
        (no latency charged to this translation) but still exercises the
        stacked-DRAM bank state.
        """
        next_vaddr = vaddr + addr.page_size(large)
        set_addr = self.pom.set_address(next_vaddr, vm_id, large)
        if self.hierarchy.tlb_line_cached(core, set_addr):
            return
        self.pom.dram_access(set_addr)
        self.hierarchy.tlb_line_fill(core, set_addr)
        self._flow.prefetches.add()

    def _fetch_set(self, core: int, set_addr: int, bypass: bool) -> int:
        """Bring one POM-TLB set to the MMU; returns cycles."""
        if not self._cache_entries or bypass:
            cycles = self.pom.dram_access(set_addr)
            if bypass:
                # Bypass skips the lookup latency, not the fill: the
                # fetched set is still installed like any memory read.
                self.hierarchy.tlb_line_fill(core, set_addr)
            source = "dram_bypass" if bypass else "dram_uncached"
        else:
            cycles, level = self.hierarchy.tlb_line_probe(core, set_addr)
            if level is None:
                cycles += self.pom.dram_access(set_addr)
                self.hierarchy.tlb_line_fill(core, set_addr)
                source = "dram"
            else:
                source = level
        self._flow.count_source(source)
        if self.trace.active:
            self.trace.emit(events.POM_FETCH, cycles=cycles, source=source)
        return cycles

    def _shootdown_backend(self, vm_id: int, asid: int, vaddr: int) -> int:
        cycles = 0
        for large in (False, True):
            k = _key_for(vm_id, asid, vaddr, large)
            set_paddr = self.pom.invalidate(vaddr, k, vm_id, large)
            if set_paddr is not None:
                self.hierarchy.invalidate_tlb_line(set_paddr)
                cycles += self.pom.dram_access(set_paddr)  # set write-back
        return cycles

    def _invalidate_vm_backend(self, vm_id: int) -> int:
        dropped = self.pom.invalidate_vm(vm_id)
        for set_paddr in dropped:
            self.hierarchy.invalidate_tlb_line(set_paddr)
        return len(dropped)


class SharedL2Scheme(TranslationScheme):
    """Shared last-level SRAM TLB replacing the private L2 TLBs.

    The Eq. 4 anchor scales with the *baseline's* L2 TLB miss count, so
    each core keeps a zero-latency **shadow** copy of the private L2 TLB
    it replaced: the shadow's misses are what ``l2_tlb_misses`` reports,
    while penalties reflect the shared structure's real behaviour (extra
    hit latency on every L1 miss, walks on shared misses).
    """

    name = "shared_l2"

    #: The private-L2 probe is replaced by shadow + shared-array
    #: bookkeeping, so batched replay must take the scalar path on every
    #: L1 miss (L1 hits still share the base front end).
    batch_l2_inline = False

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 hierarchy: CacheHierarchy, walkers: WalkerPool,
                 shared_config: Optional[SharedL2Config] = None) -> None:
        super().__init__(config, stats, hierarchy, walkers)
        self.shared = SharedLastLevelTlb(shared_config or SharedL2Config(),
                                         config.num_cores,
                                         stats.group("shared_l2_tlb"))
        self._shadow: List[SramTlb] = [
            SramTlb(config.mmu.l2_unified,
                    stats.group(f"core{c}.shadow_l2_tlb"))
            for c in range(config.num_cores)]
        # The private-L2 latency the shared array is compared against:
        # its extra cost is penalty the baseline would not pay.
        self._baseline_l2_latency = config.mmu.l2_unified.latency_cycles
        self._extra_hit_cost = max(
            0, self.shared.latency - self._baseline_l2_latency)
        # The wrapper's lookup/insert_at are pure forwarders; probe the
        # underlying SRAM array directly on the per-reference path.
        self._shared_tlb = self.shared._tlb
        self._shared_latency = self.shared.latency

    def translate_packed(self, core: int, ctx: int, vaddr: int,
                         page: ResolvedPage) -> TranslationResult:
        if self.trace.enabled:
            return self._translate_traced(core, ctx, vaddr, page)
        tlbs = self.cores[core]
        if page.large:
            key = ((vaddr >> _LARGE_SHIFT) << 33) | ctx | 1
            l1 = tlbs.l1_large
            shift = _LARGE_SHIFT
        else:
            key = ((vaddr >> _SMALL_SHIFT) << 33) | ctx
            l1 = tlbs.l1_small
            shift = _SMALL_SHIFT
        if l1.lookup(key) is not None:
            return tlbs.l1_hit_result
        l1_idx = l1.probe_index
        entry_template = TlbEntry(page.host_frame >> shift)
        # Shadow bookkeeping: would the baseline's private L2 have missed?
        shadow = self._shadow[core]
        shadow_miss = shadow.lookup(key) is None
        if shadow_miss:
            shadow.insert_at(shadow.probe_index, key, entry_template)
            slot = self._l2_misses
            slot.value += 1
            slot.touched = True
        shared = self._shared_tlb
        cycles = tlbs.l1_latency + self._shared_latency
        extra_hit_cost = self._extra_hit_cost
        entry = shared.lookup(key)
        if entry is not None:
            l1.insert_at(l1_idx, key, entry)
            slot = self._penalty_cycles
            slot.value += extra_hit_cost
            slot.touched = True
            return TranslationResult(cycles, shadow_miss, extra_hit_cost)
        shared_idx = shared.probe_index
        penalty = extra_hit_cost + tlbs.l2_miss_overhead
        vm_id = (ctx >> 1) & 0xFFFF
        asid = (ctx >> 17) & 0xFFFF
        penalty += self._walk(core, vm_id, asid, vaddr)  # dispatch as baseline
        shared.insert_at(shared_idx, key, entry_template)
        l1.insert_at(l1_idx, key, entry_template)
        slot = self._penalty_cycles
        slot.value += penalty
        slot.touched = True
        return TranslationResult(cycles + penalty, shadow_miss, penalty)

    def _translate_traced(self, core: int, ctx: int, vaddr: int,
                          page: ResolvedPage) -> TranslationResult:
        tlbs = self.cores[core]
        tr = self.trace
        vm_id = (ctx >> 1) & 0xFFFF
        asid = (ctx >> 17) & 0xFFFF
        tr.begin(core=core, vm=vm_id, asid=asid, vaddr=vaddr,
                 scheme=self.name)
        key = _key_for(vm_id, asid, vaddr, page.large)
        cycles = tlbs.l1_latency
        l1 = tlbs.l1(page.large)
        if l1.lookup(key) is not None:
            if tr.active:
                tr.emit(events.TLB_PROBE, cycles=cycles, level="l1", hit=True)
                tr.end(cycles=cycles, l2_miss=False, penalty=0)
            return TranslationResult(cycles, False, 0)
        l1_idx = l1.probe_index
        if tr.active:
            tr.emit(events.TLB_PROBE, cycles=tlbs.l1_latency, level="l1",
                    hit=False)
        entry_template = TlbEntry(page.host_frame >> addr.page_shift(page.large))
        shadow = self._shadow[core]
        shadow_miss = shadow.lookup(key) is None
        if shadow_miss:
            shadow.insert_at(shadow.probe_index, key, entry_template)
            self._l2_misses.add()
        cycles += self.shared.latency
        extra_hit_cost = self._extra_hit_cost
        entry = self.shared.lookup(key)
        if tr.active:
            tr.emit(events.TLB_PROBE, cycles=self.shared.latency,
                    level="shared_l2", hit=entry is not None)
        if entry is not None:
            l1.insert_at(l1_idx, key, entry)
            self._penalty_cycles.add(extra_hit_cost)
            if tr.active:
                tr.end(cycles=cycles, l2_miss=shadow_miss,
                       penalty=extra_hit_cost)
            return TranslationResult(cycles, shadow_miss, extra_hit_cost)
        shared_idx = self.shared.probe_index
        penalty = extra_hit_cost + tlbs.l2_miss_overhead
        penalty += self._walk(core, vm_id, asid, vaddr)  # dispatch as baseline
        self.shared.insert_at(shared_idx, key, entry_template)
        l1.insert_at(l1_idx, key, entry_template)
        self._penalty_cycles.add(penalty)
        if tr.active:
            tr.end(cycles=cycles + penalty, l2_miss=shadow_miss,
                   penalty=penalty)
        return TranslationResult(cycles + penalty, shadow_miss, penalty)

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:  # pragma: no cover
        raise AssertionError("SharedL2Scheme overrides translate_packed()")

    def _shootdown_backend(self, vm_id: int, asid: int, vaddr: int) -> int:
        for large in (False, True):
            k = _key_for(vm_id, asid, vaddr, large)
            self.shared.invalidate_page(k)
            for shadow in self._shadow:
                shadow.invalidate_page(k)
        return self.shared.latency  # one shared-array invalidate op

    def _invalidate_vm_backend(self, vm_id: int) -> int:
        dropped = self.shared.invalidate_vm(vm_id)
        for shadow in self._shadow:
            shadow.invalidate_vm(vm_id)
        return dropped


class TsbScheme(TranslationScheme):
    """Software-managed TSB: trap + two dependent memory lookups."""

    name = "tsb"

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 hierarchy: CacheHierarchy, walkers: WalkerPool,
                 tsb_config: Optional[TsbConfig] = None) -> None:
        super().__init__(config, stats, hierarchy, walkers)
        self.tsb_config = tsb_config or TsbConfig()
        self.tsb = TranslationStorageBuffer(self.tsb_config, stats.group("tsb"))

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:
        cfg = self.tsb_config
        tsb = self.tsb
        hierarchy = self.hierarchy
        tr = self.trace
        cycles = cfg.trap_cycles
        large = page.large
        if large:
            vpn = vaddr >> _LARGE_SHIFT
            gpa_addr = page.guest_frame | (vaddr & _LARGE_MASK)
        else:
            vpn = vaddr >> _SMALL_SHIFT
            gpa_addr = page.guest_frame | (vaddr & _SMALL_MASK)
        gpa_vpn = gpa_addr >> _SMALL_SHIFT  # TSB.gpa_vpn inline
        host_entry = tsb.host_entry_address(vm_id, gpa_vpn)
        # First dependent access: guest half (gVA -> gPA).
        guest_entry = tsb.guest_entry_address(vm_id, asid, vpn)
        guest_cycles = hierarchy.data_access(core, guest_entry)
        cycles += guest_cycles
        gpa_frame = tsb.probe_guest(vm_id, asid, vpn, large)
        if tr.active:
            tr.emit(events.TSB_PROBE, cycles=guest_cycles, half="guest",
                    hit=gpa_frame is not None)
        resolved = False
        if gpa_frame is not None:
            # Second dependent access: host half (gPA -> hPA).
            host_cycles = hierarchy.data_access(core, host_entry)
            cycles += host_cycles
            resolved = tsb.probe_host(vm_id, gpa_vpn) is not None
            if tr.active:
                tr.emit(events.TSB_PROBE, cycles=host_cycles, half="host",
                        hit=resolved)
        if not resolved:
            # Software page walk + TSB refill (stores to both halves).
            cycles += self._walk(core, vm_id, asid, vaddr)
            tsb.fill_guest(vm_id, asid, vpn, large, page.guest_frame)
            hpa_addr = page.host_frame + (gpa_addr - page.guest_frame)
            tsb.fill_host(vm_id, gpa_vpn, hpa_addr & ~_SMALL_MASK)
            cycles += hierarchy.data_access(core, guest_entry, is_write=True)
            cycles += hierarchy.data_access(core, host_entry, is_write=True)
        return cycles

    def _shootdown_backend(self, vm_id: int, asid: int, vaddr: int) -> int:
        cycles = 0
        for large in (False, True):
            vpn = vaddr >> addr.page_shift(large)
            entry_addr = self.tsb.invalidate_guest(vm_id, asid, vpn, large)
            if entry_addr is not None:
                self.hierarchy.invalidate_line(entry_addr)
                cycles += self.hierarchy.data_access(0, entry_addr,
                                                     is_write=True)
                # The modelled write-back of the invalid entry allocates
                # the line again; drop it so no cache retains the dead
                # entry's line (the invalidate_vm contract — stale-line
                # invariant).  The cost above is unchanged: the write
                # always went to DRAM.
                self.hierarchy.invalidate_line(entry_addr)
        return cycles

    def _invalidate_vm_backend(self, vm_id: int) -> int:
        # TSB entries are ordinary *data* lines in the caches, so the
        # dead entries' lines are dropped everywhere, not just L2/L3.
        dropped = self.tsb.invalidate_vm(vm_id)
        for entry_addr in dropped:
            self.hierarchy.invalidate_line(entry_addr)
        return len(dropped)


class SkewedPomScheme(TranslationScheme):
    """POM-TLB with the unified skew-associative organisation.

    Footnote 1 of the paper, implemented: one table for both page sizes,
    per-way hash functions.  The flow mirrors :class:`PomTlbScheme`, but
    because each way's candidate slot lives in a different 64 B line,
    the MMU fetches candidate lines way by way until it finds the entry
    — the serialization cost the partitioned design avoids.
    """

    name = "pom_skewed"

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 hierarchy: CacheHierarchy, walkers: WalkerPool) -> None:
        super().__init__(config, stats, hierarchy, walkers)
        self.pom = SkewedPomTlb(config, stats)
        self.predictors: List[SizeBypassPredictor] = [
            SizeBypassPredictor(config.predictor,
                                stats.group(f"core{core}.predictor"))
            for core in range(config.num_cores)]
        self.flow_stats = stats.group("pom_flow")
        self._flow = _PomFlowStats(self.flow_stats)
        self._cache_entries = config.cache_tlb_entries

    def _resolve_miss(self, core: int, vm_id: int, asid: int, vaddr: int,
                      page: ResolvedPage) -> int:
        predictor = self.predictors[core]
        pom = self.pom
        hierarchy = self.hierarchy
        tr = self.trace
        cycles = 1  # predictor lookup
        predicted_large = predictor.predict_size(vaddr)
        bypass = (self._cache_entries
                  and self.config.predictor.bypass_enabled
                  and predictor.predict_bypass(vaddr))
        if tr.active:
            tr.emit(events.PREDICTOR, cycles=1,
                    predicted_large=predicted_large, bypass=bool(bypass))
        ctx = (asid << 17) | (vm_id << 1)
        page_large = page.large
        if page_large:
            true_key = ((vaddr >> _LARGE_SHIFT) << 33) | ctx | 1
            shift = _LARGE_SHIFT
        else:
            true_key = ((vaddr >> _SMALL_SHIFT) << 33) | ctx
            shift = _SMALL_SHIFT
        first_line = pom.candidates(true_key)[0][2]
        line_was_cached = (self._cache_entries
                           and hierarchy.tlb_line_cached(core, first_line))

        flow = self._flow
        cache_entries = self._cache_entries
        uncached = not cache_entries or bypass
        entry: Optional[TlbEntry] = None
        # Attempt loop unrolled (cf. PomTlbScheme): first probe at the
        # predicted size, then the other size.
        attempt = 0
        large = predicted_large
        while True:
            key = true_key if large == page_large else (
                ((vaddr >> _LARGE_SHIFT) << 33) | ctx | 1 if large
                else ((vaddr >> _SMALL_SHIFT) << 33) | ctx)
            # _fetch_line inlined: up to ``ways`` line fetches per probe
            # make this the hottest fetch loop of any scheme.
            for way, slot, line_addr in pom.candidates(key):
                if uncached:
                    fetch_cycles = pom.dram_access(line_addr)
                    if bypass:
                        hierarchy.tlb_line_fill(core, line_addr)
                    source = "dram_bypass" if bypass else "dram_uncached"
                else:
                    fetch_cycles, level = hierarchy.tlb_line_probe(
                        core, line_addr)
                    if level is None:
                        fetch_cycles += pom.dram_access(line_addr)
                        hierarchy.tlb_line_fill(core, line_addr)
                        source = "dram"
                    else:
                        source = level
                flow.count_source(source)
                if tr.active:
                    tr.emit(events.POM_FETCH, cycles=fetch_cycles,
                            source=source)
                cycles += fetch_cycles
                entry = pom.probe_slot(key, way, slot)
                if entry is not None:
                    break
            if tr.active:
                tr.emit(events.POM_PROBE, attempt=attempt, large=large,
                        hit=entry is not None)
            if entry is not None:
                counter = flow.resolved[attempt]
                counter.value += 1
                counter.touched = True
                break
            if attempt:
                break
            attempt = 1
            large = not predicted_large
        if entry is None:
            cycles += self._walk(core, vm_id, asid, vaddr)
            self._flow.resolved_by_walk.add()
            line_addr, _evicted = pom.insert(
                true_key, TlbEntry(page.host_frame >> shift))
            hierarchy.invalidate_tlb_line(line_addr)
            if self._cache_entries:
                hierarchy.tlb_line_fill(core, line_addr)
        predictor.record_size(vaddr, page_large)
        if self._cache_entries and entry is not None:
            predictor.record_bypass(vaddr, line_was_cached)
        return cycles

    def _shootdown_backend(self, vm_id: int, asid: int, vaddr: int) -> int:
        cycles = 0
        for large in (False, True):
            k = _key_for(vm_id, asid, vaddr, large)
            line_addr = self.pom.invalidate(k)
            if line_addr is not None:
                self.hierarchy.invalidate_tlb_line(line_addr)
                cycles += self.pom.dram_access(line_addr)
        return cycles

    def _invalidate_vm_backend(self, vm_id: int) -> int:
        dropped = self.pom.invalidate_vm(vm_id)
        for line_addr in dropped:
            self.hierarchy.invalidate_tlb_line(line_addr)
        return len(dropped)


SCHEMES = {
    scheme.name: scheme
    for scheme in (BaselineWalkScheme, PomTlbScheme, SkewedPomScheme,
               SharedL2Scheme, TsbScheme)
}


def make_scheme(name: str, config: SystemConfig, stats: StatRegistry,
                hierarchy: CacheHierarchy, walkers: WalkerPool,
                **kwargs) -> TranslationScheme:
    """Instantiate a scheme by name: baseline, pom, shared_l2 or tsb."""
    try:
        cls = SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; pick one of {sorted(SCHEMES)}") from None
    return cls(config, stats, hierarchy, walkers, **kwargs)
