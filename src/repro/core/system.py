"""The full-system simulator: cores, caches, TLBs, DRAM and one scheme.

:class:`Machine` wires every substrate together and replays per-core
trace streams, interleaved by instruction count.  For each memory
reference it

1. resolves the page functionally (demand paging on first touch),
2. runs the address translation through the configured scheme
   (POM-TLB / baseline walk / Shared_L2 / TSB), and
3. performs the data access itself through the cache hierarchy —
   so translation traffic and data traffic contend for the same caches,
   which is what makes the POM-TLB's entry caching meaningful.

The result is a :class:`SimulationResult` carrying the counters every
paper figure is derived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..cache.hierarchy import CacheHierarchy
from ..common import addr
from ..common.config import SystemConfig
from ..common.stats import StatRegistry
from ..faults import NO_TRANSLATION_FAULTS
from ..obs import Observability
from ..obs.histogram import LogHistogram
from ..obs.windows import WindowedMetrics
from ..tlb.entry import pack_context
from ..verify.verifier import NO_VERIFIER, Verifier
from ..vmm.thp import ThpPolicy
from ..vmm.vm import FreedFrames, Host, NativeProcess, ResolvedPage
from ..workloads.trace import CoreStream, interleave_batched
from .batch import resolve_batch_flag
from .batch import try_replay as _batch_try_replay
from .mmu import TranslationScheme, make_scheme
from .walkers import WalkerPool

_SMALL_SHIFT = addr.SMALL_PAGE_SHIFT
_LARGE_SHIFT = addr.LARGE_PAGE_SHIFT
_SMALL_MASK = addr.SMALL_PAGE_SIZE - 1
_LARGE_MASK = addr.LARGE_PAGE_SIZE - 1

#: Write-bitmap bit -> the exact bool the tuple path passes, so packed
#: replay feeds ``data_access`` bit-identical arguments.
_WRITE_BOOL = (False, True)


@dataclass
class SimulationResult:
    """Counters and derived metrics of one simulation run."""

    scheme: str
    references: int
    instructions: int
    l2_tlb_misses: int
    penalty_cycles: int
    translation_cycles: int
    data_cycles: int
    page_walks: int
    stats: StatRegistry = field(repr=False)
    #: Latency histograms (translation/penalty/DRAM), None when disabled.
    histograms: Optional[Dict[str, LogHistogram]] = field(default=None,
                                                          repr=False)
    #: Windowed warm-up metrics, None unless a window size was configured.
    windows: Optional[WindowedMetrics] = field(default=None, repr=False)

    @property
    def avg_penalty_per_miss(self) -> float:
        """The scheme's P_avg of paper Eq. 4 (cycles per L2 TLB miss)."""
        if self.l2_tlb_misses == 0:
            return 0.0
        return self.penalty_cycles / self.l2_tlb_misses

    @property
    def mpki(self) -> float:
        """L2 TLB misses per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l2_tlb_misses / self.instructions

    @property
    def walk_elimination(self) -> float:
        """Fraction of L2 TLB misses resolved without a page walk."""
        if self.l2_tlb_misses == 0:
            return 0.0
        return 1.0 - self.page_walks / self.l2_tlb_misses

    # -- figure-level metrics -------------------------------------------------

    def tlb_cache_hit_ratio(self, level: str) -> float:
        """Hit ratio of POM-TLB lines in the data caches (Fig 9).

        ``level`` is ``"l2"`` (aggregated private L2D$) or ``"l3"``.
        """
        hits = misses = 0.0
        for name, group in self.stats.groups().items():
            if level == "l2" and name.endswith(".l2d"):
                hits += group["tlb_hits"]
                misses += group["tlb_misses"]
            elif level == "l3" and name == "l3d":
                hits += group["tlb_hits"]
                misses += group["tlb_misses"]
        total = hits + misses
        return hits / total if total else 0.0

    def pom_hit_ratio(self) -> float:
        """Fraction of POM-TLB set searches that found the translation."""
        group = self.stats.groups().get("pom_tlb")
        if group is None:
            return 0.0
        hits = group["hits_small"] + group["hits_large"]
        total = hits + group["misses_small"] + group["misses_large"]
        return hits / total if total else 0.0

    def predictor_accuracy(self) -> Dict[str, float]:
        """Aggregate size/bypass predictor accuracy over cores (Fig 10)."""
        counts = {"size_correct": 0.0, "size_wrong": 0.0,
                  "bypass_correct": 0.0, "bypass_wrong": 0.0}
        for name, group in self.stats.groups().items():
            if name.endswith(".predictor"):
                for key in counts:
                    counts[key] += group[key]
        size_total = counts["size_correct"] + counts["size_wrong"]
        bypass_total = counts["bypass_correct"] + counts["bypass_wrong"]
        return {
            "size": counts["size_correct"] / size_total if size_total else 0.0,
            "bypass": counts["bypass_correct"] / bypass_total if bypass_total else 0.0,
        }

    def row_buffer_hit_rate(self) -> float:
        """Row-buffer hit rate of the POM-TLB's stacked DRAM (Fig 11)."""
        group = self.stats.groups().get("stacked_dram")
        if group is None or not group["accesses"]:
            return 0.0
        return group["row_hits"] / group["accesses"]

    # -- latency distributions ------------------------------------------------

    def latency_percentiles(self, name: str = "translation_cycles"
                            ) -> Dict[str, float]:
        """p50/p90/p99/max of one collected histogram (zeros when absent).

        ``name`` is one of :data:`repro.obs.HISTOGRAMS`:
        ``translation_cycles``, ``penalty_cycles``, ``dram_access_cycles``.
        """
        histogram = (self.histograms or {}).get(name)
        if histogram is None or not histogram.count:
            return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        return {"p50": histogram.p50, "p90": histogram.p90,
                "p99": histogram.p99, "max": float(histogram.max)}


class Machine:
    """One simulated system running one translation scheme."""

    def __init__(self, config: SystemConfig, scheme: str = "pom",
                 thp_large_fraction: float = 0.0, seed: int = 0,
                 tlb_priority: bool = False,
                 host_memory_bytes: int = 64 * addr.GiB,
                 thp_fractions: Optional[Dict[int, float]] = None,
                 obs: Optional[Observability] = None,
                 faults=None,
                 verify=None,
                 batch: Optional[bool] = None,
                 **scheme_kwargs) -> None:
        self.config = config
        self.seed = seed
        self.thp_large_fraction = thp_large_fraction
        #: per-VM (or per-native-asid) THP overrides for mixed workloads
        self.thp_fractions = thp_fractions or {}
        self.stats = StatRegistry()
        self.hierarchy = CacheHierarchy(config, self.stats,
                                        tlb_priority=tlb_priority)
        self.host = Host(memory_bytes=host_memory_bytes)
        self._native_processes: Dict[int, NativeProcess] = {}
        self.walkers = WalkerPool(config, self.stats, self.hierarchy,
                                  self.host,
                                  native_resolver=self._native_process)
        self.scheme: TranslationScheme = make_scheme(
            scheme, config, self.stats, self.hierarchy, self.walkers,
            **scheme_kwargs)
        self.obs = obs if obs is not None else Observability()
        self.obs.attach(self)
        #: Fault-injection hook (:mod:`repro.faults`); the null object's
        #: ``active`` is False, so the hot path pays one attribute check.
        self.faults = faults if faults is not None else NO_TRANSLATION_FAULTS
        #: Consistency-audit hook (:mod:`repro.verify`); same null-object
        #: pattern.  ``verify=True`` arms the default invariant set, or
        #: pass a configured :class:`~repro.verify.Verifier`.
        if verify is None:
            self.verifier = NO_VERIFIER
        elif verify is True:
            self.verifier = Verifier()
        else:
            self.verifier = verify
        #: Batched-replay knob (:mod:`repro.core.batch`).  ``None`` defers
        #: to the ``POMTLB_BATCH`` env var (default on); it is an
        #: execution field — it can never change results, only which
        #: engine produces them.
        self.batch_enabled = resolve_batch_flag(batch)
        #: ``"batch"`` or ``"scalar"`` after the last :meth:`run`.
        self.last_replay_mode: Optional[str] = None
        #: Why the batch engine declined the last run (None if it ran).
        self.batch_fallback_reason: Optional[str] = None

    # -- software contexts ----------------------------------------------------

    def _thp(self, context_seed: int) -> ThpPolicy:
        fraction = self.thp_fractions.get(context_seed,
                                          self.thp_large_fraction)
        return ThpPolicy(fraction, seed=self.seed * 1000 + context_seed)

    def _native_process(self, asid: int) -> NativeProcess:
        proc = self._native_processes.get(asid)
        if proc is None:
            proc = NativeProcess(asid, self.host.memory, self._thp(asid))
            self._native_processes[asid] = proc
        return proc

    def touch(self, vm_id: int, asid: int, vaddr: int) -> ResolvedPage:
        """Demand-page ``vaddr`` in (public: handy for tests/REPL use)."""
        if self.config.virtualized:
            vm = self.host.vms.get(vm_id)
            if vm is None:
                vm = self.host.create_vm(vm_id, self._thp(vm_id))
            return vm.touch(asid, vaddr)
        return self._native_process(asid).touch(vaddr)

    def _stream_info(self, stream: CoreStream) -> tuple:
        """Per-stream constants hoisted out of the replay hot loop.

        Creates the stream's VM/process on first use — at the stream's
        first chunk, which is exactly where the seed engine's first
        ``touch`` would have created them, so page-frame allocation
        order (and thus every downstream address) is unchanged.
        """
        vm_id, asid = stream.vm_id, stream.asid
        if self.config.virtualized:
            vm = self.host.vms.get(vm_id)
            if vm is None:
                vm = self.host.create_vm(vm_id, self._thp(vm_id))
            proc = vm.process(asid)
        else:
            proc = self._native_process(asid)
        # Demand-paging (first touch of a page) goes through the public
        # ``touch`` so profiling/instrumentation wrappers still see it;
        # resolved pages are served straight from the process dicts.
        touch_slow = partial(self.touch, vm_id, asid)
        # Packed streams expose columns for tuple-free replay; resolved
        # here (once per stream) so the tuple path pays nothing per chunk.
        columns = getattr(stream, "columns", None)
        return (stream.core, pack_context(vm_id, asid),
                proc.large_pages, proc.small_pages, touch_slow,
                columns() if columns is not None else None)

    # -- execution -----------------------------------------------------------

    def run(self, streams: Iterable[CoreStream],
            max_references: Optional[int] = None,
            warmup_references: Union[int, Mapping[int, int]] = 0,
            events: Optional[Sequence] = None) -> SimulationResult:
        """Replay the streams to completion (or ``max_references``).

        ``warmup_references`` replays that much of the trace first, then
        zeroes every statistic while keeping all structure state (TLB,
        cache, POM-TLB and predictor contents).  This measures steady
        state, like the paper's 20-billion-instruction runs where
        compulsory misses are negligible; without it, short traces are
        dominated by first-touch misses no scheme can avoid.

        An ``int`` counts references globally across the interleaved
        merge.  A ``{core: count}`` mapping waits until **every** listed
        core has delivered its own count — required when streams tick
        their instruction clocks at different rates (mixed-benchmark
        consolidation), where a global count would cut some cores off
        mid-prologue.

        ``events`` schedules OS-level operations mid-run: each entry has
        a ``position`` (the 0-based index in the global interleaved
        merge, warmup included, *before* which it fires) and an
        ``apply(machine)`` method — see
        :class:`~repro.workloads.lifecycle.LifecycleEvent`.  Events at or
        past the end of the trace fire after the last reference; events
        past a ``max_references`` stop never fire.  Scheduled events
        force the scalar engine (recorded in ``batch_fallback_reason``),
        so results are engine-independent by construction.
        """
        streams = list(streams)
        for stream in streams:
            if stream.core >= self.config.num_cores:
                raise ValueError(
                    f"stream core {stream.core} >= {self.config.num_cores} cores")
        pending = sorted(events, key=lambda e: e.position) if events else []
        if self.batch_enabled:
            if pending:
                self.batch_fallback_reason = ("mid-run lifecycle events "
                                              "scheduled")
            else:
                replay = _batch_try_replay(self, streams, max_references,
                                           warmup_references)
                if replay is not None:
                    self.last_replay_mode = "batch"
                    return self._finish_run(*replay)
        else:
            self.batch_fallback_reason = "batching disabled"
        self.last_replay_mode = "scalar"
        obs = self.obs
        faults = self.faults
        tracer = obs.tracer
        histograms = obs.histograms
        record_translation = record_penalty = None
        if histograms is not None:
            record_translation = histograms["translation_cycles"].record
            record_penalty = histograms["penalty_cycles"].record
        windows = obs.windows
        record_window = windows.record if windows is not None else None
        translate_packed = self.scheme.translate_packed
        data_access = self.hierarchy.data_access
        # Both in-tree faulters fix ``active`` at class level; hoist it.
        faults_active = faults.active
        on_translation = faults.on_translation
        # Same for the verifier: one hoisted bool, nothing when disabled.
        verifier = self.verifier
        verifier_active = verifier.active
        on_verify = verifier.on_translation
        references = 0
        translation_cycles = 0
        data_cycles = 0
        if isinstance(warmup_references, int):
            warmup_remaining: Dict[int, int] = (
                {-1: warmup_references} if warmup_references else {})
        else:
            warmup_remaining = {core: count for core, count
                                in warmup_references.items() if count > 0}
        warming = bool(warmup_remaining)
        warmup_boundary: Dict[int, int] = {}
        last_icount: Dict[int, int] = {}
        stop_at = max_references if max_references is not None else float("inf")
        infos: Dict[int, tuple] = {}
        stopped = False
        chunks = interleave_batched(streams)
        if pending:
            chunks = self._chunks_with_events(chunks, pending, infos)
        for stream, lo, hi in chunks:
            info = infos.get(id(stream))
            if info is None:
                info = infos[id(stream)] = self._stream_info(stream)
            core, ctx, large_pages, small_pages, touch_slow, cols = info
            large_get = large_pages.get
            small_get = small_pages.get
            if cols is not None:
                # Columnar replay: a packed (cache / shared-memory)
                # stream is consumed straight off its icount/vaddr/write
                # columns — no MemoryReference tuple is materialized.
                # Mirrors the tuple loop below line for line; keep the
                # two in sync.
                icounts, vaddrs, writebits = cols
                i = lo
                for i in range(lo, hi):
                    if warming:
                        if warmup_remaining:
                            key = -1 if -1 in warmup_remaining else core
                            if key in warmup_remaining:
                                warmup_remaining[key] -= 1
                                if warmup_remaining[key] <= 0:
                                    del warmup_remaining[key]
                        else:
                            warming = False
                            references = 0
                            translation_cycles = 0
                            data_cycles = 0
                            self.stats.reset()
                            obs.reset()
                            verifier.reset()
                            if tracer.enabled:
                                tracer.marker("stats_reset")
                            warmup_boundary = dict(last_icount)
                    if faults_active:
                        on_translation()
                    vaddr = vaddrs[i]
                    page = large_get(vaddr >> _LARGE_SHIFT)
                    if page is None:
                        page = small_get(vaddr >> _SMALL_SHIFT)
                        if page is None:
                            page = touch_slow(vaddr)
                    result = translate_packed(core, ctx, vaddr, page)
                    translation_cycles += result[0]
                    hpa = page[2] | (vaddr & (_LARGE_MASK if page[0]
                                              else _SMALL_MASK))
                    data_cycles += data_access(
                        core, hpa,
                        is_write=_WRITE_BOOL[(writebits[i >> 3]
                                              >> (i & 7)) & 1])
                    if record_translation is not None:
                        record_translation(result[0])
                        if result[1]:
                            record_penalty(result[2])
                    if record_window is not None:
                        record_window(result[0], result[1], result[2])
                    if verifier_active:
                        on_verify(result)
                    references += 1
                    if warming:
                        last_icount[core] = icounts[i]
                    if references >= stop_at:
                        stopped = True
                        break
                if hi > lo:
                    last_icount[core] = icounts[i]
                if stopped:
                    break
                continue
            refs = stream.references
            ref = None
            for i in range(lo, hi):
                ref = refs[i]
                if warming:
                    if warmup_remaining:
                        key = -1 if -1 in warmup_remaining else core
                        if key in warmup_remaining:
                            warmup_remaining[key] -= 1
                            if warmup_remaining[key] <= 0:
                                del warmup_remaining[key]
                    else:
                        warming = False
                        references = 0
                        translation_cycles = 0
                        data_cycles = 0
                        self.stats.reset()
                        obs.reset()
                        verifier.reset()
                        if tracer.enabled:
                            tracer.marker("stats_reset")
                        warmup_boundary = dict(last_icount)
                if faults_active:
                    on_translation()
                vaddr = ref[1]
                page = large_get(vaddr >> _LARGE_SHIFT)
                if page is None:
                    page = small_get(vaddr >> _SMALL_SHIFT)
                    if page is None:
                        page = touch_slow(vaddr)
                result = translate_packed(core, ctx, vaddr, page)
                translation_cycles += result[0]
                hpa = page[2] | (vaddr & (_LARGE_MASK if page[0]
                                          else _SMALL_MASK))
                data_cycles += data_access(core, hpa, is_write=ref[2])
                if record_translation is not None:
                    record_translation(result[0])
                    if result[1]:
                        record_penalty(result[2])
                if record_window is not None:
                    record_window(result[0], result[1], result[2])
                if verifier_active:
                    on_verify(result)
                references += 1
                if warming:
                    # The warmup-reset boundary snapshots last_icount, so
                    # it must be exact per reference until warm-up ends;
                    # afterwards the chunk-end flush below suffices.
                    last_icount[core] = ref[0]
                if references >= stop_at:
                    stopped = True
                    break
            if ref is not None:
                last_icount[core] = ref[0]
            if stopped:
                break
        if warming:
            raise ValueError(
                f"warmup ({warmup_references}) consumed the whole trace")
        return self._finish_run(references, translation_cycles, data_cycles,
                                last_icount, warmup_boundary)

    def _chunks_with_events(self, chunks, pending: List, infos: Dict):
        """Split interleaved chunks at event positions and fire them.

        Yields the same ``(stream, lo, hi)`` chunks as
        :func:`~repro.workloads.trace.interleave_batched`, cut so every
        scheduled event fires exactly *between* two references of the
        global merge.  After an event fires the hoisted per-stream info
        cache is cleared: a destroyed VM's page dicts and packed-context
        are dead, and the next chunk must re-resolve them (recreating
        the VM on demand for migration-style scenarios).
        """
        queue = list(pending)
        queue.reverse()  # pop() from the end yields earliest-first
        position = 0
        for stream, lo, hi in chunks:
            while queue and queue[-1].position < position + (hi - lo):
                cut = lo + (queue[-1].position - position)
                if cut > lo:
                    yield stream, lo, cut
                position += cut - lo
                lo = cut
                while queue and queue[-1].position == position:
                    queue.pop().apply(self)
                infos.clear()
            if hi > lo:
                yield stream, lo, hi
                position += hi - lo
        # Events scheduled at or past the end of the trace fire after
        # the last reference (e.g. the final generation's teardowns).
        while queue:
            queue.pop().apply(self)

    def _finish_run(self, references: int, translation_cycles: int,
                    data_cycles: int, last_icount: Dict[int, int],
                    warmup_boundary: Dict[int, int]) -> SimulationResult:
        """Fold the replay-loop tallies into a :class:`SimulationResult`.

        Shared by the scalar loop and the batched engine
        (:func:`repro.core.batch.try_replay`), which produce the exact
        same five tallies.
        """
        windows = self.obs.windows
        if windows is not None:
            windows.finish()
        instructions = sum(
            last_icount[core] - warmup_boundary.get(core, 0)
            for core in last_icount)
        mmu_stats = self.stats.group("mmu")
        result = SimulationResult(
            scheme=self.scheme.name,
            references=references,
            instructions=instructions,
            l2_tlb_misses=int(mmu_stats["l2_tlb_misses"]),
            penalty_cycles=int(mmu_stats["penalty_cycles"]),
            translation_cycles=translation_cycles,
            data_cycles=data_cycles,
            page_walks=int(mmu_stats["page_walks"]),
            stats=self.stats,
            histograms=self.obs.histograms,
            windows=windows,
        )
        if self.verifier.active:
            self.verifier.finish(self, result)
        return result

    # -- OS-visible operations --------------------------------------------------

    def shootdown(self, vm_id: int, asid: int, vaddr: int) -> int:
        """TLB shootdown of one page across all structures.

        Returns the modelled shootdown cost in cycles.

        The invalidation is size-agnostic end to end: when the page is
        already unmapped (the common real-world ordering — the OS
        removes the mapping, then shoots down) the size is unknowable,
        so ``large=None`` is passed through and the scheme drops *both*
        page sizes everywhere, never guessing ``large=False``.  Looking
        the page up must not create contexts as a side effect, so only
        existing VMs/processes are consulted.
        """
        if self.config.virtualized:
            vm = self.host.vms.get(vm_id)
            page = vm.resolve(asid, vaddr) if vm is not None else None
        else:
            proc = self._native_processes.get(asid)
            page = proc.resolve(vaddr) if proc is not None else None
        large = page.large if page is not None else None
        verifier = self.verifier
        if not verifier.active:
            return self.scheme.shootdown(vm_id, asid, vaddr, large)
        token = verifier.token_shootdown(self, vm_id, asid, vaddr)
        cycles = self.scheme.shootdown(vm_id, asid, vaddr, large)
        verifier.check_shootdown(self, vm_id, asid, vaddr, token)
        return cycles

    def invalidate_vm(self, vm_id: int) -> int:
        """Drop every translation of one VM everywhere (VM teardown).

        Clears the VM's entries from the private SRAM TLBs, the paging-
        structure caches, the scheme's backing structure and any cached
        copies of its memory-mapped lines.  Returns the number of
        backing-structure entries dropped.
        """
        verifier = self.verifier
        if not verifier.active:
            return self.scheme.invalidate_vm(vm_id)
        token = verifier.token_invalidate_vm(self, vm_id)
        dropped = self.scheme.invalidate_vm(vm_id)
        verifier.check_invalidate_vm(self, vm_id, token)
        return dropped

    def destroy_vm(self, vm_id: int) -> FreedFrames:
        """Full VM teardown: invalidate everywhere, then reclaim frames.

        Orders the hardware-visible half first — :meth:`invalidate_vm`
        drops the VM's translations from every TLB, PSC, backend and
        cached backing line — then purges the VM's walkers (they hold
        bound references to the dying tables) and releases every host
        frame the VM pinned back to the allocator's free lists.  A later
        ``touch`` of the same vm_id boots a fresh VM that reuses the
        freed frames (cold-migration arrival / consolidation churn).

        Returns the :class:`~repro.vmm.vm.FreedFrames` tally.
        """
        if not self.config.virtualized:
            raise ValueError("destroy_vm requires virtualized mode")
        verifier = self.verifier
        token = (verifier.token_destroy_vm(self, vm_id)
                 if verifier.active else None)
        self.invalidate_vm(vm_id)
        self.walkers.discard_vm(vm_id)
        freed = self.host.destroy_vm(vm_id)
        if verifier.active:
            verifier.check_destroy_vm(self, vm_id, token)
        return freed
