"""POM-TLB set addressing (paper Section 2.1.3, Equation 1).

The POM-TLB is part of the physical address space.  A virtual address
maps to exactly one 64 B set per partition:

    set_index = (VPN XOR spread(VM_ID)) mod N
    set_addr  = partition_base + 64 * set_index

where ``VPN`` uses the partition's page shift (12 for the small-page
partition, 21 for the large-page partition) and the VM ID is XOR-folded
into the index so that several guests do not pile onto the same sets —
the paper's "after XOR-ing them with the VM ID bits to distribute the
set-mapping evenly".
"""

from __future__ import annotations

from ..common import addr
from ..common.config import PomTlbConfig

#: 16-bit golden-ratio constant used to spread small VM IDs over index bits.
_VM_SPREAD = 0x9E37


class PomTlbAddressing:
    """Pure address arithmetic for both POM-TLB partitions."""

    def __init__(self, config: PomTlbConfig) -> None:
        self.config = config
        self._small_mask = config.small_sets - 1
        self._large_mask = config.large_sets - 1

    def set_index(self, vaddr: int, vm_id: int, large: bool) -> int:
        """Set index of ``vaddr`` within the chosen partition."""
        vpn = vaddr >> addr.page_shift(large)
        spread = vm_id * _VM_SPREAD
        if large:
            return (vpn ^ spread) & self._large_mask
        return (vpn ^ spread) & self._small_mask

    def set_address(self, vaddr: int, vm_id: int, large: bool) -> int:
        """Physical byte address of the 64 B set holding ``vaddr``'s entry."""
        index = self.set_index(vaddr, vm_id, large)
        base = self.config.large_base if large else self.config.small_base
        return base + index * addr.CACHE_LINE_SIZE

    def partition_of(self, paddr: int) -> bool:
        """Which partition a POM-TLB physical address belongs to.

        Returns ``True`` for the large partition; raises ``ValueError``
        outside the POM-TLB range.
        """
        if not self.config.contains(paddr):
            raise ValueError(f"{paddr:#x} is not a POM-TLB address")
        return paddr >= self.config.large_base
