"""2-D nested page-table walk (paper Figure 1: up to 24 memory references).

In virtualized mode a guest-virtual address is translated by walking the
guest table (gVA -> gPA), but every guest-table pointer is itself a
guest-physical address that must be translated through the host table
(gPA -> hPA) before the guest PTE can be fetched.  Cold, that is
4 guest levels x (4 host refs + 1 guest ref) + 4 host refs for the final
data gPA = **24 references**.

Acceleration modelled, matching the baseline hardware the paper measures:

* a **host PSC** inside each host-dimension walk,
* a **combined guest PSC** whose entries map a gVA prefix directly to the
  *host-physical* base of the guest table, skipping both the guest upper
  levels and their nested host walks, and
* PTE caching in the data caches (via the ``pte_access`` callback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...common import addr
from ...common.errors import AddressError
from ...common.stats import StatGroup
from ...obs import events
from ...obs.tracer import NULL_TRACER
from .page_table import LeafMapping, RadixPageTable
from .walk_cache import PagingStructureCache
from .walker import PteAccess

#: Worst-case reference count of one nested walk (paper Figure 1).
MAX_NESTED_REFS = 24


@dataclass(frozen=True)
class NestedOutcome:
    """Result of a nested walk: the end-to-end gVA -> hPA mapping."""

    cycles: int
    memory_refs: int
    host_frame: int   # host-physical frame of the guest page
    large: bool       # effective page size (guest size, host backs it)

    def translate(self, gva: int) -> int:
        return self.host_frame | addr.page_offset(gva, self.large)


class NestedWalker:
    """Walks guest and host tables, issuing every nested memory reference."""

    def __init__(self, guest_table: RadixPageTable, host_table: RadixPageTable,
                 guest_psc: PagingStructureCache, host_psc: PagingStructureCache,
                 pte_access: PteAccess, stats: StatGroup,
                 tracer=NULL_TRACER) -> None:
        self.guest_table = guest_table
        self.host_table = host_table
        self.guest_psc = guest_psc
        self.host_psc = host_psc
        self._pte_access = pte_access
        self.stats = stats
        self.trace = tracer

    # -- host dimension ----------------------------------------------------------

    def host_translate(self, gpa: int) -> Tuple[int, int, int]:
        """Translate a guest-physical address through the host table.

        Returns ``(hpa, cycles, memory_refs)``.  This is one column of
        the paper's Figure 1 grid.
        """
        start_level, table_base, cycles = self.host_psc.lookup(gpa)
        try:
            if table_base is None:
                steps, leaf = self.host_table.walk(gpa)
            else:
                steps, leaf = self.host_table.walk_from(gpa, start_level, table_base)
        except AddressError:
            self.stats.inc("host_psc_stale")
            self.host_psc.invalidate(gpa)
            steps, leaf = self.host_table.walk(gpa)
        tr = self.trace
        refs = 0
        for step in steps:
            step_cycles = self._pte_access(step.pte_paddr)
            cycles += step_cycles
            refs += 1
            if tr.active:
                tr.emit(events.WALK_STEP, cycles=step_cycles, dim="host",
                        level=step.level)
        deepest = 2 if leaf.large else 1
        for level in range(deepest, addr.RADIX_LEVELS):
            base = self.host_table.table_base(gpa, level)
            if base is not None:
                self.host_psc.fill(gpa, level, base)
        return leaf.translate(gpa), cycles, refs

    # -- full 2-D walk ------------------------------------------------------

    def walk(self, gva: int) -> NestedOutcome:
        """Translate ``gva`` end to end (gVA -> gPA -> hPA)."""
        start_level, cached, cycles = self.guest_psc.lookup(gva)
        try:
            if cached is None:
                steps, leaf = self.guest_table.walk(gva)
            else:
                gpa_base, _hpa_base = cached
                steps, leaf = self.guest_table.walk_from(gva, start_level, gpa_base)
        except AddressError:
            self.stats.inc("guest_psc_stale")
            self.guest_psc.invalidate(gva)
            cached = None
            steps, leaf = self.guest_table.walk(gva)
        tr = self.trace
        total_refs = 0
        for position, step in enumerate(steps):
            if position == 0 and cached is not None:
                # Combined-PSC hit: the host address of this guest table
                # is cached, no nested host walk for it.
                gpa_base, hpa_base = cached
                pte_hpa = hpa_base + (step.pte_paddr - gpa_base)
            else:
                pte_hpa, host_cycles, host_refs = self.host_translate(step.pte_paddr)
                cycles += host_cycles
                total_refs += host_refs
            step_cycles = self._pte_access(pte_hpa)
            cycles += step_cycles
            total_refs += 1
            if tr.active:
                tr.emit(events.WALK_STEP, cycles=step_cycles, dim="guest",
                        level=step.level)
        # Final column: translate the data page's gPA through the host.
        gpa_page = leaf.frame
        host_frame_addr, host_cycles, host_refs = self.host_translate(gpa_page)
        cycles += host_cycles
        total_refs += host_refs
        self._refill_guest_psc(gva, leaf)
        self.stats.inc("nested_walks")
        self.stats.inc("nested_cycles", cycles)
        self.stats.inc("nested_refs", total_refs)
        return NestedOutcome(cycles=cycles, memory_refs=total_refs,
                             host_frame=host_frame_addr, large=leaf.large)

    def _refill_guest_psc(self, gva: int, leaf: LeafMapping) -> None:
        """Refill the combined cache with (gPA, hPA) guest-table bases."""
        deepest = 2 if leaf.large else 1
        for level in range(deepest, addr.RADIX_LEVELS):
            gpa_base = self.guest_table.table_base(gva, level)
            if gpa_base is None:
                continue
            hpa_leaf = self.host_table.lookup(gpa_base)
            if hpa_leaf is None:
                continue
            self.guest_psc.fill(gva, level, (gpa_base, hpa_leaf.translate(gpa_base)))
