"""DRAM bank model: open-page policy with row-buffer state.

A bank serves one access at a time in this model; the cost of an access
depends on the relationship between the requested row and the row
currently latched in the bank's row buffer:

* **row hit** — the row is already open: pay ``tCAS``.
* **row miss (bank idle)** — no row open: pay ``tRCD + tCAS``.
* **row conflict** — a different row is open: pay ``tRP + tRCD + tCAS``.

All costs are in memory-bus cycles; the channel converts them to CPU
cycles.  The paper's Figure 11 reports the resulting row-buffer hit
rate for POM-TLB traffic, which this model tracks per bank.
"""

from __future__ import annotations

from typing import Optional

from ...common.config import DramTimingConfig
from ...common.stats import StatGroup


class DramBank:
    """One bank with an open-page row buffer."""

    def __init__(self, index: int, timing: DramTimingConfig, stats: StatGroup) -> None:
        self.index = index
        self._timing = timing
        self._stats = stats
        self._open_row: Optional[int] = None

    @property
    def open_row(self) -> Optional[int]:
        """Row currently latched in the row buffer, or None when idle."""
        return self._open_row

    def access(self, row: int) -> int:
        """Access ``row``; returns the cost in bus cycles and updates state."""
        timing = self._timing
        if self._open_row == row:
            self._stats.inc("row_hits")
            return timing.tcas
        if self._open_row is None:
            self._stats.inc("row_misses")
            cost = timing.trcd + timing.tcas
        else:
            self._stats.inc("row_conflicts")
            cost = timing.trp + timing.trcd + timing.tcas
        self._open_row = row
        return cost

    def precharge(self) -> None:
        """Close the open row (e.g. refresh or explicit precharge)."""
        self._open_row = None
