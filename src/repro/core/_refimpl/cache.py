"""Set-associative cache with TLB-aware line accounting.

The POM-TLB design hinges on TLB entries being **ordinary cacheable
memory**, so the data-cache model distinguishes two line kinds:

* ``data`` — regular program loads/stores (and page-table entries), and
* ``tlb``  — lines belonging to the POM-TLB (or TSB) address range.

Both kinds compete for the same sets under the same replacement policy —
exactly the paper's design — but are counted separately so experiments
can report TLB-entry hit ratios (Fig 9) and data-cache pollution.

The optional ``tlb_priority`` mode implements the Section 5.1 extension
(*TLB-aware caching*): when enabled, a ``tlb`` line is never chosen as a
victim while a ``data`` line exists in the set.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...common import addr
from ...common.config import CacheConfig
from ...common.stats import StatGroup
from ...cache.replacement import LruPolicy

DATA = "data"
TLB = "tlb"


class SetAssociativeCache:
    """One level of a write-allocate, (modelled) write-back cache.

    The model tracks presence and recency, not contents: the simulator
    only needs hit/miss outcomes and latency.  Lookups and fills operate
    on byte addresses; alignment to 64 B lines is internal.
    """

    def __init__(self, config: CacheConfig, stats: StatGroup,
                 tlb_priority: bool = False) -> None:
        self.config = config
        self.stats = stats
        self.tlb_priority = tlb_priority
        self._num_sets = config.num_sets
        self._set_mask = self._num_sets - 1
        self._line_shift = addr.ilog2(config.line_bytes)
        # One {tag: kind} dict plus one LRU tracker per set.
        self._tags: Tuple[Dict[int, str], ...] = tuple({} for _ in range(self._num_sets))
        self._lru: Tuple[LruPolicy, ...] = tuple(LruPolicy() for _ in range(self._num_sets))
        # Dirty lines, by (set, tag); populated only when callers use the
        # write-back API (mark_dirty / fill(dirty=True)).
        self._dirty: set = set()
        #: dirtiness of the line evicted by the most recent fill()
        self.last_evicted_dirty: bool = False

    # -- geometry ---------------------------------------------------------

    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address >> self._line_shift
        return line & self._set_mask, line >> addr.ilog2(self._num_sets)

    @property
    def latency(self) -> int:
        """Hit latency in CPU cycles."""
        return self.config.latency_cycles

    # -- operations ---------------------------------------------------------

    def lookup(self, address: int, kind: str = DATA) -> bool:
        """Probe for the line holding ``address``; updates recency on hit."""
        set_idx, tag = self._index_tag(address)
        tags = self._tags[set_idx]
        hit = tag in tags
        self.stats.inc(f"{kind}_hits" if hit else f"{kind}_misses")
        if hit:
            self._lru[set_idx].touch(tag)
        return hit

    def contains(self, address: int) -> bool:
        """Presence check with no side effects (no recency, no stats)."""
        set_idx, tag = self._index_tag(address)
        return tag in self._tags[set_idx]

    def fill(self, address: int, kind: str = DATA,
             dirty: bool = False) -> Optional[int]:
        """Insert the line for ``address``; returns the evicted line address.

        Filling a line already present just refreshes recency (and its
        kind, which matters only if an address range is repurposed).
        After the call, :attr:`last_evicted_dirty` says whether the
        evicted line (if any) held unwritten-back data.
        """
        set_idx, tag = self._index_tag(address)
        tags = self._tags[set_idx]
        lru = self._lru[set_idx]
        evicted: Optional[int] = None
        self.last_evicted_dirty = False
        if tag not in tags and len(tags) >= self.config.ways:
            victim = self._select_victim(set_idx)
            victim_kind = tags.pop(victim)
            lru.remove(victim)
            self.stats.inc(f"{victim_kind}_evictions")
            evicted = self._line_address(set_idx, victim)
            if (set_idx, victim) in self._dirty:
                self._dirty.discard((set_idx, victim))
                self.last_evicted_dirty = True
        tags[tag] = kind
        lru.touch(tag)
        if dirty:
            self._dirty.add((set_idx, tag))
        self.stats.inc(f"{kind}_fills")
        return evicted

    def mark_dirty(self, address: int) -> bool:
        """Flag the resident line holding ``address`` as modified."""
        set_idx, tag = self._index_tag(address)
        if tag in self._tags[set_idx]:
            self._dirty.add((set_idx, tag))
            return True
        return False

    def is_dirty(self, address: int) -> bool:
        """True when the line holding ``address`` is resident and dirty."""
        set_idx, tag = self._index_tag(address)
        return (set_idx, tag) in self._dirty

    def _select_victim(self, set_idx: int) -> int:
        lru = self._lru[set_idx]
        if not self.tlb_priority:
            return lru.victim()
        tags = self._tags[set_idx]
        for tag in lru.keys():  # oldest first
            if tags[tag] == DATA:
                return tag
        return lru.victim()

    def _line_address(self, set_idx: int, tag: int) -> int:
        line = (tag << addr.ilog2(self._num_sets)) | set_idx
        return line << self._line_shift

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address`` if present."""
        set_idx, tag = self._index_tag(address)
        if tag in self._tags[set_idx]:
            del self._tags[set_idx][tag]
            self._lru[set_idx].remove(tag)
            self._dirty.discard((set_idx, tag))
            return True
        return False

    def flush(self) -> None:
        """Empty the whole cache."""
        for tags, lru in zip(self._tags, self._lru):
            for tag in list(tags):
                lru.remove(tag)
            tags.clear()
        self._dirty.clear()

    # -- introspection ------------------------------------------------------

    def occupancy(self) -> Dict[str, int]:
        """Lines currently resident, split by kind."""
        counts = {DATA: 0, TLB: 0}
        for tags in self._tags:
            for kind in tags.values():
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    def hit_rate(self, kind: str = DATA) -> float:
        hits = self.stats[f"{kind}_hits"]
        total = hits + self.stats[f"{kind}_misses"]
        return hits / total if total else 0.0

    def __len__(self) -> int:
        return sum(len(tags) for tags in self._tags)
