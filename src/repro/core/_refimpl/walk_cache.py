"""Paging-structure caches (PSCs) — the MMU caches of Table 1.

A PSC entry caches, for a VA prefix, the base address of the
**next-level table**, letting the walker skip the upper levels of the
radix tree:

* PML4 cache: VA[47:39] -> level-3 (PDPT) table base  (skips 1 access)
* PDP cache:  VA[47:30] -> level-2 (PD) table base    (skips 2 accesses)
* PDE cache:  VA[47:21] -> level-1 (PT) table base    (skips 3 accesses)

In virtualized mode the same structure is used as a *combined* cache:
the cached table base is the **host-physical** address of the guest
table, so a hit also skips the nested host walks of the skipped guest
levels — matching how real MMU caches interact with EPT.

Capacities follow Table 1 (2 / 4 / 32 entries), fully associative, LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ...common import addr
from ...common.config import WalkCacheConfig
from ...common.stats import StatGroup

#: (cache name, entry count attr, VA prefix shift, walk start level on hit)
_LEVELS = (
    ("pde", "pde_entries", addr.LARGE_PAGE_SHIFT, 1),         # VA[47:21]
    ("pdp", "pdp_entries", addr.LARGE_PAGE_SHIFT + 9, 2),     # VA[47:30]
    ("pml4", "pml4_entries", addr.LARGE_PAGE_SHIFT + 18, 3),  # VA[47:39]
)


class _PrefixCache:
    """One fully associative LRU cache over VA prefixes."""

    __slots__ = ("capacity", "shift", "_entries")

    def __init__(self, capacity: int, shift: int) -> None:
        self.capacity = capacity
        self.shift = shift
        self._entries: "OrderedDict[int, int]" = OrderedDict()

    def lookup(self, vaddr: int) -> Optional[int]:
        key = vaddr >> self.shift
        base = self._entries.get(key)
        if base is not None:
            self._entries.move_to_end(key)
        return base

    def fill(self, vaddr: int, table_base: int) -> None:
        if self.capacity == 0:
            return
        key = vaddr >> self.shift
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = table_base

    def invalidate(self, vaddr: int) -> None:
        self._entries.pop(vaddr >> self.shift, None)

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class PagingStructureCache:
    """The trio of MMU caches consulted before a page walk."""

    def __init__(self, config: WalkCacheConfig, stats: StatGroup) -> None:
        self.config = config
        self.stats = stats
        self._caches = {}
        for name, attr, shift, start_level in _LEVELS:
            self._caches[name] = (_PrefixCache(getattr(config, attr), shift),
                                  start_level)

    def lookup(self, vaddr: int) -> Tuple[int, Optional[int], int]:
        """Find the deepest cached table for ``vaddr``.

        Returns ``(start_level, table_base, lookup_cycles)``; when nothing
        hits, ``start_level`` is 4 (walk from the root) and ``table_base``
        is ``None``.  The cycle cost covers probing the PSC hierarchy.
        """
        cycles = self.config.hit_latency_cycles
        for name, _attr, _shift, _lvl in _LEVELS:  # deepest (pde) first
            cache, start_level = self._caches[name]
            base = cache.lookup(vaddr)
            if base is not None:
                self.stats.inc(f"{name}_hits")
                return start_level, base, cycles
        self.stats.inc("misses")
        return addr.RADIX_LEVELS, None, cycles

    def fill(self, vaddr: int, level: int, table_base: int) -> None:
        """Cache the base of the level-``level`` table covering ``vaddr``."""
        for name, _attr, _shift, start_level in _LEVELS:
            if start_level == level:
                self._caches[name][0].fill(vaddr, table_base)
                return
        raise ValueError(f"PSCs cache table levels 1..3, got {level}")

    def invalidate(self, vaddr: int) -> None:
        """Drop every prefix entry covering ``vaddr`` (shootdown)."""
        for cache, _lvl in self._caches.values():
            cache.invalidate(vaddr)

    def flush(self) -> None:
        for cache, _lvl in self._caches.values():
            cache.flush()

    def sizes(self) -> dict:
        """Occupancy per sub-cache (tests and debugging)."""
        return {name: len(cache) for name, (cache, _lvl) in self._caches.items()}
