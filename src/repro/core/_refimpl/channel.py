"""DRAM channel: banks + address mapping + data-burst transfer cost.

The channel is the unit the rest of the simulator talks to.  It returns
access latencies in **CPU cycles** so callers never deal with clock-domain
conversion.  The model is deliberately a latency model, not a cycle-exact
command scheduler: the paper's evaluation needs row-buffer behaviour and
hit/miss/conflict latencies (Ramulator-like), not inter-command timing
corner cases.
"""

from __future__ import annotations

from ...common import addr
from ...common.config import DramTimingConfig
from ...common.stats import StatGroup
from ...obs import events
from ...obs.tracer import NULL_TRACER
from .bank import DramBank
from ...dram.mapping import AddressMapper


class DramChannel:
    """One independent DRAM channel (die-stacked or DDR4)."""

    def __init__(self, timing: DramTimingConfig, cpu_mhz: int,
                 stats: StatGroup) -> None:
        self.timing = timing
        self.cpu_mhz = cpu_mhz
        self.stats = stats
        self.mapper = AddressMapper(timing)
        self._banks = [DramBank(i, timing, stats) for i in range(timing.banks)]
        #: Event tracer; the null object unless Observability attaches one.
        self.trace = NULL_TRACER
        #: Optional latency histogram (set by Observability on the
        #: stacked-DRAM channel); None keeps the hot path untouched.
        self.histogram = None

    def _burst_cycles(self, nbytes: int) -> int:
        """Bus cycles to move ``nbytes`` over a double-data-rate bus."""
        bytes_per_bus_cycle = max(1, self.timing.bus_bits // 8 * 2)
        return -(-nbytes // bytes_per_bus_cycle)

    def access(self, paddr: int, nbytes: int = addr.CACHE_LINE_SIZE) -> int:
        """Read/write ``nbytes`` at ``paddr``; returns CPU-cycle latency."""
        coord = self.mapper.map(paddr)
        bank = self._banks[coord.bank]
        tracing = self.trace.active
        if tracing:
            open_row = bank.open_row
            outcome = ("hit" if open_row == coord.row
                       else "miss" if open_row is None else "conflict")
        bus_cycles = (self.timing.controller_cycles
                      + bank.access(coord.row)
                      + self._burst_cycles(nbytes))
        self.stats.inc("accesses")
        self.stats.inc("bytes", nbytes)
        cycles = self.timing.cpu_cycles(bus_cycles, self.cpu_mhz)
        if self.histogram is not None:
            self.histogram.record(cycles)
        if tracing:
            self.trace.emit(events.DRAM_ACCESS, cycles=cycles,
                            bank=coord.bank, row=coord.row, outcome=outcome)
        return cycles

    def row_buffer_hit_rate(self) -> float:
        """Fraction of accesses served from an open row buffer."""
        return self.stats.ratio(
            "row_hits",
            "accesses") if self.stats["accesses"] else 0.0

    def precharge_all(self) -> None:
        """Close every open row (models a refresh interval boundary)."""
        for bank in self._banks:
            bank.precharge()

    @property
    def banks(self) -> int:
        return len(self._banks)


def typical_latencies(timing: DramTimingConfig, cpu_mhz: int) -> dict:
    """CPU-cycle latencies of the three access classes, for documentation.

    Handy when sanity-checking configuration tables: e.g. with the paper's
    stacked-DRAM parameters at a 4 GHz core a row hit costs ~70 cycles.
    """
    burst = -(-addr.CACHE_LINE_SIZE // max(1, timing.bus_bits // 8 * 2))
    base = timing.controller_cycles + burst
    return {
        "row_hit": timing.cpu_cycles(base + timing.tcas, cpu_mhz),
        "row_miss": timing.cpu_cycles(base + timing.trcd + timing.tcas, cpu_mhz),
        "row_conflict": timing.cpu_cycles(
            base + timing.trp + timing.trcd + timing.tcas, cpu_mhz),
    }
