"""Native (1-D) hardware page-table walker.

Used directly in bare-metal mode and as the host-dimension helper of the
nested walker.  Every PTE reference goes through the caller-supplied
``pte_access`` callback (the data-cache hierarchy), so walk cost reflects
PTE caching exactly as in the baseline the paper measures against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...common import addr
from ...common.errors import AddressError
from ...common.stats import StatGroup
from ...obs import events
from ...obs.tracer import NULL_TRACER
from .page_table import LeafMapping, RadixPageTable
from .walk_cache import PagingStructureCache

#: PTE access callback: physical address -> CPU cycles.
PteAccess = Callable[[int], int]


@dataclass(frozen=True)
class WalkOutcome:
    """Timing and result of one table walk."""

    cycles: int
    memory_refs: int
    leaf: LeafMapping

    def translate(self, vaddr: int) -> int:
        return self.leaf.translate(vaddr)


class NativeWalker:
    """Walks one radix table, accelerated by a paging-structure cache."""

    def __init__(self, page_table: RadixPageTable, psc: PagingStructureCache,
                 pte_access: PteAccess, stats: StatGroup,
                 tracer=NULL_TRACER) -> None:
        self.page_table = page_table
        self.psc = psc
        self._pte_access = pte_access
        self.stats = stats
        self.trace = tracer

    def walk(self, vaddr: int) -> WalkOutcome:
        """Translate ``vaddr``; cycles include PSC lookup and PTE accesses."""
        start_level, table_base, cycles = self.psc.lookup(vaddr)
        try:
            if table_base is None:
                steps, leaf = self.page_table.walk(vaddr)
            else:
                steps, leaf = self.page_table.walk_from(vaddr, start_level, table_base)
        except AddressError:
            # Stale PSC entry (mapping changed under it): retry from root.
            self.stats.inc("psc_stale")
            self.psc.invalidate(vaddr)
            steps, leaf = self.page_table.walk(vaddr)
        tr = self.trace
        refs = 0
        for step in steps:
            step_cycles = self._pte_access(step.pte_paddr)
            cycles += step_cycles
            refs += 1
            if tr.active:
                tr.emit(events.WALK_STEP, cycles=step_cycles, dim="native",
                        level=step.level)
        self._refill_psc(vaddr, leaf)
        self.stats.inc("walks")
        self.stats.inc("walk_cycles", cycles)
        self.stats.inc("walk_refs", refs)
        return WalkOutcome(cycles=cycles, memory_refs=refs, leaf=leaf)

    def _refill_psc(self, vaddr: int, leaf: LeafMapping) -> None:
        """Cache the table bases this walk discovered (deepest wins next time)."""
        deepest = 2 if leaf.large else 1
        for level in range(deepest, addr.RADIX_LEVELS):
            base = self.page_table.table_base(vaddr, level)
            if base is not None:
                self.psc.fill(vaddr, level, base)
