"""Frozen pre-rewrite substrate for the counter-equivalence oracle.

Every module in this package is a **verbatim copy** (imports adjusted
for the package location, nothing else) of the implementation the
repository shipped before the fast-path engine rewrite:

========================  =======================================
module                    frozen copy of
========================  =======================================
``cache``                 ``repro/cache/cache.py``
``hierarchy``             ``repro/cache/hierarchy.py``
``bank``                  ``repro/dram/bank.py``
``channel``               ``repro/dram/channel.py``
``page_table``            ``repro/paging/page_table.py``
``walk_cache``            ``repro/paging/walk_cache.py``
``walker``                ``repro/paging/walker.py``
``nested``                ``repro/paging/nested.py``
``walkers``               ``repro/core/walkers.py``
``vm``                    ``repro/vmm/vm.py``
========================  =======================================

:mod:`repro.core.refcheck` builds its :class:`ReferenceMachine` from
these classes so the oracle exercises the *pre-optimization* data
caches, DRAM timing model, radix page tables, paging-structure caches
and nested walkers — not the live, optimized ones.  That makes the
differential equivalence test independent of the live substrate and
turns the throughput benchmark's ratio into an honest before/after
comparison on the same machine.

DO NOT optimize or "clean up" these modules.  Their slowness and their
exact operation order are the recorded baseline; any behavioural drift
here silently weakens the equivalence guarantee.  Modules the rewrite
did not touch (``repro.cache.replacement``, ``repro.dram.mapping``,
``repro.vmm.memory_manager``, ``repro.vmm.thp``, predictor, TSB,
POM-TLB addressing) are imported live on purpose: freezing them would
only duplicate code that has no optimized counterpart to diverge from.
"""
