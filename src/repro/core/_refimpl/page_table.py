"""x86-64-style 4-level radix page table.

One :class:`RadixPageTable` maps an input address space onto an output
address space — used twice in virtualized mode:

* the **guest** table maps gVA -> gPA, its table frames allocated from
  guest-physical memory, and
* the **host** table maps gPA -> hPA, its table frames allocated from
  host-physical memory.

Tables are modelled at entry granularity so the walkers can issue the
*exact* memory references of a hardware walk: every level touched yields
one PTE address (``table base + 8 * index``) that goes through the data
caches and DRAM.

Levels follow the paper's Figure 1 numbering: level 4 = PML4 (root),
3 = PDPT, 2 = PD, 1 = PT.  A 2 MiB mapping terminates at level 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ...common import addr
from ...common.errors import AddressError, TranslationFault

PTE_BYTES = 8

#: signature of a frame allocator: returns the base address of a fresh
#: 4 KiB frame in the table's output address space.
FrameAllocator = Callable[[], int]


@dataclass(frozen=True)
class LeafMapping:
    """Result of a successful walk: the mapped frame and its size."""

    frame: int  # frame base address in the output address space
    large: bool

    def translate(self, vaddr: int) -> int:
        """Apply the mapping to a full input address."""
        return self.frame | addr.page_offset(vaddr, self.large)


@dataclass(frozen=True)
class WalkStep:
    """One memory reference of a table walk."""

    level: int       # 4 = PML4 .. 1 = PT
    pte_paddr: int   # address of the entry in the output address space


class _TableNode:
    """One 4 KiB table: 512 entries, each a child node or a leaf."""

    __slots__ = ("base", "children", "leaves")

    def __init__(self, base: int) -> None:
        self.base = base
        self.children: Dict[int, "_TableNode"] = {}
        self.leaves: Dict[int, LeafMapping] = {}

    def entry_paddr(self, index: int) -> int:
        return self.base + PTE_BYTES * index


class RadixPageTable:
    """A 4-level radix tree with explicit table frame addresses."""

    def __init__(self, frame_allocator: FrameAllocator, name: str = "pt") -> None:
        self.name = name
        self._alloc = frame_allocator
        self._root = _TableNode(self._alloc())
        self._mapped_small = 0
        self._mapped_large = 0

    @property
    def root_base(self) -> int:
        """Address of the root (PML4) table frame — the CR3 analogue."""
        return self._root.base

    # -- construction --------------------------------------------------------

    def map_page(self, vaddr: int, frame: int, large: bool = False,
                 writable: bool = True) -> None:
        """Install a mapping for the page containing ``vaddr``.

        ``frame`` must be aligned to the page size.  Re-mapping an already
        mapped page replaces the leaf (the OS changing a mapping).
        """
        if frame & (addr.page_size(large) - 1):
            raise AddressError(
                f"frame {frame:#x} not aligned to {'2MiB' if large else '4KiB'}")
        leaf_level = 2 if large else 1
        node = self._root
        for level in range(addr.RADIX_LEVELS, leaf_level, -1):
            index = addr.radix_index(vaddr, level)
            if index in node.leaves:
                raise AddressError(
                    f"{self.name}: VA {vaddr:#x} already covered by a large page")
            child = node.children.get(index)
            if child is None:
                child = _TableNode(self._alloc())
                node.children[index] = child
            node = child
        index = addr.radix_index(vaddr, leaf_level)
        if large and index in node.children:
            raise AddressError(
                f"{self.name}: VA {vaddr:#x} already covered by small pages")
        if index not in node.leaves:
            if large:
                self._mapped_large += 1
            else:
                self._mapped_small += 1
        node.leaves[index] = LeafMapping(frame=frame, large=large)

    def unmap_page(self, vaddr: int, large: bool = False) -> bool:
        """Remove the leaf for the page containing ``vaddr``."""
        leaf_level = 2 if large else 1
        node = self._root
        for level in range(addr.RADIX_LEVELS, leaf_level, -1):
            node = node.children.get(addr.radix_index(vaddr, level))
            if node is None:
                return False
        index = addr.radix_index(vaddr, leaf_level)
        if index in node.leaves:
            del node.leaves[index]
            if large:
                self._mapped_large -= 1
            else:
                self._mapped_small -= 1
            return True
        return False

    # -- walking ------------------------------------------------------------

    def walk(self, vaddr: int) -> Tuple[List[WalkStep], LeafMapping]:
        """Full walk from the root; returns the steps and the leaf.

        Raises :class:`TranslationFault` when the address is unmapped.
        """
        return self.walk_from(vaddr, addr.RADIX_LEVELS, self._root.base)

    def walk_from(self, vaddr: int, start_level: int,
                  table_base: int) -> Tuple[List[WalkStep], LeafMapping]:
        """Walk starting at ``start_level`` (a PSC hit skips upper levels).

        ``table_base`` must be the base of the level-``start_level`` table
        covering ``vaddr`` — i.e. what the PSC cached.
        """
        node = self._node_at(vaddr, start_level, table_base)
        steps: List[WalkStep] = []
        level = start_level
        while True:
            index = addr.radix_index(vaddr, level)
            steps.append(WalkStep(level=level, pte_paddr=node.entry_paddr(index)))
            leaf = node.leaves.get(index)
            if leaf is not None:
                if (leaf.large and level != 2) or (not leaf.large and level != 1):
                    raise AddressError(
                        f"{self.name}: leaf at wrong level {level}")
                return steps, leaf
            child = node.children.get(index)
            if child is None:
                raise TranslationFault(vaddr, space=self.name)
            node = child
            level -= 1

    def table_base(self, vaddr: int, level: int) -> Optional[int]:
        """Base address of the level-``level`` table covering ``vaddr``.

        Used when refilling a paging-structure cache after a walk.  The
        returned table is the one whose entries are indexed at ``level``;
        ``None`` when the covering table does not exist (or ``level`` is
        the root, which needs no cache).
        """
        node = self._root
        for lvl in range(addr.RADIX_LEVELS, level, -1):
            node = node.children.get(addr.radix_index(vaddr, lvl))
            if node is None:
                return None
        return node.base

    def _node_at(self, vaddr: int, level: int, expected_base: int) -> _TableNode:
        node = self._root
        for lvl in range(addr.RADIX_LEVELS, level, -1):
            node = node.children.get(addr.radix_index(vaddr, lvl))
            if node is None:
                raise TranslationFault(vaddr, space=self.name)
        if node.base != expected_base:
            raise AddressError(
                f"{self.name}: stale table base {expected_base:#x} at level {level}")
        return node

    # -- functional lookup (no timing) ----------------------------------------

    def lookup(self, vaddr: int) -> Optional[LeafMapping]:
        """Translate without recording steps; ``None`` when unmapped."""
        node = self._root
        for level in range(addr.RADIX_LEVELS, 0, -1):
            index = addr.radix_index(vaddr, level)
            leaf = node.leaves.get(index)
            if leaf is not None:
                return leaf
            node = node.children.get(index)
            if node is None:
                return None
        return None

    # -- introspection -----------------------------------------------------

    @property
    def mapped_pages(self) -> Tuple[int, int]:
        """(small, large) leaf counts."""
        return self._mapped_small, self._mapped_large

    def table_count(self) -> int:
        """Number of table frames allocated (root included)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count
