"""Vectorized columnar batch-replay engine (the ``pomtlb[fast]`` path).

:func:`try_replay` replays packed workload streams through the same
machine state ``Machine.run``'s scalar loop drives, but restructured
around numpy:

1. **Global merge order up front.**  ``interleave_batched`` is a k-way
   merge by ``(icount, core, source)`` over per-stream non-decreasing
   icount columns, which is exactly a stable lexicographic sort of the
   concatenated columns.  One ``np.lexsort`` replaces the heap walk and
   yields the whole replay order as an index array.
2. **Pure per-reference values vectorized.**  For each slice of the
   global order, whole stream columns are resolved at once: page lookup
   (binary search over sorted VPN arrays), packed TLB keys, L1-TLB set
   indices (the ``SramTlb`` hash reduces to ``vpn ^ ctx_hash`` with a
   per-stream constant), physical addresses, and cache set/tag splits
   for every data-cache level.
3. **Live-state replay loop.**  A tight Python loop walks the slice in
   exact global order and checks the *live* TLB/cache dicts — so no
   precomputed hit/miss classification can go stale — inlining the
   branch outcomes the scalar engine produces (L1/L2 TLB hits, the full
   L1D/L2D/L3D/DRAM data cascade) as plain dict operations, and
   delegating everything else (page walks, POM/TSB/shared-L2 miss
   resolution, demand paging, first-slice stream debuts) to the
   unmodified scalar calls at the exact same position in the order.

Bit-identity with the scalar engine (and hence with the frozen
``repro.core.refcheck`` reference) is by construction: every state
mutation and counter update either *is* the scalar code path, or is a
line-by-line inline of it operating on the same live objects in the
same order.  ``tests/integration/test_engine_equivalence.py`` enforces
this for all five schemes.

The engine declines (returns None, recording the reason on the machine)
whenever any feature needs the scalar per-reference hook order:
tracing, windowed metrics, fault injection, the consistency verifier,
write-back modeling, TLB-priority victim selection, tuple (non-packed)
streams, or numpy being unavailable.  ``Machine.run`` then falls back
to the scalar loop, which remains the semantics of record.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

try:  # numpy is the optional ``pomtlb[fast]`` extra, never a hard dep
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via tests' stubbing
    _np = None

from ..cache.cache import DATA
from ..common import addr
from ..tlb.entry import TlbEntry

HAS_NUMPY = _np is not None

_SMALL_SHIFT = addr.SMALL_PAGE_SHIFT
_LARGE_SHIFT = addr.LARGE_PAGE_SHIFT
_SMALL_MASK = addr.SMALL_PAGE_SIZE - 1
_LARGE_MASK = addr.LARGE_PAGE_SIZE - 1

#: Key packing shifts the VPN left by 33; virtual addresses at or above
#: 2**42 would overflow the signed-64 key column, so such stream slices
#: replay through the scalar path (the packed trace format allows the
#: full u64 range).
_VADDR_SAFE_LIMIT = 1 << 42

#: References per global-order slice: large enough to amortize the numpy
#: kernel launches, small enough that the working arrays stay cache-hot.
_SLICE = 8192

_FALSEY = frozenset(("0", "false", "no", "off", ""))


def resolve_batch_flag(flag: Optional[bool] = None) -> bool:
    """Effective batch-enable: explicit flag wins, else ``POMTLB_BATCH``.

    The knob is an execution field — it can never change results, only
    which engine produces them — so it defaults to on and is excluded
    from campaign checkpoint keys.
    """
    if flag is not None:
        return bool(flag)
    raw = os.environ.get("POMTLB_BATCH")
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSEY


class _StreamState:
    """Per-stream hot-loop state: live dict handles, tallies, cursors."""

    __slots__ = (
        "core", "ctx", "ctx_hash", "touch", "lget", "sget",
        "large_pages", "small_pages", "translate", "resolve",
        "icounts", "vaddrs", "writebits", "np_va",
        "cursor", "prev_key", "prev_line",
        "lkeys", "lframes", "llen", "skeys", "sframes", "slen",
        "l1s_sets", "l1l_sets", "l1s_mask", "l1l_mask",
        "l1s_ways", "l1l_ways",
        "l2_sets", "l2_mask", "l2_ways",
        "l1_lat", "l12_lat",
        "d1_tags", "d1_ways", "d2_tags", "d2_ways",
        # counter slots (commit targets)
        "s_h1s", "s_h1l", "s_m1s", "s_m1l", "s_f1s", "s_f1l",
        "s_e1s", "s_e1l", "s_h2", "s_m2",
        "s_d1h", "s_d1m", "s_d1f", "s_d1e",
        "s_d2h", "s_d2m", "s_d2f", "s_d2ed", "s_d2et",
        # tallies (committed per slice / discarded at the warmup reset)
        "h1s", "h1l", "m1s", "m1l", "f1s", "f1l", "e1s", "e1l", "h2", "m2",
        "d1h", "d1m", "d1f", "d1e", "d2h", "d2m", "d2f", "d2ed", "d2et",
    )

    def __init__(self, machine, stream) -> None:
        # _stream_info creates the stream's VM/process lazily — calling
        # it here, at the stream's first replayed reference, keeps the
        # host-memory frame allocation order identical to the scalar
        # engine's first-chunk creation.
        core, ctx, large_pages, small_pages, touch_slow, cols = (
            machine._stream_info(stream))
        self.core = core
        self.ctx = ctx
        vm_id = (ctx >> 1) & 0xFFFF
        asid = (ctx >> 17) & 0xFFFF
        # SramTlb._set_index == (vpn ^ vm*0x9E37 ^ asid*0x85EB) & mask.
        self.ctx_hash = (vm_id * 0x9E37) ^ (asid * 0x85EB)
        self.touch = touch_slow
        self.large_pages = large_pages
        self.small_pages = small_pages
        self.lget = large_pages.get
        self.sget = small_pages.get
        self.translate = machine.scheme.translate_packed
        self.resolve = machine.scheme.resolve_packed
        icounts, vaddrs, writebits = cols
        self.icounts = icounts
        self.vaddrs = vaddrs
        self.writebits = writebits
        self.np_va = _np.frombuffer(vaddrs, dtype=_np.uint64)
        self.cursor = 0
        self.prev_key = -1
        self.prev_line = -1
        self.lkeys = self.lframes = None
        self.skeys = self.sframes = None
        self.llen = -1
        self.slen = -1
        tlbs = machine.scheme.cores[core]
        l1s, l1l, l2 = tlbs.l1_small, tlbs.l1_large, tlbs.l2
        self.l1s_sets, self.l1s_mask, self.l1s_ways = l1s.batch_view()
        self.l1l_sets, self.l1l_mask, self.l1l_ways = l1l.batch_view()
        self.l2_sets, self.l2_mask, self.l2_ways = l2.batch_view()
        self.l1_lat = tlbs.l1_latency
        self.l12_lat = tlbs.l1_latency + tlbs.l2_latency
        self.s_h1s, self.s_m1s = l1s._hits, l1s._misses
        self.s_f1s, self.s_e1s = l1s._fills, l1s._evictions
        self.s_h1l, self.s_m1l = l1l._hits, l1l._misses
        self.s_f1l, self.s_e1l = l1l._fills, l1l._evictions
        self.s_h2, self.s_m2 = l2._hits, l2._misses
        d1 = machine.hierarchy._l1[core]
        d2 = machine.hierarchy._l2[core]
        self.d1_tags, self.d1_ways = d1._tags, d1._ways
        self.d2_tags, self.d2_ways = d2._tags, d2._ways
        self.s_d1h, self.s_d1m = d1._data_hits, d1._data_misses
        self.s_d1f, self.s_d1e = d1._data_fills, d1._data_evictions
        self.s_d2h, self.s_d2m = d2._data_hits, d2._data_misses
        self.s_d2f = d2._data_fills
        self.s_d2ed, self.s_d2et = d2._data_evictions, d2._tlb_evictions
        (self.h1s) = (self.h1l) = (self.m1s) = (self.m1l) = 0
        self.f1s = self.f1l = self.e1s = self.e1l = self.h2 = self.m2 = 0
        self.d1h = self.d1m = self.d1f = self.d1e = 0
        self.d2h = self.d2m = self.d2f = self.d2ed = self.d2et = 0

    # -- page-cache maintenance (append-only dicts, rebuilt on growth) ---

    def refresh_pages(self) -> None:
        """Sorted VPN/frame arrays for binary-search page resolution.

        Pages are only ever *added* during a run, so a stale cache can
        only produce false negatives — which the replay loop resolves
        through the live dicts — never false positives.
        """
        lp = self.large_pages
        if len(lp) != self.llen:
            self.llen = len(lp)
            self.lkeys, self.lframes = _sorted_pages(lp)
        sp = self.small_pages
        if len(sp) != self.slen:
            self.slen = len(sp)
            self.skeys, self.sframes = _sorted_pages(sp)

    def zero_tallies(self) -> None:
        self.h1s = self.h1l = self.m1s = self.m1l = 0
        self.f1s = self.f1l = self.e1s = self.e1l = self.h2 = self.m2 = 0
        self.d1h = self.d1m = self.d1f = self.d1e = 0
        self.d2h = self.d2m = self.d2f = self.d2ed = self.d2et = 0

    def commit_tallies(self) -> None:
        """Flush per-slice counts into the shared counter slots.

        Addition into the slots commutes with every interleaved direct
        update the slow paths made, so deferring the fast-path counts to
        slice granularity is value-identical to the scalar per-reference
        updates.
        """
        for n, slot in (
                (self.h1s, self.s_h1s), (self.h1l, self.s_h1l),
                (self.m1s, self.s_m1s), (self.m1l, self.s_m1l),
                (self.f1s, self.s_f1s), (self.f1l, self.s_f1l),
                (self.e1s, self.s_e1s), (self.e1l, self.s_e1l),
                (self.h2, self.s_h2), (self.m2, self.s_m2),
                (self.d1h, self.s_d1h), (self.d1m, self.s_d1m),
                (self.d1f, self.s_d1f), (self.d1e, self.s_d1e),
                (self.d2h, self.s_d2h), (self.d2m, self.s_d2m),
                (self.d2f, self.s_d2f), (self.d2ed, self.s_d2ed),
                (self.d2et, self.s_d2et)):
            if n:
                slot.value += n
                slot.touched = True
        self.zero_tallies()


def _sorted_pages(pages: Dict):
    """(sorted VPN array, matching host-frame array) of one page dict."""
    n = len(pages)
    if not n:
        return None, None
    keys = _np.fromiter(pages.keys(), dtype=_np.int64, count=n)
    frames = _np.fromiter((page[2] for page in pages.values()),
                          dtype=_np.int64, count=n)
    order = _np.argsort(keys, kind="stable")
    return keys[order], frames[order]


def _decline(machine, reason: str):
    machine.batch_fallback_reason = reason
    return None


def try_replay(machine, streams, max_references, warmup_references):
    """Batched replay; returns the run tally tuple, or None to decline.

    On success the return value is ``(references, translation_cycles,
    data_cycles, last_icount, warmup_boundary)`` — exactly the loop
    outputs ``Machine.run`` folds into a :class:`SimulationResult`.
    """
    if _np is None:
        return _decline(machine, "numpy unavailable (install pomtlb[fast])")
    obs = machine.obs
    if obs.tracer.enabled:
        return _decline(machine, "event tracing enabled")
    if obs.windows is not None:
        return _decline(machine, "windowed metrics enabled")
    if machine.faults.active:
        return _decline(machine, "fault injection active")
    if machine.verifier.active:
        return _decline(machine, "consistency verifier armed")
    if machine.config.writeback_modeling:
        return _decline(machine, "writeback modeling enabled")
    hierarchy = machine.hierarchy
    if hierarchy._l3.tlb_priority:
        return _decline(machine, "tlb_priority victim selection enabled")
    scheme = machine.scheme
    if not getattr(scheme, "batch_l1_inline", False):
        return _decline(machine, "scheme has a custom L1 front end")
    for attr in ("pom", "tsb", "shared"):
        backing = getattr(scheme, attr, None)
        if backing is not None and not getattr(type(backing), "L1_PRIVATE",
                                               False):
            return _decline(
                machine, f"{attr} backing lacks the L1_PRIVATE contract")
    live = [s for s in streams if len(s)]
    if not live:
        return _decline(machine, "no non-empty streams")
    cols = []
    for stream in live:
        columns = getattr(stream, "columns", None)
        col = columns() if columns is not None else None
        if col is None:
            return _decline(machine, "tuple streams (pack with pomtlb[fast])")
        cols.append(col)

    # -- global merge order -------------------------------------------------
    counts = [len(s) for s in live]
    ic_parts = [_np.frombuffer(c[0], dtype=_np.uint64, count=n)
                for c, n in zip(cols, counts)]
    for part in ic_parts:
        if part.size > 1 and bool(_np.any(part[1:] < part[:-1])):
            return _decline(machine, "non-monotonic icount column")
    ic = _np.concatenate(ic_parts)
    total = int(ic.size)
    cores_arr = _np.repeat(
        _np.array([s.core for s in live], dtype=_np.int16),
        _np.array(counts))
    src_arr = _np.repeat(
        _np.arange(len(live), dtype=_np.int16), _np.array(counts))
    offsets = _np.zeros(len(live), dtype=_np.int64)
    _np.cumsum(_np.array(counts[:-1], dtype=_np.int64), out=offsets[1:])
    # The heap merge pops by (icount, core, source-index) with ties —
    # only possible within one stream — resolved in stream order; a
    # stable lexsort of the concatenated columns is the same sequence.
    order = _np.lexsort((src_arr, cores_arr, ic))
    sid_g = src_arr[order]
    cores_g = cores_arr[order]
    ic_g = ic[order]

    # Two streams on one core interleave on the same L1 structures, so
    # a same-stream repeat is no longer a guaranteed L1 hit.
    collapse_ok = len({s.core for s in live}) == len(live)

    states: List[Optional[_StreamState]] = [None] * len(live)
    # A stream whose VM and process already exist (this machine ran
    # before — the warm-replay case) gets its state built up front:
    # _stream_info is side-effect-free then, so no frame-allocation
    # order is at stake and the debut slice vectorizes like any other.
    # Missing VMs/processes must still be created at the global position
    # of the stream's first reference, inside the loop below.
    virtualized = machine.config.virtualized
    for s, stream in enumerate(live):
        if virtualized:
            vm = machine.host.vms.get(stream.vm_id)
            if vm is not None and stream.asid in vm.processes:
                states[s] = _StreamState(machine, stream)
        elif stream.asid in machine._native_processes:
            states[s] = _StreamState(machine, stream)

    # -- hierarchy constants -----------------------------------------------
    d1_any = hierarchy._l1[0]
    d2_any = hierarchy._l2[0]
    d3 = hierarchy._l3
    d1_line_shift, d1_set_mask = d1_any._line_shift, d1_any._set_mask
    d1_set_shift = d1_any._set_shift
    d2_line_shift, d2_set_mask = d2_any._line_shift, d2_any._set_mask
    d2_set_shift = d2_any._set_shift
    d3_line_shift, d3_set_mask = d3._line_shift, d3._set_mask
    d3_set_shift = d3._set_shift
    d3_tags, d3_ways = d3._tags, d3._ways
    s_d3h, s_d3m = d3._data_hits, d3._data_misses
    s_d3f = d3._data_fills
    s_d3ed, s_d3et = d3._data_evictions, d3._tlb_evictions
    l1d_lat = hierarchy._l1_latency
    l2d_lat = hierarchy._l2_latency
    l3d_lat = hierarchy._l3_latency
    dram_access = hierarchy.main_dram.access
    l4 = hierarchy.l4
    data_access = hierarchy.data_access
    l2_inline = bool(getattr(scheme, "batch_l2_inline", False))

    histograms = obs.histograms
    rec_t = rec_p = None
    if histograms is not None:
        rec_t = histograms["translation_cycles"].record
        rec_p = histograms["penalty_cycles"].record
    verifier = machine.verifier

    # -- run-level accumulators (mirrors the scalar loop's locals) ----------
    references = 0
    translation_cycles = 0
    data_cycles = 0
    if isinstance(warmup_references, int):
        warmup_remaining: Dict[int, int] = (
            {-1: warmup_references} if warmup_references else {})
    else:
        warmup_remaining = {core: count for core, count
                            in warmup_references.items() if count > 0}
    warming = bool(warmup_remaining)
    warmup_boundary: Dict[int, int] = {}
    last_icount: Dict[int, int] = {}
    stop_at = max_references if max_references is not None else float("inf")
    stopped = False
    nh1 = nh2 = 0  # pending histogram counts (l1-hit / l2-hit latencies)
    l1_lat_hist = l12_lat_hist = 0
    processed = 0

    int64 = _np.int64
    flatnonzero = _np.flatnonzero
    searchsorted = _np.searchsorted

    g0 = 0
    while g0 < total and not stopped:
        g1 = min(g0 + _SLICE, total)
        n = g1 - g0
        c_idx = order[g0:g1]
        sid_np = sid_g[g0:g1]
        lidx_np = c_idx - offsets[sid_np]
        # Slice-order value arrays; key -1 = replay through the scalar
        # path, -2/-3 = collapsed duplicate (small/large).
        ks_a = _np.full(n, -1, dtype=int64)
        t1_a = _np.zeros(n, dtype=int64)
        ds1_a = _np.zeros(n, dtype=int64)
        dt1_a = _np.zeros(n, dtype=int64)
        t2_a = _np.zeros(n, dtype=int64)
        ppn_a = _np.zeros(n, dtype=int64)
        hpa_a = _np.zeros(n, dtype=int64)
        ds2_a = _np.zeros(n, dtype=int64)
        dt2_a = _np.zeros(n, dtype=int64)
        ds3_a = _np.zeros(n, dtype=int64)
        dt3_a = _np.zeros(n, dtype=int64)

        per_stream = _np.bincount(sid_np, minlength=len(live))
        debut = [states[s] is None for s in range(len(live))]
        for s in flatnonzero(per_stream):
            st = states[s]
            cnt = int(per_stream[s])
            if st is None:
                # Stream debut: its VM/process must be created at the
                # exact global position of its first reference (frame
                # allocation order!), so the whole debut slice replays
                # scalar and the state is built inside the loop below.
                continue
            cur = st.cursor
            st.cursor = cur + cnt
            pos = flatnonzero(sid_np == s)
            vv_u = st.np_va[cur:cur + cnt]
            if int(vv_u.max()) >= _VADDR_SAFE_LIMIT:
                if collapse_ok:
                    st.prev_key = -1  # break the duplicate chain
                continue
            vv = vv_u.astype(int64)
            st.refresh_pages()
            lvpn = vv >> _LARGE_SHIFT
            svpn = vv >> _SMALL_SHIFT
            lk = st.lkeys
            if lk is not None:
                li = searchsorted(lk, lvpn)
                _np.minimum(li, lk.size - 1, out=li)
                lm = lk[li] == lvpn
                lframe = st.lframes[li]
            else:
                lm = _np.zeros(cnt, dtype=bool)
                lframe = None
            sk = st.skeys
            if sk is not None:
                si = searchsorted(sk, svpn)
                _np.minimum(si, sk.size - 1, out=si)
                sm = sk[si] == svpn
                sframe = st.sframes[si]
            else:
                sm = _np.zeros(cnt, dtype=bool)
                sframe = None
            resolved = lm | sm
            frame = _np.zeros(cnt, dtype=int64)
            if lframe is not None:
                _np.copyto(frame, lframe, where=lm)
            if sframe is not None:
                _np.copyto(frame, sframe, where=sm & ~lm)
            vpn = _np.where(lm, lvpn, svpn)
            hpa = frame | _np.where(lm, vv & _LARGE_MASK, vv & _SMALL_MASK)
            lmi = lm.astype(int64)
            key = _np.where(resolved, (vpn << 33) | st.ctx | lmi, -1)
            hashed = vpn ^ st.ctx_hash
            t1 = hashed & _np.where(lm, st.l1l_mask, st.l1s_mask)
            line1 = hpa >> d1_line_shift
            if collapse_ok:
                prev_k = _np.empty(cnt, dtype=int64)
                prev_k[0] = st.prev_key
                prev_k[1:] = key[:-1]
                line1_m = _np.where(resolved, line1, -1)
                prev_l = _np.empty(cnt, dtype=int64)
                prev_l[0] = st.prev_line
                prev_l[1:] = line1_m[:-1]
                dup = (key >= 0) & (key == prev_k) & (line1_m == prev_l)
                st.prev_key = int(key[-1])
                st.prev_line = int(line1_m[-1])
                out_key = _np.where(dup, -2 - lmi, key)
            else:
                out_key = key
            ks_a[pos] = out_key
            t1_a[pos] = t1
            ds1_a[pos] = line1 & d1_set_mask
            dt1_a[pos] = line1 >> d1_set_shift
            t2_a[pos] = hashed & st.l2_mask
            ppn_a[pos] = frame >> _np.where(lm, _LARGE_SHIFT, _SMALL_SHIFT)
            hpa_a[pos] = hpa
            line2 = hpa >> d2_line_shift
            ds2_a[pos] = line2 & d2_set_mask
            dt2_a[pos] = line2 >> d2_set_shift
            line3 = hpa >> d3_line_shift
            ds3_a[pos] = line3 & d3_set_mask
            dt3_a[pos] = line3 >> d3_set_shift

        # Everything the replay loop reads per reference becomes a plain
        # list up front: Python-int indexing is several times cheaper
        # than numpy scalar extraction at this call rate.
        ks = ks_a.tolist()
        t1s = t1_a.tolist()
        ds1s = ds1_a.tolist()
        dt1s = dt1_a.tolist()
        t2s = t2_a.tolist()
        ppns = ppn_a.tolist()
        hpas = hpa_a.tolist()
        ds2s = ds2_a.tolist()
        dt2s = dt2_a.tolist()
        ds3s = ds3_a.tolist()
        dt3s = dt3_a.tolist()
        sids = sid_np.tolist()
        lidxs = lidx_np.tolist()
        ic_l = ic_g[g0:g1].tolist() if warming else None

        j = 0
        while j < n:
            s = sids[j]
            st = states[s]
            if st is None:
                st = states[s] = _StreamState(machine, live[s])
                st.cursor = lidxs[j]
            if warming:
                if warmup_remaining:
                    wkey = -1 if -1 in warmup_remaining else st.core
                    if wkey in warmup_remaining:
                        warmup_remaining[wkey] -= 1
                        if warmup_remaining[wkey] <= 0:
                            del warmup_remaining[wkey]
                else:
                    warming = False
                    references = 0
                    translation_cycles = 0
                    data_cycles = 0
                    # Pre-boundary fast-path counts are discarded, not
                    # committed: reset() zeroes values *and* touched
                    # flags, so committing first would be equivalent.
                    for other in states:
                        if other is not None:
                            other.zero_tallies()
                    nh1 = nh2 = 0
                    machine.stats.reset()
                    obs.reset()
                    verifier.reset()
                    warmup_boundary = dict(last_icount)
            k = ks[j]
            if k >= 0:
                large = k & 1
                tset = (st.l1l_sets if large else st.l1s_sets)[t1s[j]]
                entry = tset.pop(k, None)
                if entry is not None:  # L1 TLB hit (inline lookup)
                    tset[k] = entry
                    if large:
                        st.h1l += 1
                    else:
                        st.h1s += 1
                    nh1 += 1
                    tcy = st.l1_lat
                elif l2_inline and k in (l2set := st.l2_sets[t2s[j]]):
                    # L1 miss, private-L2 hit: inline of the base
                    # translate_packed prefix (counters + MRU + L1 fill).
                    if large:
                        st.m1l += 1
                        ways = st.l1l_ways
                    else:
                        st.m1s += 1
                        ways = st.l1s_ways
                    l2set[k] = l2set.pop(k)
                    st.h2 += 1
                    if len(tset) >= ways:
                        del tset[next(iter(tset))]
                        if large:
                            st.e1l += 1
                        else:
                            st.e1s += 1
                    tset[k] = TlbEntry(ppns[j])
                    if large:
                        st.f1l += 1
                    else:
                        st.f1s += 1
                    nh2 += 1
                    tcy = st.l12_lat
                    l12_lat_hist = tcy
                elif l2_inline:
                    # Full TLB miss with the base front end: tally both
                    # probe misses here (the peeks above were
                    # side-effect-free) and hand the precomputed key +
                    # set indices straight to the scheme's miss tail —
                    # no re-hash, no re-probe of either TLB.
                    li = lidxs[j]
                    va = st.vaddrs[li]
                    if large:
                        st.m1l += 1
                        page = st.lget(va >> _LARGE_SHIFT)
                    else:
                        st.m1s += 1
                        page = st.sget(va >> _SMALL_SHIFT)
                    st.m2 += 1
                    tcy, pen = st.resolve(st.core, st.ctx, va, page,
                                          k, t1s[j], t2s[j])
                    if rec_t is not None:
                        rec_t(tcy)
                        rec_p(pen)
                else:
                    # Shared-L2 scheme: its shadow + shared-array
                    # bookkeeping replaces the private L2, so the scalar
                    # path re-probes and counts everything itself.
                    li = lidxs[j]
                    va = st.vaddrs[li]
                    page = (st.lget(va >> _LARGE_SHIFT) if large
                            else st.sget(va >> _SMALL_SHIFT))
                    res = st.translate(st.core, st.ctx, va, page)
                    tcy = res[0]
                    if rec_t is not None:
                        rec_t(tcy)
                        if res[1]:
                            rec_p(res[2])
                l1_lat_hist = st.l1_lat
                translation_cycles += tcy
                # -- data access, inlined over the live cache dicts ----
                dtag = dt1s[j]
                d1set = st.d1_tags[ds1s[j]]
                kind = d1set.pop(dtag, None)
                if kind is not None:  # L1D hit
                    d1set[dtag] = kind
                    st.d1h += 1
                    data_cycles += l1d_lat
                else:
                    st.d1m += 1
                    d2set = st.d2_tags[ds2s[j]]
                    dtag2 = dt2s[j]
                    kind = d2set.pop(dtag2, None)
                    if kind is not None:  # L2D hit + L1 fill
                        d2set[dtag2] = kind
                        st.d2h += 1
                        if len(d1set) >= st.d1_ways:
                            # L1D never holds TLB-kind lines (they only
                            # enter via tlb_line_fill into L2/L3).
                            del d1set[next(iter(d1set))]
                            st.d1e += 1
                        d1set[dtag] = DATA
                        st.d1f += 1
                        data_cycles += l2d_lat
                    else:
                        st.d2m += 1
                        d3set = d3_tags[ds3s[j]]
                        dtag3 = dt3s[j]
                        kind = d3set.pop(dtag3, None)
                        if kind is not None:  # L3D hit + L2/L1 fills
                            d3set[dtag3] = kind
                            s_d3h.value += 1
                            s_d3h.touched = True
                            dcy = l3d_lat
                        else:
                            s_d3m.value += 1
                            s_d3m.touched = True
                            paddr = hpas[j]
                            if l4 is None:
                                dcy = l3d_lat + dram_access(paddr)
                            else:
                                probe = l4.access(paddr)
                                if probe.hit:
                                    dcy = l3d_lat + probe.cycles
                                else:
                                    dcy = l3d_lat + max(probe.cycles,
                                                        dram_access(paddr))
                                    l4.fill(paddr)
                            if len(d3set) >= d3_ways:
                                victim = next(iter(d3set))
                                if d3set.pop(victim) == DATA:
                                    s_d3ed.value += 1
                                    s_d3ed.touched = True
                                else:
                                    s_d3et.value += 1
                                    s_d3et.touched = True
                            d3set[dtag3] = DATA
                            s_d3f.value += 1
                            s_d3f.touched = True
                        if len(d2set) >= st.d2_ways:
                            victim = next(iter(d2set))
                            if d2set.pop(victim) == DATA:
                                st.d2ed += 1
                            else:
                                st.d2et += 1
                        d2set[dtag2] = DATA
                        st.d2f += 1
                        if len(d1set) >= st.d1_ways:
                            del d1set[next(iter(d1set))]
                            st.d1e += 1
                        d1set[dtag] = DATA
                        st.d1f += 1
                        data_cycles += dcy
            elif k == -1:
                # Scalar fallback: debut/unresolved/huge-address refs run
                # the untouched per-reference path at this exact
                # position in the global order.
                li = lidxs[j]
                va = st.vaddrs[li]
                page = st.lget(va >> _LARGE_SHIFT)
                if page is None:
                    page = st.sget(va >> _SMALL_SHIFT)
                    if page is None:
                        page = st.touch(va)
                res = st.translate(st.core, st.ctx, va, page)
                translation_cycles += res[0]
                hpa = page[2] | (va & (_LARGE_MASK if page[0]
                                       else _SMALL_MASK))
                data_cycles += data_access(
                    st.core, hpa,
                    is_write=bool((st.writebits[li >> 3] >> (li & 7)) & 1))
                if rec_t is not None:
                    rec_t(res[0])
                    if res[1]:
                        rec_p(res[2])
                l1_lat_hist = st.l1_lat
            else:
                # Collapsed duplicate (same stream, same key, same L1D
                # line as its processed predecessor): guaranteed L1-TLB
                # and L1D hits whose only effects are counters and
                # already-MRU recency refreshes.
                if k == -3:
                    st.h1l += 1
                else:
                    st.h1s += 1
                st.d1h += 1
                nh1 += 1
                l1_lat_hist = st.l1_lat
                translation_cycles += st.l1_lat
                data_cycles += l1d_lat
            references += 1
            if warming:
                last_icount[st.core] = ic_l[j]
            j += 1
            if references >= stop_at:
                stopped = True
                break
        processed = g0 + j
        # Streams that debuted inside this slice replayed scalar without
        # advancing their column cursor; align it for the next slice.
        for s in flatnonzero(per_stream):
            st = states[s]
            if debut[s] and st is not None:
                st.cursor = int(lidx_np[flatnonzero(sid_np == s)[-1]]) + 1
        g0 = g1

    # -- commit pending fast-path counts ------------------------------------
    for st in states:
        if st is not None:
            st.commit_tallies()
    if rec_t is not None:
        if nh1:
            histograms["translation_cycles"].record_many(l1_lat_hist, nh1)
        if nh2:
            histograms["translation_cycles"].record_many(l12_lat_hist, nh2)

    if warming:
        raise ValueError(
            f"warmup ({warmup_references}) consumed the whole trace")

    # Final per-core last-icounts over everything processed: identical
    # to the scalar loop's chunk-end updates (last processed reference
    # of each core wins; warm-up-only cores keep their warm-up value).
    if processed:
        pc = cores_g[:processed]
        for core in _np.unique(pc):
            idx = flatnonzero(pc == core)[-1]
            last_icount[int(core)] = int(ic_g[idx])
    machine.batch_fallback_reason = None
    return (references, translation_cycles, data_cycles,
            last_icount, warmup_boundary)
