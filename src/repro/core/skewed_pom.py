"""Unified skew-associative POM-TLB (paper footnote 1, future work).

The paper partitions the POM-TLB by page size and leaves "unified
designs with more complex addressing schemes such as skew-associativity"
to future work.  This module implements that design so the trade-off can
be measured:

* **one** physical table holds both page sizes (no static split to get
  wrong);
* each of the 4 ways hashes the key with a *different* function
  (Seznec-style skewing), which breaks the conflict pathologies of
  modulo indexing;
* the cost: a lookup no longer maps to a single 64 B line.  Each way's
  candidate slot lives in a different line, so a probe may fetch up to
  ``ways`` lines through the caches/DRAM, where the partitioned design
  always fetches exactly one.  (This serialization is exactly the
  "sophisticated design effort" the paper dodges.)

Slots are 16 B entries, four to a 64 B line within each way's region of
the address range, so the structure is memory-mapped and cacheable like
the baseline design.

Keys are packed integers (:func:`repro.tlb.entry.pack_key`); the way
hashes extract the (vpn, vm, asid, large) fields with shifts and masks
and mix them exactly as the seed-era NamedTuple version did, so every
slot placement — and therefore every counter — is unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..common import addr
from ..common.config import PomTlbConfig, SystemConfig
from ..common.stats import StatGroup
from ..dram import DramChannel
from ..tlb.entry import KEY_VM_FIELD_MASK, TlbEntry, pack_context, pack_key

#: Distinct odd multipliers, one per way (Knuth-style hashing).
_WAY_MIX = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F)
_VM_SPREAD = 0x9E37


class SkewedPomTlb:
    """Drop-in POM-TLB variant with unified storage and skewed ways."""

    #: Batch-replay contract (:mod:`repro.core.batch`): resolving a miss
    #: through this structure never touches another core's L1 TLB or L1
    #: data cache (see :class:`repro.core.pom_tlb.PomTlb`).
    L1_PRIVATE = True

    def __init__(self, config: SystemConfig, stats) -> None:
        self.config: PomTlbConfig = config.pom_tlb
        self.stats: StatGroup = stats.group("pom_tlb")
        self.dram = DramChannel(config.stacked_dram, config.cpu_mhz,
                                stats.group("stacked_dram"))
        self._ways = self.config.ways
        total_entries = self.config.size_bytes // self.config.entry_bytes
        self._slots_per_way = total_entries // self._ways
        if not addr.is_power_of_two(self._slots_per_way):
            raise ValueError("skewed POM-TLB needs power-of-two slots/way")
        self._mask = self._slots_per_way - 1
        self._way_bytes = self.config.size_bytes // self._ways
        # (way, slot) -> (packed key, entry, last-touch stamp)
        self._slots: Dict[Tuple[int, int], Tuple[int, TlbEntry, int]] = {}
        self._clock = 0
        # key -> ((way, slot, line_addr), ...): the per-key geometry is
        # pure arithmetic, recomputed up to ~10x per miss by the probe
        # loop, the bypass trainer and insert(); memoize it per key.
        self._geom: Dict[int, Tuple[Tuple[int, int, int], ...]] = {}
        # Indexed by the packed key's large bit (``key & 1``).
        self._hits = (self.stats.counter("hits_small"),
                      self.stats.counter("hits_large"))
        self._misses = (self.stats.counter("misses_small"),
                        self.stats.counter("misses_large"))
        self._fills = self.stats.counter("fills")
        self._evictions = self.stats.counter("evictions")

    # -- addressing -----------------------------------------------------------

    def _hash(self, key: int, way: int) -> int:
        # Same mix as the seed-era TlbKey version, fields unpacked inline.
        vpn = key >> 33
        mixed = ((vpn * _WAY_MIX[way]) ^ (vpn >> 13)
                 ^ (((key >> 1) & 0xFFFF) * _VM_SPREAD))
        mixed ^= ((key >> 17) & 0xFFFF) * 0x85EB
        if key & 1:
            mixed ^= 0x5A5A5A5A  # both sizes coexist in one table
        return mixed & self._mask

    def candidates(self, key: int) -> Tuple[Tuple[int, int, int], ...]:
        """``(way, slot, line_addr)`` per way, in probe order, memoized.

        The way hashes share every term except ``vpn * _WAY_MIX[way]``,
        so the common mix is computed once and XORed per way.
        """
        geom = self._geom.get(key)
        if geom is None:
            vpn = key >> 33
            base_mix = ((vpn >> 13)
                        ^ (((key >> 1) & 0xFFFF) * _VM_SPREAD)
                        ^ (((key >> 17) & 0xFFFF) * 0x85EB))
            if key & 1:
                base_mix ^= 0x5A5A5A5A
            mask = self._mask
            way_bytes = self._way_bytes
            base_address = self.config.base_address
            geom = self._geom[key] = tuple(
                (way, slot,
                 base_address + way * way_bytes
                 + (slot >> 2 << addr.CACHE_LINE_SHIFT))
                for way in range(self._ways)
                for slot in (((vpn * _WAY_MIX[way]) ^ base_mix) & mask,))
        return geom

    def _line_address(self, way: int, slot: int) -> int:
        way_base = self.config.base_address + way * self._way_bytes
        return way_base + (slot >> 2 << addr.CACHE_LINE_SHIFT)

    def candidate_lines(self, vaddr: int, vm_id: int,
                        large: bool) -> List[int]:
        """Line addresses to fetch, one per way, in probe order."""
        key = pack_key(vm_id, 0, vaddr >> addr.page_shift(large), large)
        # asid does not change the *line* ordering contract we expose to
        # callers who only know (vaddr, vm): include it via probe_line.
        return [line for _way, _slot, line in self.candidates(key)]

    def lines_for_key(self, key: int) -> List[int]:
        return [line for _way, _slot, line in self.candidates(key)]

    def dram_access(self, line_addr: int) -> int:
        return self.dram.access(line_addr)

    # -- functional content -----------------------------------------------------

    def probe_slot(self, key: int, way: int,
                   slot: int) -> Optional[TlbEntry]:
        """Check one precomputed ``(way, slot)`` candidate for ``key``."""
        slots = self._slots
        resident = slots.get((way, slot))
        if resident is not None and resident[0] == key:
            self._clock += 1
            slots[(way, slot)] = (key, resident[1], self._clock)
            counter = self._hits[key & 1]
            counter.value += 1
            counter.touched = True
            return resident[1]
        if way == self._ways - 1:
            counter = self._misses[key & 1]
            counter.value += 1
            counter.touched = True
        return None

    def probe_way(self, key: int, way: int) -> Optional[TlbEntry]:
        """Check a single way's candidate slot for ``key``."""
        return self.probe_slot(key, way, self.candidates(key)[way][1])

    def contains(self, key: int) -> bool:
        return any(
            (resident := self._slots.get((way, slot)))
            is not None and resident[0] == key
            for way, slot, _line in self.candidates(key))

    def insert(self, key: int,
               entry: TlbEntry) -> Tuple[int, Optional[int]]:
        """Install ``key``; returns (line address written, evicted key)."""
        self._clock += 1
        slots = self._slots
        candidates = self.candidates(key)
        # Update in place if present.
        for way, slot, line in candidates:
            resident = slots.get((way, slot))
            if resident is not None and resident[0] == key:
                slots[(way, slot)] = (key, entry, self._clock)
                self._fills.add()
                return line, None
        # Prefer an empty candidate slot.
        for way, slot, line in candidates:
            if (way, slot) not in slots:
                slots[(way, slot)] = (key, entry, self._clock)
                self._fills.add()
                return line, None
        # Evict the least recently touched candidate.
        way, slot, line = min(candidates,
                              key=lambda c: slots[(c[0], c[1])][2])
        evicted = slots[(way, slot)][0]
        slots[(way, slot)] = (key, entry, self._clock)
        self._fills.add()
        self._evictions.add()
        return line, evicted

    # -- shootdown & reporting ------------------------------------------------

    def invalidate(self, key: int) -> Optional[int]:
        """Drop ``key``; returns the line address it lived in, if any."""
        for way, slot, line in self.candidates(key):
            resident = self._slots.get((way, slot))
            if resident is not None and resident[0] == key:
                del self._slots[(way, slot)]
                self.stats.inc("shootdowns")
                return line
        return None

    def invalidate_vm(self, vm_id: int) -> List[int]:
        """Drop every translation of one VM (VM teardown).

        Returns the line address of every slot that lost its entry so
        the caller can drop stale cached copies of those lines.
        """
        vm_bits = pack_context(vm_id, 0) & KEY_VM_FIELD_MASK
        doomed = [pos for pos, (key, _e, _t) in self._slots.items()
                  if key & KEY_VM_FIELD_MASK == vm_bits]
        for pos in doomed:
            del self._slots[pos]
        if doomed:
            self.stats.inc("shootdowns", len(doomed))
        return [self._line_address(way, slot) for way, slot in doomed]

    def resident(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(way, slot, packed_key)`` for every resident entry."""
        for (way, slot), (key, _entry, _stamp) in self._slots.items():
            yield way, slot, key

    def occupancy(self) -> Dict[str, int]:
        small = sum(1 for key, _e, _t in self._slots.values()
                    if not key & 1)
        return {"small": small, "large": len(self._slots) - small}

    def hit_rate(self) -> float:
        hits = self.stats["hits_small"] + self.stats["hits_large"]
        total = hits + self.stats["misses_small"] + self.stats["misses_large"]
        return hits / total if total else 0.0
