"""Unified skew-associative POM-TLB (paper footnote 1, future work).

The paper partitions the POM-TLB by page size and leaves "unified
designs with more complex addressing schemes such as skew-associativity"
to future work.  This module implements that design so the trade-off can
be measured:

* **one** physical table holds both page sizes (no static split to get
  wrong);
* each of the 4 ways hashes the key with a *different* function
  (Seznec-style skewing), which breaks the conflict pathologies of
  modulo indexing;
* the cost: a lookup no longer maps to a single 64 B line.  Each way's
  candidate slot lives in a different line, so a probe may fetch up to
  ``ways`` lines through the caches/DRAM, where the partitioned design
  always fetches exactly one.  (This serialization is exactly the
  "sophisticated design effort" the paper dodges.)

Slots are 16 B entries, four to a 64 B line within each way's region of
the address range, so the structure is memory-mapped and cacheable like
the baseline design.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common import addr
from ..common.config import PomTlbConfig, SystemConfig
from ..common.stats import StatGroup
from ..dram import DramChannel
from ..tlb.entry import TlbEntry, TlbKey

#: Distinct odd multipliers, one per way (Knuth-style hashing).
_WAY_MIX = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F)
_VM_SPREAD = 0x9E37


class SkewedPomTlb:
    """Drop-in POM-TLB variant with unified storage and skewed ways."""

    def __init__(self, config: SystemConfig, stats) -> None:
        self.config: PomTlbConfig = config.pom_tlb
        self.stats: StatGroup = stats.group("pom_tlb")
        self.dram = DramChannel(config.stacked_dram, config.cpu_mhz,
                                stats.group("stacked_dram"))
        self._ways = self.config.ways
        total_entries = self.config.size_bytes // self.config.entry_bytes
        self._slots_per_way = total_entries // self._ways
        if not addr.is_power_of_two(self._slots_per_way):
            raise ValueError("skewed POM-TLB needs power-of-two slots/way")
        self._mask = self._slots_per_way - 1
        self._way_bytes = self.config.size_bytes // self._ways
        # (way, slot) -> (key, entry, last-touch stamp)
        self._slots: Dict[Tuple[int, int], Tuple[TlbKey, TlbEntry, int]] = {}
        self._clock = 0

    # -- addressing -----------------------------------------------------------

    def _hash(self, key: TlbKey, way: int) -> int:
        vpn = key.vpn
        mixed = (vpn * _WAY_MIX[way]) ^ (vpn >> 13) ^ (key.vm_id * _VM_SPREAD)
        mixed ^= key.asid * 0x85EB
        if key.large:
            mixed ^= 0x5A5A5A5A  # both sizes coexist in one table
        return mixed & self._mask

    def _line_address(self, way: int, slot: int) -> int:
        way_base = self.config.base_address + way * self._way_bytes
        return way_base + (slot >> 2 << addr.CACHE_LINE_SHIFT)

    def candidate_lines(self, vaddr: int, vm_id: int,
                        large: bool) -> List[int]:
        """Line addresses to fetch, one per way, in probe order."""
        key = TlbKey(vm_id=vm_id, asid=0, vpn=vaddr >> addr.page_shift(large),
                     large=large)
        # asid does not change the *line* ordering contract we expose to
        # callers who only know (vaddr, vm): include it via probe_line.
        return [self._line_address(way, self._hash(key, way))
                for way in range(self._ways)]

    def lines_for_key(self, key: TlbKey) -> List[int]:
        return [self._line_address(way, self._hash(key, way))
                for way in range(self._ways)]

    def dram_access(self, line_addr: int) -> int:
        return self.dram.access(line_addr)

    # -- functional content -----------------------------------------------------

    def probe_way(self, key: TlbKey, way: int) -> Optional[TlbEntry]:
        """Check a single way's candidate slot for ``key``."""
        slot = self._hash(key, way)
        resident = self._slots.get((way, slot))
        if resident is not None and resident[0] == key:
            self._clock += 1
            self._slots[(way, slot)] = (resident[0], resident[1], self._clock)
            self.stats.inc("hits_large" if key.large else "hits_small")
            return resident[1]
        if way == self._ways - 1:
            self.stats.inc("misses_large" if key.large else "misses_small")
        return None

    def contains(self, key: TlbKey) -> bool:
        return any(
            (resident := self._slots.get((way, self._hash(key, way))))
            is not None and resident[0] == key
            for way in range(self._ways))

    def insert(self, key: TlbKey,
               entry: TlbEntry) -> Tuple[int, Optional[TlbKey]]:
        """Install ``key``; returns (line address written, evicted key)."""
        self._clock += 1
        candidates = [(way, self._hash(key, way)) for way in range(self._ways)]
        # Update in place if present.
        for way, slot in candidates:
            resident = self._slots.get((way, slot))
            if resident is not None and resident[0] == key:
                self._slots[(way, slot)] = (key, entry, self._clock)
                self.stats.inc("fills")
                return self._line_address(way, slot), None
        # Prefer an empty candidate slot.
        for way, slot in candidates:
            if (way, slot) not in self._slots:
                self._slots[(way, slot)] = (key, entry, self._clock)
                self.stats.inc("fills")
                return self._line_address(way, slot), None
        # Evict the least recently touched candidate.
        way, slot = min(candidates, key=lambda c: self._slots[c][2])
        evicted = self._slots[(way, slot)][0]
        self._slots[(way, slot)] = (key, entry, self._clock)
        self.stats.inc("fills")
        self.stats.inc("evictions")
        return self._line_address(way, slot), evicted

    # -- shootdown & reporting ------------------------------------------------

    def invalidate(self, key: TlbKey) -> Optional[int]:
        """Drop ``key``; returns the line address it lived in, if any."""
        for way in range(self._ways):
            slot = self._hash(key, way)
            resident = self._slots.get((way, slot))
            if resident is not None and resident[0] == key:
                del self._slots[(way, slot)]
                self.stats.inc("shootdowns")
                return self._line_address(way, slot)
        return None

    def invalidate_vm(self, vm_id: int) -> int:
        doomed = [pos for pos, (key, _e, _t) in self._slots.items()
                  if key.vm_id == vm_id]
        for pos in doomed:
            del self._slots[pos]
        if doomed:
            self.stats.inc("shootdowns", len(doomed))
        return len(doomed)

    def occupancy(self) -> Dict[str, int]:
        small = sum(1 for key, _e, _t in self._slots.values() if not key.large)
        return {"small": small, "large": len(self._slots) - small}

    def hit_rate(self) -> float:
        hits = self.stats["hits_small"] + self.stats["hits_large"]
        total = hits + self.stats["misses_small"] + self.stats["misses_large"]
        return hits / total if total else 0.0
