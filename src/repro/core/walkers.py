"""Walker pool: per-context page walkers with per-core MMU caches.

The simulator runs one software context per core per run, so paging-
structure caches are instantiated per (core, vm, asid) — equivalent to
per-core PSCs that are never cross-context polluted, which matches the
paper's steady-state measurement methodology.

In virtualized mode walks are 2-D (:class:`~repro.paging.NestedWalker`);
in native mode they are 1-D against the process's single table.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, NamedTuple, Tuple, Union

from ..cache.hierarchy import CacheHierarchy
from ..common import addr
from ..common.config import SystemConfig
from ..common.stats import StatRegistry
from ..obs import events
from ..obs.tracer import NULL_TRACER
from ..paging.nested import NestedWalker
from ..paging.walk_cache import PagingStructureCache
from ..paging.walker import NativeWalker
from ..vmm.vm import Host, NativeProcess


class WalkResult(NamedTuple):
    """Uniform walk outcome for both walk dimensions."""

    cycles: int
    memory_refs: int
    host_frame: int
    large: bool


#: Resolver from asid to a NativeProcess (native mode only).
NativeResolver = Callable[[int], NativeProcess]


class WalkerPool:
    """Creates and caches walkers; issues walks for the schemes."""

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 hierarchy: CacheHierarchy, host: Host,
                 native_resolver: NativeResolver = None) -> None:
        self.config = config
        self.stats = stats
        self.hierarchy = hierarchy
        self.host = host
        self.native_resolver = native_resolver
        self.virtualized = config.virtualized
        #: Event tracer; the null object unless Observability attaches one.
        self.trace = NULL_TRACER
        self._walkers: Dict[Tuple[int, int, int],
                            Union[NestedWalker, NativeWalker]] = {}

    def _pte_access(self, core: int):
        # Bind data_access directly (pte_access is a pure forwarder);
        # resolved via getattr so a profiler's per-instance wrapper is
        # picked up.  partial avoids a Python frame per PTE reference.
        return partial(self.hierarchy.data_access, core)

    def _walker_for(self, core: int, vm_id: int,
                    asid: int) -> Union[NestedWalker, NativeWalker]:
        key = (core, vm_id, asid)
        walker = self._walkers.get(key)
        if walker is not None:
            return walker
        tag = f"core{core}.vm{vm_id}.asid{asid}"
        if self.virtualized:
            vm = self.host.vms[vm_id]
            walker = NestedWalker(
                guest_table=vm.process(asid).guest_table,
                host_table=vm.host_table,
                guest_psc=PagingStructureCache(self.config.walk_cache,
                                               self.stats.group(f"{tag}.gpsc")),
                host_psc=PagingStructureCache(self.config.walk_cache,
                                              self.stats.group(f"{tag}.hpsc")),
                pte_access=self._pte_access(core),
                stats=self.stats.group(f"{tag}.walker"),
                tracer=self.trace,
            )
        else:
            if self.native_resolver is None:
                raise ValueError("native mode needs a native_resolver")
            process = self.native_resolver(asid)
            walker = NativeWalker(
                page_table=process.page_table,
                psc=PagingStructureCache(self.config.walk_cache,
                                         self.stats.group(f"{tag}.psc")),
                pte_access=self._pte_access(core),
                stats=self.stats.group(f"{tag}.walker"),
                tracer=self.trace,
            )
        self._walkers[key] = walker
        return walker

    def walk(self, core: int, vm_id: int, asid: int, vaddr: int) -> WalkResult:
        """Perform one page walk; cycles include every PTE reference."""
        walker = self._walkers.get((core, vm_id, asid))
        if walker is None:
            walker = self._walker_for(core, vm_id, asid)
        outcome = walker.walk(vaddr)
        if self.virtualized:
            # NestedOutcome already carries (cycles, memory_refs,
            # host_frame, large) in WalkResult's exact field layout, so
            # hand it straight through instead of re-wrapping — one
            # NamedTuple allocation per walk, on every scheme's miss path.
            result = outcome
        else:
            leaf = outcome.leaf
            frame = leaf.frame & ~(addr.page_size(leaf.large) - 1)
            result = WalkResult(outcome.cycles, outcome.memory_refs,
                                frame, leaf.large)
        trace = self.trace
        if trace.active:
            trace.emit(events.WALK, cycles=result.cycles,
                       refs=result.memory_refs)
        return result

    def invalidate(self, vm_id: int, asid: int, vaddr: int) -> None:
        """Drop PSC entries covering ``vaddr`` in every core's walker."""
        for (core, w_vm, w_asid), walker in self._walkers.items():
            if (w_vm, w_asid) != (vm_id, asid):
                continue
            if isinstance(walker, NestedWalker):
                walker.guest_psc.invalidate(vaddr)
            else:
                walker.psc.invalidate(vaddr)

    def invalidate_vm(self, vm_id: int) -> None:
        """Flush every paging-structure cache of one VM (VM teardown)."""
        for (core, w_vm, w_asid), walker in self._walkers.items():
            if w_vm != vm_id:
                continue
            if isinstance(walker, NestedWalker):
                walker.guest_psc.flush()
                walker.host_psc.flush()
            else:
                walker.psc.flush()

    def discard_vm(self, vm_id: int) -> None:
        """Drop the walker objects of one VM (after ``destroy_vm``).

        Walkers hold bound references to the VM's guest/host tables;
        once the VM is destroyed those tables are dead, and a recreated
        VM with the same id must get fresh walkers bound to its new
        tables, not stale ones resolving into freed frames.
        """
        for key in [key for key in self._walkers if key[1] == vm_id]:
            del self._walkers[key]
