"""POM-TLB: a very large part-of-memory TLB (ISCA 2017 reproduction).

Public API highlights
---------------------
- :class:`repro.SystemConfig` — Table 1 system parameters.
- :class:`repro.Machine` — the full multicore simulator (pick a scheme:
  ``baseline`` / ``pom`` / ``pom_skewed`` / ``shared_l2`` / ``tsb``).
- :func:`repro.get_profile` / :data:`repro.BENCHMARKS` — the Table 2
  workload suite.
- :func:`repro.estimate` — the Eq. 2-5 anchored performance model.
- :class:`repro.Observability` — tracing, latency histograms and
  windowed metrics for a :class:`repro.Machine` (see :mod:`repro.obs`).
- :class:`repro.experiments.SuiteRunner` — drivers regenerating every
  paper figure and table (also via the ``pomtlb`` CLI).
"""

from .common import SystemConfig
from .core import (
    BaselineAnchor,
    Machine,
    PerformanceEstimate,
    SimulationResult,
    estimate,
)
from .obs import Observability
from .workloads import BENCHMARKS, get_profile

__version__ = "1.0.0"

__all__ = [
    "BENCHMARKS",
    "BaselineAnchor",
    "Machine",
    "Observability",
    "PerformanceEstimate",
    "SimulationResult",
    "SystemConfig",
    "__version__",
    "estimate",
    "get_profile",
]
