"""Verifier hook: null-object-off-by-default consistency auditing.

Follows the pattern of :mod:`repro.faults` / :mod:`repro.obs`: the
:class:`Machine` consults a verifier behind :data:`NO_VERIFIER`, whose
class-level ``active`` is ``False`` — production runs pay one hoisted
attribute check per hot loop, nothing per reference.

An active :class:`Verifier` fans each hook out to its invariant
checkers (:mod:`repro.verify.invariants`).  A violated invariant raises
:class:`~repro.common.errors.VerificationError`; when the machine's
tracer is enabled a ``verify_violation`` event is emitted first, so the
violation is visible in the event stream next to the translations that
led up to it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..common.errors import VerificationError
from ..obs import events
from .invariants import (INVARIANT_REGISTRY, InvariantChecker,
                         default_checkers)


class NullVerifier:
    """Verification disabled: every hook is a no-op."""

    active = False

    def on_translation(self, result) -> None:
        pass

    def reset(self) -> None:
        pass

    def finish(self, machine, result) -> None:
        pass

    def token_shootdown(self, machine, vm_id: int, asid: int, vaddr: int):
        return None

    def check_shootdown(self, machine, vm_id: int, asid: int, vaddr: int,
                        token) -> None:
        pass

    def token_invalidate_vm(self, machine, vm_id: int):
        return None

    def check_invalidate_vm(self, machine, vm_id: int, token) -> None:
        pass

    def token_destroy_vm(self, machine, vm_id: int):
        return None

    def check_destroy_vm(self, machine, vm_id: int, token) -> None:
        pass


#: Shared default: verification off.
NO_VERIFIER = NullVerifier()


class Verifier(NullVerifier):
    """Active consistency audit running a set of invariant checkers."""

    active = True

    def __init__(self,
                 checkers: Optional[Iterable[InvariantChecker]] = None
                 ) -> None:
        self.checkers: List[InvariantChecker] = (
            list(checkers) if checkers is not None else default_checkers())
        # Hot-path fan-out list: only checkers that accumulate.
        self._accumulators = [c for c in self.checkers
                              if type(c).on_translation
                              is not InvariantChecker.on_translation]

    @classmethod
    def for_names(cls, names: Iterable[str]) -> "Verifier":
        """Build a verifier running only the named invariants."""
        checkers = []
        for name in names:
            checker = INVARIANT_REGISTRY.get(name)
            if checker is None:
                known = ", ".join(sorted(INVARIANT_REGISTRY))
                raise ValueError(f"unknown invariant {name!r} "
                                 f"(known: {known})")
            checkers.append(checker())
        return cls(checkers)

    # -- hot path ---------------------------------------------------------

    def on_translation(self, result) -> None:
        for checker in self._accumulators:
            checker.on_translation(result)

    def reset(self) -> None:
        for checker in self.checkers:
            checker.reset()

    # -- event-driven hooks ------------------------------------------------

    def token_shootdown(self, machine, vm_id, asid, vaddr):
        return [checker.token_shootdown(machine, vm_id, asid, vaddr)
                for checker in self.checkers]

    def check_shootdown(self, machine, vm_id, asid, vaddr, token):
        tokens = token or [None] * len(self.checkers)
        for checker, sub in zip(self.checkers, tokens):
            self._run(machine, checker.check_shootdown,
                      machine, vm_id, asid, vaddr, sub)

    def token_invalidate_vm(self, machine, vm_id):
        return [checker.token_invalidate_vm(machine, vm_id)
                for checker in self.checkers]

    def check_invalidate_vm(self, machine, vm_id, token):
        tokens = token or [None] * len(self.checkers)
        for checker, sub in zip(self.checkers, tokens):
            self._run(machine, checker.check_invalidate_vm,
                      machine, vm_id, sub)

    def token_destroy_vm(self, machine, vm_id):
        return [checker.token_destroy_vm(machine, vm_id)
                for checker in self.checkers]

    def check_destroy_vm(self, machine, vm_id, token):
        tokens = token or [None] * len(self.checkers)
        for checker, sub in zip(self.checkers, tokens):
            self._run(machine, checker.check_destroy_vm,
                      machine, vm_id, sub)

    # -- end of run --------------------------------------------------------

    def finish(self, machine, result) -> None:
        for checker in self.checkers:
            self._run(machine, checker.check_final, machine, result)

    # -- violation reporting -----------------------------------------------

    def _run(self, machine, hook, *args) -> None:
        try:
            hook(*args)
        except VerificationError as violation:
            tracer = machine.obs.tracer
            if tracer.enabled:
                tracer.emit(events.VERIFY_VIOLATION,
                            invariant=violation.invariant,
                            detail=violation.detail)
            raise
