"""Consistency-audit subsystem: invariants, verifier hook, differential audit.

Off by default behind the null-object :data:`NO_VERIFIER` (the
:mod:`repro.faults` / :mod:`repro.obs` pattern); armed per run via
``Machine(..., verify=Verifier())``, the ``verify=True`` experiment
parameter, or the ``pomtlb audit`` CLI.
"""

from .invariants import (DEFAULT_INVARIANTS, INVARIANT_REGISTRY,
                         ConservationChecker, InclusionChecker,
                         InvariantChecker, LruChecker,
                         MemoryConservationChecker, SetAddressChecker,
                         StaleLineChecker, default_checkers)
from .verifier import NO_VERIFIER, NullVerifier, Verifier

#: Differential-audit names resolved lazily (PEP 562): importing them at
#: package level would pull in :mod:`repro.core.system`, which itself
#: imports this package for :data:`NO_VERIFIER` — a cycle.
_LAZY_DIFFERENTIAL = ("ALL_SCHEMES", "AuditReport", "audit_benchmark",
                      "shrink_trace")


def __getattr__(name):
    if name in _LAZY_DIFFERENTIAL:
        from . import differential
        return getattr(differential, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ALL_SCHEMES",
    "AuditReport",
    "audit_benchmark",
    "shrink_trace",
    "DEFAULT_INVARIANTS",
    "INVARIANT_REGISTRY",
    "InvariantChecker",
    "InclusionChecker",
    "StaleLineChecker",
    "SetAddressChecker",
    "LruChecker",
    "ConservationChecker",
    "MemoryConservationChecker",
    "default_checkers",
    "NO_VERIFIER",
    "NullVerifier",
    "Verifier",
]
