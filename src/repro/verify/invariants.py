"""Pluggable invariant checkers for the consistency audit.

Each checker asserts one structural or accounting law the simulator must
uphold regardless of scheme or workload:

* :class:`InclusionChecker` — mostly-inclusive TLB consistency: after an
  explicit invalidation (shootdown / VM teardown) no private SRAM TLB or
  backing structure still holds the dropped translation.  Checked
  event-driven, **not** steady-state: capacity evictions legitimately
  leave private copies behind ("mostly" inclusive, paper Section 2.1).
* :class:`StaleLineChecker` — no data cache serves a memory-mapped
  backing line (POM-TLB set, TSB entry) after the invalidation dropped
  its content; at the end of a run every cached TLB-kind line lies
  inside the scheme's mapped range (or none exist for SRAM-only
  schemes).
* :class:`SetAddressChecker` — every resident POM-TLB entry sits in the
  set paper Eq. 1 maps it to; guards the inlined index arithmetic in
  :mod:`repro.core.pom_tlb` / :mod:`repro.core.mmu` against the ground
  truth of :class:`repro.core.addressing.PomTlbAddressing` (and the
  per-way hashes of the skewed variant).
* :class:`LruChecker` — every dict-ordered set respects its capacity:
  no SRAM TLB set, POM-TLB set or cache set exceeds its way count.
* :class:`ConservationChecker` — stat conservation laws: probes flow
  down the hierarchy without loss (L1 probes == references, next-level
  probes == L1 misses) and the MMU's miss/penalty counters equal the
  verifier's independent per-translation accumulation.
* :class:`MemoryConservationChecker` — allocation conservation: every
  live host-physical byte is owned by exactly one VM or native process,
  the allocator's free lists balance against its bump pointers, and a
  destroyed VM's frames actually came back (teardown storms must not
  leak host memory).

A violated invariant raises
:class:`~repro.common.errors.VerificationError` naming the checker.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..common import addr
from ..common.errors import AddressError, VerificationError
from ..tlb.entry import pack_key

#: Line kinds for :class:`StaleLineChecker` tokens.
_TLB_LINE = "tlb"
_DATA_LINE = "data"


class InvariantChecker:
    """Base checker: every hook is a no-op; subclasses override some."""

    name = "invariant"

    def fail(self, detail: str) -> None:
        raise VerificationError(self.name, detail)

    # accumulation hooks (hot path — only ConservationChecker uses them)
    def on_translation(self, result) -> None:
        pass

    def reset(self) -> None:
        """Forget accumulated state (warmup boundary)."""

    # event-driven hooks around explicit invalidations
    def token_shootdown(self, machine, vm_id: int, asid: int,
                        vaddr: int):
        return None

    def check_shootdown(self, machine, vm_id: int, asid: int, vaddr: int,
                        token) -> None:
        pass

    def token_invalidate_vm(self, machine, vm_id: int):
        return None

    def check_invalidate_vm(self, machine, vm_id: int, token) -> None:
        pass

    def token_destroy_vm(self, machine, vm_id: int):
        return None

    def check_destroy_vm(self, machine, vm_id: int, token) -> None:
        pass

    # end-of-run structural checks
    def check_final(self, machine, result) -> None:
        pass


# -- helpers shared by checkers ----------------------------------------------


def _both_size_keys(vm_id: int, asid: int,
                    vaddr: int) -> List[Tuple[bool, int]]:
    return [(large, pack_key(vm_id, asid,
                             vaddr >> addr.page_shift(large), large))
            for large in (False, True)]


def _backend_holds(scheme, vaddr: int, vm_id: int, asid: int,
                   key: int, large: bool) -> bool:
    """Does the scheme's backing structure still hold ``key``?"""
    name = scheme.name
    if name == "pom":
        return scheme.pom.contains(vaddr, key, vm_id, large)
    if name == "pom_skewed":
        return scheme.pom.contains(key)
    if name == "shared_l2":
        return (scheme.shared.contains(key)
                or any(shadow.contains(key) for shadow in scheme._shadow))
    if name == "tsb":
        return scheme.tsb.contains_guest(
            vm_id, asid, vaddr >> addr.page_shift(large), large)
    return False  # baseline has no backing structure


def _backend_vm_keys(scheme, vm_id: int) -> List[int]:
    """Packed keys (or TSB tags) of ``vm_id`` still in the backend."""
    name = scheme.name
    if name in ("pom", "pom_skewed"):
        return [key for *_pos, key in scheme.pom.resident()
                if (key >> 1) & 0xFFFF == vm_id]
    if name == "shared_l2":
        found = [k for k in scheme.shared.keys() if k.vm_id == vm_id]
        for shadow in scheme._shadow:
            found.extend(k for k in shadow.keys() if k.vm_id == vm_id)
        return found
    if name == "tsb":
        resident = scheme.tsb.resident()
        return ([t for t in resident["guest"] if t[0] == vm_id]
                + [t for t in resident["host"] if t[0] == vm_id])
    return []


class InclusionChecker(InvariantChecker):
    """Explicit invalidations must reach every structure (Section 2.1)."""

    name = "inclusion"

    def check_shootdown(self, machine, vm_id, asid, vaddr, token):
        scheme = machine.scheme
        for large, key in _both_size_keys(vm_id, asid, vaddr):
            size = "large" if large else "small"
            for core, tlbs in enumerate(scheme.cores):
                if tlbs.l1(large).contains(key):
                    self.fail(f"core {core} L1 ({size}) still holds "
                              f"VA {vaddr:#x} after shootdown")
                if tlbs.l2.contains(key):
                    self.fail(f"core {core} L2 still holds the {size} "
                              f"entry of VA {vaddr:#x} after shootdown")
            if _backend_holds(scheme, vaddr, vm_id, asid, key, large):
                self.fail(f"{scheme.name} backend still holds the {size} "
                          f"entry of VA {vaddr:#x} after shootdown")

    def check_invalidate_vm(self, machine, vm_id, token):
        scheme = machine.scheme
        for core, tlbs in enumerate(scheme.cores):
            for label, tlb in (("l1_small", tlbs.l1_small),
                               ("l1_large", tlbs.l1_large),
                               ("l2", tlbs.l2)):
                survivors = [k for k in tlb.keys() if k.vm_id == vm_id]
                if survivors:
                    self.fail(f"core {core} {label} still holds "
                              f"{len(survivors)} entries of torn-down "
                              f"VM {vm_id}")
        leftover = _backend_vm_keys(scheme, vm_id)
        if leftover:
            self.fail(f"{scheme.name} backend still holds {len(leftover)} "
                      f"entries of torn-down VM {vm_id}")


class StaleLineChecker(InvariantChecker):
    """No cache may serve a backing line whose content was dropped."""

    name = "stale-line"

    @staticmethod
    def _key_lines(scheme, vm_id, asid, vaddr) -> List[Tuple[str, int]]:
        """Backing lines currently holding (either size of) ``vaddr``."""
        lines: List[Tuple[str, int]] = []
        name = scheme.name
        for large, key in _both_size_keys(vm_id, asid, vaddr):
            if name == "pom":
                if scheme.pom.contains(vaddr, key, vm_id, large):
                    lines.append((_TLB_LINE,
                                  scheme.pom.set_address(vaddr, vm_id, large)))
            elif name == "pom_skewed":
                pom = scheme.pom
                for way, slot, line in pom.candidates(key):
                    resident = pom._slots.get((way, slot))
                    if resident is not None and resident[0] == key:
                        lines.append((_TLB_LINE, line))
            elif name == "tsb":
                vpn = vaddr >> addr.page_shift(large)
                if scheme.tsb.contains_guest(vm_id, asid, vpn, large):
                    lines.append((_DATA_LINE,
                                  scheme.tsb.guest_entry_address(
                                      vm_id, asid, vpn)))
        return lines

    @staticmethod
    def _vm_lines(scheme, vm_id) -> List[Tuple[str, int]]:
        """Backing lines currently holding any entry of ``vm_id``."""
        name = scheme.name
        if name == "pom":
            pom = scheme.pom
            return [(_TLB_LINE,
                     (pom._large_base if large else pom._small_base)
                     + index * addr.CACHE_LINE_SIZE)
                    for large, index, key in pom.resident()
                    if (key >> 1) & 0xFFFF == vm_id]
        if name == "pom_skewed":
            pom = scheme.pom
            return [(_TLB_LINE, pom._line_address(way, slot))
                    for way, slot, key in pom.resident()
                    if (key >> 1) & 0xFFFF == vm_id]
        if name == "tsb":
            tsb = scheme.tsb
            resident = tsb.resident()
            lines = [(_DATA_LINE, tsb.guest_entry_address(t[0], t[1], t[2]))
                     for t in resident["guest"] if t[0] == vm_id]
            lines.extend((_DATA_LINE, tsb.host_entry_address(t[0], t[1]))
                         for t in resident["host"] if t[0] == vm_id)
            return lines
        return []

    def _check_dropped(self, machine, lines, event: str) -> None:
        hierarchy = machine.hierarchy
        for kind, line in lines:
            caches = (hierarchy.tlb_line_caches() if kind == _TLB_LINE
                      else hierarchy.all_caches())
            for cache in caches:
                if cache.contains(line):
                    self.fail(f"cache still serves backing line "
                              f"{line:#x} after {event}")

    def token_shootdown(self, machine, vm_id, asid, vaddr):
        return self._key_lines(machine.scheme, vm_id, asid, vaddr)

    def check_shootdown(self, machine, vm_id, asid, vaddr, token):
        self._check_dropped(machine, token or [], "shootdown")

    def token_invalidate_vm(self, machine, vm_id):
        return self._vm_lines(machine.scheme, vm_id)

    def check_invalidate_vm(self, machine, vm_id, token):
        self._check_dropped(machine, token or [], "invalidate_vm")

    def check_final(self, machine, result):
        scheme = machine.scheme
        cached = machine.hierarchy.tlb_lines()
        if scheme.name in ("pom", "pom_skewed"):
            config = scheme.pom.config
            stray = [line for line in cached if not config.contains(line)]
            if stray:
                self.fail(f"{len(stray)} cached TLB-kind lines outside "
                          f"the POM-TLB range (first: {stray[0]:#x})")
        elif cached:
            self.fail(f"{scheme.name} has no memory-mapped TLB structure "
                      f"but {len(cached)} TLB-kind lines are cached")


class SetAddressChecker(InvariantChecker):
    """Every resident POM-TLB entry obeys the Eq. 1 set mapping."""

    name = "set-address"

    def check_final(self, machine, result):
        scheme = machine.scheme
        if scheme.name == "pom":
            pom = scheme.pom
            addressing = pom.addressing
            for large, index, key in pom.resident():
                if bool(key & 1) != large:
                    self.fail(f"key {key:#x} with size bit "
                              f"{key & 1} resides in the "
                              f"{'large' if large else 'small'} partition")
                vm_id = (key >> 1) & 0xFFFF
                vaddr = (key >> 33) << addr.page_shift(large)
                expected = addressing.set_index(vaddr, vm_id, large)
                if index != expected:
                    self.fail(
                        f"key {key:#x} sits in set {index}, Eq. 1 maps "
                        f"it to set {expected} "
                        f"({'large' if large else 'small'} partition)")
                # Guard the arithmetic inlined in pom_tlb.py against the
                # addressing module's ground truth.
                if (pom.set_address(vaddr, vm_id, large)
                        != addressing.set_address(vaddr, vm_id, large)):
                    self.fail(f"inlined set_address diverges from Eq. 1 "
                              f"for VA {vaddr:#x} (vm {vm_id})")
        elif scheme.name == "pom_skewed":
            pom = scheme.pom
            for way, slot, key in pom.resident():
                expected = pom._hash(key, way)
                if slot != expected:
                    self.fail(f"key {key:#x} sits in way {way} slot "
                              f"{slot}, its way hash maps it to {expected}")


class LruChecker(InvariantChecker):
    """No dict-ordered set may exceed its way count."""

    name = "lru-wellformed"

    @staticmethod
    def _sram_tlbs(scheme) -> Iterable[Tuple[str, object]]:
        for core, tlbs in enumerate(scheme.cores):
            yield f"core{core}.l1_small", tlbs.l1_small
            yield f"core{core}.l1_large", tlbs.l1_large
            yield f"core{core}.l2", tlbs.l2
        if scheme.name == "shared_l2":
            yield "shared", scheme.shared._tlb
            for core, shadow in enumerate(scheme._shadow):
                yield f"core{core}.shadow", shadow

    def check_final(self, machine, result):
        scheme = machine.scheme
        for label, tlb in self._sram_tlbs(scheme):
            for set_idx, entries in enumerate(tlb._sets):
                if len(entries) > tlb._ways:
                    self.fail(f"{label} set {set_idx} holds "
                              f"{len(entries)} entries for "
                              f"{tlb._ways} ways")
        if scheme.name == "pom":
            pom = scheme.pom
            for large, index, occupancy in pom.set_sizes():
                if occupancy > pom._ways:
                    self.fail(
                        f"POM-TLB {'large' if large else 'small'} set "
                        f"{index} holds {occupancy} entries for "
                        f"{pom._ways} ways")
        for cache in machine.hierarchy.all_caches():
            for set_idx, occupancy in cache.set_occupancies():
                if occupancy > cache._ways:
                    self.fail(f"{cache.config.name} set {set_idx} holds "
                              f"{occupancy} lines for {cache._ways} ways")


class ConservationChecker(InvariantChecker):
    """Probe flow and penalty accounting must balance exactly."""

    name = "stat-conservation"

    def __init__(self) -> None:
        self.references = 0
        self.misses = 0
        self.penalty = 0
        self.cycles = 0

    def on_translation(self, result) -> None:
        self.references += 1
        self.misses += result[1]
        self.penalty += result[2]
        self.cycles += result[0]

    def reset(self) -> None:
        self.references = 0
        self.misses = 0
        self.penalty = 0
        self.cycles = 0

    def check_final(self, machine, result):
        scheme = machine.scheme
        mmu = machine.stats.group("mmu")
        if result.references != self.references:
            self.fail(f"run reports {result.references} references, "
                      f"verifier saw {self.references}")
        if result.l2_tlb_misses != self.misses:
            self.fail(f"mmu.l2_tlb_misses={result.l2_tlb_misses} but the "
                      f"per-translation miss flags sum to {self.misses}")
        if result.penalty_cycles != self.penalty:
            self.fail(f"mmu.penalty_cycles={result.penalty_cycles} but "
                      f"per-translation penalties sum to {self.penalty}")
        if int(mmu["penalty_cycles"]) != self.penalty:
            self.fail("mmu stats penalty_cycles diverged from the "
                      "run result")
        if result.translation_cycles != self.cycles:
            self.fail(f"translation_cycles={result.translation_cycles} "
                      f"but per-translation cycles sum to {self.cycles}")
        # Probe flow: every reference probes exactly one L1; each level's
        # probe count equals the previous level's miss count.
        l1_probes = l1_misses = 0
        for tlbs in scheme.cores:
            for tlb in (tlbs.l1_small, tlbs.l1_large):
                l1_probes += int(tlb.stats["hits"]) + int(tlb.stats["misses"])
                l1_misses += int(tlb.stats["misses"])
        if l1_probes != self.references:
            self.fail(f"L1 TLBs saw {l1_probes} probes for "
                      f"{self.references} references "
                      f"(hits+misses != probes)")
        if scheme.name == "shared_l2":
            next_probes = sum(
                int(s.stats["hits"]) + int(s.stats["misses"])
                for s in scheme._shadow)
            next_misses = sum(int(s.stats["misses"])
                              for s in scheme._shadow)
            shared_probes = (int(scheme.shared.stats["hits"])
                             + int(scheme.shared.stats["misses"]))
            if shared_probes != l1_misses:
                self.fail(f"shared TLB saw {shared_probes} probes for "
                          f"{l1_misses} L1 misses")
        else:
            next_probes = next_misses = 0
            for tlbs in scheme.cores:
                group = tlbs.l2.stats
                next_probes += int(group["hits"]) + int(group["misses"])
                next_misses += int(group["misses"])
        if next_probes != l1_misses:
            self.fail(f"L2 TLBs saw {next_probes} probes for "
                      f"{l1_misses} L1 misses")
        if next_misses != self.misses:
            self.fail(f"L2 TLBs counted {next_misses} misses, the MMU "
                      f"counted {self.misses}")


class MemoryConservationChecker(InvariantChecker):
    """Every live host-physical byte has exactly one owner."""

    name = "memory-conservation"

    @staticmethod
    def _owned_bytes(machine) -> int:
        """Bytes the surviving VMs and native processes pin together."""
        owned = sum(vm.live_bytes() for vm in machine.host.vms.values())
        owned += sum(proc.live_bytes()
                     for proc in machine._native_processes.values())
        return owned

    def _check_balance(self, machine, event: str) -> None:
        memory = machine.host.memory
        try:
            counters = memory.audit()
        except AddressError as exc:
            self.fail(f"allocator audit failed after {event}: {exc}")
        owned = self._owned_bytes(machine)
        if counters["bytes_allocated"] != owned:
            self.fail(
                f"after {event} the allocator reports "
                f"{counters['bytes_allocated']} live bytes but the VMs "
                f"and native processes own {owned} — "
                f"{'leaked' if counters['bytes_allocated'] > owned else 'double-freed'} "
                f"{abs(counters['bytes_allocated'] - owned)} bytes")

    def token_destroy_vm(self, machine, vm_id):
        return machine.host.memory.bytes_allocated

    def check_destroy_vm(self, machine, vm_id, token) -> None:
        if vm_id in machine.host.vms:
            self.fail(f"vm {vm_id} still registered after destroy_vm")
        before = token or 0
        after = machine.host.memory.bytes_allocated
        if after > before:
            self.fail(f"destroy_vm of vm {vm_id} grew bytes_allocated "
                      f"({before} -> {after})")
        self._check_balance(machine, f"destroy_vm({vm_id})")

    def check_final(self, machine, result) -> None:
        self._check_balance(machine, "the run")


#: The checkers every audit enables unless a subset is requested.
DEFAULT_INVARIANTS = (InclusionChecker, StaleLineChecker, SetAddressChecker,
                      LruChecker, ConservationChecker,
                      MemoryConservationChecker)

#: name -> checker class, for CLI selection.
INVARIANT_REGISTRY = {cls.name: cls for cls in DEFAULT_INVARIANTS}


def default_checkers() -> List[InvariantChecker]:
    return [cls() for cls in DEFAULT_INVARIANTS]
