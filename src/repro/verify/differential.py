"""Differential audit: one trace, every scheme, cross-checked.

The audit replays one benchmark workload through all translation
schemes with the invariant checkers armed, then cross-checks:

* **functional truth** — translation must never change *what* is
  mapped: after the run every scheme's demand-paged page tables carry
  identical (vm, asid, vpn) -> host-frame mappings;
* **reference equivalence** — each scheme's counters must match the
  frozen seed-era engine (:mod:`repro.core.refcheck`) replaying the
  same workload;
* **per-scheme invariants** — the :mod:`repro.verify.invariants`
  checkers run inside each simulation.

On a violation the failing trace is shrunk ddmin-style to a minimal
reproducing trace and written as a packed ``.pwl`` artifact
(:mod:`repro.workloads.packed`), whose path rides on the raised
:class:`~repro.common.errors.VerificationError`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.errors import VerificationError
from ..core.refcheck import run_reference
from ..core.system import Machine, SimulationResult
from ..workloads.packed import save_packed
from ..workloads.suite import get_profile
from ..workloads.trace import CoreStream

#: Schemes the audit covers by default (every implemented scheme).
ALL_SCHEMES = ("baseline", "pom", "pom_skewed", "shared_l2", "tsb")

#: Counters compared between the live engine and the frozen reference.
_COMPARED_COUNTERS = ("references", "instructions", "l2_tlb_misses",
                      "penalty_cycles", "translation_cycles", "data_cycles",
                      "page_walks")

#: Budget of candidate re-simulations the shrinker may spend.
_SHRINK_BUDGET = 200


@dataclass
class AuditReport:
    """Outcome of one benchmark audit (raises before returning on failure)."""

    benchmark: str
    schemes: Tuple[str, ...]
    results: Dict[str, SimulationResult] = field(default_factory=dict)
    reference_checked: bool = False

    @property
    def ok(self) -> bool:
        return set(self.schemes) == set(self.results)


def _build_machine(scheme: str, params, profile,
                   invariants: Optional[Sequence[str]] = None) -> Machine:
    """Mirror ``simulate_run``'s machine construction, verifier armed."""
    from .verifier import Verifier

    verifier = (Verifier.for_names(invariants) if invariants
                else Verifier())
    return Machine(params.system_config(), scheme=scheme,
                   thp_large_fraction=profile.thp_large_fraction,
                   seed=params.seed, tlb_priority=params.tlb_priority,
                   verify=verifier)


def _page_snapshot(machine: Machine) -> Dict[Tuple[int, int], Tuple]:
    """Frozen (vm, asid) -> (small vpn->frame, large vpn->frame) maps."""
    snapshot: Dict[Tuple[int, int], Tuple] = {}
    if machine.config.virtualized:
        contexts = [((vm_id, asid), proc)
                    for vm_id, vm in machine.host.vms.items()
                    for asid, proc in vm.processes.items()]
    else:
        contexts = [((0, asid), proc)
                    for asid, proc in machine._native_processes.items()]
    for key, proc in contexts:
        snapshot[key] = (
            {vpn: page.host_frame for vpn, page in proc.small_pages.items()},
            {vpn: page.host_frame for vpn, page in proc.large_pages.items()})
    return snapshot


def _counters(result: SimulationResult) -> Dict[str, int]:
    return {name: getattr(result, name) for name in _COMPARED_COUNTERS}


# -- trace shrinking ----------------------------------------------------------


def _total_references(streams: Sequence[CoreStream]) -> int:
    return sum(len(stream.references) for stream in streams)


def _drop_window(streams: Sequence[CoreStream], start: int,
                 length: int) -> List[CoreStream]:
    """Remove ``length`` references starting at global offset ``start``."""
    out: List[CoreStream] = []
    offset = 0
    for stream in streams:
        refs = list(stream.references)
        lo = max(0, start - offset)
        hi = max(0, start + length - offset)
        kept = refs[:lo] + refs[hi:]
        offset += len(refs)
        if kept:
            out.append(CoreStream(core=stream.core, vm_id=stream.vm_id,
                                  asid=stream.asid, references=kept))
    return out


def shrink_trace(streams: Sequence[CoreStream], still_fails,
                 budget: int = _SHRINK_BUDGET) -> List[CoreStream]:
    """ddmin-style chunk removal: smallest trace on which ``still_fails``.

    ``still_fails(candidate_streams) -> bool`` re-runs the simulation;
    the search is capped at ``budget`` candidate evaluations, so the
    result is minimal-ish, not guaranteed 1-minimal, on huge traces.
    """
    current = list(streams)
    spent = 0
    chunk = max(1, _total_references(current) // 2)
    while chunk >= 1 and spent < budget:
        removed_any = False
        start = 0
        while start < _total_references(current) and spent < budget:
            candidate = _drop_window(current, start, chunk)
            if not candidate or not _total_references(candidate):
                start += chunk
                continue
            spent += 1
            if still_fails(candidate):
                current = candidate  # keep the smaller failing trace
                removed_any = True
            else:
                start += chunk
        if chunk == 1 and not removed_any:
            break
        chunk = max(1, chunk // 2) if chunk > 1 else 0
    return current


# -- audit entry points -------------------------------------------------------


def _violation_fails(scheme: str, params, profile,
                     invariants: Optional[Sequence[str]] = None):
    """Predicate for the shrinker: does this trace still violate?"""

    def still_fails(streams: Sequence[CoreStream]) -> bool:
        machine = _build_machine(scheme, params, profile, invariants)
        try:
            machine.run(streams)
        except VerificationError:
            return True
        except Exception:
            return False
        return False

    return still_fails


def _shrunk_artifact(benchmark: str, scheme: str, params, profile,
                     streams: Sequence[CoreStream], artifact_dir: str,
                     invariants: Optional[Sequence[str]] = None) -> str:
    """Shrink a violating trace and write the packed repro artifact."""
    still_fails = _violation_fails(scheme, params, profile, invariants)
    # Warmup is dropped during shrinking; only shrink when the plain
    # replay still violates, else ship the full workload as the repro.
    minimal = (shrink_trace(streams, still_fails)
               if still_fails(list(streams)) else list(streams))
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(artifact_dir,
                        f"{benchmark}-{scheme}-violation.pwl")
    save_packed(path, minimal, benchmark=benchmark)
    return path


def audit_benchmark(benchmark: str, params,
                    schemes: Sequence[str] = ALL_SCHEMES,
                    invariants: Optional[Sequence[str]] = None,
                    use_reference: bool = True,
                    shrink: bool = True,
                    artifact_dir: str = "audit-artifacts") -> AuditReport:
    """Audit one benchmark across schemes; raises on any violation.

    Returns an :class:`AuditReport` when every scheme passes its
    invariants, all schemes agree on the functional page mappings, and
    (with ``use_reference``) every scheme's counters match the frozen
    reference engine.
    """
    profile = get_profile(benchmark)
    workload = profile.build(num_cores=params.num_cores,
                             refs_per_core=params.refs_per_core,
                             seed=params.seed, scale=params.scale)
    warmup = workload.warmup_by_core or workload.warmup_references
    report = AuditReport(benchmark=benchmark, schemes=tuple(schemes))
    snapshots: Dict[str, Dict] = {}
    for scheme in schemes:
        machine = _build_machine(scheme, params, profile, invariants)
        try:
            result = machine.run(workload.streams,
                                 warmup_references=warmup)
        except VerificationError as violation:
            if not shrink:
                raise
            artifact = _shrunk_artifact(benchmark, scheme, params, profile,
                                        workload.streams, artifact_dir,
                                        invariants)
            raise VerificationError(violation.invariant,
                                    f"[{benchmark}/{scheme}] "
                                    f"{violation.detail}",
                                    artifact=artifact) from violation
        report.results[scheme] = result
        snapshots[scheme] = _page_snapshot(machine)
    # Functional truth: translation must not change what is mapped.
    baseline_scheme = schemes[0]
    truth = snapshots[baseline_scheme]
    for scheme in schemes[1:]:
        if snapshots[scheme] != truth:
            raise VerificationError(
                "functional-divergence",
                f"[{benchmark}] schemes {baseline_scheme!r} and "
                f"{scheme!r} resolved different page mappings for the "
                f"same trace")
    if use_reference:
        for scheme in schemes:
            reference = run_reference(benchmark, scheme, params)
            live, frozen = (_counters(report.results[scheme]),
                            _counters(reference))
            if live != frozen:
                diverged = [f"{name}: live={live[name]} ref={frozen[name]}"
                            for name in _COMPARED_COUNTERS
                            if live[name] != frozen[name]]
                raise VerificationError(
                    "reference-divergence",
                    f"[{benchmark}/{scheme}] live engine diverged from "
                    f"the frozen reference ({'; '.join(diverged)})")
        report.reference_checked = True
    return report
