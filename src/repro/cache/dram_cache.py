"""Die-stacked DRAM used as an L4 *data* cache (paper Section 2.2).

The paper weighs two uses for the same 16 MB of die-stacked DRAM: a very
large L3 TLB (their proposal) or yet another level of data cache, and
argues the TLB wins because an L3-TLB hit can save up to 24 memory
accesses while an L4 hit saves one, and translations are blocking while
data misses overlap.  This module implements the alternative so the
trade-off experiment can actually be run.

The design is the practical direct-mapped "tags-in-DRAM" organisation of
Qureshi & Loh's Alloy Cache [39]: tag and data of one block live in the
same row, so

* a **hit** costs one stacked-DRAM access, and
* a **miss** costs the stacked access (tag probe) plus the off-chip
  access, then fills the line (possibly evicting).
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional

from ..common import addr
from ..common.config import DramTimingConfig
from ..common.stats import StatGroup
from ..dram import DramChannel


class DramCacheAccess(NamedTuple):
    """Outcome of one L4 probe: tag matched?, stacked-DRAM cycles paid."""

    hit: bool
    cycles: int


class DramDataCache:
    """Direct-mapped Alloy-style DRAM cache in die-stacked memory."""

    def __init__(self, size_bytes: int, timing: DramTimingConfig,
                 cpu_mhz: int, stats: StatGroup,
                 base_address: int = 1 << 44) -> None:
        if size_bytes % addr.CACHE_LINE_SIZE:
            raise ValueError("DRAM cache size must be line-granular")
        self.size_bytes = size_bytes
        self.stats = stats
        self.base_address = base_address
        self._num_lines = size_bytes // addr.CACHE_LINE_SIZE
        if not addr.is_power_of_two(self._num_lines):
            raise ValueError("DRAM cache line count must be a power of two")
        self._mask = self._num_lines - 1
        self.channel = DramChannel(timing, cpu_mhz, stats)
        # Direct-mapped: index -> resident line address.
        self._lines: Dict[int, int] = {}

    def _index(self, paddr: int) -> int:
        return (paddr >> addr.CACHE_LINE_SHIFT) & self._mask

    def _slot_address(self, index: int) -> int:
        """Stacked-DRAM address of the tag+data slot for ``index``."""
        return self.base_address + index * addr.CACHE_LINE_SIZE

    def access(self, paddr: int) -> "DramCacheAccess":
        """Probe for ``paddr``: one stacked access resolves tag + data.

        The returned probe cycles are charged whether or not the tag
        matched (the Alloy design reads the tag-and-data slot in one
        burst); on a miss the caller adds the off-chip access and calls
        :meth:`fill`.
        """
        index = self._index(paddr)
        cycles = self.channel.access(self._slot_address(index))
        hit = self._lines.get(index) == addr.cache_line_base(paddr)
        self.stats.inc("l4_hits" if hit else "l4_misses")
        return DramCacheAccess(hit=hit, cycles=cycles)

    def fill(self, paddr: int) -> Optional[int]:
        """Install the line for ``paddr``; returns the evicted line."""
        index = self._index(paddr)
        evicted = self._lines.get(index)
        self._lines[index] = addr.cache_line_base(paddr)
        if evicted is not None:
            self.stats.inc("l4_evictions")
        self.stats.inc("l4_fills")
        return evicted

    def contains(self, paddr: int) -> bool:
        return self._lines.get(self._index(paddr)) == addr.cache_line_base(paddr)

    def invalidate(self, paddr: int) -> bool:
        index = self._index(paddr)
        if self._lines.get(index) == addr.cache_line_base(paddr):
            del self._lines[index]
            return True
        return False

    def hit_rate(self) -> float:
        hits = self.stats["l4_hits"]
        total = hits + self.stats["l4_misses"]
        return hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._lines)
