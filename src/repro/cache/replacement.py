"""Replacement policies for set-associative structures.

The same policy objects drive the data caches, the SRAM TLBs and (in
2-bit-LRU form) the POM-TLB sets.  A policy instance manages the recency
state of **one set**; structures create one instance per set via the
policy's class.

The interface is minimal on purpose — ``touch`` on hit/insert and
``victim`` on replacement — because that is all the paper's structures
need, and it keeps the hot path to one or two dict operations.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Hashable, Iterable, List, Optional


class ReplacementPolicy:
    """Recency state of one set.  Keys are opaque hashables (tags)."""

    def touch(self, key: Hashable) -> None:
        """Record a hit on (or insertion of) ``key``."""
        raise NotImplementedError

    def remove(self, key: Hashable) -> None:
        """Forget ``key`` (invalidation)."""
        raise NotImplementedError

    def victim(self) -> Hashable:
        """Choose the key to evict.  The caller removes it afterwards."""
        raise NotImplementedError

    def keys(self) -> Iterable[Hashable]:
        """All currently tracked keys (used by tests and shootdowns)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """True least-recently-used, via an ordered dict (oldest first)."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def touch(self, key: Hashable) -> None:
        if key in self._order:
            self._order.move_to_end(key)
        else:
            self._order[key] = None

    def remove(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Hashable:
        return next(iter(self._order))

    def keys(self) -> Iterable[Hashable]:
        return self._order.keys()

    def __len__(self) -> int:
        return len(self._order)


class FifoPolicy(ReplacementPolicy):
    """First-in first-out: hits do not refresh position."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def touch(self, key: Hashable) -> None:
        if key not in self._order:
            self._order[key] = None

    def remove(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Hashable:
        return next(iter(self._order))

    def keys(self) -> Iterable[Hashable]:
        return self._order.keys()

    def __len__(self) -> int:
        return len(self._order)


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection (deterministic via shared RNG)."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._members: List[Hashable] = []
        self._index = {}
        self._rng = rng or random.Random(0)

    def touch(self, key: Hashable) -> None:
        if key not in self._index:
            self._index[key] = len(self._members)
            self._members.append(key)

    def remove(self, key: Hashable) -> None:
        pos = self._index.pop(key, None)
        if pos is None:
            return
        last = self._members.pop()
        if last is not key:
            self._members[pos] = last
            self._index[last] = pos

    def victim(self) -> Hashable:
        return self._members[self._rng.randrange(len(self._members))]

    def keys(self) -> Iterable[Hashable]:
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)


POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a policy by name (``lru``, ``fifo``, ``random``)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}") from None
