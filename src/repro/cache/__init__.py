"""Set-associative data caches and the chip's cache hierarchy."""

from .cache import DATA, TLB, SetAssociativeCache
from .dram_cache import DramCacheAccess, DramDataCache
from .hierarchy import CacheHierarchy
from .replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "DATA",
    "TLB",
    "CacheHierarchy",
    "DramCacheAccess",
    "DramDataCache",
    "FifoPolicy",
    "LruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "make_policy",
]
