"""Three-level data-cache hierarchy with a DRAM backing channel.

Per core: private L1D and L2D.  Shared: one L3D, an optional
stacked-DRAM L4 data cache (Section 2.2 trade-off study), and one
off-chip DDR4 channel.  Hit latencies are load-to-use from the core
(an L3 hit costs its 42 cycles total, not 4+12+42); fills propagate
back up the hierarchy on the miss path.

Two access flavours exist because the POM-TLB flow differs from a load:

* :meth:`data_access` — a normal load/store: L1 -> L2 -> L3 -> DRAM.
* :meth:`tlb_line_probe` — the MMU probing for a cached POM-TLB set:
  starts at the **L2D$** (the paper's MMU issues the load there), then
  L3D$; the caller decides what to do on miss (go to stacked DRAM) and
  calls :meth:`tlb_line_fill` afterwards.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..common.config import SystemConfig
from ..common.stats import StatRegistry
from ..dram import DramChannel
from .cache import DATA, TLB, SetAssociativeCache
from .dram_cache import DramDataCache


class CacheHierarchy:
    """All data caches of the chip plus the main-memory channel."""

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 tlb_priority: bool = False) -> None:
        self.config = config
        self._l1: List[SetAssociativeCache] = []
        self._l2: List[SetAssociativeCache] = []
        for core in range(config.num_cores):
            self._l1.append(SetAssociativeCache(
                config.l1d, stats.group(f"core{core}.l1d")))
            self._l2.append(SetAssociativeCache(
                config.l2d, stats.group(f"core{core}.l2d"),
                tlb_priority=tlb_priority))
        self._l3 = SetAssociativeCache(
            config.l3d, stats.group("l3d"), tlb_priority=tlb_priority)
        self._dram = DramChannel(config.main_dram, config.cpu_mhz,
                                 stats.group("main_dram"))
        self._l4: Optional[DramDataCache] = None
        if config.l4_data_cache_bytes:
            self._l4 = DramDataCache(
                config.l4_data_cache_bytes, config.stacked_dram,
                config.cpu_mhz, stats.group("l4_cache"))
        self._writeback = config.writeback_modeling
        self._wb_stats = stats.group("writebacks")
        # Load-to-use latencies, hoisted off the per-access path.
        self._l1_latency = config.l1d.latency_cycles
        self._l2_latency = config.l2d.latency_cycles
        self._l3_latency = config.l3d.latency_cycles
        # Every SRAM cache, for invalidate_line (POM-TLB set shootdowns
        # hit this once per insert; rebuilding the list there is waste).
        self._all_caches = tuple(self._l1 + self._l2 + [self._l3])
        # POM-TLB lines enter the SRAM caches only through
        # tlb_line_fill / tlb_line_probe — a per-core L2 plus the shared
        # L3 — so L1s and the L4 can never hold one and need no probe.
        self._tlb_line_caches = tuple(self._l2) + (self._l3,)

    # -- component access ---------------------------------------------------

    def l1(self, core: int) -> SetAssociativeCache:
        return self._l1[core]

    def l2(self, core: int) -> SetAssociativeCache:
        return self._l2[core]

    @property
    def l3(self) -> SetAssociativeCache:
        return self._l3

    @property
    def main_dram(self) -> DramChannel:
        return self._dram

    @property
    def l4(self) -> Optional[DramDataCache]:
        """The optional stacked-DRAM L4 data cache (None when disabled)."""
        return self._l4

    # -- normal data path -----------------------------------------------------

    def data_access(self, core: int, paddr: int, is_write: bool = False) -> int:
        """Load/store at physical address ``paddr``; returns CPU cycles.

        Latencies are **load-to-use from the core** (Table 1 semantics):
        an L3 hit costs 42 cycles total, not 4+12+42 — the lower levels'
        lookups overlap the path to the bigger array.  Write misses
        allocate (write-allocate).  With ``writeback_modeling`` enabled,
        dirty victims cascade to the next level and eventually occupy
        DRAM banks, off the critical path; disabled (the default, and the
        paper's scope), writes cost the same as reads.
        """
        l1, l2 = self._l1[core], self._l2[core]
        wb = self._writeback
        # The whole non-writeback path is unrolled over the caches' set
        # dicts: probes (the hit is the common outcome for page-walk PTE
        # references, this method's dominant caller) and the miss-path
        # fills.  Unconditional pop + reinsert produces the same recency
        # order as lookup()'s conditional move-to-end; the inlined fills
        # skip fill()'s already-resident branch (the probe just missed)
        # and its write-back bookkeeping (the dirty set stays empty
        # without writeback_modeling, so victims only need the rare
        # discard below).
        line = paddr >> l1._line_shift
        set1 = line & l1._set_mask
        tags1 = l1._tags[set1]
        tag1 = line >> l1._set_shift
        kind = tags1.pop(tag1, None)
        if kind is not None:
            tags1[tag1] = kind
            slot = l1._data_hits
            slot.value += 1
            slot.touched = True
            if wb and is_write:
                l1.mark_dirty(paddr)
            return self._l1_latency
        slot = l1._data_misses
        slot.value += 1
        slot.touched = True
        line = paddr >> l2._line_shift
        set2 = line & l2._set_mask
        tags2 = l2._tags[set2]
        tag2 = line >> l2._set_shift
        kind = tags2.pop(tag2, None)
        if kind is not None:
            tags2[tag2] = kind
            slot = l2._data_hits
            slot.value += 1
            slot.touched = True
            if wb:
                if is_write:
                    l2.mark_dirty(paddr)
                self._fill_l1(core, paddr, dirty=is_write)
            else:
                if len(tags1) >= l1._ways:
                    victim = next(iter(tags1))
                    slot = (l1._data_evictions
                            if tags1.pop(victim) == DATA
                            else l1._tlb_evictions)
                    slot.value += 1
                    slot.touched = True
                    if l1._dirty:
                        l1._dirty.discard((set1, victim))
                tags1[tag1] = DATA
                slot = l1._data_fills
                slot.value += 1
                slot.touched = True
            return self._l2_latency
        slot = l2._data_misses
        slot.value += 1
        slot.touched = True
        l3 = self._l3
        line = paddr >> l3._line_shift
        set3 = line & l3._set_mask
        tags3 = l3._tags[set3]
        tag3 = line >> l3._set_shift
        kind = tags3.pop(tag3, None)
        if kind is not None:
            tags3[tag3] = kind
            slot = l3._data_hits
            slot.value += 1
            slot.touched = True
            if wb:
                if is_write:
                    l3.mark_dirty(paddr)
                self._fill_l2(core, paddr, dirty=False)
                self._fill_l1(core, paddr, dirty=is_write)
                return self._l3_latency
            cycles = self._l3_latency
        else:
            slot = l3._data_misses
            slot.value += 1
            slot.touched = True
            cycles = self._l3_latency
            if self._l4 is not None:
                probe = self._l4.access(paddr)
                if probe.hit:
                    cycles += probe.cycles
                else:
                    # Self-balancing dispatch (Sim et al. [44]): the
                    # off-chip access is issued in parallel with the
                    # stacked probe, so a miss costs the slower of the
                    # two, not their sum.
                    cycles += max(probe.cycles, self._dram.access(paddr))
                    self._l4.fill(paddr)
            else:
                cycles += self._dram.access(paddr)
            if wb:
                self._fill_l3(paddr, dirty=False)
                self._fill_l2(core, paddr, dirty=False)
                self._fill_l1(core, paddr, dirty=is_write)
                return cycles
            # L3 fill
            if len(tags3) >= l3._ways:
                victim = next(iter(tags3))
                slot = (l3._data_evictions if tags3.pop(victim) == DATA
                        else l3._tlb_evictions)
                slot.value += 1
                slot.touched = True
                if l3._dirty:
                    l3._dirty.discard((set3, victim))
            tags3[tag3] = DATA
            slot = l3._data_fills
            slot.value += 1
            slot.touched = True
        # L2 fill
        if len(tags2) >= l2._ways:
            victim = next(iter(tags2))
            slot = (l2._data_evictions if tags2.pop(victim) == DATA
                    else l2._tlb_evictions)
            slot.value += 1
            slot.touched = True
            if l2._dirty:
                l2._dirty.discard((set2, victim))
        tags2[tag2] = DATA
        slot = l2._data_fills
        slot.value += 1
        slot.touched = True
        # L1 fill
        if len(tags1) >= l1._ways:
            victim = next(iter(tags1))
            slot = (l1._data_evictions if tags1.pop(victim) == DATA
                    else l1._tlb_evictions)
            slot.value += 1
            slot.touched = True
            if l1._dirty:
                l1._dirty.discard((set1, victim))
        tags1[tag1] = DATA
        slot = l1._data_fills
        slot.value += 1
        slot.touched = True
        return cycles

    # -- write-back plumbing (active only with writeback_modeling) -----------

    def _fill_l1(self, core: int, paddr: int, dirty: bool) -> None:
        l1 = self._l1[core]
        victim = l1.fill(paddr, DATA, dirty=dirty)
        if self._writeback and victim is not None and l1.last_evicted_dirty:
            self._wb_stats.inc("l1_to_l2")
            self._absorb_dirty_victim(self._l2[core], victim,
                                      next_level="l2", core=core)

    def _fill_l2(self, core: int, paddr: int, dirty: bool) -> None:
        l2 = self._l2[core]
        victim = l2.fill(paddr, DATA, dirty=dirty)
        if self._writeback and victim is not None and l2.last_evicted_dirty:
            self._wb_stats.inc("l2_to_l3")
            self._absorb_dirty_victim(self._l3, victim, next_level="l3",
                                      core=core)

    def _fill_l3(self, paddr: int, dirty: bool) -> None:
        victim = self._l3.fill(paddr, DATA, dirty=dirty)
        if self._writeback and victim is not None \
                and self._l3.last_evicted_dirty:
            self._write_to_memory(victim)

    def _absorb_dirty_victim(self, cache, victim: int, next_level: str,
                             core: int) -> None:
        """Install (or re-dirty) a dirty victim one level down."""
        if cache.contains(victim):
            cache.mark_dirty(victim)
            return
        if next_level == "l2":
            self._fill_l2(core, victim, dirty=True)
        else:
            self._fill_l3(victim, dirty=True)

    def _write_to_memory(self, victim: int) -> None:
        """Dirty L3 victim leaves the chip; off the critical path."""
        self._wb_stats.inc("l3_to_memory")
        if self._l4 is not None:
            self._l4.fill(victim)
        else:
            self._dram.access(victim)  # occupies the bank, no stall

    def pte_access(self, core: int, paddr: int) -> int:
        """A page-walker reference to a page-table entry.

        PTE lines live in the normal data caches (the baseline the paper
        compares against caches page-table entries), so this is the same
        path as :meth:`data_access`; kept separate for readability at the
        call sites and so future experiments can split the statistics.
        """
        return self.data_access(core, paddr, is_write=False)

    # -- POM-TLB entry path ------------------------------------------------

    def tlb_line_probe(self, core: int, paddr: int) -> Tuple[int, Optional[str]]:
        """Probe L2D$ then L3D$ for a POM-TLB line.

        Returns ``(cycles, hit_level)`` with ``hit_level`` one of
        ``"l2"``, ``"l3"`` or ``None``.  Mirrors Section 2.1.3: the MMU
        issues the set address to the L2D$; L1 is not involved.
        Latencies are load-to-use (an L3 hit costs its 42 cycles total).
        """
        # Both lookups unrolled over the caches' set dicts — this probe
        # runs on every L2 TLB miss of the POM schemes (cf. the L1
        # unroll in data_access).
        l2 = self._l2[core]
        line = paddr >> l2._line_shift
        tags = l2._tags[line & l2._set_mask]
        tag = line >> l2._set_shift
        if tag in tags:
            slot = l2._tlb_hits
            slot.value += 1
            slot.touched = True
            if next(reversed(tags)) != tag:
                tags[tag] = tags.pop(tag)
            return self._l2_latency, "l2"
        slot = l2._tlb_misses
        slot.value += 1
        slot.touched = True
        l3 = self._l3
        line = paddr >> l3._line_shift
        tags = l3._tags[line & l3._set_mask]
        tag = line >> l3._set_shift
        if tag in tags:
            slot = l3._tlb_hits
            slot.value += 1
            slot.touched = True
            if next(reversed(tags)) != tag:
                tags[tag] = tags.pop(tag)
            l2.fill(paddr, TLB)
            return self._l3_latency, "l3"
        slot = l3._tlb_misses
        slot.value += 1
        slot.touched = True
        return self._l3_latency, None

    def tlb_line_fill(self, core: int, paddr: int) -> None:
        """Install a POM-TLB line fetched from stacked DRAM into L2/L3."""
        # Both fills inlined (TLB kind) — this runs once per
        # stacked-DRAM set fetch on the POM schemes.  Unlike the
        # data_access fills the line may already be resident (bypass
        # fetches fill without probing), so the refresh branch stays.
        l3 = self._l3
        line = paddr >> l3._line_shift
        set3 = line & l3._set_mask
        tags = l3._tags[set3]
        tag = line >> l3._set_shift
        if tag in tags:
            del tags[tag]
        elif len(tags) >= l3._ways:
            victim = next(iter(tags))
            slot = (l3._data_evictions if tags.pop(victim) == DATA
                    else l3._tlb_evictions)
            slot.value += 1
            slot.touched = True
            if l3._dirty:
                l3._dirty.discard((set3, victim))
        tags[tag] = TLB
        slot = l3._tlb_fills
        slot.value += 1
        slot.touched = True
        l2 = self._l2[core]
        line = paddr >> l2._line_shift
        set2 = line & l2._set_mask
        tags = l2._tags[set2]
        tag = line >> l2._set_shift
        if tag in tags:
            del tags[tag]
        elif len(tags) >= l2._ways:
            victim = next(iter(tags))
            slot = (l2._data_evictions if tags.pop(victim) == DATA
                    else l2._tlb_evictions)
            slot.value += 1
            slot.touched = True
            if l2._dirty:
                l2._dirty.discard((set2, victim))
        tags[tag] = TLB
        slot = l2._tlb_fills
        slot.value += 1
        slot.touched = True

    def tlb_line_cached(self, core: int, paddr: int) -> bool:
        """Side-effect-free check used to train the bypass predictor."""
        # contains() inlined twice — runs alongside every tlb_line_probe.
        l2 = self._l2[core]
        line = paddr >> l2._line_shift
        if (line >> l2._set_shift) in l2._tags[line & l2._set_mask]:
            return True
        l3 = self._l3
        line = paddr >> l3._line_shift
        return (line >> l3._set_shift) in l3._tags[line & l3._set_mask]

    def tlb_lines(self) -> List[int]:
        """Every cached TLB-kind line address (L2s then L3, duplicates kept).

        TLB lines only ever enter through ``tlb_line_probe`` /
        ``tlb_line_fill``, so scanning ``_tlb_line_caches`` is exhaustive.
        """
        lines: List[int] = []
        for cache in self._tlb_line_caches:
            lines.extend(cache.resident_lines(TLB))
        return lines

    def tlb_line_caches(self) -> Tuple[SetAssociativeCache, ...]:
        """The caches that may hold TLB-kind lines (per-core L2s + L3)."""
        return self._tlb_line_caches

    def all_caches(self) -> Tuple[SetAssociativeCache, ...]:
        """Every SRAM cache in the hierarchy (L1s, L2s, L3)."""
        return self._all_caches

    def invalidate_line(self, paddr: int) -> None:
        """Drop a line everywhere (TLB shootdown of a cached set)."""
        for cache in self._all_caches:
            cache.invalidate(paddr)
        if self._l4 is not None:
            self._l4.invalidate(paddr)

    def invalidate_tlb_line(self, paddr: int) -> None:
        """Drop a stale POM-TLB line (insert or shootdown).

        Behaviour-identical to :meth:`invalidate_line` for these
        addresses: only the L2s and the L3 can hold a TLB line, so the
        L1/L4 probes it skips are always no-ops.
        """
        for cache in self._tlb_line_caches:
            cache.invalidate(paddr)
