"""Three-level data-cache hierarchy with a DRAM backing channel.

Per core: private L1D and L2D.  Shared: one L3D, an optional
stacked-DRAM L4 data cache (Section 2.2 trade-off study), and one
off-chip DDR4 channel.  Hit latencies are load-to-use from the core
(an L3 hit costs its 42 cycles total, not 4+12+42); fills propagate
back up the hierarchy on the miss path.

Two access flavours exist because the POM-TLB flow differs from a load:

* :meth:`data_access` — a normal load/store: L1 -> L2 -> L3 -> DRAM.
* :meth:`tlb_line_probe` — the MMU probing for a cached POM-TLB set:
  starts at the **L2D$** (the paper's MMU issues the load there), then
  L3D$; the caller decides what to do on miss (go to stacked DRAM) and
  calls :meth:`tlb_line_fill` afterwards.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..common.config import SystemConfig
from ..common.stats import StatRegistry
from ..dram import DramChannel
from .cache import DATA, TLB, SetAssociativeCache
from .dram_cache import DramDataCache


class CacheHierarchy:
    """All data caches of the chip plus the main-memory channel."""

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 tlb_priority: bool = False) -> None:
        self.config = config
        self._l1: List[SetAssociativeCache] = []
        self._l2: List[SetAssociativeCache] = []
        for core in range(config.num_cores):
            self._l1.append(SetAssociativeCache(
                config.l1d, stats.group(f"core{core}.l1d")))
            self._l2.append(SetAssociativeCache(
                config.l2d, stats.group(f"core{core}.l2d"),
                tlb_priority=tlb_priority))
        self._l3 = SetAssociativeCache(
            config.l3d, stats.group("l3d"), tlb_priority=tlb_priority)
        self._dram = DramChannel(config.main_dram, config.cpu_mhz,
                                 stats.group("main_dram"))
        self._l4: Optional[DramDataCache] = None
        if config.l4_data_cache_bytes:
            self._l4 = DramDataCache(
                config.l4_data_cache_bytes, config.stacked_dram,
                config.cpu_mhz, stats.group("l4_cache"))
        self._writeback = config.writeback_modeling
        self._wb_stats = stats.group("writebacks")
        # Load-to-use latencies, hoisted off the per-access path.
        self._l1_latency = config.l1d.latency_cycles
        self._l2_latency = config.l2d.latency_cycles
        self._l3_latency = config.l3d.latency_cycles
        # Every SRAM cache, for invalidate_line (POM-TLB set shootdowns
        # hit this once per insert; rebuilding the list there is waste).
        self._all_caches = tuple(self._l1 + self._l2 + [self._l3])
        # POM-TLB lines enter the SRAM caches only through
        # tlb_line_fill / tlb_line_probe — a per-core L2 plus the shared
        # L3 — so L1s and the L4 can never hold one and need no probe.
        self._tlb_line_caches = tuple(self._l2) + (self._l3,)

    # -- component access ---------------------------------------------------

    def l1(self, core: int) -> SetAssociativeCache:
        return self._l1[core]

    def l2(self, core: int) -> SetAssociativeCache:
        return self._l2[core]

    @property
    def l3(self) -> SetAssociativeCache:
        return self._l3

    @property
    def main_dram(self) -> DramChannel:
        return self._dram

    @property
    def l4(self) -> Optional[DramDataCache]:
        """The optional stacked-DRAM L4 data cache (None when disabled)."""
        return self._l4

    # -- normal data path -----------------------------------------------------

    def data_access(self, core: int, paddr: int, is_write: bool = False) -> int:
        """Load/store at physical address ``paddr``; returns CPU cycles.

        Latencies are **load-to-use from the core** (Table 1 semantics):
        an L3 hit costs 42 cycles total, not 4+12+42 — the lower levels'
        lookups overlap the path to the bigger array.  Write misses
        allocate (write-allocate).  With ``writeback_modeling`` enabled,
        dirty victims cascade to the next level and eventually occupy
        DRAM banks, off the critical path; disabled (the default, and the
        paper's scope), writes cost the same as reads.
        """
        l1, l2 = self._l1[core], self._l2[core]
        wb = self._writeback
        if l1.lookup(paddr, DATA):
            if wb and is_write:
                l1.mark_dirty(paddr)
            return self._l1_latency
        if l2.lookup(paddr, DATA):
            if wb:
                if is_write:
                    l2.mark_dirty(paddr)
                self._fill_l1(core, paddr, dirty=is_write)
            else:
                l1.fill(paddr, DATA)
            return self._l2_latency
        l3 = self._l3
        if l3.lookup(paddr, DATA):
            if wb:
                if is_write:
                    l3.mark_dirty(paddr)
                self._fill_l2(core, paddr, dirty=False)
                self._fill_l1(core, paddr, dirty=is_write)
            else:
                l2.fill(paddr, DATA)
                l1.fill(paddr, DATA)
            return self._l3_latency
        cycles = self._l3_latency
        if self._l4 is not None:
            probe = self._l4.access(paddr)
            if probe.hit:
                cycles += probe.cycles
            else:
                # Self-balancing dispatch (Sim et al. [44]): the off-chip
                # access is issued in parallel with the stacked probe, so
                # a miss costs the slower of the two, not their sum.
                cycles += max(probe.cycles, self._dram.access(paddr))
                self._l4.fill(paddr)
        else:
            cycles += self._dram.access(paddr)
        if wb:
            self._fill_l3(paddr, dirty=False)
            self._fill_l2(core, paddr, dirty=False)
            self._fill_l1(core, paddr, dirty=is_write)
        else:
            l3.fill(paddr, DATA)
            l2.fill(paddr, DATA)
            l1.fill(paddr, DATA)
        return cycles

    # -- write-back plumbing (active only with writeback_modeling) -----------

    def _fill_l1(self, core: int, paddr: int, dirty: bool) -> None:
        l1 = self._l1[core]
        victim = l1.fill(paddr, DATA, dirty=dirty)
        if self._writeback and victim is not None and l1.last_evicted_dirty:
            self._wb_stats.inc("l1_to_l2")
            self._absorb_dirty_victim(self._l2[core], victim,
                                      next_level="l2", core=core)

    def _fill_l2(self, core: int, paddr: int, dirty: bool) -> None:
        l2 = self._l2[core]
        victim = l2.fill(paddr, DATA, dirty=dirty)
        if self._writeback and victim is not None and l2.last_evicted_dirty:
            self._wb_stats.inc("l2_to_l3")
            self._absorb_dirty_victim(self._l3, victim, next_level="l3",
                                      core=core)

    def _fill_l3(self, paddr: int, dirty: bool) -> None:
        victim = self._l3.fill(paddr, DATA, dirty=dirty)
        if self._writeback and victim is not None \
                and self._l3.last_evicted_dirty:
            self._write_to_memory(victim)

    def _absorb_dirty_victim(self, cache, victim: int, next_level: str,
                             core: int) -> None:
        """Install (or re-dirty) a dirty victim one level down."""
        if cache.contains(victim):
            cache.mark_dirty(victim)
            return
        if next_level == "l2":
            self._fill_l2(core, victim, dirty=True)
        else:
            self._fill_l3(victim, dirty=True)

    def _write_to_memory(self, victim: int) -> None:
        """Dirty L3 victim leaves the chip; off the critical path."""
        self._wb_stats.inc("l3_to_memory")
        if self._l4 is not None:
            self._l4.fill(victim)
        else:
            self._dram.access(victim)  # occupies the bank, no stall

    def pte_access(self, core: int, paddr: int) -> int:
        """A page-walker reference to a page-table entry.

        PTE lines live in the normal data caches (the baseline the paper
        compares against caches page-table entries), so this is the same
        path as :meth:`data_access`; kept separate for readability at the
        call sites and so future experiments can split the statistics.
        """
        return self.data_access(core, paddr, is_write=False)

    # -- POM-TLB entry path ------------------------------------------------

    def tlb_line_probe(self, core: int, paddr: int) -> Tuple[int, Optional[str]]:
        """Probe L2D$ then L3D$ for a POM-TLB line.

        Returns ``(cycles, hit_level)`` with ``hit_level`` one of
        ``"l2"``, ``"l3"`` or ``None``.  Mirrors Section 2.1.3: the MMU
        issues the set address to the L2D$; L1 is not involved.
        Latencies are load-to-use (an L3 hit costs its 42 cycles total).
        """
        l2 = self._l2[core]
        if l2.lookup(paddr, TLB):
            return l2.latency, "l2"
        if self._l3.lookup(paddr, TLB):
            l2.fill(paddr, TLB)
            return self._l3.latency, "l3"
        return self._l3.latency, None

    def tlb_line_fill(self, core: int, paddr: int) -> None:
        """Install a POM-TLB line fetched from stacked DRAM into L2/L3."""
        self._l3.fill(paddr, TLB)
        self._l2[core].fill(paddr, TLB)

    def tlb_line_cached(self, core: int, paddr: int) -> bool:
        """Side-effect-free check used to train the bypass predictor."""
        return self._l2[core].contains(paddr) or self._l3.contains(paddr)

    def tlb_lines(self) -> List[int]:
        """Every cached TLB-kind line address (L2s then L3, duplicates kept).

        TLB lines only ever enter through ``tlb_line_probe`` /
        ``tlb_line_fill``, so scanning ``_tlb_line_caches`` is exhaustive.
        """
        lines: List[int] = []
        for cache in self._tlb_line_caches:
            lines.extend(cache.resident_lines(TLB))
        return lines

    def tlb_line_caches(self) -> Tuple[SetAssociativeCache, ...]:
        """The caches that may hold TLB-kind lines (per-core L2s + L3)."""
        return self._tlb_line_caches

    def all_caches(self) -> Tuple[SetAssociativeCache, ...]:
        """Every SRAM cache in the hierarchy (L1s, L2s, L3)."""
        return self._all_caches

    def invalidate_line(self, paddr: int) -> None:
        """Drop a line everywhere (TLB shootdown of a cached set)."""
        for cache in self._all_caches:
            cache.invalidate(paddr)
        if self._l4 is not None:
            self._l4.invalidate(paddr)

    def invalidate_tlb_line(self, paddr: int) -> None:
        """Drop a stale POM-TLB line (insert or shootdown).

        Behaviour-identical to :meth:`invalidate_line` for these
        addresses: only the L2s and the L3 can hold a TLB line, so the
        L1/L4 probes it skips are always no-ops.
        """
        for cache in self._tlb_line_caches:
            cache.invalidate(paddr)
