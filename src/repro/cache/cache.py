"""Set-associative cache with TLB-aware line accounting.

The POM-TLB design hinges on TLB entries being **ordinary cacheable
memory**, so the data-cache model distinguishes two line kinds:

* ``data`` — regular program loads/stores (and page-table entries), and
* ``tlb``  — lines belonging to the POM-TLB (or TSB) address range.

Both kinds compete for the same sets under the same replacement policy —
exactly the paper's design — but are counted separately so experiments
can report TLB-entry hit ratios (Fig 9) and data-cache pollution.

The optional ``tlb_priority`` mode implements the Section 5.1 extension
(*TLB-aware caching*): when enabled, a ``tlb`` line is never chosen as a
victim while a ``data`` line exists in the set.

Recency is stored in the set dicts themselves (oldest first, newest
last, Python dicts preserve insertion order): a hit re-inserts the tag
at the end, the LRU victim is the first key.  This produces the exact
victim sequence of the previous per-set ``LruPolicy`` objects while
halving the bookkeeping on the per-access path.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..common import addr
from ..common.config import CacheConfig
from ..common.stats import StatGroup

DATA = "data"
TLB = "tlb"


class SetAssociativeCache:
    """One level of a write-allocate, (modelled) write-back cache.

    The model tracks presence and recency, not contents: the simulator
    only needs hit/miss outcomes and latency.  Lookups and fills operate
    on byte addresses; alignment to 64 B lines is internal.
    """

    def __init__(self, config: CacheConfig, stats: StatGroup,
                 tlb_priority: bool = False) -> None:
        self.config = config
        self.stats = stats
        self.tlb_priority = tlb_priority
        self._num_sets = config.num_sets
        self._set_mask = self._num_sets - 1
        self._line_shift = addr.ilog2(config.line_bytes)
        self._set_shift = addr.ilog2(self._num_sets)
        self._ways = config.ways
        # One {tag: kind} dict per set, ordered oldest -> most recent.
        self._tags: Tuple[Dict[int, str], ...] = tuple(
            {} for _ in range(self._num_sets))
        # Dirty lines, by (set, tag); populated only when callers use the
        # write-back API (mark_dirty / fill(dirty=True)).
        self._dirty: set = set()
        #: dirtiness of the line evicted by the most recent fill()
        self.last_evicted_dirty: bool = False
        # Per-kind counter slots, resolved once (see common.stats).  Held
        # as direct attributes: the hot path selects with one string
        # compare (identity fast path — callers pass the module
        # constants) instead of hashing into a dict per access.
        self._data_hits = stats.counter(f"{DATA}_hits")
        self._tlb_hits = stats.counter(f"{TLB}_hits")
        self._data_misses = stats.counter(f"{DATA}_misses")
        self._tlb_misses = stats.counter(f"{TLB}_misses")
        self._data_fills = stats.counter(f"{DATA}_fills")
        self._tlb_fills = stats.counter(f"{TLB}_fills")
        self._data_evictions = stats.counter(f"{DATA}_evictions")
        self._tlb_evictions = stats.counter(f"{TLB}_evictions")

    # -- geometry ---------------------------------------------------------

    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address >> self._line_shift
        return line & self._set_mask, line >> self._set_shift

    @property
    def latency(self) -> int:
        """Hit latency in CPU cycles."""
        return self.config.latency_cycles

    # -- operations ---------------------------------------------------------

    def lookup(self, address: int, kind: str = DATA) -> bool:
        """Probe for the line holding ``address``; updates recency on hit."""
        line = address >> self._line_shift
        tags = self._tags[line & self._set_mask]
        tag = line >> self._set_shift
        if tag in tags:
            slot = self._data_hits if kind == DATA else self._tlb_hits
            slot.value += 1
            slot.touched = True
            if next(reversed(tags)) != tag:
                tags[tag] = tags.pop(tag)  # move to most-recent position
            return True
        slot = self._data_misses if kind == DATA else self._tlb_misses
        slot.value += 1
        slot.touched = True
        return False

    def contains(self, address: int) -> bool:
        """Presence check with no side effects (no recency, no stats)."""
        line = address >> self._line_shift
        return (line >> self._set_shift) in self._tags[line & self._set_mask]

    def fill(self, address: int, kind: str = DATA,
             dirty: bool = False) -> Optional[int]:
        """Insert the line for ``address``; returns the evicted line address.

        Filling a line already present just refreshes recency (and its
        kind, which matters only if an address range is repurposed).
        After the call, :attr:`last_evicted_dirty` says whether the
        evicted line (if any) held unwritten-back data.
        """
        line = address >> self._line_shift
        set_idx = line & self._set_mask
        tags = self._tags[set_idx]
        tag = line >> self._set_shift
        evicted: Optional[int] = None
        self.last_evicted_dirty = False
        if tag in tags:
            del tags[tag]  # the re-insert below refreshes recency
        elif len(tags) >= self._ways:
            if self.tlb_priority:
                victim = self._select_victim(set_idx)
            else:
                victim = next(iter(tags))  # oldest
            victim_kind = tags.pop(victim)
            slot = (self._data_evictions if victim_kind == DATA
                    else self._tlb_evictions)
            slot.value += 1
            slot.touched = True
            evicted = ((victim << self._set_shift) | set_idx) << self._line_shift
            if self._dirty and (set_idx, victim) in self._dirty:
                self._dirty.discard((set_idx, victim))
                self.last_evicted_dirty = True
        tags[tag] = kind
        if dirty:
            self._dirty.add((set_idx, tag))
        slot = self._data_fills if kind == DATA else self._tlb_fills
        slot.value += 1
        slot.touched = True
        return evicted

    def mark_dirty(self, address: int) -> bool:
        """Flag the resident line holding ``address`` as modified."""
        line = address >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        if tag in self._tags[set_idx]:
            self._dirty.add((set_idx, tag))
            return True
        return False

    def is_dirty(self, address: int) -> bool:
        """True when the line holding ``address`` is resident and dirty."""
        set_idx, tag = self._index_tag(address)
        return (set_idx, tag) in self._dirty

    def _select_victim(self, set_idx: int) -> int:
        tags = self._tags[set_idx]
        if not self.tlb_priority:
            return next(iter(tags))  # oldest
        for tag, kind in tags.items():  # oldest first
            if kind == DATA:
                return tag
        return next(iter(tags))

    def _line_address(self, set_idx: int, tag: int) -> int:
        line = (tag << self._set_shift) | set_idx
        return line << self._line_shift

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address`` if present."""
        line = address >> self._line_shift
        set_idx = line & self._set_mask
        tags = self._tags[set_idx]
        tag = line >> self._set_shift
        if tag in tags:
            del tags[tag]
            if self._dirty:
                self._dirty.discard((set_idx, tag))
            return True
        return False

    def flush(self) -> None:
        """Empty the whole cache."""
        for tags in self._tags:
            tags.clear()
        self._dirty.clear()

    # -- introspection ------------------------------------------------------

    def resident_lines(self, kind: Optional[str] = None):
        """Yield the line address of every resident line (optionally by kind)."""
        for set_idx, tags in enumerate(self._tags):
            for tag, line_kind in tags.items():
                if kind is None or line_kind == kind:
                    yield self._line_address(set_idx, tag)

    def set_occupancies(self):
        """Yield ``(set_idx, resident_count)`` per non-empty set."""
        for set_idx, tags in enumerate(self._tags):
            if tags:
                yield set_idx, len(tags)

    def occupancy(self) -> Dict[str, int]:
        """Lines currently resident, split by kind."""
        counts = {DATA: 0, TLB: 0}
        for tags in self._tags:
            for kind in tags.values():
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    def hit_rate(self, kind: str = DATA) -> float:
        hits = self.stats[f"{kind}_hits"]
        total = hits + self.stats[f"{kind}_misses"]
        return hits / total if total else 0.0

    def __len__(self) -> int:
        return sum(len(tags) for tags in self._tags)
