"""The resilient run executor: isolation, timeouts, retries, checkpoints.

``execute_runs`` takes the campaign's full list of (benchmark, scheme,
params) requests and returns one :class:`RunOutcome` per request.  Two
execution modes share every other behaviour:

* **serial** (``workers <= 1``) — runs execute in-process, exactly like
  the pre-resilience campaign.  Process-level faults (crash, hang)
  degrade to synthetic :class:`~repro.common.errors.WorkerCrash` /
  :class:`~repro.common.errors.RunTimeout` errors, and per-run timeouts
  are not enforced (there is no one to kill the run).
* **process pool** (``workers >= 2``) — each run attempt executes in a
  fresh child process; a crash or hang kills only that attempt.  Hung
  workers are terminated at ``timeout_s``; dead workers are detected by
  exit code.  Results come back over a pipe.

On top of either mode: transient failures are retried with the
:class:`~repro.resilience.retry.RetryPolicy` backoff, successes are
persisted to the optional :class:`~repro.resilience.checkpoint.CheckpointStore`
(restored runs skip execution entirely), and every retry / failure /
completion is traced through the standard event tracer.  A checkpoint
write failure is a warning, never fatal: losing durability must not lose
the campaign.  ``KeyboardInterrupt`` tears down children and propagates,
leaving the checkpoint resumable.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..common.errors import ReproError, RunTimeout, WorkerCrash
from ..faults import NO_FAULTS, FaultPlan
from ..obs import NO_TELEMETRY, NULL_TRACER
from ..obs import events as obs_events
from .checkpoint import CheckpointStore, run_key
from .retry import RetryPolicy, is_transient

#: Exit code a crash-injected worker dies with (SIGABRT convention).
CRASH_EXIT_CODE = 134

#: Parent scheduler poll interval, seconds.
_POLL_S = 0.01


@dataclass(frozen=True)
class RunRequest:
    """One (benchmark, scheme, params) simulation the campaign needs."""

    benchmark: str
    scheme: str
    params: object  # ExperimentParams; duck-typed to avoid an import cycle
    #: Optional WorkloadRef (repro.workloads.shm) naming a pre-compiled
    #: workload the worker should attach instead of regenerating one.
    #: Never participates in the checkpoint key: replaying a compiled
    #: workload is bit-identical to regenerating it.
    workload_ref: object = None

    @property
    def label(self) -> str:
        return f"({self.benchmark}, {self.scheme})"


@dataclass(frozen=True)
class ErrorInfo:
    """Process-boundary-safe description of a failed attempt."""

    type: str
    message: str
    transient: bool

    @classmethod
    def from_exception(cls, error: BaseException) -> "ErrorInfo":
        return cls(type=error.__class__.__name__, message=str(error),
                   transient=is_transient(error))


@dataclass(frozen=True)
class RunFailure:
    """A run that exhausted its attempts; what reports annotate."""

    benchmark: str
    scheme: str
    error: ErrorInfo
    attempts: int


@dataclass
class RunOutcome:
    """Terminal state of one request: a run, or a structured failure."""

    request: RunRequest
    key: str
    run: Optional[object] = None        # BenchmarkRun on success
    failure: Optional[RunFailure] = None
    attempts: int = 0
    restored: bool = False              # satisfied from the checkpoint

    @property
    def ok(self) -> bool:
        return self.run is not None


# -- child-process side --------------------------------------------------------

def _measurement(wall_s: float, cpu_s: Optional[float],
                 workload: Optional[str]) -> dict:
    """The attempt measurement that rides the result pipe.

    Workers never touch the parent's metrics registry: they measure
    their own attempt and ship the numbers home with the result, which
    is what makes campaign telemetry multiprocessing-safe without locks.
    """
    return {"wall_s": wall_s, "cpu_s": cpu_s, "workload": workload}


def _child_entry(request: RunRequest, fault: Optional[Tuple[str, int]],
                 conn) -> None:
    """Run one attempt in a worker process and report over ``conn``."""
    started = time.monotonic()
    started_cpu = time.process_time()
    try:
        if fault is not None:
            kind = fault[0]
            if kind == "crash":
                os._exit(CRASH_EXIT_CODE)
            if kind == "hang":
                while True:  # parked until the parent's timeout kills us
                    time.sleep(60)
        run, source = _simulate_measured(request, fault)
        meas = _measurement(time.monotonic() - started,
                            time.process_time() - started_cpu, source)
        conn.send(("ok", run, meas))
    except BaseException as error:  # noqa: BLE001 - must cross the pipe
        meas = _measurement(time.monotonic() - started,
                            time.process_time() - started_cpu, None)
        conn.send(("error", ErrorInfo.from_exception(error), meas))
    finally:
        conn.close()


def _simulate_measured(request: RunRequest,
                       fault: Optional[Tuple[str, int]]):
    """One attempt plus how its workload was sourced.

    The source tag feeds the ``pomtlb_campaign_workload_source_total``
    telemetry counter: ``shm`` (arena attach), ``mmap`` (cache file),
    ``regenerated`` (ref was dead — vanished segment / torn cache
    entry) or ``generated`` (no ref at all).
    """
    from ..experiments.runner import simulate_run

    if request.workload_ref is None:
        return simulate_run(request.benchmark, request.scheme,
                            request.params, fault=fault), "generated"
    from ..common.errors import PackedTraceError
    from ..workloads.shm import attach_container

    try:
        container = attach_container(request.workload_ref)
    except PackedTraceError:
        # The compiled workload is gone or damaged (parent released the
        # segment, cache file torn).  Regenerating is always correct —
        # the ref is an optimization, never the source of truth.
        return simulate_run(request.benchmark, request.scheme,
                            request.params, fault=fault), "regenerated"
    source = "shm" if request.workload_ref.shm_name else "mmap"
    try:
        return simulate_run(request.benchmark, request.scheme,
                            request.params, fault=fault,
                            workload=container.workload()), source
    finally:
        container.backing.close()


def _simulate(request: RunRequest, fault: Optional[Tuple[str, int]]):
    """Serial-mode default simulation callable (result only)."""
    return _simulate_measured(request, fault)[0]


# -- the executor --------------------------------------------------------------

class _Attempt:
    """Bookkeeping for one queued or running attempt of a request."""

    __slots__ = ("request", "key", "number", "ready_at")

    def __init__(self, request: RunRequest, key: str, number: int,
                 ready_at: float = 0.0) -> None:
        self.request = request
        self.key = key
        self.number = number          # 1-based attempt counter
        self.ready_at = ready_at      # monotonic time gate (backoff)


def execute_runs(requests: List[RunRequest],
                 workers: int = 0,
                 timeout_s: float = 0.0,
                 retry: Optional[RetryPolicy] = None,
                 faults: FaultPlan = NO_FAULTS,
                 checkpoint: Optional[CheckpointStore] = None,
                 tracer=NULL_TRACER,
                 on_outcome: Optional[Callable[[RunOutcome], None]] = None,
                 simulate: Optional[Callable] = None,
                 cost: Optional[Callable[[RunRequest], float]] = None,
                 telemetry=NO_TELEMETRY,
                 ) -> List[RunOutcome]:
    """Execute every request; never raises for per-run failures.

    Returns outcomes in request order.  Raises ``KeyboardInterrupt``
    (after killing any children) when interrupted — the checkpoint store,
    if any, already holds every finished run.

    ``simulate`` overrides the in-process simulation callable
    (``(request, fault) -> BenchmarkRun``) and applies to serial mode
    only — worker processes always import the canonical
    :func:`repro.experiments.runner.simulate_run`.  The campaign uses it
    to thread per-run observability through in-process execution.

    ``cost`` estimates a request's wall-clock seconds (see
    :func:`repro.experiments.schedule.cost_function`).  In pooled mode
    the queue is dispatched longest-first (LPT), which bounds the
    makespan wasted on stragglers; serial mode ignores it — order
    cannot change serial wall-clock, and stable enumeration order keeps
    progress output deterministic.

    ``telemetry`` (default :data:`repro.obs.NO_TELEMETRY`, the null
    object) receives run-lifecycle hooks — queued, dispatched, retried,
    finished (with worker wall/CPU measurements riding the result
    pipe), checkpoint writes/skips, and heartbeat samples.
    """
    retry = retry or RetryPolicy()
    outcomes: Dict[str, RunOutcome] = {}
    order: List[str] = []
    todo: List[_Attempt] = []
    for request in requests:
        key = run_key(request.benchmark, request.scheme, request.params)
        if key in outcomes:
            continue  # duplicate request; one execution serves both
        order.append(key)
        restored = checkpoint.get(key) if checkpoint is not None else None
        if restored is not None:
            outcomes[key] = RunOutcome(request=request, key=key, run=restored,
                                       restored=True)
            if telemetry.enabled:
                telemetry.run_restored(key, request)
            _trace_complete(tracer, outcomes[key])
            if on_outcome:
                on_outcome(outcomes[key])
        else:
            outcomes[key] = RunOutcome(request=request, key=key)
            if telemetry.enabled:
                telemetry.run_queued(key, request)
            todo.append(_Attempt(request, key, 1))

    context = _Context(retry=retry, faults=faults, checkpoint=checkpoint,
                       tracer=tracer, timeout_s=timeout_s,
                       on_outcome=on_outcome, outcomes=outcomes,
                       telemetry=telemetry)
    if todo:
        if workers and workers > 1:
            if cost is not None:
                todo.sort(key=lambda attempt: cost(attempt.request),
                          reverse=True)
            _run_pooled(todo, workers, context)
        else:
            _run_serial(todo, context, simulate or _simulate)
    return [outcomes[key] for key in order]


@dataclass
class _Context:
    """Shared executor state threaded through both execution modes."""

    retry: RetryPolicy
    faults: FaultPlan
    checkpoint: Optional[CheckpointStore]
    tracer: object
    timeout_s: float
    on_outcome: Optional[Callable[[RunOutcome], None]]
    outcomes: Dict[str, RunOutcome]
    telemetry: object = NO_TELEMETRY

    def take_fault(self, request: RunRequest) -> Optional[Tuple[str, int]]:
        if not self.faults.enabled:
            return None
        fault = self.faults.take_run_fault(request.benchmark, request.scheme)
        if fault is not None and fault[0] == "interrupt":
            raise KeyboardInterrupt(
                f"injected interrupt before {request.label}")
        return fault

    def succeed(self, attempt: _Attempt, run,
                meas: Optional[dict] = None) -> None:
        outcome = self.outcomes[attempt.key]
        outcome.run = run
        outcome.attempts = attempt.number
        if self.checkpoint is not None:
            try:
                self.checkpoint.put(attempt.key, run)
                if self.telemetry.enabled:
                    self.telemetry.checkpoint_write(ok=True)
            except OSError as error:
                print(f"warning: checkpoint write failed ({error}); "
                      f"continuing without durability for this run",
                      file=sys.stderr)
                if self.telemetry.enabled:
                    self.telemetry.checkpoint_write(ok=False)
                if self.tracer.enabled:
                    self.tracer.marker("checkpoint_write_failed",
                                       error=str(error))
        if self.telemetry.enabled:
            meas = meas or {}
            self.telemetry.run_finished(
                attempt.key, attempt.request, ok=True,
                attempts=attempt.number,
                wall_s=meas.get("wall_s", 0.0),
                cpu_s=meas.get("cpu_s"),
                workload_source=meas.get("workload"))
        _trace_complete(self.tracer, outcome)
        if self.on_outcome:
            self.on_outcome(outcome)

    def fail_or_retry(self, attempt: _Attempt, error: ErrorInfo,
                      meas: Optional[dict] = None) -> Optional[_Attempt]:
        """Returns the next attempt to queue, or None (run failed)."""
        if error.transient and attempt.number <= self.retry.max_retries:
            delay = self.retry.delay_s(attempt.key, attempt.number)
            if self.telemetry.enabled:
                self.telemetry.run_retry(
                    attempt.key, attempt.request, attempt.number,
                    error=f"{error.type}: {error.message}", delay_s=delay)
            if self.tracer.enabled:
                self.tracer.emit(obs_events.RUN_RETRY,
                                 benchmark=attempt.request.benchmark,
                                 scheme=attempt.request.scheme,
                                 attempt=attempt.number,
                                 error=f"{error.type}: {error.message}")
            return _Attempt(attempt.request, attempt.key, attempt.number + 1,
                            ready_at=time.monotonic() + delay)
        outcome = self.outcomes[attempt.key]
        outcome.failure = RunFailure(benchmark=attempt.request.benchmark,
                                     scheme=attempt.request.scheme,
                                     error=error, attempts=attempt.number)
        outcome.attempts = attempt.number
        if self.telemetry.enabled:
            meas = meas or {}
            self.telemetry.run_finished(
                attempt.key, attempt.request, ok=False,
                attempts=attempt.number,
                wall_s=meas.get("wall_s", 0.0),
                cpu_s=meas.get("cpu_s"),
                error=f"{error.type}: {error.message}",
                workload_source=meas.get("workload"))
        if self.tracer.enabled:
            self.tracer.emit(obs_events.RUN_FAILURE,
                             benchmark=attempt.request.benchmark,
                             scheme=attempt.request.scheme,
                             attempts=attempt.number,
                             error=f"{error.type}: {error.message}")
        if self.on_outcome:
            self.on_outcome(outcome)
        return None


def _trace_complete(tracer, outcome: RunOutcome) -> None:
    if tracer.enabled:
        tracer.emit(obs_events.RUN_COMPLETE,
                    benchmark=outcome.request.benchmark,
                    scheme=outcome.request.scheme,
                    attempts=outcome.attempts,
                    restored=outcome.restored)


# -- serial mode ---------------------------------------------------------------

def _run_serial(todo: List[_Attempt], ctx: _Context,
                simulate: Callable) -> None:
    queue = deque(todo)
    telemetry = ctx.telemetry
    while queue:
        attempt = queue.popleft()
        wait = attempt.ready_at - time.monotonic()
        if wait > 0:
            time.sleep(wait)
        fault = ctx.take_fault(attempt.request)
        if telemetry.enabled:
            telemetry.run_dispatched(attempt.key, attempt.request,
                                     attempt.number, mode="serial")
        started = time.monotonic()
        started_cpu = time.process_time()
        try:
            if fault is not None and fault[0] == "crash":
                # No process isolation to die in: synthesise the error the
                # pooled mode would have reported.
                raise WorkerCrash(attempt.request.benchmark,
                                  attempt.request.scheme, CRASH_EXIT_CODE)
            if fault is not None and fault[0] == "hang":
                raise RunTimeout(attempt.request.benchmark,
                                 attempt.request.scheme, ctx.timeout_s)
            run = simulate(attempt.request, fault)
        except Exception as error:  # KeyboardInterrupt propagates
            retry_attempt = ctx.fail_or_retry(
                attempt, ErrorInfo.from_exception(error),
                meas=_measurement(time.monotonic() - started,
                                  time.process_time() - started_cpu, None))
            if retry_attempt is not None:
                queue.append(retry_attempt)
            if telemetry.enabled:
                telemetry.sample(queued=len(queue), running=0)
            continue
        ctx.succeed(attempt, run,
                    meas=_measurement(time.monotonic() - started,
                                      time.process_time() - started_cpu,
                                      None))
        if telemetry.enabled:
            telemetry.sample(queued=len(queue), running=0)


# -- pooled mode ---------------------------------------------------------------

def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class _Worker:
    """One live child process executing one attempt."""

    def __init__(self, ctx_mp, attempt: _Attempt,
                 fault: Optional[Tuple[str, int]], timeout_s: float) -> None:
        self.attempt = attempt
        self.timeout_s = timeout_s
        parent_conn, child_conn = ctx_mp.Pipe(duplex=False)
        self.conn = parent_conn
        self.process = ctx_mp.Process(
            target=_child_entry, args=(attempt.request, fault, child_conn),
            daemon=True)
        self.process.start()
        child_conn.close()
        self.started = time.monotonic()
        self.deadline = (self.started + timeout_s) if timeout_s else None

    def _synthesized(self, error) -> Tuple[str, object, dict]:
        """An error message for attempts that never reported themselves
        (crashed or killed children): wall time is parent-measured."""
        return ("error", ErrorInfo.from_exception(error),
                _measurement(time.monotonic() - self.started, None, None))

    def poll(self) -> Optional[Tuple[str, object, dict]]:
        """Non-blocking check: a ("ok"|"error", payload, meas) message, a
        synthesised error for crash/timeout, or None (still running)."""
        if self.conn.poll():
            try:
                message = self.conn.recv()
            except EOFError:
                message = None
            self.process.join()
            if message is not None:
                return message
            return self._synthesized(WorkerCrash(
                self.attempt.request.benchmark, self.attempt.request.scheme,
                self.process.exitcode or 0))
        if not self.process.is_alive():
            self.process.join()
            return self._synthesized(WorkerCrash(
                self.attempt.request.benchmark, self.attempt.request.scheme,
                self.process.exitcode or 0))
        if self.deadline is not None and time.monotonic() > self.deadline:
            self.kill()
            return self._synthesized(RunTimeout(
                self.attempt.request.benchmark, self.attempt.request.scheme,
                self.timeout_s))
        return None

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join()
        self.conn.close()


def _run_pooled(todo: List[_Attempt], workers: int, ctx: _Context) -> None:
    ctx_mp = _mp_context()
    telemetry = ctx.telemetry
    queue = deque(todo)
    running: List[_Worker] = []
    try:
        while queue or running:
            now = time.monotonic()
            # Launch ready attempts into free slots.
            launched = True
            while launched and len(running) < workers and queue:
                launched = False
                for _ in range(len(queue)):
                    attempt = queue.popleft()
                    if attempt.ready_at <= now:
                        fault = ctx.take_fault(attempt.request)
                        if telemetry.enabled:
                            telemetry.run_dispatched(
                                attempt.key, attempt.request,
                                attempt.number, mode="pool")
                        running.append(_Worker(ctx_mp, attempt, fault,
                                               ctx.timeout_s))
                        launched = True
                        break
                    queue.append(attempt)  # still backing off; rotate
            # Collect finished workers.
            still_running: List[_Worker] = []
            for worker in running:
                message = worker.poll()
                if message is None:
                    still_running.append(worker)
                    continue
                status, payload, meas = message
                if status == "ok":
                    ctx.succeed(worker.attempt, payload, meas=meas)
                else:
                    retry_attempt = ctx.fail_or_retry(worker.attempt, payload,
                                                      meas=meas)
                    if retry_attempt is not None:
                        queue.append(retry_attempt)
            running = still_running
            if telemetry.enabled:
                telemetry.sample(queued=len(queue), running=len(running))
            if queue or running:
                time.sleep(_POLL_S)
    except BaseException:
        for worker in running:
            worker.kill()
        raise
