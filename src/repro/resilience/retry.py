"""Retry policy: error classification and deterministic backoff.

A failed run is retried only when its error is *transient* — a timeout,
a crashed worker, or an injected :class:`~repro.common.errors.FaultInjected`.
Permanent errors (a corrupt trace, a bad configuration, a translation
fault) fail the run immediately: re-running identical inputs would fail
identically.

Backoff delays are exponential with jitter, and the jitter is drawn from
:func:`repro.common.rng.make_rng` seeded by the experiment seed and the
run's identity — never from wall-clock entropy — so a resumed or
re-executed campaign schedules retries identically.  (The delays shape
*scheduling* only; simulation results never depend on them.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import TransientError
from ..common.rng import make_rng


def is_transient(error: BaseException) -> bool:
    """True when ``error`` is worth retrying (see module docstring)."""
    return isinstance(error, TransientError)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient failure, and how fast.

    ``max_retries`` counts *additional* attempts after the first: a run
    is attempted at most ``max_retries + 1`` times.  The delay before
    retry ``attempt`` (1-based) is::

        min(base_delay_s * factor ** (attempt - 1), max_delay_s) * (1 + U)

    where ``U`` is uniform in ``[0, jitter)`` drawn deterministically
    from ``(seed, key, attempt)``.
    """

    max_retries: int = 2
    base_delay_s: float = 0.25
    factor: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) gets another try."""
        return is_transient(error) and attempt <= self.max_retries

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of run ``key``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(self.base_delay_s * self.factor ** (attempt - 1),
                   self.max_delay_s)
        rng = make_rng(self.seed, f"retry:{key}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())
