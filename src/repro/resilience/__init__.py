"""Resilient campaign execution: isolation, retry, checkpoint, degradation.

The paper's evaluation is a large campaign of independent (benchmark,
scheme, params) simulations; this package is what lets it survive the
real world:

* :mod:`repro.resilience.retry` — transient/permanent error
  classification and exponential backoff with deterministic jitter;
* :mod:`repro.resilience.checkpoint` — an atomic, content-hash-keyed
  JSONL store of finished runs, enabling ``--checkpoint``/``--resume``;
* :mod:`repro.resilience.workers` — the executor: serial or
  process-pool (one child per run, per-run timeout, crash containment),
  with the retry loop and checkpoint integration on top.

Fault injection to *prove* all of it lives in :mod:`repro.faults`.
"""

from __future__ import annotations

from .checkpoint import CheckpointStore, run_key
from .retry import RetryPolicy, is_transient
from .workers import RunFailure, RunOutcome, RunRequest, execute_runs

__all__ = [
    "CheckpointStore",
    "RetryPolicy",
    "RunFailure",
    "RunOutcome",
    "RunRequest",
    "execute_runs",
    "is_transient",
    "run_key",
]
