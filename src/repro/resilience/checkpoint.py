"""Checkpoint store: finished campaign runs, persisted incrementally.

Every completed (benchmark, scheme, params) simulation is written to a
JSONL file keyed by a content hash of exactly the inputs that determine
its result (see :func:`run_key`).  ``pomtlb campaign --checkpoint PATH
--resume`` then skips any run whose key is already present — after a
crash, a Ctrl-C, or an earlier partial campaign.

Durability properties:

* **atomic** — every update rewrites the file through the shared
  temp-file + rename helper (:func:`repro.common.fileio.atomic_write_text`),
  so the store on disk is always a complete, parseable document;
* **self-describing** — a header line carries the format version;
* **tolerant** — unreadable lines (e.g. a torn write from a pre-atomic
  tool, or hand editing) are skipped on load, not fatal: a damaged entry
  costs one re-simulation, never the campaign.

Only *successful* runs are checkpointed.  Failures are re-attempted on
resume: the error may have been environmental, and re-running is the
only way to find out.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

from ..common.errors import CheckpointError
from ..common.fileio import atomic_write_text
from ..common.stats import StatRegistry
from ..faults import NO_FAULTS, FaultPlan
from ..obs.histogram import LogHistogram

#: Bumped when the record schema changes; loaders reject other versions.
FORMAT_VERSION = 1

_HEADER_KEY = "pomtlb_checkpoint"


def run_key(benchmark: str, scheme: str, params) -> str:
    """Content-hash key of one run: benchmark, scheme and frozen params.

    ``params`` is an :class:`~repro.experiments.runner.ExperimentParams`;
    only its simulation-relevant fields participate (execution knobs like
    worker count or timeout cannot change a result, so changing them must
    still hit the checkpoint).  Any change to a participating field —
    seed, scale, capacities, ablation switches — changes the key and
    forces a re-simulation.
    """
    payload = {"benchmark": benchmark, "scheme": scheme,
               "params": params.checkpoint_fields()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


# -- run (de)serialization -----------------------------------------------------

def serialize_run(run) -> dict:
    """JSON-ready snapshot of a BenchmarkRun (results + Eq. 2-5 anchor)."""
    import dataclasses

    result = run.result
    return {
        "benchmark": run.benchmark,
        "scheme": run.scheme,
        "result": {
            "scheme": result.scheme,
            "references": result.references,
            "instructions": result.instructions,
            "l2_tlb_misses": result.l2_tlb_misses,
            "penalty_cycles": result.penalty_cycles,
            "translation_cycles": result.translation_cycles,
            "data_cycles": result.data_cycles,
            "page_walks": result.page_walks,
            "stats": result.stats.as_nested_dict(),
            "histograms": ({name: h.as_dict()
                            for name, h in result.histograms.items()}
                           if result.histograms is not None else None),
        },
        "performance": dataclasses.asdict(run.performance),
    }


def deserialize_run(record: dict):
    """Inverse of :func:`serialize_run`.

    Windowed metrics are not persisted (they exist only when a CLI
    session asked for ``--metrics-out``, which is incompatible with
    resuming from results that were never re-simulated).
    """
    from ..core.perfmodel import PerformanceEstimate
    from ..core.system import SimulationResult
    from ..experiments.runner import BenchmarkRun

    data = record["result"]
    histograms = data.get("histograms")
    result = SimulationResult(
        scheme=data["scheme"],
        references=data["references"],
        instructions=data["instructions"],
        l2_tlb_misses=data["l2_tlb_misses"],
        penalty_cycles=data["penalty_cycles"],
        translation_cycles=data["translation_cycles"],
        data_cycles=data["data_cycles"],
        page_walks=data["page_walks"],
        stats=StatRegistry.from_nested_dict(data["stats"]),
        histograms=({name: LogHistogram.from_dict(h)
                     for name, h in histograms.items()}
                    if histograms is not None else None),
        windows=None,
    )
    performance = PerformanceEstimate(**record["performance"])
    return BenchmarkRun(benchmark=record["benchmark"],
                        scheme=record["scheme"],
                        result=result, performance=performance)


# -- the store -----------------------------------------------------------------

class CheckpointStore:
    """JSONL store of finished runs, keyed by :func:`run_key`.

    ``faults`` hooks the injectable ``ckpt-io`` failure mode; callers
    treat a failed write as a warning (the campaign continues, the store
    merely goes stale) — see the executor.
    """

    def __init__(self, path: str, faults: FaultPlan = NO_FAULTS,
                 load: bool = True) -> None:
        """``load=False`` starts fresh: existing records are ignored and
        overwritten on the first write (a campaign without ``--resume``)."""
        self.path = path
        self.faults = faults
        self._records: Dict[str, dict] = {}
        self._skipped = 0
        if load and os.path.exists(path):
            self._load()

    def _load(self) -> None:
        with open(self.path) as handle:
            first = handle.readline()
            if not first.strip():
                return
            try:
                header = json.loads(first)
                version = header.get(_HEADER_KEY)
            except (json.JSONDecodeError, AttributeError):
                raise CheckpointError(
                    f"{self.path}: not a checkpoint file") from None
            if version != FORMAT_VERSION:
                raise CheckpointError(
                    f"{self.path}: unsupported checkpoint version {version!r}"
                    f" (expected {FORMAT_VERSION})")
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                    entry["run"]["result"]["references"]  # shape check
                except (json.JSONDecodeError, KeyError, TypeError):
                    self._skipped += 1
                    continue
                self._records[key] = entry

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    @property
    def skipped_lines(self) -> int:
        """Damaged lines ignored on load (each costs one re-simulation)."""
        return self._skipped

    def get(self, key: str):
        """The restored BenchmarkRun for ``key``, or None."""
        entry = self._records.get(key)
        if entry is None:
            return None
        return deserialize_run(entry["run"])

    # -- updates -------------------------------------------------------------

    def put(self, key: str, run) -> None:
        """Record one finished run and persist the store atomically.

        Raises ``OSError`` when the write fails (including injected
        ``ckpt-io`` faults); the in-memory store keeps the record either
        way, so a later successful ``put`` re-persists it.
        """
        self._records[key] = {"key": key, "benchmark": run.benchmark,
                              "scheme": run.scheme,
                              "run": serialize_run(run)}
        if self.faults.enabled and self.faults.take_checkpoint_fault():
            raise OSError(f"{self.path}: injected checkpoint write failure")
        self._persist()

    def _persist(self) -> None:
        lines = [json.dumps({_HEADER_KEY: FORMAT_VERSION})]
        lines.extend(json.dumps(entry, separators=(",", ":"))
                     for entry in self._records.values())
        atomic_write_text(self.path, "\n".join(lines) + "\n")
