"""Log-bucketed latency histograms with percentile estimation.

A :class:`LogHistogram` keeps one counter per power-of-two bucket
(bucket ``b`` holds values in ``[2**(b-1), 2**b - 1]``; bucket 0 holds
the value 0), so recording is O(1) with constant, tiny memory no matter
how long the run — the property that lets the simulator keep latency
distributions on by default.  Percentiles are estimated by linear
interpolation inside the covering bucket and clamped to the observed
``[min, max]`` range, which makes single-sample and constant-valued
histograms exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class LogHistogram:
    """Power-of-two-bucketed histogram of non-negative integer latencies."""

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max = 0
        self._buckets: Dict[int, int] = {}

    # -- recording (hot path) ----------------------------------------------

    def record(self, value: int) -> None:
        """Count one observation of ``value`` (negative values clamp to 0)."""
        if value < 0:
            value = 0
        bucket = int(value).bit_length()
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if self.min is None or value < self.min:
            self.min = value

    def record_many(self, value: int, n: int) -> None:
        """Count ``n`` observations of the same ``value`` in O(1).

        Exactly equivalent to calling :meth:`record` ``n`` times — every
        aggregate (buckets, count, total, min, max) is order-independent
        — which is what lets the batched replay engine account a whole
        slice of constant-latency hits at once.
        """
        if n <= 0:
            return
        if value < 0:
            value = 0
        bucket = int(value).bit_length()
        self._buckets[bucket] = self._buckets.get(bucket, 0) + n
        self.count += n
        self.total += value * n
        if value > self.max:
            self.max = value
        if self.min is None or value < self.min:
            self.min = value

    # -- derived metrics ----------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (``0 <= p <= 100``)."""
        if not self.count:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        target = max(1, -(-self.count * p // 100))  # ceil, at least rank 1
        cumulative = 0
        estimate = 0.0
        for bucket in sorted(self._buckets):
            in_bucket = self._buckets[bucket]
            if cumulative + in_bucket >= target:
                lo = 0 if bucket == 0 else 1 << (bucket - 1)
                hi = 0 if bucket == 0 else (1 << bucket) - 1
                fraction = (target - cumulative) / in_bucket
                estimate = lo + fraction * (hi - lo)
                break
            cumulative += in_bucket
        low = self.min if self.min is not None else 0
        return float(min(max(estimate, low), self.max))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Forget every observation (used at the warmup boundary)."""
        self.count = 0
        self.total = 0
        self.min = None
        self.max = 0
        self._buckets.clear()

    def merge(self, other: "LogHistogram") -> None:
        """Accumulate another histogram's observations into this one."""
        for bucket, n in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + n
        self.count += other.count
        self.total += other.total
        if other.count:
            if other.max > self.max:
                self.max = other.max
            if self.min is None or (other.min is not None
                                    and other.min < self.min):
                self.min = other.min

    # -- reporting ----------------------------------------------------------

    def buckets(self) -> List[List[int]]:
        """``[lo, hi, count]`` rows for every non-empty bucket, ascending."""
        rows = []
        for bucket in sorted(self._buckets):
            lo = 0 if bucket == 0 else 1 << (bucket - 1)
            hi = 0 if bucket == 0 else (1 << bucket) - 1
            rows.append([lo, hi, self._buckets[bucket]])
        return rows

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary: moments, percentiles and bucket rows."""
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "buckets": self.buckets(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LogHistogram":
        """Rebuild a histogram from :meth:`as_dict` output (checkpoint restore).

        Derived fields (mean, percentiles) are recomputed from the bucket
        rows; only the raw state is read back.
        """
        histogram = cls(str(data.get("name", "")))
        histogram.count = int(data["count"])  # type: ignore[arg-type]
        histogram.total = int(data["total"])  # type: ignore[arg-type]
        histogram.max = int(data["max"])  # type: ignore[arg-type]
        histogram.min = int(data["min"]) if histogram.count else None  # type: ignore[arg-type]
        for lo, _hi, n in data.get("buckets", []):  # type: ignore[union-attr]
            bucket = int(lo).bit_length()
            histogram._buckets[bucket] = int(n)
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LogHistogram({self.name!r}, n={self.count}, "
                f"p50={self.p50:.0f}, p99={self.p99:.0f}, max={self.max})")
