"""Campaign-wide telemetry: metrics registry, status stream, fleet view.

PR 1 gave a single simulation deep observability; this module gives the
*campaign* — many runs across many worker processes — the same
treatment, behind the same null-object discipline:

* :class:`MetricsRegistry` — counters / gauges / summaries with
  Prometheus-style labels.  It is **multiprocessing-safe by
  construction**: only the campaign parent ever mutates it.  Workers
  measure their own attempt (wall seconds, CPU seconds, how the
  workload was sourced) and ship the measurement back over the existing
  result pipe; the parent aggregates.  No locks, no shared memory, no
  write races.
* :class:`CampaignTelemetry` — the hub the campaign and the resilient
  executor call into: run-lifecycle spans (queued → dispatched →
  running → retried / failed / completed), workload-cache and
  shared-memory-arena events, checkpoint skip/write counts, per-worker
  busy fraction, and the :class:`LptAccuracy` tracker comparing
  :mod:`repro.experiments.schedule` predicted cost against actual
  duration per run — the calibration signal adaptive sweeps need.
* a **live NDJSON status stream** (``--status-out``): one JSON object
  per line with a stable, versioned schema (:data:`STATUS_EVENT_FIELDS`,
  documented in EXPERIMENTS.md), flushed per event so ``pomtlb top`` and
  external tooling can tail it while the campaign runs.
* :class:`StatusSnapshot` / :func:`render_top` — the state machine and
  renderer behind ``pomtlb top``, the in-terminal fleet view.

:data:`NO_TELEMETRY` is the default everywhere.  Its hook methods are
no-ops and its ``enabled`` attribute is a ``False`` class attribute, so
a campaign that never asked for telemetry pays one attribute check per
*run* (not per translation) — far inside the < 5% overhead guard.

The exporters (Prometheus text exposition and the self-contained HTML
dashboard) live in :mod:`repro.obs.exporters` and read the structures
collected here.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Tuple

# -- status-stream schema ------------------------------------------------------

#: Bumped when the NDJSON status-stream schema changes; every event
#: carries it as ``v`` so consumers can reject streams they don't speak.
STATUS_VERSION = 1

#: Campaign accepted: totals and pool shape.
CAMPAIGN_START = "campaign_start"
#: Workload compilation finished (cache hits/misses are final).
WORKLOADS = "workloads"
#: One attempt of one run was dispatched (serial or into a pool worker).
RUN_START = "run_start"
#: A transient failure was scheduled for another attempt.
RUN_RETRY = "run_retry"
#: A run reached a terminal state: ``ok`` / ``failed`` / ``restored``.
RUN_END = "run_end"
#: Periodic fleet sample (cadence: ``heartbeat_s``, default 1 s).
HEARTBEAT = "heartbeat"
#: Campaign finished; final tallies (mirrors the exporters).
CAMPAIGN_END = "campaign_end"

#: Required type-specific fields per status event (every event also
#: carries ``v``, ``event``, ``t`` — seconds since campaign start from a
#: monotonic clock — and ``ts`` — wall-clock epoch seconds).
STATUS_EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    CAMPAIGN_START: ("total_runs", "workers"),
    WORKLOADS: ("compiled", "cache_hits", "cache_misses"),
    RUN_START: ("key", "benchmark", "scheme", "attempt", "mode",
                "predicted_s"),
    RUN_RETRY: ("key", "benchmark", "scheme", "attempt", "error",
                "delay_s"),
    RUN_END: ("key", "benchmark", "scheme", "state", "attempts", "wall_s",
              "cpu_s", "predicted_s", "error"),
    HEARTBEAT: ("elapsed_s", "queued", "running", "completed", "failed",
                "restored", "retries", "busy_frac"),
    CAMPAIGN_END: ("elapsed_s", "completed", "failed", "restored",
                   "retries", "simulated", "cache_hits", "cache_misses"),
}

#: Terminal states a ``run_end`` event may carry.
RUN_END_STATES = ("ok", "failed", "restored")


def validate_status_event(event: Mapping) -> None:
    """Raise ``ValueError`` unless ``event`` matches the documented schema."""
    if not isinstance(event, Mapping):
        raise ValueError(f"status event must be a JSON object, "
                         f"got {type(event).__name__}")
    if event.get("v") != STATUS_VERSION:
        raise ValueError(f"unsupported status-stream version "
                         f"{event.get('v')!r} (expected {STATUS_VERSION})")
    etype = event.get("event")
    if etype not in STATUS_EVENT_FIELDS:
        raise ValueError(f"unknown status event type {etype!r}")
    for name in ("t", "ts"):
        if name not in event:
            raise ValueError(f"{etype} event missing timestamp {name!r}")
    missing = [f for f in STATUS_EVENT_FIELDS[etype] if f not in event]
    if missing:
        raise ValueError(f"{etype} event missing fields {missing}: {event}")
    if etype == RUN_END and event["state"] not in RUN_END_STATES:
        raise ValueError(f"run_end state {event['state']!r} not in "
                         f"{RUN_END_STATES}")


# -- metrics registry ----------------------------------------------------------

class Counter:
    """Monotonically increasing count (Prometheus ``counter``)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (Prometheus ``gauge``)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Summary:
    """Streaming count/sum/min/max of observations (durations, sizes)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Family:
    """All label-variants of one named metric, plus its metadata."""

    __slots__ = ("kind", "help", "series")

    def __init__(self, kind: str, help_text: str) -> None:
        self.kind = kind
        self.help = help_text
        self.series: Dict[Tuple[Tuple[str, str], ...], object] = {}


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "summary": Summary}


class MetricsRegistry:
    """Named counters / gauges / summaries with optional labels.

    Single-writer by contract: the campaign parent owns the registry and
    is the only mutator (worker measurements arrive over the result
    pipe), which is what makes it multiprocessing-safe without locks.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _metric(self, kind: str, name: str, help_text: str,
                labels: Dict[str, str]):
        family = self._families.get(name)
        if family is None:
            family = _Family(kind, help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(f"metric {name!r} already registered as "
                             f"{family.kind}, not {kind}")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        metric = family.series.get(key)
        if metric is None:
            metric = _METRIC_TYPES[kind]()
            family.series[key] = metric
        return metric

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        return self._metric("counter", name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        return self._metric("gauge", name, help_text, labels)

    def summary(self, name: str, help_text: str = "", **labels) -> Summary:
        return self._metric("summary", name, help_text, labels)

    def collect(self):
        """Yield ``(name, kind, help, [(labels, metric), ...])`` sorted."""
        for name in sorted(self._families):
            family = self._families[name]
            yield (name, family.kind, family.help,
                   sorted(family.series.items()))

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (what the dashboard inlines)."""
        snapshot: Dict[str, object] = {}
        for name, kind, help_text, series in self.collect():
            entries = []
            for labels, metric in series:
                entry: Dict[str, object] = {"labels": dict(labels)}
                if kind == "summary":
                    entry.update(count=metric.count, sum=metric.total,
                                 min=(metric.minimum if metric.count
                                      else None),
                                 max=(metric.maximum if metric.count
                                      else None))
                else:
                    entry["value"] = metric.value
                entries.append(entry)
            snapshot[name] = {"type": kind, "help": help_text,
                              "series": entries}
        return snapshot


# -- LPT calibration -----------------------------------------------------------

class LptAccuracy:
    """Predicted-vs-actual run duration, per run and aggregated.

    The LPT scheduler (:mod:`repro.experiments.schedule`) dispatches
    longest-expected-first from ``BENCH_engine.json`` rates; this
    tracker records how good those predictions were.  ``error`` is the
    signed relative error ``(actual - predicted) / predicted``; the
    summary reports MAPE (mean absolute percentage error) and bias
    (mean signed error) — the feedback adaptive sweeps will calibrate
    against.
    """

    def __init__(self) -> None:
        self._predicted: Dict[str, float] = {}
        self.records: List[Dict[str, object]] = []

    def predict(self, key: str, seconds: float) -> None:
        self._predicted[key] = seconds

    def predicted(self, key: str) -> Optional[float]:
        return self._predicted.get(key)

    def observe(self, key: str, benchmark: str, scheme: str,
                actual_s: float) -> None:
        predicted = self._predicted.get(key)
        if predicted is None or predicted <= 0 or actual_s < 0:
            return
        self.records.append({
            "key": key, "benchmark": benchmark, "scheme": scheme,
            "predicted_s": predicted, "actual_s": actual_s,
            "error": (actual_s - predicted) / predicted,
        })

    def summary(self) -> Dict[str, object]:
        if not self.records:
            return {"runs": 0, "mape": None, "bias": None}
        errors = [record["error"] for record in self.records]
        return {
            "runs": len(errors),
            "mape": sum(abs(e) for e in errors) / len(errors),
            "bias": sum(errors) / len(errors),
        }


# -- the telemetry hub ---------------------------------------------------------

class NullTelemetry:
    """Do-nothing telemetry; ``enabled`` is always False.

    The hooks exist so call sites that did not gate still work; gated
    sites (``if telemetry.enabled``) skip even the argument packing.
    """

    enabled = False

    def campaign_start(self, total_runs: int, workers: int) -> None:
        pass

    def workloads_compiled(self, compiled: int, cache_hits: int,
                           cache_misses: int, rejected: int = 0) -> None:
        pass

    def predict(self, key: str, seconds: float) -> None:
        pass

    def run_queued(self, key: str, request) -> None:
        pass

    def run_restored(self, key: str, request) -> None:
        pass

    def run_dispatched(self, key: str, request, attempt: int,
                       mode: str) -> None:
        pass

    def run_retry(self, key: str, request, attempt: int, error: str,
                  delay_s: float) -> None:
        pass

    def run_finished(self, key: str, request, ok: bool, attempts: int,
                     wall_s: float, cpu_s: Optional[float] = None,
                     error: Optional[str] = None,
                     workload_source: Optional[str] = None) -> None:
        pass

    def checkpoint_write(self, ok: bool) -> None:
        pass

    def sample(self, queued: int, running: int) -> None:
        pass

    def campaign_end(self, simulated: int = 0) -> None:
        pass

    def export(self) -> List[str]:
        return []

    def close(self) -> None:
        pass


#: The shared null object; every telemetry parameter defaults to it.
NO_TELEMETRY = NullTelemetry()


class CampaignTelemetry(NullTelemetry):
    """Aggregates campaign telemetry in the parent and streams status.

    ``status_path`` — NDJSON status stream, one flushed line per event
    (empty = no stream).  ``export_dir`` — where :meth:`export` writes
    ``campaign_metrics.prom`` and ``campaign_dashboard.html`` (empty =
    no exporters).  ``heartbeat_s`` — minimum seconds between heartbeat
    events; the executor calls :meth:`sample` from its poll loop and the
    hub rate-limits internally.  ``clock`` / ``wall`` are injectable for
    tests (monotonic and epoch clocks).
    """

    enabled = True

    def __init__(self, status_path: str = "", export_dir: str = "",
                 heartbeat_s: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 wall: Callable[[], float] = time.time) -> None:
        self.status_path = status_path
        self.export_dir = export_dir
        self.heartbeat_s = heartbeat_s
        self.clock = clock
        self.wall = wall
        self.registry = MetricsRegistry()
        self.lpt = LptAccuracy()
        #: key -> per-run record (state machine + dashboard rows)
        self.runs: Dict[str, Dict[str, object]] = {}
        self.heartbeats: List[Dict[str, float]] = []
        self.workers = 1
        self.total_runs = 0
        self.started = self.clock()
        self.busy_seconds = 0.0
        self.retries = 0
        self._counts = {"ok": 0, "failed": 0, "restored": 0}
        self._last_heartbeat = None  # None until campaign_start
        self._stream = open(status_path, "w") if status_path else None

    # -- status stream -------------------------------------------------------

    def _emit(self, etype: str, **fields) -> None:
        if self._stream is None:
            return
        event = {"v": STATUS_VERSION, "event": etype,
                 "t": round(self.clock() - self.started, 6),
                 "ts": round(self.wall(), 3), **fields}
        # One write() per line, flushed: tailers never see a sheared
        # line, and `pomtlb top` sees events as they happen.
        self._stream.write(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n")
        self._stream.flush()

    # -- campaign lifecycle --------------------------------------------------

    def campaign_start(self, total_runs: int, workers: int) -> None:
        self.total_runs = total_runs
        self.workers = max(1, workers)
        self.started = self.clock()
        self._last_heartbeat = self.started
        self.registry.gauge(
            "pomtlb_campaign_workers",
            "Process-pool width of this campaign.").set(self.workers)
        self.registry.gauge(
            "pomtlb_campaign_runs_planned",
            "Runs the campaign enumerated up front.").set(total_runs)
        self._emit(CAMPAIGN_START, total_runs=total_runs,
                   workers=self.workers)

    def workloads_compiled(self, compiled: int, cache_hits: int,
                           cache_misses: int, rejected: int = 0) -> None:
        help_compiled = "Workloads compiled this campaign (cache misses " \
                        "plus uncached generation)."
        self.registry.counter("pomtlb_campaign_workloads_compiled_total",
                              help_compiled).inc(compiled)
        self.registry.counter(
            "pomtlb_campaign_workload_cache_hits_total",
            "Workload-cache hits (compiled containers reused).").inc(
                cache_hits)
        self.registry.counter(
            "pomtlb_campaign_workload_cache_misses_total",
            "Workload-cache misses (containers compiled fresh).").inc(
                cache_misses)
        if rejected:
            self.registry.counter(
                "pomtlb_campaign_workload_cache_rejected_total",
                "Damaged workload-cache entries discarded.").inc(rejected)
        self._emit(WORKLOADS, compiled=compiled, cache_hits=cache_hits,
                   cache_misses=cache_misses)

    def predict(self, key: str, seconds: float) -> None:
        self.lpt.predict(key, seconds)

    # -- run lifecycle (executor hooks) --------------------------------------

    def _run(self, key: str, request) -> Dict[str, object]:
        record = self.runs.get(key)
        if record is None:
            record = {"key": key, "benchmark": request.benchmark,
                      "scheme": request.scheme, "state": "queued",
                      "attempts": 0, "queued_t": self.clock() - self.started,
                      "wall_s": None, "cpu_s": None,
                      "predicted_s": self.lpt.predicted(key),
                      "error": None, "workload_source": None}
            self.runs[key] = record
        return record

    def run_queued(self, key: str, request) -> None:
        self._run(key, request)
        self.registry.counter(
            "pomtlb_campaign_runs_queued_total",
            "Distinct runs accepted by the executor.").inc()

    def run_restored(self, key: str, request) -> None:
        record = self._run(key, request)
        record["state"] = "restored"
        record["wall_s"] = 0.0
        self._counts["restored"] += 1
        self.registry.counter(
            "pomtlb_campaign_runs_total",
            "Terminal run states.", state="restored").inc()
        self.registry.counter(
            "pomtlb_campaign_checkpoint_skips_total",
            "Runs satisfied from the checkpoint store "
            "(no simulation).").inc()
        self._emit(RUN_END, key=key, benchmark=request.benchmark,
                   scheme=request.scheme, state="restored", attempts=0,
                   wall_s=0.0, cpu_s=None,
                   predicted_s=self.lpt.predicted(key), error=None)

    def run_dispatched(self, key: str, request, attempt: int,
                       mode: str) -> None:
        record = self._run(key, request)
        record["state"] = "running"
        record["attempts"] = attempt
        record["dispatched_t"] = self.clock() - self.started
        self.registry.counter(
            "pomtlb_campaign_attempts_total",
            "Run attempts dispatched (retries included).",
            mode=mode).inc()
        self._emit(RUN_START, key=key, benchmark=request.benchmark,
                   scheme=request.scheme, attempt=attempt, mode=mode,
                   predicted_s=self.lpt.predicted(key))

    def run_retry(self, key: str, request, attempt: int, error: str,
                  delay_s: float) -> None:
        record = self._run(key, request)
        record["state"] = "retrying"
        self.retries += 1
        self.registry.counter(
            "pomtlb_campaign_retries_total",
            "Transient failures scheduled for another attempt.").inc()
        self._emit(RUN_RETRY, key=key, benchmark=request.benchmark,
                   scheme=request.scheme, attempt=attempt, error=error,
                   delay_s=round(delay_s, 6))

    def run_finished(self, key: str, request, ok: bool, attempts: int,
                     wall_s: float, cpu_s: Optional[float] = None,
                     error: Optional[str] = None,
                     workload_source: Optional[str] = None) -> None:
        record = self._run(key, request)
        state = "ok" if ok else "failed"
        record.update(state=state, attempts=attempts, wall_s=wall_s,
                      cpu_s=cpu_s, error=error,
                      workload_source=workload_source)
        self._counts[state] += 1
        self.busy_seconds += max(0.0, wall_s)
        self.registry.counter("pomtlb_campaign_runs_total",
                              "Terminal run states.", state=state).inc()
        self.registry.summary(
            "pomtlb_campaign_run_wall_seconds",
            "Per-run wall-clock duration.",
            scheme=request.scheme).observe(wall_s)
        if cpu_s is not None:
            self.registry.summary(
                "pomtlb_campaign_run_cpu_seconds",
                "Per-run worker CPU time.",
                scheme=request.scheme).observe(cpu_s)
        self.registry.summary(
            "pomtlb_campaign_worker_busy_seconds",
            "Attempt durations summed across the pool.").observe(
                max(0.0, wall_s))
        if workload_source is not None:
            self.registry.counter(
                "pomtlb_campaign_workload_source_total",
                "How run workloads were obtained (shm attach, mmap, "
                "parent container, regenerated after a vanished "
                "segment, generated fresh).",
                source=workload_source).inc()
        if ok:
            self.lpt.observe(key, request.benchmark, request.scheme, wall_s)
        self._emit(RUN_END, key=key, benchmark=request.benchmark,
                   scheme=request.scheme, state=state, attempts=attempts,
                   wall_s=round(wall_s, 6),
                   cpu_s=None if cpu_s is None else round(cpu_s, 6),
                   predicted_s=self.lpt.predicted(key), error=error)

    def checkpoint_write(self, ok: bool) -> None:
        if ok:
            self.registry.counter(
                "pomtlb_campaign_checkpoint_writes_total",
                "Finished runs persisted to the checkpoint store.").inc()
        else:
            self.registry.counter(
                "pomtlb_campaign_checkpoint_write_failures_total",
                "Checkpoint writes that failed (campaign continued "
                "without durability for that run).").inc()

    # -- heartbeats ----------------------------------------------------------

    def sample(self, queued: int, running: int) -> None:
        """Rate-limited fleet sample; the executor calls this freely."""
        now = self.clock()
        last = self._last_heartbeat
        if last is None:
            self._last_heartbeat = now
            return
        if now - last < self.heartbeat_s:
            return
        self._last_heartbeat = now
        self.heartbeat(queued, running)

    def heartbeat(self, queued: int, running: int) -> None:
        """Emit one heartbeat unconditionally (``sample`` rate-limits)."""
        elapsed = max(self.clock() - self.started, 1e-9)
        busy = min(1.0, self.busy_seconds / (self.workers * elapsed))
        beat = {"elapsed_s": round(elapsed, 6), "queued": queued,
                "running": running, "completed": self._counts["ok"],
                "failed": self._counts["failed"],
                "restored": self._counts["restored"],
                "retries": self.retries, "busy_frac": round(busy, 4)}
        self.heartbeats.append(beat)
        self._emit(HEARTBEAT, **beat)

    # -- wrap-up -------------------------------------------------------------

    def campaign_end(self, simulated: int = 0) -> None:
        elapsed = self.clock() - self.started
        cache = self._cache_counts()
        self.registry.gauge(
            "pomtlb_campaign_elapsed_seconds",
            "Campaign wall-clock (monotonic).").set(round(elapsed, 6))
        summary = self.lpt.summary()
        self.registry.gauge(
            "pomtlb_campaign_lpt_runs",
            "Runs with a predicted-vs-actual calibration record.").set(
                summary["runs"])
        if summary["mape"] is not None:
            self.registry.gauge(
                "pomtlb_campaign_lpt_mape",
                "LPT scheduler mean absolute percentage error.").set(
                    round(summary["mape"], 6))
            self.registry.gauge(
                "pomtlb_campaign_lpt_bias",
                "LPT scheduler mean signed relative error.").set(
                    round(summary["bias"], 6))
        self._emit(CAMPAIGN_END, elapsed_s=round(elapsed, 6),
                   completed=self._counts["ok"],
                   failed=self._counts["failed"],
                   restored=self._counts["restored"],
                   retries=self.retries, simulated=simulated,
                   cache_hits=cache[0], cache_misses=cache[1])

    def _cache_counts(self) -> Tuple[int, int]:
        def value(name: str) -> int:
            family = self.registry._families.get(name)
            if family is None:
                return 0
            return sum(metric.value for metric in family.series.values())
        return (value("pomtlb_campaign_workload_cache_hits_total"),
                value("pomtlb_campaign_workload_cache_misses_total"))

    def export(self) -> List[str]:
        """Write the Prometheus and dashboard artifacts; returns paths."""
        if not self.export_dir:
            return []
        from .exporters import write_dashboard, write_prometheus
        paths = [write_prometheus(self.registry, self.export_dir),
                 write_dashboard(self, self.export_dir)]
        return paths

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


# -- `pomtlb top`: snapshot + renderer -----------------------------------------

class StatusSnapshot:
    """Replays a status stream into the current fleet state.

    Tolerant by design: unknown events and damaged lines are skipped —
    a live tail must survive a half-written final line or a newer
    stream version's extra events.
    """

    def __init__(self, recent: int = 8) -> None:
        self.total_runs = 0
        self.workers = 1
        self.completed = 0
        self.failed = 0
        self.restored = 0
        self.retries = 0
        self.compiled = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.elapsed_s = 0.0
        self.busy_frac = 0.0
        self.queued = 0
        self.running: Dict[str, Dict[str, object]] = {}
        self.recent = deque(maxlen=recent)
        self.errors: List[str] = []
        self.finished = False
        self.lpt = LptAccuracy()
        self.heartbeats: List[Dict[str, float]] = []

    def apply_line(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            event = json.loads(line)
            validate_status_event(event)
        except (ValueError, TypeError):
            return
        self.apply(event)

    def apply(self, event: Mapping) -> None:
        etype = event["event"]
        self.elapsed_s = max(self.elapsed_s, float(event.get("t", 0.0)))
        if etype == CAMPAIGN_START:
            self.total_runs = event["total_runs"]
            self.workers = event["workers"]
        elif etype == WORKLOADS:
            self.compiled = event["compiled"]
            self.cache_hits = event["cache_hits"]
            self.cache_misses = event["cache_misses"]
        elif etype == RUN_START:
            self.running[event["key"]] = dict(event)
            if event["predicted_s"] is not None:
                self.lpt.predict(event["key"], event["predicted_s"])
        elif etype == RUN_RETRY:
            self.retries += 1
            self.running.pop(event["key"], None)
            self.recent.appendleft(("retry", event))
        elif etype == RUN_END:
            self.running.pop(event["key"], None)
            state = event["state"]
            if state == "ok":
                self.completed += 1
                if (event["predicted_s"] is not None
                        and event["wall_s"] is not None):
                    self.lpt.predict(event["key"], event["predicted_s"])
                    self.lpt.observe(event["key"], event["benchmark"],
                                     event["scheme"], event["wall_s"])
            elif state == "failed":
                self.failed += 1
                if event.get("error"):
                    self.errors.append(
                        f"({event['benchmark']}, {event['scheme']}): "
                        f"{event['error']}")
            else:
                self.restored += 1
            self.recent.appendleft((state, event))
        elif etype == HEARTBEAT:
            self.queued = event["queued"]
            self.busy_frac = event["busy_frac"]
            self.heartbeats.append(dict(event))
        elif etype == CAMPAIGN_END:
            self.finished = True
            self.completed = event["completed"]
            self.failed = event["failed"]
            self.restored = event["restored"]
            self.retries = event["retries"]

    @property
    def done(self) -> int:
        return self.completed + self.failed + self.restored


def _bar(fraction: float, width: int = 28) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_top(snapshot: StatusSnapshot) -> str:
    """One full-screen text rendering of the fleet state."""
    done, total = snapshot.done, max(snapshot.total_runs, 1)
    fraction = done / total
    state = "finished" if snapshot.finished else "running"
    lines = [
        f"POM-TLB campaign [{state}] — {done}/{snapshot.total_runs} runs "
        f"({snapshot.completed} ok, {snapshot.failed} failed, "
        f"{snapshot.restored} restored) · elapsed {snapshot.elapsed_s:.0f}s",
        f"workers {snapshot.workers} · busy {100 * snapshot.busy_frac:.0f}% "
        f"· queued {snapshot.queued} · running {len(snapshot.running)} "
        f"· retries {snapshot.retries}",
        f"workloads: {snapshot.compiled} compiled · cache "
        f"{snapshot.cache_hits} hits / {snapshot.cache_misses} misses",
    ]
    lpt = snapshot.lpt.summary()
    if lpt["runs"]:
        lines.append(f"LPT calibration: {lpt['runs']} runs · MAPE "
                     f"{100 * lpt['mape']:.1f}% · bias "
                     f"{100 * lpt['bias']:+.1f}%")
    lines.append(f"{_bar(fraction)} {100 * fraction:3.0f}%")
    if snapshot.running:
        lines.append("running:")
        for record in list(snapshot.running.values())[:8]:
            lines.append(f"  ({record['benchmark']}, {record['scheme']}) "
                         f"attempt {record['attempt']} [{record['mode']}]")
    if snapshot.recent:
        lines.append("recent:")
        for state, event in snapshot.recent:
            wall = event.get("wall_s")
            suffix = "" if wall is None else f"  {wall:.2f}s"
            lines.append(f"  {state:<8} ({event['benchmark']}, "
                         f"{event['scheme']}){suffix}")
    if snapshot.errors:
        lines.append("failures:")
        for error in snapshot.errors[-4:]:
            lines.append(f"  {error}")
    return "\n".join(lines) + "\n"
