"""Campaign telemetry exporters: Prometheus text and an HTML dashboard.

Two artifacts, both written atomically next to the campaign output
(:func:`repro.common.fileio.atomic_write_text`, the same temp-file +
rename idiom as every other persisted file):

* ``campaign_metrics.prom`` — the standard Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` / samples), so a node exporter's
  textfile collector or any scrape-adjacent tooling ingests campaign
  metrics with zero glue.  Summaries expose the conventional
  ``_count`` / ``_sum`` pair.
* ``campaign_dashboard.html`` — a single self-contained file (inline
  JSON + a few hundred bytes of vanilla JS, no external assets) in the
  llm-d ``benchmark_report`` idiom: stat tiles, run table with
  predicted-vs-actual scheduling error, heartbeat sparklines, and the
  raw metric families for drill-down.  Open it from a laptop, attach it
  to CI, or archive it with the campaign output — it renders anywhere.

Metric names, dashboard fields and the file contract are documented in
EXPERIMENTS.md ("Campaign telemetry").
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from ..common.fileio import atomic_write_text

#: File names, fixed so CI artifact globs and docs stay stable.
PROMETHEUS_FILENAME = "campaign_metrics.prom"
DASHBOARD_FILENAME = "campaign_dashboard.html"


# -- Prometheus text exposition ------------------------------------------------

def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bool is an int; be explicit
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_block(labels) -> str:
    if not labels:
        return ""
    pairs = ",".join(f'{name}="{_escape_label(value)}"'
                     for name, value in labels)
    return "{" + pairs + "}"


def prometheus_text(registry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for name, kind, help_text, series in registry.collect():
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, metric in series:
            block = _label_block(labels)
            if kind == "summary":
                lines.append(f"{name}_count{block} {metric.count}")
                lines.append(f"{name}_sum{block} "
                             f"{_format_value(metric.total)}")
            else:
                lines.append(f"{name}{block} {_format_value(metric.value)}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry, directory: str) -> str:
    """Write ``campaign_metrics.prom`` into ``directory``; returns path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, PROMETHEUS_FILENAME)
    atomic_write_text(path, prometheus_text(registry))
    return path


# -- dashboard document --------------------------------------------------------

def dashboard_document(telemetry) -> Dict[str, object]:
    """The inline-JSON document the dashboard renders (and tests read).

    Everything the HTML shows comes from this one structure, so the
    reconciliation contract ("dashboard counters equal the campaign
    report's") is checkable by parsing the JSON back out of the file.
    """
    counts = dict(telemetry._counts)
    cache_hits, cache_misses = telemetry._cache_counts()
    runs = sorted(telemetry.runs.values(),
                  key=lambda r: (r["benchmark"], r["scheme"], r["key"]))
    return {
        "version": 1,
        "summary": {
            "total_runs": telemetry.total_runs,
            "workers": telemetry.workers,
            "completed": counts["ok"],
            "failed": counts["failed"],
            "restored": counts["restored"],
            "retries": telemetry.retries,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "busy_seconds": round(telemetry.busy_seconds, 6),
        },
        "lpt": telemetry.lpt.summary(),
        "runs": [dict(record) for record in runs],
        "heartbeats": list(telemetry.heartbeats),
        "metrics": telemetry.registry.as_dict(),
    }


# The page follows the dataviz method: roles as CSS custom properties
# with selected light/dark values (validated default palette), text in
# ink tokens (never series color), one hue for the single-series
# sparklines, thin marks, recessive grid.  No external assets: the
# document is inlined as application/json and rendered by ~1 KB of
# vanilla JS, so the file works offline, in CI artifacts, forever.
_DASHBOARD_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>POM-TLB campaign dashboard</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb; --surface-2: #f0efec;
    --text-primary: #0b0b0b; --text-secondary: #52514e;
    --grid: #e3e2de; --series-1: #2a78d6;
    --status-good: #008300; --status-bad: #e34948;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19; --surface-2: #262625;
      --text-primary: #ffffff; --text-secondary: #c3c2b7;
      --grid: #383835; --series-1: #3987e5;
      --status-good: #31b057; --status-bad: #e66767;
    }
  }
  body { margin: 0; }
  .viz-root {
    background: var(--surface-1); color: var(--text-primary);
    font: 14px/1.45 system-ui, sans-serif;
    padding: 24px; max-width: 1080px; margin: 0 auto;
  }
  h1 { font-size: 20px; margin: 0 0 4px; }
  .sub { color: var(--text-secondary); margin-bottom: 20px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
  .tile {
    background: var(--surface-2); border-radius: 8px;
    padding: 12px 16px; min-width: 108px;
  }
  .tile .v { font-size: 24px; font-weight: 600; }
  .tile .k { color: var(--text-secondary); font-size: 12px; }
  .cards { display: flex; flex-wrap: wrap; gap: 16px; margin: 8px 0 20px; }
  .card {
    background: var(--surface-2); border-radius: 8px;
    padding: 12px 16px; flex: 1 1 300px;
  }
  .card h2 { font-size: 13px; margin: 0 0 8px;
             color: var(--text-secondary); font-weight: 600; }
  svg .spark { fill: none; stroke: var(--series-1); stroke-width: 2; }
  svg .grid { stroke: var(--grid); stroke-width: 1; }
  table { border-collapse: collapse; width: 100%; margin: 8px 0 20px; }
  th { text-align: left; color: var(--text-secondary); font-weight: 600;
       font-size: 12px; }
  th, td { padding: 5px 10px 5px 0;
           border-bottom: 1px solid var(--grid); }
  td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
  .ok { color: var(--status-good); } .bad { color: var(--status-bad); }
  .state::before { content: "\\25CF\\00A0"; }
  details summary { cursor: pointer; color: var(--text-secondary); }
  pre { background: var(--surface-2); border-radius: 8px; padding: 12px;
        overflow-x: auto; font-size: 12px; }
</style>
</head>
<body>
<div class="viz-root">
  <h1>POM-TLB campaign dashboard</h1>
  <div class="sub" id="sub"></div>
  <div class="tiles" id="tiles"></div>
  <div class="cards" id="cards"></div>
  <h2 style="font-size:15px">Runs</h2>
  <table id="runs"><thead><tr>
    <th>benchmark</th><th>scheme</th><th>state</th>
    <th class="num">attempts</th><th class="num">wall s</th>
    <th class="num">cpu s</th><th class="num">predicted s</th>
    <th class="num">sched err</th><th>workload</th>
  </tr></thead><tbody></tbody></table>
  <details><summary>Raw metric families</summary>
    <pre id="metrics"></pre></details>
  <script type="application/json" id="data">__DATA__</script>
  <script>
  "use strict";
  var doc = JSON.parse(document.getElementById("data").textContent);
  var s = doc.summary;
  function el(tag, cls, text) {
    var node = document.createElement(tag);
    if (cls) node.className = cls;
    if (text !== undefined) node.textContent = text;
    return node;
  }
  function fmt(value, digits) {
    return value === null || value === undefined
      ? "–" : Number(value).toFixed(digits === undefined ? 2 : digits);
  }
  document.getElementById("sub").textContent =
    s.total_runs + " runs planned · " + s.workers + " worker(s) · " +
    "workload cache " + s.cache_hits + " hits / " +
    s.cache_misses + " misses" +
    (doc.lpt.runs ? " · LPT MAPE " + fmt(100 * doc.lpt.mape, 1) +
       "% (bias " + fmt(100 * doc.lpt.bias, 1) + "%)" : "");
  var tiles = document.getElementById("tiles");
  [["completed", s.completed], ["failed", s.failed],
   ["restored", s.restored], ["retries", s.retries],
   ["cache hits", s.cache_hits], ["cache misses", s.cache_misses]]
    .forEach(function (pair) {
      var tile = el("div", "tile");
      tile.appendChild(el("div", "v", String(pair[1])));
      tile.appendChild(el("div", "k", pair[0]));
      tiles.appendChild(tile);
    });
  function sparkline(title, points, digits) {
    var card = el("div", "card");
    card.appendChild(el("h2", null, title));
    var W = 300, H = 60, P = 4;
    var svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
    svg.setAttribute("viewBox", "0 0 " + W + " " + H);
    svg.setAttribute("width", "100%");
    var base = document.createElementNS(svg.namespaceURI, "line");
    base.setAttribute("class", "grid");
    base.setAttribute("x1", P); base.setAttribute("x2", W - P);
    base.setAttribute("y1", H - P); base.setAttribute("y2", H - P);
    svg.appendChild(base);
    if (points.length > 1) {
      var max = Math.max.apply(null, points.map(function (p) {
        return p[1]; })) || 1;
      var xs = points.map(function (p) { return p[0]; });
      var x0 = Math.min.apply(null, xs);
      var x1 = Math.max.apply(null, xs) - x0 || 1;
      var line = document.createElementNS(svg.namespaceURI, "polyline");
      line.setAttribute("class", "spark");
      line.setAttribute("points", points.map(function (p) {
        var x = P + (W - 2 * P) * (p[0] - x0) / x1;
        var y = H - P - (H - 2 * P) * (p[1] / max);
        return x.toFixed(1) + "," + y.toFixed(1);
      }).join(" "));
      svg.appendChild(line);
      card.appendChild(svg);
      var last = points[points.length - 1][1];
      card.appendChild(el("div", "k", "last " + fmt(last, digits) +
                          " · max " + fmt(max, digits)));
    } else {
      card.appendChild(el("div", "k",
        "needs ≥ 2 heartbeats (campaign too short)"));
    }
    return card;
  }
  var cards = document.getElementById("cards");
  var beats = doc.heartbeats;
  cards.appendChild(sparkline("worker busy fraction over time",
    beats.map(function (b) { return [b.elapsed_s, b.busy_frac]; }), 2));
  cards.appendChild(sparkline("runs completed over time",
    beats.map(function (b) {
      return [b.elapsed_s, b.completed + b.restored]; }), 0));
  var tbody = document.querySelector("#runs tbody");
  doc.runs.forEach(function (run) {
    var tr = el("tr");
    tr.appendChild(el("td", null, run.benchmark));
    tr.appendChild(el("td", null, run.scheme));
    tr.appendChild(el("td",
      "state " + (run.state === "failed" ? "bad" : "ok"), run.state));
    tr.appendChild(el("td", "num", String(run.attempts)));
    tr.appendChild(el("td", "num", fmt(run.wall_s)));
    tr.appendChild(el("td", "num", fmt(run.cpu_s)));
    tr.appendChild(el("td", "num", fmt(run.predicted_s)));
    var err = (run.predicted_s && run.wall_s !== null)
      ? fmt(100 * (run.wall_s - run.predicted_s) / run.predicted_s, 0) + "%"
      : "–";
    tr.appendChild(el("td", "num", err));
    tr.appendChild(el("td", null,
      run.workload_source || (run.error ? run.error : "–")));
    tbody.appendChild(tr);
  });
  document.getElementById("metrics").textContent =
    JSON.stringify(doc.metrics, null, 2);
  </script>
</div>
</body>
</html>
"""


def dashboard_html(document: Dict[str, object]) -> str:
    """Render ``document`` into the self-contained dashboard page."""
    # "</" must not appear inside the inline <script> JSON block; the
    # escape is legal JSON and invisible to JSON.parse.
    payload = json.dumps(document, sort_keys=True).replace("</", "<\\/")
    return _DASHBOARD_TEMPLATE.replace("__DATA__", payload)


def write_dashboard(telemetry, directory: str) -> str:
    """Write ``campaign_dashboard.html`` into ``directory``; returns path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, DASHBOARD_FILENAME)
    atomic_write_text(path, dashboard_html(dashboard_document(telemetry)))
    return path


__all__ = [
    "DASHBOARD_FILENAME",
    "PROMETHEUS_FILENAME",
    "dashboard_document",
    "dashboard_html",
    "prometheus_text",
    "write_dashboard",
    "write_prometheus",
]
