"""Host-side self-time profiler for the simulator itself.

Before optimising the simulator we need to know where *it* (the Python
process, not the simulated hardware) spends wall-clock time.
:class:`SelfTimeProfiler` wraps the bound methods of the major simulated
components and accounts wall-clock per component with child time
subtracted — classic self-time attribution — using a simple call stack,
since the simulator is single-threaded.

Usage::

    profiler = SelfTimeProfiler()
    profiler.install(machine)     # wraps the standard component methods
    machine.run(streams)
    profiler.uninstall()
    for row in profiler.rows():
        print(row)

The wrapping is per-instance (attributes shadowing the class methods),
so an uninstalled machine is bit-identical to an untouched one and other
machines are never affected.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Tuple


class SelfTimeProfiler:
    """Wall-clock self-time per simulated component, via method wrapping."""

    def __init__(self) -> None:
        # component -> [calls, total_seconds, self_seconds]
        self.components: Dict[str, List[float]] = {}
        self._stack: List[list] = []
        self._wrapped: List[Tuple[object, str]] = []

    # -- wrapping -----------------------------------------------------------

    def wrap(self, obj: object, method_name: str, component: str) -> None:
        """Shadow ``obj.method_name`` with a timing wrapper."""
        original = getattr(obj, method_name)
        stack = self._stack
        components = self.components

        def timed(*args, **kwargs):
            frame = [0.0, perf_counter()]  # [child_seconds, start]
            stack.append(frame)
            try:
                return original(*args, **kwargs)
            finally:
                stack.pop()
                elapsed = perf_counter() - frame[1]
                record = components.get(component)
                if record is None:
                    record = components[component] = [0, 0.0, 0.0]
                record[0] += 1
                record[1] += elapsed
                record[2] += elapsed - frame[0]
                if stack:
                    stack[-1][0] += elapsed

        object.__setattr__(obj, method_name, timed)
        self._wrapped.append((obj, method_name))

    def install(self, machine) -> None:
        """Wrap the standard component boundaries of a ``Machine``.

        Components: the translation scheme, the data-cache hierarchy,
        the page-walker pool, both DRAM channels (stacked when the
        scheme has one) and the functional paging layer.
        """
        # The replay loop dispatches through translate_packed (the
        # packed-key fast path); translate() is a cold shim over it.
        self.wrap(machine.scheme, "translate_packed", "mmu.translate")
        self.wrap(machine.hierarchy, "data_access", "cache.data_access")
        self.wrap(machine.hierarchy, "tlb_line_probe", "cache.tlb_line_probe")
        self.wrap(machine.walkers, "walk", "paging.walk")
        self.wrap(machine.hierarchy.main_dram, "access", "dram.main")
        pom = getattr(machine.scheme, "pom", None)
        if pom is not None:
            self.wrap(pom.dram, "access", "dram.stacked")
        self.wrap(machine, "touch", "vmm.touch")

    def uninstall(self) -> None:
        """Remove every wrapper, restoring the original bound methods."""
        for obj, method_name in self._wrapped:
            try:
                object.__delattr__(obj, method_name)
            except AttributeError:  # pragma: no cover - already gone
                pass
        self._wrapped.clear()

    # -- reporting ----------------------------------------------------------

    def rows(self) -> List[Dict[str, float]]:
        """Per-component rows, heaviest self-time first."""
        total_self = sum(r[2] for r in self.components.values()) or 1.0
        out = []
        for name, (calls, total, self_s) in sorted(
                self.components.items(), key=lambda kv: -kv[1][2]):
            out.append({
                "component": name,
                "calls": int(calls),
                "total_s": total,
                "self_s": self_s,
                "self_pct": 100.0 * self_s / total_self,
            })
        return out
