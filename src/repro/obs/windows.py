"""Time-windowed metrics: warm-up vs steady state, made visible.

:class:`WindowedMetrics` folds the per-reference outcomes the simulator
already produces into fixed-size windows of K references and, at every
window boundary, snapshots the deltas of a few structure-level counters
(POM-TLB probe hits, predictor training outcomes) from the shared
:class:`~repro.common.stats.StatRegistry`.  The result is one row per
window — hit ratios, bypass-prediction accuracy, average penalty — so a
plot over window index shows the POM-TLB and predictors warming up
instead of a single end-of-run aggregate.

The per-reference cost is a handful of integer adds; the registry is
only read at window boundaries.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..common.stats import StatRegistry

#: Structure-level counters snapshotted at window boundaries.
_TRACKED = ("pom_hits", "pom_misses", "size_correct", "size_wrong",
            "bypass_correct", "bypass_wrong")


class WindowedMetrics:
    """Per-K-references windows of hit ratios, accuracy and penalty."""

    def __init__(self, window: int, stats: Optional[StatRegistry] = None) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.stats = stats
        self.rows: List[Dict[str, float]] = []
        self._refs = 0
        self._cycles = 0
        self._misses = 0
        self._penalty = 0
        self._snapshot = {key: 0.0 for key in _TRACKED}

    # -- hot path -------------------------------------------------------------

    def record(self, cycles: int, l2_miss: bool, penalty: int) -> None:
        """Fold one translated reference into the current window."""
        self._refs += 1
        self._cycles += cycles
        if l2_miss:
            self._misses += 1
            self._penalty += penalty
        if self._refs >= self.window:
            self._close_window(partial=False)

    # -- window boundaries -----------------------------------------------------

    def _counters(self) -> Dict[str, float]:
        totals = {key: 0.0 for key in _TRACKED}
        if self.stats is None:
            return totals
        for name, group in self.stats.groups().items():
            if name == "pom_tlb":
                totals["pom_hits"] += group["hits_small"] + group["hits_large"]
                totals["pom_misses"] += (group["misses_small"]
                                         + group["misses_large"])
            elif name.endswith(".predictor"):
                for key in ("size_correct", "size_wrong",
                            "bypass_correct", "bypass_wrong"):
                    totals[key] += group[key]
        return totals

    @staticmethod
    def _ratio(numerator: float, denominator: float) -> float:
        return numerator / denominator if denominator else 0.0

    def _close_window(self, partial: bool) -> None:
        now = self._counters()
        delta = {key: now[key] - self._snapshot[key] for key in _TRACKED}
        self._snapshot = now
        row = {
            "window": len(self.rows),
            "references": self._refs,
            "avg_translation_cycles": self._ratio(self._cycles, self._refs),
            "l2_miss_ratio": self._ratio(self._misses, self._refs),
            "avg_penalty_per_miss": self._ratio(self._penalty, self._misses),
            "pom_hit_ratio": self._ratio(
                delta["pom_hits"], delta["pom_hits"] + delta["pom_misses"]),
            "size_accuracy": self._ratio(
                delta["size_correct"],
                delta["size_correct"] + delta["size_wrong"]),
            "bypass_accuracy": self._ratio(
                delta["bypass_correct"],
                delta["bypass_correct"] + delta["bypass_wrong"]),
        }
        if partial:
            row["partial"] = True
        self.rows.append(row)
        self._refs = 0
        self._cycles = 0
        self._misses = 0
        self._penalty = 0

    def finish(self) -> None:
        """Close a trailing partial window, if any references are pending."""
        if self._refs:
            self._close_window(partial=True)

    def reset(self) -> None:
        """Drop collected rows and re-baseline (the warmup boundary)."""
        self.rows.clear()
        self._refs = 0
        self._cycles = 0
        self._misses = 0
        self._penalty = 0
        self._snapshot = self._counters()

    # -- reporting ----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {"window": self.window, "rows": list(self.rows)}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)
