"""Observability: tracing, latency histograms, windowed metrics, profiling.

The hub is :class:`Observability`: one object a
:class:`~repro.core.system.Machine` owns that bundles

* a structured event **tracer** (:mod:`repro.obs.tracer`) — the null
  object by default, so the disabled hot path costs one attribute check;
* **log-bucketed latency histograms** (:mod:`repro.obs.histogram`) for
  translation cycles, penalty cycles and stacked-DRAM access time,
  attached to every :class:`~repro.core.system.SimulationResult`;
* **time-windowed metrics** (:mod:`repro.obs.windows`) showing warm-up
  vs steady-state behaviour per K references.

The host-side :class:`~repro.obs.profiler.SelfTimeProfiler` (where does
the *simulator* spend wall-clock?) lives alongside but is installed
explicitly, never by default.
"""

from __future__ import annotations

from typing import Dict, Optional

from .histogram import LogHistogram
from .sinks import ChromeTraceSink, JsonlSink, ListSink
from .telemetry import (NO_TELEMETRY, CampaignTelemetry, LptAccuracy,
                        MetricsRegistry, NullTelemetry, StatusSnapshot)
from .tracer import NULL_TRACER, EventTracer, NullTracer
from .windows import WindowedMetrics

#: Histogram names every Machine collects when histograms are enabled.
HISTOGRAMS = ("translation_cycles", "penalty_cycles", "dram_access_cycles")


class Observability:
    """Per-machine observability configuration and state.

    ``tracer`` defaults to the null tracer (tracing off).  ``histograms``
    defaults to on: recording is O(1) per reference and what lets
    ``pomtlb details`` report latency percentiles without extra flags.
    ``window`` > 0 enables windowed metrics with that many references
    per window.
    """

    def __init__(self, tracer=None, histograms: bool = True,
                 window: int = 0) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.histograms: Optional[Dict[str, LogHistogram]] = (
            {name: LogHistogram(name) for name in HISTOGRAMS}
            if histograms else None)
        self.window = window
        self.windows: Optional[WindowedMetrics] = None

    @classmethod
    def disabled(cls) -> "Observability":
        """Everything off — the seed simulator's exact hot path."""
        return cls(histograms=False)

    # -- wiring --------------------------------------------------------------

    def attach(self, machine) -> None:
        """Point a machine's components at this hub (Machine.__init__)."""
        machine.scheme.trace = self.tracer
        machine.walkers.trace = self.tracer
        pom = getattr(machine.scheme, "pom", None)
        if pom is not None:
            pom.dram.trace = self.tracer
            if self.histograms is not None:
                pom.dram.histogram = self.histograms["dram_access_cycles"]
        for predictor in getattr(machine.scheme, "predictors", ()):
            predictor.trace = self.tracer
        if self.window:
            self.windows = WindowedMetrics(self.window, machine.stats)

    def reset(self) -> None:
        """Zero collected data at the warmup boundary (stats reset)."""
        if self.histograms is not None:
            for histogram in self.histograms.values():
                histogram.reset()
        if self.windows is not None:
            self.windows.reset()


__all__ = [
    "CampaignTelemetry",
    "ChromeTraceSink",
    "EventTracer",
    "HISTOGRAMS",
    "JsonlSink",
    "ListSink",
    "LogHistogram",
    "LptAccuracy",
    "MetricsRegistry",
    "NO_TELEMETRY",
    "NULL_TRACER",
    "NullTelemetry",
    "NullTracer",
    "Observability",
    "StatusSnapshot",
    "WindowedMetrics",
]
