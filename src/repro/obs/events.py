"""Trace-event schema: one typed event per translation step.

Every event is a flat JSON-serialisable dict.  The tracer adds the
bookkeeping fields (``seq`` — monotone event number, ``ts`` — virtual
cycle timestamp, and the translation context captured at
:meth:`~repro.obs.tracer.EventTracer.begin`: ``core``, ``vm``, ``asid``,
``vaddr``, ``scheme``); the emitting component supplies ``type``,
``cycles`` and the type-specific fields listed in :data:`EVENT_FIELDS`.

The schema is documented for external consumers in EXPERIMENTS.md; the
:func:`validate_event` helper is what the CI smoke test and the replay
machinery use to reject malformed traces early.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

# -- event types ------------------------------------------------------------

#: One record per simulation run sharing a sink (benchmark, scheme, sample).
RUN_META = "run_meta"
#: Out-of-band marker (e.g. ``stats_reset`` at the warmup boundary).
MARKER = "marker"
#: Per-translation summary: total cycles, L2-TLB-miss flag, penalty.
TRANSLATION = "translation"
#: One SRAM TLB probe (level ``l1``/``l2``/``shared_l2``) and its outcome.
TLB_PROBE = "tlb_probe"
#: Size/bypass predictor decision at the head of the POM-TLB flow.
PREDICTOR = "predictor"
#: Predictor training outcome (kind ``size`` or ``bypass``).
PREDICTOR_TRAIN = "predictor_train"
#: One POM-TLB set/line fetch and where it was served from
#: (``l2``/``l3``/``dram``/``dram_bypass``/``dram_uncached``).
POM_FETCH = "pom_fetch"
#: One POM-TLB content probe (per size attempt) and whether it hit.
POM_PROBE = "pom_probe"
#: TSB half lookup (``guest`` or ``host``) and its outcome.
TSB_PROBE = "tsb_probe"
#: One stacked-DRAM burst with bank/row coordinates and row-buffer outcome
#: (``hit``/``miss``/``conflict``).
DRAM_ACCESS = "dram_access"
#: One completed page walk (native or 2-D nested): cycles + memory refs.
WALK = "walk"
#: One PTE reference inside a walk (dim ``native``/``guest``/``host``).
WALK_STEP = "walk_step"
#: A campaign run attempt failed transiently and will be retried
#: (includes timeouts and worker crashes; ``error`` carries the class).
RUN_RETRY = "run_retry"
#: A campaign run exhausted its attempts and was recorded as failed.
RUN_FAILURE = "run_failure"
#: A campaign run finished successfully (``restored`` = from checkpoint).
RUN_COMPLETE = "run_complete"
#: A consistency-audit invariant was violated (:mod:`repro.verify`).
VERIFY_VIOLATION = "verify_violation"

#: Required type-specific fields per event type (beyond the bookkeeping
#: fields the tracer adds to every event).
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    RUN_META: (),
    MARKER: ("name",),
    TRANSLATION: ("core", "cycles", "l2_miss", "penalty"),
    TLB_PROBE: ("core", "level", "hit"),
    PREDICTOR: ("core", "predicted_large", "bypass"),
    PREDICTOR_TRAIN: ("kind", "correct"),
    POM_FETCH: ("core", "source", "cycles"),
    POM_PROBE: ("core", "attempt", "large", "hit"),
    TSB_PROBE: ("core", "half", "hit"),
    DRAM_ACCESS: ("bank", "row", "outcome", "cycles"),
    WALK: ("core", "cycles", "refs"),
    WALK_STEP: ("dim", "level", "cycles"),
    RUN_RETRY: ("benchmark", "scheme", "attempt", "error"),
    RUN_FAILURE: ("benchmark", "scheme", "attempts", "error"),
    RUN_COMPLETE: ("benchmark", "scheme", "attempts", "restored"),
    VERIFY_VIOLATION: ("invariant", "detail"),
}


def validate_event(event: Mapping) -> None:
    """Raise ``ValueError`` when ``event`` does not match the schema."""
    etype = event.get("type")
    if etype not in EVENT_FIELDS:
        raise ValueError(f"unknown trace event type {etype!r}")
    missing = [f for f in EVENT_FIELDS[etype] if f not in event]
    if missing:
        raise ValueError(f"{etype} event missing fields {missing}: {event}")
