"""Trace sinks: where :class:`~repro.obs.tracer.EventTracer` events go.

* :class:`ListSink` — in-memory list, for tests and programmatic use.
* :class:`JsonlSink` — one JSON object per line; the replay/validation
  tooling (:mod:`repro.obs.replay`) consumes this format.
* :class:`ChromeTraceSink` — Chrome trace-event JSON that Perfetto and
  ``chrome://tracing`` load directly.  Events become complete (``X``)
  slices on the virtual cycle timeline (1 cycle = 1 µs in the viewer);
  each ``run_meta`` event starts a new process row so several runs
  sharing one sink stay visually separate.

A sink may be shared by several tracers (sequential runs of one CLI
invocation); writes are appended in arrival order.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union

from ..common.fileio import AtomicFile
from . import events

_BOOKKEEPING = ("type", "ts", "seq", "cycles", "core", "vm", "asid",
                "vaddr", "scheme")


class ListSink:
    """Collect events in memory."""

    def __init__(self) -> None:
        self.events: List[dict] = []

    def write(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class _FileSink:
    """Shared open/close handling for path-or-file-object sinks.

    Paths are written through :class:`~repro.common.fileio.AtomicFile` —
    the destination appears only when the sink closes cleanly, so a
    killed run never leaves a half-written trace where a complete one is
    expected (the same temp-file + rename idiom as ``--output`` and the
    campaign checkpoint store).
    """

    def __init__(self, destination: Union[str, IO]) -> None:
        if hasattr(destination, "write"):
            self._file: IO = destination
            self._atomic: Optional[AtomicFile] = None
        else:
            self._atomic = AtomicFile(destination)
            self._file = self._atomic.file
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._finish()
        except BaseException:
            if self._atomic is not None:
                self._atomic.abort()
            raise
        if self._atomic is not None:
            self._atomic.commit()
        else:
            self._file.flush()

    def _finish(self) -> None:
        pass


class JsonlSink(_FileSink):
    """One compact JSON object per line."""

    def write(self, event: dict) -> None:
        self._file.write(json.dumps(event, separators=(",", ":")))
        self._file.write("\n")


class ChromeTraceSink(_FileSink):
    """Chrome trace-event (Perfetto-loadable) JSON file.

    Buffers converted events and writes one ``{"traceEvents": [...]}``
    document on close — the trace-event format is a single JSON value,
    so it cannot be streamed line by line like JSONL.
    """

    def __init__(self, destination: Union[str, IO]) -> None:
        super().__init__(destination)
        self._events: List[dict] = []
        self._pid = 0

    def write(self, event: dict) -> None:
        etype = event["type"]
        if etype == events.RUN_META:
            self._pid += 1
            name = ":".join(str(event[k]) for k in ("benchmark", "scheme")
                            if k in event) or f"run{self._pid}"
            self._events.append({
                "name": "process_name", "ph": "M", "pid": self._pid,
                "tid": 0, "args": {"name": name}})
            return
        args = {k: v for k, v in event.items() if k not in _BOOKKEEPING}
        record = {
            "name": etype,
            "ph": "X",
            "ts": event["ts"],
            "dur": max(int(event.get("cycles", 0)), 1),
            "pid": self._pid,
            "tid": event.get("core", 0),
            "args": args,
        }
        if etype == events.MARKER:
            record.update({"ph": "i", "s": "g"})
            record.pop("dur")
        self._events.append(record)

    def _finish(self) -> None:
        json.dump({"traceEvents": self._events, "displayTimeUnit": "ms"},
                  self._file)
