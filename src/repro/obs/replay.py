"""Trace loading, validation and counter replay.

The observability layer's correctness contract is that an unsampled
(``sample=1``) JSONL trace carries enough information to *recompute* the
aggregate counters the simulator reports — events and counters must
agree.  :func:`replay_counters` is that recomputation; the test suite
and the CI smoke job run it against real traces.

``marker`` events named ``stats_reset`` (emitted at the warmup boundary,
where :class:`~repro.common.stats.StatRegistry` is zeroed) reset the
replayed counters the same way, so warmed-up runs replay correctly.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Union

from . import events


def load_jsonl(path: str, validate: bool = True) -> List[dict]:
    """Parse a JSONL trace file; optionally schema-validate every event."""
    out: List[dict] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            if validate:
                events.validate_event(event)
            out.append(event)
    return out


def load_chrome(path: str) -> List[dict]:
    """Parse a Chrome trace file; returns its ``traceEvents`` list."""
    with open(path) as handle:
        document = json.load(handle)
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list):
        raise ValueError(f"{path}: no traceEvents array")
    return trace_events


def _zero() -> Dict[str, Union[int, Dict[str, int]]]:
    return {
        "translations": 0,
        "l2_tlb_misses": 0,
        "penalty_cycles": 0,
        "page_walks": 0,
        "page_walk_cycles": 0,
        "walk_refs": 0,
        "pom_fetches": {},       # source -> count
        "dram_accesses": 0,
        "dram_row_outcomes": {},  # hit/miss/conflict -> count
    }


def replay_counters(trace: Iterable[dict]) -> Dict[str, object]:
    """Recompute aggregate counters from a trace's events.

    Counter names mirror the simulator's: ``l2_tlb_misses``,
    ``penalty_cycles``, ``page_walks`` and ``page_walk_cycles`` match
    the ``mmu`` stat group; ``pom_fetches[source]`` matches the
    ``pom_flow`` group's ``set_from_<source>`` counters;
    ``dram_row_outcomes`` matches the stacked-DRAM channel's
    ``row_hits``/``row_misses``/``row_conflicts``.
    """
    counters = _zero()
    for event in trace:
        etype = event["type"]
        if etype == events.MARKER and event.get("name") == "stats_reset":
            counters = _zero()
        elif etype == events.TRANSLATION:
            counters["translations"] += 1
            # Penalty is summed unconditionally: Shared_L2 charges its
            # extra hit latency as penalty even when the shadow L2 hit.
            counters["penalty_cycles"] += event["penalty"]
            if event["l2_miss"]:
                counters["l2_tlb_misses"] += 1
        elif etype == events.WALK:
            counters["page_walks"] += 1
            counters["page_walk_cycles"] += event["cycles"]
            counters["walk_refs"] += event["refs"]
        elif etype == events.POM_FETCH:
            fetches = counters["pom_fetches"]
            fetches[event["source"]] = fetches.get(event["source"], 0) + 1
        elif etype == events.DRAM_ACCESS:
            counters["dram_accesses"] += 1
            outcomes = counters["dram_row_outcomes"]
            outcome = event["outcome"]
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
    return counters
