"""Structured event tracer with a zero-overhead disabled path.

Two implementations share one protocol:

* :data:`NULL_TRACER` — the null object every component holds by
  default.  Its ``enabled``/``active`` attributes are ``False`` class
  attributes, so the instrumentation sites compiled into the hot path
  cost exactly one attribute check and never call a method.
* :class:`EventTracer` — the real thing: samples ``1/N`` translations,
  stamps every event with a virtual cycle clock and a sequence number,
  keeps an optional bounded ring buffer of recent events, and fans each
  event out to any number of sinks (JSONL, Chrome trace, in-memory).

Gating contract (enforced by convention at every instrumentation site):

* ``if tracer.enabled: tracer.begin(...)`` — once per translation;
  ``begin`` decides whether this translation is sampled.
* ``if tracer.active: tracer.emit(...)/tracer.end(...)`` — per step;
  ``active`` is True only inside a sampled translation.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from . import events


class NullTracer:
    """Do-nothing tracer; ``enabled``/``active`` are always False.

    The methods exist so code that did not gate a call still works, but
    the instrumentation sites must gate — that is what keeps the
    disabled hot path at a single attribute check.
    """

    enabled = False
    active = False

    def begin(self, **context) -> None:
        pass

    def emit(self, etype: str, cycles: int = 0, **fields) -> None:
        pass

    def end(self, cycles: int = 0, **fields) -> None:
        pass

    def marker(self, name: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared null object; components default their ``trace`` attribute to it.
NULL_TRACER = NullTracer()


class EventTracer:
    """Emits one typed event per translation step to sinks and a ring.

    ``sample=N`` records every N-th translation (the first of every N).
    ``ring_capacity`` keeps the most recent events in memory regardless
    of sinks — handy for tests and post-mortem inspection without I/O.
    ``meta`` is written immediately as a ``run_meta`` event so multi-run
    sinks (e.g. one JSONL file for a whole figure) can split runs.
    """

    enabled = True

    def __init__(self, sinks=(), sample: int = 1, ring_capacity: int = 0,
                 meta: Optional[dict] = None) -> None:
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self.sinks = list(sinks)
        self.sample = sample
        self.ring = deque(maxlen=ring_capacity) if ring_capacity else None
        self.active = False
        self.seq = 0            # events written
        self.translations = 0   # translations seen (sampled or not)
        self.sampled = 0        # translations actually traced
        self.now = 0            # virtual clock, cycles
        self._context: dict = {}
        self._begin_ts = 0
        if meta is not None:
            self._write({"type": events.RUN_META, "ts": 0,
                         "seq": self._next_seq(), "sample": sample, **meta})

    def _next_seq(self) -> int:
        seq = self.seq
        self.seq = seq + 1
        return seq

    # -- translation lifecycle ----------------------------------------------

    def begin(self, **context) -> None:
        """Mark a translation boundary; decides whether it is sampled.

        ``context`` (core, vm, asid, vaddr, scheme) is merged into every
        event emitted until :meth:`end`.
        """
        n = self.translations
        self.translations = n + 1
        if n % self.sample:
            self.active = False
            return
        self.active = True
        self.sampled += 1
        self._context = context
        self._begin_ts = self.now

    def emit(self, etype: str, cycles: int = 0, **fields) -> None:
        """Write one step event; advances the virtual clock by ``cycles``."""
        event = {"type": etype, "ts": self.now, "seq": self._next_seq(),
                 "cycles": cycles}
        event.update(self._context)
        event.update(fields)
        self.now += cycles
        self._write(event)

    def end(self, cycles: int = 0, **fields) -> None:
        """Write the per-translation summary event and close the sample.

        ``cycles`` is the full translation latency; the summary event is
        stamped at the translation's begin time so it spans its steps in
        the Chrome trace view.
        """
        if not self.active:
            return
        event = {"type": events.TRANSLATION, "ts": self._begin_ts,
                 "seq": self._next_seq(), "cycles": cycles}
        event.update(self._context)
        event.update(fields)
        self.now = self._begin_ts + cycles
        self._write(event)
        self.active = False
        self._context = {}

    def marker(self, name: str, **fields) -> None:
        """Out-of-band marker (e.g. the warmup ``stats_reset`` boundary).

        Markers are never sampled away: replay needs every one of them.
        """
        self._write({"type": events.MARKER, "ts": self.now,
                     "seq": self._next_seq(), "name": name, **fields})

    # -- plumbing ------------------------------------------------------------

    def _write(self, event: dict) -> None:
        if self.ring is not None:
            self.ring.append(event)
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        """Flush and close every sink."""
        for sink in self.sinks:
            sink.close()
