"""Virtual machines, guest processes and demand paging.

The :class:`Host` owns physical memory and the virtual machines.  Each
:class:`VirtualMachine` owns a guest-physical address space, a host page
table (gPA -> hPA, the EPT analogue) and its guest processes; each
:class:`GuestProcess` owns a guest page table (gVA -> gPA).

Pages are mapped on first touch (demand paging): touching a virtual
address allocates the guest-physical and host-physical frames, decides
the page size via the THP policy, and installs both table levels.  The
fast :meth:`VirtualMachine.resolve` path is O(1) dict lookups so the
simulator can call it per memory reference.

:class:`NativeProcess` models the bare-metal case (one table, VA -> hPA)
for the paper's native-vs-virtualized characterisation (Figures 2/3).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from ..common import addr
from ..paging.page_table import RadixPageTable
from .memory_manager import PhysicalMemory
from .thp import ThpPolicy


class ResolvedPage(NamedTuple):
    """Fast-path result: everything the MMU needs about one page."""

    large: bool
    guest_frame: int  # gPA frame base (== host frame in native mode)
    host_frame: int   # hPA frame base


class GuestProcess:
    """One process inside a VM: an ASID and a guest page table."""

    def __init__(self, asid: int, guest_table: RadixPageTable) -> None:
        self.asid = asid
        self.guest_table = guest_table
        # Fast-path maps; keyed by small/large VPN respectively.
        self.small_pages: Dict[int, ResolvedPage] = {}
        self.large_pages: Dict[int, ResolvedPage] = {}

    def resolve(self, vaddr: int) -> Optional[ResolvedPage]:
        """O(1) lookup of the page backing ``vaddr`` (None if untouched)."""
        page = self.large_pages.get(vaddr >> addr.LARGE_PAGE_SHIFT)
        if page is not None:
            return page
        return self.small_pages.get(vaddr >> addr.SMALL_PAGE_SHIFT)

    @property
    def footprint_bytes(self) -> int:
        return (len(self.small_pages) * addr.SMALL_PAGE_SIZE
                + len(self.large_pages) * addr.LARGE_PAGE_SIZE)


class VirtualMachine:
    """One VM: guest-physical space, host (EPT) table, guest processes."""

    def __init__(self, vm_id: int, host_memory: PhysicalMemory,
                 thp: ThpPolicy) -> None:
        self.vm_id = vm_id
        self.host_memory = host_memory
        self.thp = thp
        # Guest-physical space: sized generously; addresses are fictive.
        self.guest_memory = PhysicalMemory(base=0, size_bytes=256 * addr.GiB)
        self.host_table = RadixPageTable(host_memory.alloc_small,
                                         name=f"vm{vm_id}.host")
        self.processes: Dict[int, GuestProcess] = {}
        # hPA frames backing guest page-table frames: the gPA side dies
        # with the VM object, but these must be returned to the host
        # allocator on teardown.
        self._guest_table_hpa: List[int] = []

    # -- process management -----------------------------------------------

    def process(self, asid: int) -> GuestProcess:
        """Return (creating on first use) the guest process ``asid``."""
        proc = self.processes.get(asid)
        if proc is None:
            guest_table = RadixPageTable(self._alloc_guest_table_frame,
                                         name=f"vm{self.vm_id}.guest{asid}")
            proc = GuestProcess(asid, guest_table)
            self.processes[asid] = proc
        return proc

    def _alloc_guest_table_frame(self) -> int:
        """Guest page-table frames live in gPA space and are host-mapped."""
        gpa = self.guest_memory.alloc_frame(large=False)
        hpa = self.host_memory.alloc_frame(large=False)
        self.host_table.map_page(gpa, hpa, large=False)
        self._guest_table_hpa.append(hpa)
        return gpa

    # -- teardown accounting ------------------------------------------------

    def host_frames(self) -> List[tuple]:
        """Every ``(frame, large)`` this VM holds in host-physical memory.

        Covers the guests' data pages, the hPA frames backing guest
        page-table frames, and the host (EPT) table's own frames — the
        complete set :meth:`Host.destroy_vm` must reclaim.
        """
        frames = [(hpa, False) for hpa in self._guest_table_hpa]
        frames.extend((base, False) for base in self.host_table.table_frames())
        for proc in self.processes.values():
            frames.extend((page.host_frame, False)
                          for page in proc.small_pages.values())
            frames.extend((page.host_frame, True)
                          for page in proc.large_pages.values())
        return frames

    def live_bytes(self) -> int:
        """Host-physical bytes this VM currently pins (conservation law)."""
        small = (len(self._guest_table_hpa)
                 + self.host_table.table_count())
        large = 0
        for proc in self.processes.values():
            small += len(proc.small_pages)
            large += len(proc.large_pages)
        return (small * addr.SMALL_PAGE_SIZE + large * addr.LARGE_PAGE_SIZE)

    # -- demand paging ---------------------------------------------------

    def touch(self, asid: int, vaddr: int) -> ResolvedPage:
        """Ensure the page containing ``vaddr`` is fully mapped."""
        proc = self.process(asid)
        page = proc.resolve(vaddr)
        if page is not None:
            return page
        large = self.thp.is_large_region(asid, vaddr >> addr.LARGE_PAGE_SHIFT)
        gpa_frame = self.guest_memory.alloc_frame(large=large)
        hpa_frame = self.host_memory.alloc_frame(large=large)
        proc.guest_table.map_page(vaddr, gpa_frame, large=large)
        self.host_table.map_page(gpa_frame, hpa_frame, large=large)
        page = ResolvedPage(large=large, guest_frame=gpa_frame, host_frame=hpa_frame)
        if large:
            proc.large_pages[vaddr >> addr.LARGE_PAGE_SHIFT] = page
        else:
            proc.small_pages[vaddr >> addr.SMALL_PAGE_SHIFT] = page
        return page

    def resolve(self, asid: int, vaddr: int) -> Optional[ResolvedPage]:
        """Fast path: the already-mapped page for ``vaddr`` or None."""
        proc = self.processes.get(asid)
        if proc is None:
            return None
        return proc.resolve(vaddr)

    def unmap(self, asid: int, vaddr: int) -> Optional[ResolvedPage]:
        """Remove a mapping (the shootdown trigger).  Returns what was mapped.

        Both table levels drop their leaves and both frames return to
        their allocators' free lists — leaving either in place would
        leak the frame (breaking allocation conservation) or let a
        nested walk keep resolving gPA to a freed host frame.
        """
        proc = self.processes.get(asid)
        if proc is None:
            return None
        page = proc.resolve(vaddr)
        if page is None:
            return None
        proc.guest_table.unmap_page(vaddr, large=page.large)
        self.host_table.unmap_page(page.guest_frame, large=page.large)
        if page.large:
            del proc.large_pages[vaddr >> addr.LARGE_PAGE_SHIFT]
        else:
            del proc.small_pages[vaddr >> addr.SMALL_PAGE_SHIFT]
        self.guest_memory.free_frame(page.guest_frame, large=page.large)
        self.host_memory.free_frame(page.host_frame, large=page.large)
        return page


class NativeProcess:
    """Bare-metal process: one page table straight to host-physical frames."""

    def __init__(self, asid: int, host_memory: PhysicalMemory,
                 thp: ThpPolicy) -> None:
        self.asid = asid
        self.host_memory = host_memory
        self.thp = thp
        self.page_table = RadixPageTable(host_memory.alloc_small,
                                         name=f"native{asid}")
        self.small_pages: Dict[int, ResolvedPage] = {}
        self.large_pages: Dict[int, ResolvedPage] = {}

    def touch(self, vaddr: int) -> ResolvedPage:
        """Ensure the page containing ``vaddr`` is mapped."""
        page = self.resolve(vaddr)
        if page is not None:
            return page
        large = self.thp.is_large_region(self.asid, vaddr >> addr.LARGE_PAGE_SHIFT)
        frame = self.host_memory.alloc_frame(large=large)
        self.page_table.map_page(vaddr, frame, large=large)
        page = ResolvedPage(large=large, guest_frame=frame, host_frame=frame)
        if large:
            self.large_pages[vaddr >> addr.LARGE_PAGE_SHIFT] = page
        else:
            self.small_pages[vaddr >> addr.SMALL_PAGE_SHIFT] = page
        return page

    def resolve(self, vaddr: int) -> Optional[ResolvedPage]:
        page = self.large_pages.get(vaddr >> addr.LARGE_PAGE_SHIFT)
        if page is not None:
            return page
        return self.small_pages.get(vaddr >> addr.SMALL_PAGE_SHIFT)

    def live_bytes(self) -> int:
        """Host-physical bytes this process pins (conservation law)."""
        return (self.page_table.table_count() * addr.SMALL_PAGE_SIZE
                + len(self.small_pages) * addr.SMALL_PAGE_SIZE
                + len(self.large_pages) * addr.LARGE_PAGE_SIZE)


class FreedFrames(NamedTuple):
    """What one :meth:`Host.destroy_vm` returned to the allocator."""

    small: int
    large: int

    @property
    def bytes(self) -> int:
        return (self.small * addr.SMALL_PAGE_SIZE
                + self.large * addr.LARGE_PAGE_SIZE)


class Host:
    """Top level: host physical memory plus the virtual machines on it."""

    def __init__(self, memory_bytes: int = 64 * addr.GiB) -> None:
        self.memory = PhysicalMemory(base=0, size_bytes=memory_bytes)
        self.vms: Dict[int, VirtualMachine] = {}

    def create_vm(self, vm_id: int, thp: ThpPolicy) -> VirtualMachine:
        if vm_id in self.vms:
            raise ValueError(f"vm {vm_id} already exists")
        vm = VirtualMachine(vm_id, self.memory, thp)
        self.vms[vm_id] = vm
        return vm

    def destroy_vm(self, vm_id: int) -> FreedFrames:
        """Tear one VM down, returning every host frame it pinned.

        Releases the guests' data pages, the frames backing guest page
        tables, and the host (EPT) table frames to the free lists, so a
        subsequent boot reuses them instead of exhausting the region.
        This is the functional half of teardown only — callers that
        simulate hardware must invalidate the VM's cached translations
        first (:meth:`repro.core.system.Machine.destroy_vm` does both).
        """
        vm = self.vms.pop(vm_id, None)
        if vm is None:
            raise KeyError(f"vm {vm_id} does not exist")
        small = large = 0
        for frame, is_large in vm.host_frames():
            self.memory.free_frame(frame, large=is_large)
            if is_large:
                large += 1
            else:
                small += 1
        return FreedFrames(small=small, large=large)
