"""Virtualization substrate: physical memory, THP, VMs, demand paging."""

from .memory_manager import PhysicalMemory
from .thp import ThpPolicy
from .vm import GuestProcess, Host, NativeProcess, ResolvedPage, VirtualMachine

__all__ = [
    "GuestProcess",
    "Host",
    "NativeProcess",
    "PhysicalMemory",
    "ResolvedPage",
    "ThpPolicy",
    "VirtualMachine",
]
