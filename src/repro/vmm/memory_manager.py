"""Physical frame allocators for host and guest address spaces.

First-touch bump allocation from two disjoint regions (4 KiB frames low,
2 MiB frames high) — the simple policy gives sequentially-touched pages
physical adjacency, which is what a freshly booted Linux with THP does
and what the DRAM row-buffer study expects.

Freed frames go onto per-size LIFO free lists and are reused before the
bump pointer advances (:meth:`PhysicalMemory.free_frame`), so VM
boot/teardown churn holds the live footprint bounded instead of
monotonically exhausting the region.  LIFO reuse keeps the policy
deterministic: a teardown followed by an identical boot replays the
exact same frame addresses.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..common import addr
from ..common.errors import AddressError


class PhysicalMemory:
    """Frame allocator over one contiguous physical region."""

    def __init__(self, base: int = 0, size_bytes: int = 64 * addr.GiB,
                 large_region_fraction: float = 0.5) -> None:
        if base & (addr.LARGE_PAGE_SIZE - 1):
            raise AddressError("physical region base must be 2MiB aligned")
        if not 0.0 < large_region_fraction < 1.0:
            raise AddressError("large_region_fraction must be in (0,1)")
        self.base = base
        self.size_bytes = size_bytes
        split = addr.align_up(base + int(size_bytes * (1 - large_region_fraction)),
                              addr.LARGE_PAGE_SIZE)
        self._small_next = base
        self._small_limit = split
        self._large_next = split
        self._large_limit = base + size_bytes
        # LIFO free lists (most-recently-freed frame is reused first) with
        # mirror sets for O(1) double-free detection.
        self._free_small: List[int] = []
        self._free_large: List[int] = []
        self._free_small_set: Set[int] = set()
        self._free_large_set: Set[int] = set()
        self._peak_bytes = 0

    def alloc_frame(self, large: bool = False) -> int:
        """Return the base address of a small or large frame.

        Freed frames are reused (LIFO) before fresh ones are carved off
        the bump pointer.
        """
        if large:
            if self._free_large:
                frame = self._free_large.pop()
                self._free_large_set.discard(frame)
            else:
                frame = self._large_next
                if frame + addr.LARGE_PAGE_SIZE > self._large_limit:
                    raise AddressError("out of 2MiB frames")
                self._large_next = frame + addr.LARGE_PAGE_SIZE
        else:
            if self._free_small:
                frame = self._free_small.pop()
                self._free_small_set.discard(frame)
            else:
                frame = self._small_next
                if frame + addr.SMALL_PAGE_SIZE > self._small_limit:
                    raise AddressError("out of 4KiB frames")
                self._small_next = frame + addr.SMALL_PAGE_SIZE
        live = self.bytes_allocated
        if live > self._peak_bytes:
            self._peak_bytes = live
        return frame

    def alloc_small(self) -> int:
        """Convenience wrapper used as a page-table frame allocator."""
        return self.alloc_frame(large=False)

    def free_frame(self, frame: int, large: bool = False) -> None:
        """Return a frame to its free list (VM teardown / unmap).

        Rejects frames that are misaligned, outside the region the size
        class allocates from, never handed out, or already free — each a
        reclaim-accounting bug that would otherwise corrupt the free
        list silently.
        """
        size = addr.page_size(large)
        label = "2MiB" if large else "4KiB"
        if frame & (size - 1):
            raise AddressError(f"free of misaligned {label} frame {frame:#x}")
        if large:
            region_base, bump_next = self._small_limit, self._large_next
            free_list, free_set = self._free_large, self._free_large_set
        else:
            region_base, bump_next = self.base, self._small_next
            free_list, free_set = self._free_small, self._free_small_set
        if not region_base <= frame < bump_next:
            raise AddressError(
                f"free of {label} frame {frame:#x} that was never allocated")
        if frame in free_set:
            raise AddressError(f"double free of {label} frame {frame:#x}")
        free_list.append(frame)
        free_set.add(frame)

    # -- accounting ----------------------------------------------------------

    @property
    def small_allocated(self) -> int:
        """Number of 4 KiB frames currently live (allocated, not freed)."""
        return ((self._small_next - self.base) // addr.SMALL_PAGE_SIZE
                - len(self._free_small))

    @property
    def large_allocated(self) -> int:
        """Number of 2 MiB frames currently live (allocated, not freed)."""
        return ((self._large_next - self._small_limit) // addr.LARGE_PAGE_SIZE
                - len(self._free_large))

    @property
    def bytes_allocated(self) -> int:
        """Live bytes: handed-out frames minus freed ones."""
        return (self.small_allocated * addr.SMALL_PAGE_SIZE
                + self.large_allocated * addr.LARGE_PAGE_SIZE)

    @property
    def peak_bytes(self) -> int:
        """High-water mark of :attr:`bytes_allocated`."""
        return self._peak_bytes

    def audit(self) -> Dict[str, int]:
        """Check allocation-conservation laws; return the raw counters.

        Raises :class:`~repro.common.errors.AddressError` when the free
        lists disagree with the bump pointers — duplicate entries,
        misaligned or out-of-range frames, or more frames free than were
        ever handed out.  Used by the ``memory-conservation`` verify
        invariant after every ``destroy_vm``.
        """
        for label, large, free_list, free_set, region_base, bump_next in (
                ("4KiB", False, self._free_small, self._free_small_set,
                 self.base, self._small_next),
                ("2MiB", True, self._free_large, self._free_large_set,
                 self._small_limit, self._large_next)):
            if len(free_list) != len(free_set):
                raise AddressError(f"{label} free list holds duplicates")
            size = addr.page_size(large)
            handed_out = (bump_next - region_base) // size
            if len(free_list) > handed_out:
                raise AddressError(
                    f"{label} free list holds {len(free_list)} frames but "
                    f"only {handed_out} were ever allocated")
            for frame in free_list:
                if frame & (size - 1) or not region_base <= frame < bump_next:
                    raise AddressError(
                        f"{label} free list holds bad frame {frame:#x}")
        return {
            "small_live": self.small_allocated,
            "large_live": self.large_allocated,
            "small_free": len(self._free_small),
            "large_free": len(self._free_large),
            "bytes_allocated": self.bytes_allocated,
            "peak_bytes": self._peak_bytes,
        }
