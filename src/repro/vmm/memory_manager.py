"""Physical frame allocators for host and guest address spaces.

First-touch bump allocation from two disjoint regions (4 KiB frames low,
2 MiB frames high) — the simple policy gives sequentially-touched pages
physical adjacency, which is what a freshly booted Linux with THP does
and what the DRAM row-buffer study expects.
"""

from __future__ import annotations

from ..common import addr
from ..common.errors import AddressError


class PhysicalMemory:
    """Frame allocator over one contiguous physical region."""

    def __init__(self, base: int = 0, size_bytes: int = 64 * addr.GiB,
                 large_region_fraction: float = 0.5) -> None:
        if base & (addr.LARGE_PAGE_SIZE - 1):
            raise AddressError("physical region base must be 2MiB aligned")
        if not 0.0 < large_region_fraction < 1.0:
            raise AddressError("large_region_fraction must be in (0,1)")
        self.base = base
        self.size_bytes = size_bytes
        split = addr.align_up(base + int(size_bytes * (1 - large_region_fraction)),
                              addr.LARGE_PAGE_SIZE)
        self._small_next = base
        self._small_limit = split
        self._large_next = split
        self._large_limit = base + size_bytes

    def alloc_frame(self, large: bool = False) -> int:
        """Return the base address of a fresh small or large frame."""
        if large:
            frame = self._large_next
            if frame + addr.LARGE_PAGE_SIZE > self._large_limit:
                raise AddressError("out of 2MiB frames")
            self._large_next = frame + addr.LARGE_PAGE_SIZE
            return frame
        frame = self._small_next
        if frame + addr.SMALL_PAGE_SIZE > self._small_limit:
            raise AddressError("out of 4KiB frames")
        self._small_next = frame + addr.SMALL_PAGE_SIZE
        return frame

    def alloc_small(self) -> int:
        """Convenience wrapper used as a page-table frame allocator."""
        return self.alloc_frame(large=False)

    @property
    def small_allocated(self) -> int:
        """Number of 4 KiB frames handed out so far."""
        return (self._small_next - self.base) // addr.SMALL_PAGE_SIZE

    @property
    def large_allocated(self) -> int:
        """Number of 2 MiB frames handed out so far."""
        return (self._large_next - self._small_limit) // addr.LARGE_PAGE_SIZE

    @property
    def bytes_allocated(self) -> int:
        return (self._small_next - self.base) + (self._large_next - self._small_limit)
