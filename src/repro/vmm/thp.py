"""Transparent-huge-page policy.

Linux THP promotes 2 MiB-aligned virtual regions to large pages
opportunistically.  The simulator's policy decides, per 2 MiB virtual
region of a process, whether the region is backed by one large page or
by 512 small pages.  The decision is a deterministic hash of
(seed, asid, region), thresholded at the benchmark's large-page
fraction — so a workload replays identically across schemes, which the
paper's methodology requires (every scheme sees the same page-size mix,
Table 2's "Frac Large Pages" row).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple


class ThpPolicy:
    """Decides large-vs-small backing per 2 MiB virtual region."""

    def __init__(self, large_fraction: float, seed: int = 0) -> None:
        if not 0.0 <= large_fraction <= 1.0:
            raise ValueError("large_fraction must be in [0, 1]")
        self.large_fraction = large_fraction
        self.seed = seed
        self._decisions: Dict[Tuple[int, int], bool] = {}

    def is_large_region(self, asid: int, large_vpn: int) -> bool:
        """True when region ``large_vpn`` of process ``asid`` is a 2MiB page."""
        key = (asid, large_vpn)
        cached = self._decisions.get(key)
        if cached is not None:
            return cached
        if self.large_fraction >= 1.0:
            decision = True
        elif self.large_fraction <= 0.0:
            decision = False
        else:
            digest = hashlib.blake2b(
                f"{self.seed}:{asid}:{large_vpn}".encode(), digest_size=8).digest()
            point = int.from_bytes(digest, "little") / 2 ** 64
            decision = point < self.large_fraction
        self._decisions[key] = decision
        return decision

    def decided_regions(self) -> int:
        """How many regions have been decided (introspection for tests)."""
        return len(self._decisions)

    def observed_large_fraction(self) -> float:
        """Fraction of decided regions that came out large."""
        if not self._decisions:
            return 0.0
        return sum(self._decisions.values()) / len(self._decisions)
