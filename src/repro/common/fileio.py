"""Crash-safe file writing shared by reports, metrics, traces and checkpoints.

Everything the toolchain persists goes through the same temp-file +
``os.replace`` idiom so a reader never observes a half-written file: the
CLI ``--output`` report, ``--metrics-out`` documents, trace sinks and the
campaign checkpoint store all commit atomically or not at all.
"""

from __future__ import annotations

import os
from typing import IO


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a temp file + rename, never partially."""
    tmp = path + ".tmp"
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Binary sibling of :func:`atomic_write_text` (packed trace cache)."""
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class AtomicFile:
    """An incrementally written file that becomes visible only on commit.

    Opens ``path + ".tmp"`` for writing; :meth:`commit` renames it into
    place, :meth:`abort` discards it.  Used by streaming writers (trace
    sinks) that cannot buffer everything for :func:`atomic_write_text`.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._tmp = path + ".tmp"
        self.file: IO = open(self._tmp, "w")
        self._done = False

    def commit(self) -> None:
        """Close the temp file and rename it onto ``path``."""
        if self._done:
            return
        self._done = True
        self.file.close()
        os.replace(self._tmp, self.path)

    def abort(self) -> None:
        """Close and delete the temp file; ``path`` is left untouched."""
        if self._done:
            return
        self._done = True
        self.file.close()
        try:
            os.unlink(self._tmp)
        except OSError:
            pass
