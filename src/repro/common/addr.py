"""Address arithmetic and page geometry helpers.

The whole simulator speaks 48-bit x86-64 virtual addresses and physical
addresses of configurable width.  Two page sizes are modelled, matching
the paper's system (Transparent Huge Pages on/off per region):

* small pages: 4 KiB  (12 offset bits)
* large pages: 2 MiB  (21 offset bits)

All helpers are pure functions on integers so they are cheap enough for
the simulator hot path and trivially property-testable.
"""

from __future__ import annotations

from .errors import AddressError

# --- fundamental geometry ------------------------------------------------

VA_BITS = 48
PA_BITS = 46

SMALL_PAGE_SHIFT = 12
LARGE_PAGE_SHIFT = 21

SMALL_PAGE_SIZE = 1 << SMALL_PAGE_SHIFT  # 4 KiB
LARGE_PAGE_SIZE = 1 << LARGE_PAGE_SHIFT  # 2 MiB

#: Number of 4 KiB frames covered by one 2 MiB page.
SMALL_PAGES_PER_LARGE = LARGE_PAGE_SIZE // SMALL_PAGE_SIZE  # 512

CACHE_LINE_SHIFT = 6
CACHE_LINE_SIZE = 1 << CACHE_LINE_SHIFT  # 64 B

#: Bits of VA indexing one radix page-table level (x86-64: 9 bits/level).
RADIX_LEVEL_BITS = 9
RADIX_LEVELS = 4
ENTRIES_PER_TABLE = 1 << RADIX_LEVEL_BITS  # 512

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


def page_shift(large: bool) -> int:
    """Return the page-offset width for a small or large page."""
    return LARGE_PAGE_SHIFT if large else SMALL_PAGE_SHIFT


def page_size(large: bool) -> int:
    """Return the page size in bytes for a small or large page."""
    return LARGE_PAGE_SIZE if large else SMALL_PAGE_SIZE


def vpn(vaddr: int, large: bool = False) -> int:
    """Virtual page number of ``vaddr`` under the given page size."""
    return vaddr >> page_shift(large)


def page_offset(vaddr: int, large: bool = False) -> int:
    """Offset of ``vaddr`` inside its (small or large) page."""
    return vaddr & (page_size(large) - 1)


def page_base(vaddr: int, large: bool = False) -> int:
    """Base address of the page containing ``vaddr``."""
    return vaddr & ~(page_size(large) - 1)


def small_vpn_of_large(large_vpn: int) -> int:
    """First small-page VPN contained in the given large-page VPN."""
    return large_vpn << (LARGE_PAGE_SHIFT - SMALL_PAGE_SHIFT)


def large_vpn_of_small(small_vpn: int) -> int:
    """Large-page VPN containing the given small-page VPN."""
    return small_vpn >> (LARGE_PAGE_SHIFT - SMALL_PAGE_SHIFT)


def cache_line(addr: int) -> int:
    """Cache-line number (64 B granularity) of a byte address."""
    return addr >> CACHE_LINE_SHIFT


def cache_line_base(addr: int) -> int:
    """Byte address of the start of the cache line containing ``addr``."""
    return addr & ~(CACHE_LINE_SIZE - 1)


def radix_index(vaddr: int, level: int) -> int:
    """Index into the radix page table at ``level``.

    Levels follow the x86-64 naming convention used in the paper's
    Figure 1: level 4 is the root (PML4), level 1 is the leaf page table.
    A large (2 MiB) page terminates the walk at level 2 (PD).
    """
    if not 1 <= level <= RADIX_LEVELS:
        raise AddressError(f"radix level must be 1..4, got {level}")
    shift = SMALL_PAGE_SHIFT + RADIX_LEVEL_BITS * (level - 1)
    return (vaddr >> shift) & (ENTRIES_PER_TABLE - 1)


def canonical(vaddr: int) -> int:
    """Truncate an arbitrary integer into the modelled 48-bit VA space."""
    return vaddr & ((1 << VA_BITS) - 1)


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Integer log2 of an exact power of two; raises otherwise."""
    if not is_power_of_two(value):
        raise AddressError(f"{value} is not a power of two")
    return value.bit_length() - 1


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of the power-of-two ``alignment``."""
    if not is_power_of_two(alignment):
        raise AddressError(f"alignment {alignment} is not a power of two")
    return (value + alignment - 1) & ~(alignment - 1)


def pretty_size(nbytes: int) -> str:
    """Human-readable size string (``16777216`` -> ``'16MiB'``)."""
    for unit, suffix in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if nbytes >= unit and nbytes % unit == 0:
            return f"{nbytes // unit}{suffix}"
    return f"{nbytes}B"
