"""Shared primitives: addresses, configuration, statistics, RNG, errors."""

from . import addr
from .config import (
    CacheConfig,
    DramTimingConfig,
    MmuConfig,
    PomTlbConfig,
    PredictorConfig,
    SharedL2Config,
    SystemConfig,
    TlbConfig,
    TsbConfig,
    WalkCacheConfig,
    ddr4_timing,
    stacked_dram_timing,
)
from .errors import AddressError, ConfigError, ReproError, TraceFormatError, TranslationFault
from .rng import ZipfSampler, make_rng, shuffled_ranks, weighted_choice
from .stats import StatGroup, StatRegistry

__all__ = [
    "addr",
    "AddressError",
    "CacheConfig",
    "ConfigError",
    "DramTimingConfig",
    "MmuConfig",
    "PomTlbConfig",
    "PredictorConfig",
    "ReproError",
    "SharedL2Config",
    "StatGroup",
    "StatRegistry",
    "SystemConfig",
    "TlbConfig",
    "TraceFormatError",
    "TranslationFault",
    "TsbConfig",
    "WalkCacheConfig",
    "ZipfSampler",
    "ddr4_timing",
    "make_rng",
    "shuffled_ranks",
    "stacked_dram_timing",
    "weighted_choice",
]
