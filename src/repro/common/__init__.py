"""Shared primitives: addresses, configuration, statistics, RNG, errors."""

from . import addr
from .config import (
    CacheConfig,
    DramTimingConfig,
    MmuConfig,
    PomTlbConfig,
    PredictorConfig,
    SharedL2Config,
    SystemConfig,
    TlbConfig,
    TsbConfig,
    WalkCacheConfig,
    ddr4_timing,
    stacked_dram_timing,
)
from .errors import (
    AddressError,
    CheckpointError,
    ConfigError,
    FaultInjected,
    ReproError,
    RunFailed,
    RunTimeout,
    TraceFormatError,
    TransientError,
    TranslationFault,
    WorkerCrash,
)
from .fileio import AtomicFile, atomic_write_text
from .rng import ZipfSampler, make_rng, shuffled_ranks, weighted_choice
from .stats import StatGroup, StatRegistry

__all__ = [
    "addr",
    "AddressError",
    "AtomicFile",
    "CacheConfig",
    "CheckpointError",
    "ConfigError",
    "DramTimingConfig",
    "FaultInjected",
    "MmuConfig",
    "PomTlbConfig",
    "PredictorConfig",
    "ReproError",
    "RunFailed",
    "RunTimeout",
    "SharedL2Config",
    "StatGroup",
    "StatRegistry",
    "SystemConfig",
    "TlbConfig",
    "TraceFormatError",
    "TransientError",
    "TranslationFault",
    "TsbConfig",
    "WalkCacheConfig",
    "WorkerCrash",
    "ZipfSampler",
    "atomic_write_text",
    "ddr4_timing",
    "make_rng",
    "shuffled_ranks",
    "stacked_dram_timing",
    "weighted_choice",
]
