"""Configuration dataclasses for every simulated component.

The defaults reproduce Table 1 of the paper (the Skylake-like host and
the die-stacked / DDR4 memory parameters) plus the POM-TLB organisation
described in Section 2.  Every config validates itself in
``__post_init__`` so a bad experiment sweep fails at construction, not
three minutes into a simulation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from . import addr
from .errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass
class CacheConfig:
    """Geometry and latency of one set-associative data cache level."""

    name: str
    size_bytes: int
    ways: int
    latency_cycles: int
    line_bytes: int = addr.CACHE_LINE_SIZE

    def __post_init__(self) -> None:
        _require(addr.is_power_of_two(self.line_bytes), f"{self.name}: line size must be a power of two")
        _require(self.size_bytes % (self.ways * self.line_bytes) == 0,
                 f"{self.name}: size must be a multiple of ways*line")
        _require(addr.is_power_of_two(self.num_sets), f"{self.name}: set count must be a power of two")
        _require(self.latency_cycles >= 1, f"{self.name}: latency must be >= 1 cycle")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass
class TlbConfig:
    """Geometry and latency of one SRAM TLB level."""

    name: str
    entries: int
    ways: int
    latency_cycles: int
    miss_penalty_cycles: int = 0

    def __post_init__(self) -> None:
        _require(self.entries % self.ways == 0, f"{self.name}: entries must divide by ways")
        _require(addr.is_power_of_two(self.entries // self.ways),
                 f"{self.name}: set count must be a power of two")
        _require(self.latency_cycles >= 1, f"{self.name}: latency must be >= 1 cycle")

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways


@dataclass
class MmuConfig:
    """Private TLB hierarchy of one core (Table 1, MMU section)."""

    l1_small: TlbConfig = field(default_factory=lambda: TlbConfig(
        name="l1_tlb_4k", entries=64, ways=4, latency_cycles=1, miss_penalty_cycles=9))
    l1_large: TlbConfig = field(default_factory=lambda: TlbConfig(
        name="l1_tlb_2m", entries=32, ways=4, latency_cycles=1, miss_penalty_cycles=9))
    l2_unified: TlbConfig = field(default_factory=lambda: TlbConfig(
        name="l2_tlb", entries=1536, ways=12, latency_cycles=9, miss_penalty_cycles=17))


@dataclass
class WalkCacheConfig:
    """Page structure caches (PSCs) — Table 1, PSC section.

    One entry caches the physical address of the next-level table for a
    given VA prefix, letting the walker skip upper levels of the radix
    tree.  Latencies are per-hit lookup costs.
    """

    pml4_entries: int = 2
    pdp_entries: int = 4
    pde_entries: int = 32
    hit_latency_cycles: int = 2

    def __post_init__(self) -> None:
        _require(self.pml4_entries >= 0 and self.pdp_entries >= 0 and self.pde_entries >= 0,
                 "PSC entry counts must be non-negative")
        _require(self.hit_latency_cycles >= 0, "PSC latency must be non-negative")


@dataclass
class DramTimingConfig:
    """DRAM bank timing in memory-bus clock cycles (Table 1)."""

    name: str
    bus_mhz: int
    bus_bits: int
    row_buffer_bytes: int = 2048
    tcas: int = 11
    trcd: int = 11
    trp: int = 11
    banks: int = 8
    #: fixed controller/queueing overhead added to every access, in bus cycles
    controller_cycles: int = 2

    def __post_init__(self) -> None:
        _require(self.bus_mhz > 0, f"{self.name}: bus frequency must be positive")
        _require(addr.is_power_of_two(self.row_buffer_bytes), f"{self.name}: row size must be a power of two")
        _require(addr.is_power_of_two(self.banks), f"{self.name}: bank count must be a power of two")
        for param in ("tcas", "trcd", "trp"):
            _require(getattr(self, param) > 0, f"{self.name}: {param} must be positive")

    def cpu_cycles(self, bus_cycles: float, cpu_mhz: int) -> int:
        """Convert bus cycles into CPU cycles at ``cpu_mhz`` (rounded up)."""
        return -int(-bus_cycles * cpu_mhz // self.bus_mhz)


def stacked_dram_timing() -> DramTimingConfig:
    """Die-stacked DRAM channel hosting the POM-TLB (Table 1).

    Bank count follows the HBM generation the paper cites (JESD235A:
    16 banks per channel), which matters for row-buffer behaviour under
    8-core interleaved miss streams.
    """
    return DramTimingConfig(name="stacked", bus_mhz=1000, bus_bits=128,
                            row_buffer_bytes=2048, tcas=11, trcd=11, trp=11,
                            banks=16)


def ddr4_timing() -> DramTimingConfig:
    """Off-chip DDR4-2133 main-memory channel (Table 1)."""
    return DramTimingConfig(name="ddr4", bus_mhz=1066, bus_bits=64,
                            row_buffer_bytes=2048, tcas=14, trcd=14, trp=14, banks=16)


@dataclass
class PomTlbConfig:
    """Organisation of the part-of-memory L3 TLB (paper Section 2.1).

    The total capacity is split between the small-page and large-page
    partitions.  Entries are 16 B, sets are 4-way = one 64 B line, so a
    partition of ``size_bytes`` holds ``size_bytes / 64`` sets.
    """

    size_bytes: int = 16 * addr.MiB
    ways: int = 4
    entry_bytes: int = 16
    #: fraction of capacity given to the small-page partition
    small_fraction: float = 0.5
    #: physical base address of the POM-TLB region (beyond simulated DRAM)
    base_address: int = 1 << 45

    def __post_init__(self) -> None:
        _require(self.ways * self.entry_bytes == addr.CACHE_LINE_SIZE,
                 "one POM-TLB set must fill exactly one 64B cache line")
        _require(0.0 < self.small_fraction < 1.0, "small_fraction must be in (0, 1)")
        _require(addr.is_power_of_two(self.small_size_bytes)
                 and addr.is_power_of_two(self.large_size_bytes),
                 "each POM-TLB partition must be a power-of-two size")

    @property
    def small_size_bytes(self) -> int:
        return int(self.size_bytes * self.small_fraction)

    @property
    def large_size_bytes(self) -> int:
        return self.size_bytes - self.small_size_bytes

    @property
    def small_sets(self) -> int:
        return self.small_size_bytes // addr.CACHE_LINE_SIZE

    @property
    def large_sets(self) -> int:
        return self.large_size_bytes // addr.CACHE_LINE_SIZE

    @property
    def small_base(self) -> int:
        return self.base_address

    @property
    def large_base(self) -> int:
        return self.base_address + self.small_size_bytes

    def contains(self, paddr: int) -> bool:
        """True when ``paddr`` falls inside the POM-TLB address range."""
        return self.base_address <= paddr < self.base_address + self.size_bytes


@dataclass
class PredictorConfig:
    """Page-size + cache-bypass predictor (paper Section 2.1.4/2.1.5).

    ``size_counter_bits = 1`` is the paper's design (flip on every
    mistake); larger values add the hysteresis the paper's footnote 2
    suggests ("one could improve accuracy by adding hysteresis via a
    multi-bit saturating predictor").  ``bypass_enabled = False``
    disables the cache-bypass half entirely (ablation).
    """

    entries: int = 512
    #: VA bits used for indexing start above the 4 KiB page offset
    index_shift: int = addr.SMALL_PAGE_SHIFT
    size_counter_bits: int = 1
    bypass_enabled: bool = True

    def __post_init__(self) -> None:
        _require(addr.is_power_of_two(self.entries), "predictor entries must be a power of two")
        _require(1 <= self.size_counter_bits <= 4,
                 "size counter must be 1..4 bits")

    @property
    def index_bits(self) -> int:
        return addr.ilog2(self.entries)


@dataclass
class TsbConfig:
    """SPARC-style Translation Storage Buffer baseline (Section 3.3)."""

    size_bytes: int = 16 * addr.MiB
    entry_bytes: int = 16
    #: OS trap entry/exit cost per L2 TLB miss, in CPU cycles
    trap_cycles: int = 20
    #: dependent TSB lookups per translation (guest + host halves)
    lookups_per_translation: int = 2
    base_address: int = 1 << 44

    def __post_init__(self) -> None:
        _require(self.size_bytes % self.entry_bytes == 0, "TSB size must divide by entry size")
        _require(addr.is_power_of_two(self.num_entries), "TSB entry count must be a power of two")

    @property
    def num_entries(self) -> int:
        return self.size_bytes // self.entry_bytes


@dataclass
class SharedL2Config:
    """Shared last-level SRAM TLB baseline (Bhattacharjee et al. [9]).

    Private L2 TLBs are replaced by one shared structure with the
    aggregate capacity.  ``banked`` (the reference proposal's design)
    distributes the array into per-core banks, so the array access stays
    at private-L2 latency and only the ``interconnect_cycles`` hop is
    extra; with ``banked=False`` the array is monolithic and its latency
    follows the CACTI-like growth curve instead.
    """

    entries_per_core: int = 1536
    ways: int = 12
    interconnect_cycles: int = 4
    banked: bool = True
    array_latency_cycles: int = 9

    def tlb_config(self, num_cores: int) -> TlbConfig:
        """Materialise the shared TLB geometry for ``num_cores`` cores."""
        entries = self.entries_per_core * num_cores
        return TlbConfig(name="shared_l2_tlb", entries=entries, ways=self.ways,
                         latency_cycles=self.array_latency_cycles
                         + self.interconnect_cycles)


@dataclass
class SystemConfig:
    """Top-level system: cores, caches, TLBs, DRAM, POM-TLB (Table 1)."""

    num_cores: int = 8
    cpu_mhz: int = 4000
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1d", size_bytes=32 * addr.KiB, ways=8, latency_cycles=4))
    l2d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l2d", size_bytes=256 * addr.KiB, ways=4, latency_cycles=12))
    l3d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l3d", size_bytes=8 * addr.MiB, ways=16, latency_cycles=42))
    mmu: MmuConfig = field(default_factory=MmuConfig)
    walk_cache: WalkCacheConfig = field(default_factory=WalkCacheConfig)
    pom_tlb: PomTlbConfig = field(default_factory=PomTlbConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    stacked_dram: DramTimingConfig = field(default_factory=stacked_dram_timing)
    main_dram: DramTimingConfig = field(default_factory=ddr4_timing)
    #: enable caching of POM-TLB entries in L2D$/L3D$ (Fig 12 ablation)
    cache_tlb_entries: bool = True
    #: virtualized (2-D nested walk) vs native (1-D walk) page walks
    virtualized: bool = True
    #: die-stacked DRAM used as an L4 *data* cache (Section 2.2
    #: trade-off study); 0 disables it
    l4_data_cache_bytes: int = 0
    #: next-page POM-TLB set prefetching (the Related Work extension:
    #: "POM-TLB augmented with a prefetcher")
    tlb_prefetch: bool = False
    #: model dirty lines and write-back traffic between cache levels and
    #: to DRAM (off the critical path; affects DRAM bank state + stats)
    writeback_modeling: bool = False

    def __post_init__(self) -> None:
        _require(self.num_cores >= 1, "need at least one core")
        _require(self.cpu_mhz > 0, "cpu frequency must be positive")

    def copy_with(self, **overrides) -> "SystemConfig":
        """Return a new config with ``overrides`` replacing fields."""
        return dataclasses.replace(self, **overrides)
