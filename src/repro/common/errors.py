"""Exception hierarchy for the POM-TLB reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another one."""


class AddressError(ReproError):
    """An address is out of range or mis-aligned for the requested use."""


class TranslationFault(ReproError):
    """A virtual address has no mapping in the relevant page table.

    This corresponds to a page fault that the simulated OS would have to
    service; the simulator raises it only when a lookup is performed
    against a page table that was never populated for that address.
    """

    def __init__(self, vaddr: int, space: str = "guest") -> None:
        super().__init__(f"no {space} translation for VA {vaddr:#x}")
        self.vaddr = vaddr
        self.space = space


class TraceFormatError(ReproError):
    """A serialized memory trace could not be parsed."""
