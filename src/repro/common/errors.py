"""Exception hierarchy for the POM-TLB reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another one."""


class AddressError(ReproError):
    """An address is out of range or mis-aligned for the requested use."""


class TranslationFault(ReproError):
    """A virtual address has no mapping in the relevant page table.

    This corresponds to a page fault that the simulated OS would have to
    service; the simulator raises it only when a lookup is performed
    against a page table that was never populated for that address.
    """

    def __init__(self, vaddr: int, space: str = "guest") -> None:
        super().__init__(f"no {space} translation for VA {vaddr:#x}")
        self.vaddr = vaddr
        self.space = space


class TraceFormatError(ReproError):
    """A serialized memory trace could not be parsed or failed validation.

    ``path``, ``lineno`` and ``text`` pinpoint the offending record when
    known, so a multi-gigabyte trace failure is diagnosable without
    re-reading the file.
    """

    def __init__(self, message: str, path: str = "", lineno: int = 0,
                 text: str = "") -> None:
        location = ""
        if path:
            location = f"{path}:{lineno}: " if lineno else f"{path}: "
        detail = f" (record: {text!r})" if text else ""
        super().__init__(f"{location}{message}{detail}")
        self.path = path
        self.lineno = lineno
        self.text = text


class PackedTraceError(ReproError):
    """A packed binary trace container is damaged or unreadable.

    Covers truncation, magic/version mismatches and checksum failures
    on the columnar format (:mod:`repro.workloads.packed`); ``path``
    names the offending file or shared-memory segment when known.
    """

    def __init__(self, message: str, path: str = "") -> None:
        super().__init__(f"{path}: {message}" if path else message)
        self.path = path


class TransientError(ReproError):
    """A failure that may succeed on retry (timeouts, crashed workers).

    The campaign executor retries runs that die with a ``TransientError``
    subclass; every other :class:`ReproError` is treated as permanent and
    fails the run immediately.
    """


class RunTimeout(TransientError):
    """A simulation run exceeded its per-run wall-clock budget."""

    def __init__(self, benchmark: str, scheme: str, timeout_s: float) -> None:
        super().__init__(f"run ({benchmark}, {scheme}) exceeded "
                         f"{timeout_s:g}s timeout")
        self.benchmark = benchmark
        self.scheme = scheme
        self.timeout_s = timeout_s


class WorkerCrash(TransientError):
    """A worker process died without reporting a result."""

    def __init__(self, benchmark: str, scheme: str, exitcode: int) -> None:
        super().__init__(f"worker for ({benchmark}, {scheme}) died with "
                         f"exit code {exitcode}")
        self.benchmark = benchmark
        self.scheme = scheme
        self.exitcode = exitcode


class FaultInjected(TransientError):
    """Raised by the fault-injection harness (:mod:`repro.faults`).

    Transient by design so injected faults exercise the retry machinery;
    a fault that should be permanent corrupts state (e.g. a trace record)
    instead of raising this.
    """


class VerificationError(ReproError):
    """A consistency-audit invariant was violated during a run.

    Permanent by design (never a :class:`TransientError`): retrying a
    deterministic simulation cannot make a broken invariant pass.
    ``invariant`` names the violated check, ``detail`` describes the
    witness state, and ``artifact`` (when set) is the path of a shrunk
    packed trace (``.pwl``) that reproduces the violation.
    """

    def __init__(self, invariant: str, detail: str,
                 artifact: str = "") -> None:
        suffix = f" [repro trace: {artifact}]" if artifact else ""
        super().__init__(f"invariant {invariant!r} violated: {detail}{suffix}")
        self.invariant = invariant
        self.detail = detail
        self.artifact = artifact


class CheckpointError(ReproError):
    """A checkpoint store could not be read or written."""


class RunFailed(ReproError):
    """A campaign run exhausted its attempts and has no result.

    Raised when a figure driver asks the runner for a (benchmark,
    scheme) pair the resilient executor recorded as failed; figure
    rendering catches it and annotates the missing cell.
    """

    def __init__(self, benchmark: str, scheme: str, attempts: int,
                 cause: str) -> None:
        super().__init__(f"run ({benchmark}, {scheme}) failed after "
                         f"{attempts} attempt(s): {cause}")
        self.benchmark = benchmark
        self.scheme = scheme
        self.attempts = attempts
        self.cause = cause
