"""Lightweight statistics counters shared by every simulated component.

Components own a :class:`StatGroup`; the system simulator stitches the
groups of all components into a :class:`StatRegistry` so experiments can
render a single flat report.

Two access styles share one storage:

* the **string API** (``inc``/``get``/``as_dict``/...) — the cold-path
  and reporting view, unchanged since the seed; and
* **bound counter slots** (:meth:`StatGroup.counter`) — the hot-path
  view.  A component resolves ``group.counter("hits")`` once at
  construction and the per-event increment is then two attribute stores
  on a :class:`Counter`, with no string hashing or dict lookup.  The
  very hottest sites inline the two stores
  (``slot.value += n; slot.touched = True``) instead of calling
  :meth:`Counter.add`.

Both views observe the same values at all times; the differential
engine-equivalence test relies on that.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple


class Counter:
    """One named counter cell, handed out by :meth:`StatGroup.counter`.

    ``value`` is the count; ``touched`` records whether the counter has
    been written since creation or the last group reset.  Untouched
    counters are invisible to every reporting view, which preserves the
    seed-era semantics where a counter key did not exist until first
    incremented (and was forgotten by ``reset``).
    """

    __slots__ = ("name", "value", "touched")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self.touched = False

    def add(self, amount: float = 1) -> None:
        """Add ``amount`` (the bound-slot equivalent of ``inc``)."""
        self.value += amount
        self.touched = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class StatGroup:
    """A named bag of numeric counters.

    >>> g = StatGroup("l1_tlb")
    >>> g.inc("hits")
    >>> g.inc("hits", 2)
    >>> g["hits"]
    3
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._slots: Dict[str, Counter] = {}

    # -- hot-path view -------------------------------------------------------

    def counter(self, key: str) -> Counter:
        """Resolve-once handle for ``key``: a bound :class:`Counter`.

        The handle stays valid across :meth:`reset` (the cell is zeroed,
        not replaced), so components resolve their counters exactly once
        at construction time.
        """
        slot = self._slots.get(key)
        if slot is None:
            slot = self._slots[key] = Counter(key)
        return slot

    # -- string view ---------------------------------------------------------

    def inc(self, key: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``key`` (creating it at zero)."""
        slot = self._slots.get(key)
        if slot is None:
            slot = self._slots[key] = Counter(key)
        slot.value += amount
        slot.touched = True

    def set(self, key: str, value: float) -> None:
        """Overwrite counter ``key``."""
        slot = self.counter(key)
        slot.value = value
        slot.touched = True

    def get(self, key: str, default: float = 0) -> float:
        """Read counter ``key`` or ``default`` when never touched."""
        slot = self._slots.get(key)
        return slot.value if slot is not None and slot.touched else default

    def __getitem__(self, key: str) -> float:
        slot = self._slots.get(key)
        return slot.value if slot is not None and slot.touched else 0

    def __contains__(self, key: str) -> bool:
        slot = self._slots.get(key)
        return slot is not None and slot.touched

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` with 0/0 defined as 0.0."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def reset(self) -> None:
        """Zero every counter (the keys are forgotten, not kept at 0).

        Bound slots stay valid: the cells are zeroed in place and marked
        untouched, so they vanish from reports until written again.
        """
        for slot in self._slots.values():
            slot.value = 0
            slot.touched = False

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters, sorted by key for stable output."""
        return {key: slot.value for key, slot in sorted(self._slots.items())
                if slot.touched}

    def merge(self, other: "StatGroup") -> None:
        """Accumulate every counter of ``other`` into this group."""
        for key, slot in other._slots.items():
            if slot.touched:
                self.inc(key, slot.value)

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self.as_dict().items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatGroup({self.name!r}, {self.as_dict()})"


class StatRegistry:
    """A registry mapping component names to their :class:`StatGroup`.

    The registry is the single source experiments consume; it guarantees
    unique group names so reports never silently alias two components.
    """

    def __init__(self) -> None:
        self._groups: Dict[str, StatGroup] = {}

    def group(self, name: str) -> StatGroup:
        """Return the group called ``name``, creating it if needed."""
        if name not in self._groups:
            self._groups[name] = StatGroup(name)
        return self._groups[name]

    def register(self, group: StatGroup) -> StatGroup:
        """Adopt an externally created group; name must be unused."""
        if group.name in self._groups and self._groups[group.name] is not group:
            raise ValueError(f"stat group {group.name!r} already registered")
        self._groups[group.name] = group
        return group

    def __getitem__(self, name: str) -> StatGroup:
        return self._groups[name]

    def __contains__(self, name: str) -> bool:
        return name in self._groups

    def groups(self) -> Mapping[str, StatGroup]:
        """Read-only view of all registered groups."""
        return dict(self._groups)

    def reset(self) -> None:
        """Zero the counters of every registered group."""
        for group in self._groups.values():
            group.reset()

    def as_nested_dict(self) -> Dict[str, Dict[str, float]]:
        """``{group: {counter: value}}`` snapshot, sorted at both levels."""
        return {name: g.as_dict() for name, g in sorted(self._groups.items())}

    @classmethod
    def from_nested_dict(cls, data: Mapping[str, Mapping[str, float]]
                         ) -> "StatRegistry":
        """Inverse of :meth:`as_nested_dict` (checkpoint restore)."""
        registry = cls()
        for name, counters in data.items():
            group = registry.group(name)
            for key, value in counters.items():
                group.set(key, value)
        return registry

    def render(self) -> str:
        """Plain-text report of every counter, one line each."""
        lines = []
        for name, group in sorted(self._groups.items()):
            for key, value in group:
                if isinstance(value, float) and not value.is_integer():
                    lines.append(f"{name}.{key} = {value:.6g}")
                else:
                    lines.append(f"{name}.{key} = {int(value)}")
        return "\n".join(lines)
