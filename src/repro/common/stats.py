"""Lightweight statistics counters shared by every simulated component.

Components own a :class:`StatGroup`; the system simulator stitches the
groups of all components into a :class:`StatRegistry` so experiments can
render a single flat report.  Counters are plain attributes on purpose —
the simulator hot path increments them millions of times and attribute
access on a dict-backed object is the cheapest idiom that still gives us
introspection.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple


class StatGroup:
    """A named bag of numeric counters.

    >>> g = StatGroup("l1_tlb")
    >>> g.inc("hits")
    >>> g.inc("hits", 2)
    >>> g["hits"]
    3
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, float] = {}

    def inc(self, key: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``key`` (creating it at zero)."""
        self._counters[key] = self._counters.get(key, 0) + amount

    def set(self, key: str, value: float) -> None:
        """Overwrite counter ``key``."""
        self._counters[key] = value

    def get(self, key: str, default: float = 0) -> float:
        """Read counter ``key`` or ``default`` when never touched."""
        return self._counters.get(key, default)

    def __getitem__(self, key: str) -> float:
        return self._counters.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` with 0/0 defined as 0.0."""
        denom = self._counters.get(denominator, 0)
        if denom == 0:
            return 0.0
        return self._counters.get(numerator, 0) / denom

    def reset(self) -> None:
        """Zero every counter (the keys are forgotten, not kept at 0)."""
        self._counters.clear()

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters, sorted by key for stable output."""
        return dict(sorted(self._counters.items()))

    def merge(self, other: "StatGroup") -> None:
        """Accumulate every counter of ``other`` into this group."""
        for key, value in other._counters.items():
            self.inc(key, value)

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatGroup({self.name!r}, {self.as_dict()})"


class StatRegistry:
    """A registry mapping component names to their :class:`StatGroup`.

    The registry is the single source experiments consume; it guarantees
    unique group names so reports never silently alias two components.
    """

    def __init__(self) -> None:
        self._groups: Dict[str, StatGroup] = {}

    def group(self, name: str) -> StatGroup:
        """Return the group called ``name``, creating it if needed."""
        if name not in self._groups:
            self._groups[name] = StatGroup(name)
        return self._groups[name]

    def register(self, group: StatGroup) -> StatGroup:
        """Adopt an externally created group; name must be unused."""
        if group.name in self._groups and self._groups[group.name] is not group:
            raise ValueError(f"stat group {group.name!r} already registered")
        self._groups[group.name] = group
        return group

    def __getitem__(self, name: str) -> StatGroup:
        return self._groups[name]

    def __contains__(self, name: str) -> bool:
        return name in self._groups

    def groups(self) -> Mapping[str, StatGroup]:
        """Read-only view of all registered groups."""
        return dict(self._groups)

    def reset(self) -> None:
        """Zero the counters of every registered group."""
        for group in self._groups.values():
            group.reset()

    def as_nested_dict(self) -> Dict[str, Dict[str, float]]:
        """``{group: {counter: value}}`` snapshot, sorted at both levels."""
        return {name: g.as_dict() for name, g in sorted(self._groups.items())}

    @classmethod
    def from_nested_dict(cls, data: Mapping[str, Mapping[str, float]]
                         ) -> "StatRegistry":
        """Inverse of :meth:`as_nested_dict` (checkpoint restore)."""
        registry = cls()
        for name, counters in data.items():
            group = registry.group(name)
            for key, value in counters.items():
                group.set(key, value)
        return registry

    def render(self) -> str:
        """Plain-text report of every counter, one line each."""
        lines = []
        for name, group in sorted(self._groups.items()):
            for key, value in group:
                if isinstance(value, float) and not value.is_integer():
                    lines.append(f"{name}.{key} = {value:.6g}")
                else:
                    lines.append(f"{name}.{key} = {int(value)}")
        return "\n".join(lines)
