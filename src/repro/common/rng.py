"""Deterministic random-number utilities.

Every stochastic element of the simulator (workload generation, frame
allocation) draws from a seeded :class:`random.Random` so that runs are
exactly reproducible.  This module adds the small distributions the
workload generators need on top of the standard library.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from itertools import accumulate
from typing import List, Sequence


def make_rng(seed: int, stream: str = "") -> random.Random:
    """Create an independent RNG for ``(seed, stream)``.

    Different ``stream`` labels derive decorrelated generators from the
    same experiment seed, so adding a new consumer never perturbs the
    draws of existing ones.
    """
    return random.Random(f"{seed}:{stream}")


class ZipfSampler:
    """Sample integers ``0..n-1`` with a Zipf(``alpha``) popularity skew.

    Rank 0 is the hottest item.  ``alpha = 0`` degenerates to uniform.
    Uses an O(log n) inverse-CDF lookup over precomputed cumulative
    weights, which is fast enough for multi-million-reference traces and
    exact (no rejection sampling).
    """

    def __init__(self, n: int, alpha: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError("ZipfSampler needs a positive population")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
        self._cum: List[float] = list(accumulate(weights))
        self._total = self._cum[-1]

    def sample(self) -> int:
        """Draw one rank (0 = most popular)."""
        point = self._rng.random() * self._total
        return bisect_right(self._cum, point)


def shuffled_ranks(n: int, rng: random.Random) -> List[int]:
    """A random permutation of ``0..n-1``.

    Workload generators use this to scatter Zipf ranks over the address
    space, so popularity is decoupled from address order (hot pages are
    not all adjacent).
    """
    ranks = list(range(n))
    rng.shuffle(ranks)
    return ranks


def weighted_choice(options: Sequence, weights: Sequence[float], rng: random.Random):
    """Pick one of ``options`` with the given relative weights."""
    if len(options) != len(weights) or not options:
        raise ValueError("options and weights must be equal-length and non-empty")
    cum = list(accumulate(weights))
    point = rng.random() * cum[-1]
    return options[bisect_right(cum, point)]
