"""Per-benchmark deep dive: where every L2 TLB miss went and what it cost.

``benchmark_details`` decomposes one POM-TLB run into the quantities a
user needs when a workload under- or over-performs: miss pressure
(MPKI), how misses resolved (L2D$ / L3D$ / stacked DRAM / second-size
retry / walk), predictor behaviour, and DRAM row-buffer quality.  It is
the diagnostic companion to the aggregate figures.
"""

from __future__ import annotations

from ..core.system import SimulationResult
from .report import Report
from .runner import SuiteRunner


def benchmark_details(runner: SuiteRunner, benchmark: str) -> Report:
    """Everything the simulator knows about one benchmark's POM run."""
    run = runner.run(benchmark, "pom")
    result: SimulationResult = run.result
    stats = result.stats
    flow = stats.groups().get("pom_flow")
    report = Report(
        title=f"Details: {benchmark} under the POM-TLB "
              f"({runner.params.num_cores} cores)",
        headers=("metric", "value"))

    report.add_row("references (steady state)", result.references)
    report.add_row("L2 TLB misses", result.l2_tlb_misses)
    report.add_row("L2 TLB MPKI", result.mpki)
    report.add_row("avg penalty per miss (cycles)",
                   result.avg_penalty_per_miss)
    report.add_row("anchored improvement (%)", run.improvement_percent)
    report.add_row("page walks", result.page_walks)
    report.add_row("walk elimination", result.walk_elimination)

    if flow is not None and result.l2_tlb_misses:
        misses = result.l2_tlb_misses
        report.add_row("resolved on first size try",
                       flow["resolved_first_try"] / misses)
        report.add_row("resolved on second size try",
                       flow["resolved_second_try"] / misses)
        report.add_row("resolved by page walk",
                       flow["resolved_by_walk"] / misses)
        fetches = sum(flow[key] for key in
                      ("set_from_l2", "set_from_l3", "set_from_dram",
                       "set_from_dram_bypass", "set_from_dram_uncached"))
        if fetches:
            report.add_row("set fetches served by L2D$",
                           flow["set_from_l2"] / fetches)
            report.add_row("set fetches served by L3D$",
                           flow["set_from_l3"] / fetches)
            report.add_row("set fetches from stacked DRAM",
                           (flow["set_from_dram"]
                            + flow["set_from_dram_bypass"]
                            + flow["set_from_dram_uncached"]) / fetches)
        if "prefetches" in flow:
            report.add_row("prefetches issued", int(flow["prefetches"]))

    accuracy = result.predictor_accuracy()
    report.add_row("size predictor accuracy", accuracy["size"])
    report.add_row("bypass predictor accuracy", accuracy["bypass"])
    report.add_row("stacked-DRAM row-buffer hit rate",
                   result.row_buffer_hit_rate())
    report.add_row("POM-TLB set-probe hit rate", result.pom_hit_ratio())

    _add_latency_rows(report, result)
    report.add_note("set-fetch shares count every candidate-line fetch, "
                    "including second-size retries")
    return report


#: (histogram name, row label) pairs rendered by ``_add_latency_rows``.
_LATENCY_ROWS = (
    ("translation_cycles", "translation cycles"),
    ("penalty_cycles", "penalty cycles"),
    ("dram_access_cycles", "stacked-DRAM access cycles"),
)


def _add_latency_rows(report: Report, result: SimulationResult) -> None:
    """p50/p90/p99/max rows from the run's latency histograms."""
    if not result.histograms:
        return
    for name, label in _LATENCY_ROWS:
        histogram = result.histograms.get(name)
        if histogram is None or not histogram.count:
            continue
        percentiles = result.latency_percentiles(name)
        for quantile in ("p50", "p90", "p99", "max"):
            report.add_row(f"{label} {quantile}", percentiles[quantile])
