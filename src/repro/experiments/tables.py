"""Table 1 (system parameters) and Table 2 (benchmark characteristics)."""

from __future__ import annotations

from ..common import addr
from ..common.config import SystemConfig
from ..workloads.suite import BENCHMARKS, get_profile
from .report import Report


def table1(config: SystemConfig = None) -> Report:
    """Table 1: the experimental parameters actually in force."""
    config = config or SystemConfig()
    report = Report(title="Table 1: Experimental Parameters",
                    headers=("component", "parameter", "value"))
    report.add_row("processor", "frequency", f"{config.cpu_mhz / 1000:g} GHz")
    for cache in (config.l1d, config.l2d, config.l3d):
        report.add_row("cache", cache.name,
                       f"{addr.pretty_size(cache.size_bytes)}, {cache.ways} way, "
                       f"{cache.latency_cycles} cycles")
    mmu = config.mmu
    for tlb in (mmu.l1_small, mmu.l1_large, mmu.l2_unified):
        report.add_row("mmu", tlb.name,
                       f"{tlb.entries} entries, {tlb.ways} way, "
                       f"{tlb.miss_penalty_cycles} cycle miss penalty")
    psc = config.walk_cache
    report.add_row("psc", "pml4/pdp/pde",
                   f"{psc.pml4_entries}/{psc.pdp_entries}/{psc.pde_entries} "
                   f"entries, {psc.hit_latency_cycles} cycle")
    for dram in (config.stacked_dram, config.main_dram):
        report.add_row("dram", dram.name,
                       f"{dram.bus_mhz} MHz bus, {dram.bus_bits} bits, "
                       f"{dram.row_buffer_bytes} B row, "
                       f"tCAS-tRCD-tRP {dram.tcas}-{dram.trcd}-{dram.trp}")
    pom = config.pom_tlb
    report.add_row("pom_tlb", "capacity",
                   f"{addr.pretty_size(pom.size_bytes)}, {pom.ways} way, "
                   f"{pom.small_sets + pom.large_sets} sets")
    return report


def table2() -> Report:
    """Table 2: benchmark characteristics (the paper's measured anchors)."""
    report = Report(
        title="Table 2: Benchmark Characteristics Related to TLB misses",
        headers=("benchmark", "overhead_native_%", "overhead_virtual_%",
                 "cycles_per_miss_native", "cycles_per_miss_virtual",
                 "frac_large_pages_%"))
    for name in BENCHMARKS:
        profile = get_profile(name)
        report.add_row(name, profile.overhead_native_pct,
                       profile.overhead_virtual_pct,
                       profile.cycles_per_miss_native,
                       profile.cycles_per_miss_virtual,
                       profile.large_page_fraction_pct)
    report.add_note("values are the paper's Skylake measurements, which "
                    "anchor the Eq. 2-5 performance model")
    return report
