"""Lifecycle studies: consolidation churn, migration, shootdown sweeps.

The paper measures steady-state guests; a consolidated host also pays
for the *transitions* — guests booting and tearing down (``invalidate_vm``
storms plus frame reclamation), cold migrations, and TLB shootdown IPIs
from unrelated tenants.  These studies replay the scenarios of
:mod:`repro.workloads.lifecycle` under every scheme and report how each
absorbs the churn.

The churn and migration studies report raw simulator metrics (the VMs
run different benchmarks, so no single Eq. 2-5 anchor applies — the
:mod:`.consolidation` convention); the shootdown sweep runs one
benchmark and anchors each rate with Eq. 2-5, giving the
speedup-vs-shootdown-rate curve per scheme.

Mid-run lifecycle events force the scalar engine (the batch engine
declines with ``batch_fallback_reason`` rather than replay them
unsoundly), so every study here is engine-independent by construction;
the rate-0 sweep column still batches and stays bit-identical.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..common.config import PomTlbConfig, SystemConfig
from ..core.batch import HAS_NUMPY
from ..core.perfmodel import estimate
from ..core.system import Machine
from ..workloads.lifecycle import (LifecycleWorkload, build_churn,
                                   build_migration, build_shootdown_storm)
from ..workloads.packed import pack_stream
from ..workloads.suite import get_profile
from .report import Report
from .runner import ExperimentParams

ALL_SCHEMES = ("baseline", "pom", "pom_skewed", "shared_l2", "tsb")
DEFAULT_CHURN_MIX = ("gcc", "mcf", "canneal", "gups")
DEFAULT_MIGRATION_MIX = ("graph500", "mcf", "gups")
#: shootdowns per 1000 measured references (0 = interference-free control)
DEFAULT_RATES = (0.0, 1.0, 5.0, 20.0)


class _Recorded:
    """Event proxy: applies the wrapped event, then samples the allocator.

    The samples — ``bytes_allocated`` immediately after each teardown —
    are what "reclamation works" means: the post-teardown series must
    not trend upward across generations.
    """

    def __init__(self, event, samples: List[int]):
        self.position = event.position
        self._event = event
        self._samples = samples

    def apply(self, machine) -> None:
        self._event.apply(machine)
        self._samples.append(machine.host.memory.bytes_allocated)


def _run_scenario(workload: LifecycleWorkload, scheme: str,
                  params: ExperimentParams, samples: Optional[List[int]] = None):
    """Replay one lifecycle scenario under one scheme.

    Returns ``(result, machine)``.  Mirrors
    :func:`~repro.experiments.runner.simulate_run`'s machine
    construction so verify/batch semantics are identical everywhere.
    """
    config = SystemConfig(
        num_cores=workload.num_cores,
        pom_tlb=PomTlbConfig(size_bytes=params.pom_size_bytes))
    streams = workload.streams
    if params.batch and HAS_NUMPY and not workload.events:
        streams = [stream if getattr(stream, "columns", None) is not None
                   else pack_stream(stream, validated=True)
                   for stream in streams]
    events = workload.events
    if samples is not None:
        events = [_Recorded(e, samples) if e.kind == "destroy_vm" else e
                  for e in events]
    machine = Machine(config, scheme=scheme,
                      thp_fractions=workload.thp_fractions,
                      seed=params.seed,
                      verify=params.verify or None,
                      batch=params.batch)
    result = machine.run(
        streams,
        warmup_references=workload.warmup_by_core
        or workload.warmup_references,
        events=events)
    return result, machine


def churn_study(params: Optional[ExperimentParams] = None,
                benchmarks: Iterable[str] = DEFAULT_CHURN_MIX,
                generations: int = 5,
                schemes: Iterable[str] = ALL_SCHEMES) -> Report:
    """Consolidation churn: every VM slot reboots ``generations`` times.

    Each teardown is a full ``destroy_vm`` — invalidate everywhere, purge
    walkers, reclaim frames — so the study exercises the reclamation path
    as hard as the translation path.  ``mem_final`` must be 0 (every
    guest destroyed) and ``mem_peak`` bounds the host's working set.
    """
    params = params or ExperimentParams()
    mix = list(benchmarks)
    workload = build_churn(mix, generations=generations,
                           refs_per_core=params.refs_per_core,
                           seed=params.seed, scale=params.scale)
    report = Report(
        title=f"Lifecycle churn: {len(mix)} slots x {generations} "
              f"generations ({', '.join(mix)})",
        headers=("scheme", "l2_tlb_misses", "page_walks",
                 "cycles_per_miss", "mem_final_bytes", "mem_peak_bytes"))
    for scheme in schemes:
        samples: List[int] = []
        result, machine = _run_scenario(workload, scheme, params, samples)
        memory = machine.host.memory
        report.add_row(scheme, result.l2_tlb_misses, result.page_walks,
                       result.avg_penalty_per_miss,
                       memory.bytes_allocated, memory.peak_bytes)
        if samples and samples[-1] != 0:
            report.add_note(f"WARNING {scheme}: {samples[-1]} bytes still "
                            "allocated after the final teardown (leak)")
    report.add_note(f"{workload.boots} boots, {workload.teardowns} "
                    "teardowns; every teardown reclaims the guest's "
                    "frames, so mem_final_bytes must be 0")
    return report


def migration_study(params: Optional[ExperimentParams] = None,
                    benchmarks: Iterable[str] = DEFAULT_MIGRATION_MIX,
                    bursts: int = 4,
                    schemes: Iterable[str] = ALL_SCHEMES) -> Report:
    """Cold-migration bursts: guests destroyed and re-faulted mid-run.

    Each burst invalidates one VM everywhere mid-stream; its next
    reference re-boots the vm_id on reclaimed frames with a cold
    translation set.  Schemes that retain many VMs' translations (the
    POM-TLB pitch) re-warm from DRAM instead of page walks.
    """
    params = params or ExperimentParams()
    mix = list(benchmarks)
    workload = build_migration(mix, refs_per_core=params.refs_per_core,
                               seed=params.seed, scale=params.scale,
                               bursts=bursts)
    report = Report(
        title=f"Lifecycle migration: {len(mix)} VMs, "
              f"{len(workload.events)} bursts ({', '.join(mix)})",
        headers=("scheme", "l2_tlb_misses", "page_walks",
                 "cycles_per_miss", "walk_elimination"))
    for scheme in schemes:
        result, _machine = _run_scenario(workload, scheme, params)
        report.add_row(scheme, result.l2_tlb_misses, result.page_walks,
                       result.avg_penalty_per_miss,
                       result.walk_elimination)
    report.add_note("each burst cold-migrates one VM (destroy + re-fault "
                    "on reclaimed frames); misses include the re-warm "
                    "traffic")
    return report


def shootdown_sweep(params: Optional[ExperimentParams] = None,
                    benchmark: str = "gups",
                    rates: Iterable[float] = DEFAULT_RATES,
                    schemes: Iterable[str] = ALL_SCHEMES) -> Report:
    """Speedup vs. shootdown rate, every scheme (interference sweep).

    One guest, a periodic storm shooting down recently-touched pages at
    each rate; cells are Eq. 2-5 improvement % over the anchored
    baseline.  Rate 0 is the no-interference control (and the one row
    the batch engine may replay — results are bit-identical either way).
    """
    params = params or ExperimentParams()
    scheme_list = list(schemes)
    profile = get_profile(benchmark)
    anchor = profile.anchor(virtualized=params.virtualized)
    report = Report(
        title=f"Shootdown interference: {benchmark}, improvement % "
              "vs. storm rate",
        headers=("shootdowns_per_1k_refs",) + tuple(scheme_list))
    for rate in rates:
        workload = build_shootdown_storm(
            benchmark, num_cores=params.num_cores,
            refs_per_core=params.refs_per_core, seed=params.seed,
            scale=params.scale, per_1k_refs=rate)
        row = [rate]
        for scheme in scheme_list:
            result, _machine = _run_scenario(workload, scheme, params)
            perf = estimate(anchor, result.l2_tlb_misses,
                            result.penalty_cycles)
            row.append(perf.improvement_percent)
        report.add_row(*row)
    report.add_note("each storm tick shoots down the most recently "
                    "touched page (TLB-resident, both sizes dropped "
                    "end-to-end); rates are shootdowns per 1000 "
                    "measured references")
    return report
