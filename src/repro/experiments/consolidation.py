"""Section 5.2 study: multi-VM consolidation under each scheme.

Runs a mix of benchmarks, one VM per benchmark on its own core, through
the baseline and the POM-TLB, and reports how consolidation pressure
(several VMs' translation sets alive at once) is absorbed.  No Eq. 2-5
anchoring here — the VMs run different benchmarks, so the study reports
the raw simulator metrics the claim is about: page walks and per-miss
penalty.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..common.config import PomTlbConfig, SystemConfig
from ..core.system import Machine
from ..workloads.consolidation import build_consolidation
from .report import Report
from .runner import ExperimentParams

DEFAULT_MIX = ("gcc", "mcf", "canneal", "gups")


def consolidation_study(params: Optional[ExperimentParams] = None,
                        benchmarks: Iterable[str] = DEFAULT_MIX,
                        schemes: Iterable[str] = ("baseline", "pom")
                        ) -> Report:
    """One VM per benchmark, one core per VM, every scheme compared."""
    params = params or ExperimentParams()
    mix = list(benchmarks)
    workload = build_consolidation(
        mix, cores_per_vm=1, refs_per_core=params.refs_per_core,
        seed=params.seed, scale=params.scale)
    thp = {a.vm_id: a.profile.thp_large_fraction
           for a in workload.assignments}
    config = SystemConfig(
        num_cores=len(mix),
        pom_tlb=PomTlbConfig(size_bytes=params.pom_size_bytes))
    report = Report(
        title=f"Section 5.2: {len(mix)}-VM consolidation "
              f"({', '.join(mix)})",
        headers=("scheme", "l2_tlb_misses", "page_walks",
                 "cycles_per_miss", "walk_elimination"))
    for scheme in schemes:
        machine = Machine(config, scheme=scheme, thp_fractions=thp,
                          seed=params.seed)
        result = machine.run(workload.streams,
                             warmup_references=workload.warmup_by_core)
        report.add_row(scheme, result.l2_tlb_misses, result.page_walks,
                       result.avg_penalty_per_miss,
                       result.walk_elimination)
    report.add_note("each VM runs a different benchmark; the POM-TLB "
                    "retains every VM's translations at once (VM-ID "
                    "keyed), which SRAM TLBs cannot")
    return report
