"""Section 2.2 trade-off: the same 16 MB as L4 data cache vs L3 TLB.

The paper argues the die-stacked capacity saves more cycles as a very
large TLB than as yet another data-cache level, because a TLB hit can
replace up to 24 dependent memory references and translation is
blocking.  This experiment runs three machines per benchmark —

* plain baseline (page walks, no stacked DRAM use),
* baseline + 16 MB stacked L4 **data** cache, and
* POM-TLB using the same 16 MB,

— and reports the cycles each alternative saves per kilo-reference,
split into translation savings and data-access savings.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List

from ..workloads.suite import BENCHMARKS
from .report import Report
from .runner import SuiteRunner


def _benchmarks(subset: Iterable[str]) -> List[str]:
    return list(subset) or list(BENCHMARKS)


def tradeoff_l4_vs_tlb(runner: SuiteRunner,
                       benchmarks: Iterable[str] = ()) -> Report:
    """Cycles saved per 1000 references: L4 data cache vs POM-TLB."""
    report = Report(
        title="Section 2.2 trade-off: 16MB as L4 data cache vs L3 TLB "
              "(cycles saved per kilo-reference)",
        headers=("benchmark", "l4_data_saving", "pom_translation_saving",
                 "winner"))
    l4_params = dataclasses.replace(
        runner.params, l4_data_cache_bytes=runner.params.pom_size_bytes)
    for name in _benchmarks(benchmarks):
        base = runner.run(name, "baseline")
        with_l4 = runner.run(name, "baseline", l4_params)
        pom = runner.run(name, "pom")
        refs = max(1, base.result.references)
        data_saving = 1000.0 * (base.result.data_cycles
                                - with_l4.result.data_cycles) / refs
        translation_saving = 1000.0 * (base.result.penalty_cycles
                                       - pom.result.penalty_cycles) / refs
        winner = ("pom_tlb" if translation_saving > data_saving
                  else "l4_cache")
        report.add_row(name, data_saving, translation_saving, winner)
    pom_wins = sum(1 for row in report.rows if row[3] == "pom_tlb")
    report.add_note(f"POM-TLB wins on {pom_wins}/{len(report.rows)} "
                    "benchmarks (the paper's Section 2.2 argument)")
    return report
