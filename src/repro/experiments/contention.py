"""Channel-contention study (paper Section 2.2, "Channel Contention").

The paper's claim: putting the POM-TLB on its **own** stacked-DRAM
channel keeps translation latency flat no matter how hard data traffic
hammers memory — translation requests are blocking, so queueing behind
data bursts would erase the design's latency win.

This study drives the command-level FR-FCFS scheduler with two synthetic
request streams — data traffic at a swept injection rate and POM-TLB
traffic at a fixed rate — under two topologies:

* **shared**: both streams on one channel;
* **dedicated**: the TLB stream on its own channel (the paper's design).

and reports the TLB stream's mean latency under each.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..common.config import stacked_dram_timing
from ..common.rng import make_rng
from ..dram.scheduler import CommandScheduler, Request, summarize_latencies
from .report import Report


def _make_stream(tag: str, count: int, interval: float, footprint_rows: int,
                 seed: int, locality: float = 0.0) -> List[Request]:
    """Poisson-ish request stream over a row footprint.

    ``locality`` is the probability of staying in the previous row
    (row-buffer-friendly traffic); the rest scatter uniformly.
    """
    rng = make_rng(seed, f"contention:{tag}")
    requests: List[Request] = []
    arrival = 0.0
    row = 0
    for _ in range(count):
        arrival += rng.expovariate(1.0 / interval) if interval > 0 else 1
        if rng.random() >= locality:
            row = rng.randrange(footprint_rows)
        paddr = row * 2048 + rng.randrange(32) * 64
        requests.append(Request(paddr=paddr, arrival=int(arrival),
                                is_write=rng.random() < 0.3, tag=tag))
    return requests


def channel_contention(data_intervals: Iterable[float] = (96, 64, 48, 32),
                       tlb_interval: float = 24.0,
                       requests_per_stream: int = 2000,
                       seed: int = 7) -> Report:
    """TLB-request latency, shared vs dedicated channel, under data load.

    ``data_intervals`` sweeps the data stream's mean inter-arrival gap in
    bus cycles (smaller = heavier load).
    """
    report = Report(
        title="Section 2.2: channel contention — POM-TLB latency "
              "(bus cycles) vs data load",
        headers=("data_interval", "shared_channel", "dedicated_channel",
                 "slowdown"))
    for interval in data_intervals:
        data = _make_stream("data", requests_per_stream, interval,
                            footprint_rows=4096, seed=seed)
        tlb_shared = _make_stream("tlb", requests_per_stream // 2,
                                  tlb_interval, footprint_rows=512,
                                  seed=seed + 1, locality=0.5)
        shared = CommandScheduler(stacked_dram_timing())
        shared.run(data + tlb_shared)
        shared_latency = summarize_latencies(tlb_shared, "tlb").mean

        tlb_alone = _make_stream("tlb", requests_per_stream // 2,
                                 tlb_interval, footprint_rows=512,
                                 seed=seed + 1, locality=0.5)
        dedicated = CommandScheduler(stacked_dram_timing())
        dedicated.run(tlb_alone)
        dedicated_latency = summarize_latencies(tlb_alone, "tlb").mean

        slowdown = (shared_latency / dedicated_latency
                    if dedicated_latency else 0.0)
        report.add_row(interval, shared_latency, dedicated_latency, slowdown)
    report.add_note("dedicated-channel latency is load-independent by "
                    "construction; shared-channel latency grows as data "
                    "traffic densifies — the paper's argument for a "
                    "dedicated POM-TLB channel")
    return report
