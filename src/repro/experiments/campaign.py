"""Full evaluation campaign: regenerate every table and figure in one go.

``run_all`` executes the complete paper evaluation — Tables 1-2 and
Figures 1-4 and 8-12 plus the Section 4.6 sensitivity studies.  The
campaign is *resilient* (:mod:`repro.resilience`): the full set of
(benchmark, scheme, params) simulations is enumerated up front
(:func:`campaign_requests`), executed serially or in a process pool
with per-run timeouts and retry-with-backoff, and optionally persisted
to a checkpoint store so an interrupted campaign resumes without
re-simulating finished work.  Runs that exhaust their retries are
recorded as structured failures: the figures annotate the missing cells,
a failure summary table closes the report, and the CLI exits non-zero.

The rendered text is what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import dataclasses
import sys
import time
from typing import Iterable, List, Optional, TextIO

from ..common import addr
from ..faults import NO_FAULTS, FaultPlan
from ..obs import NO_TELEMETRY, NULL_TRACER
from ..resilience import (CheckpointStore, RetryPolicy, RunRequest,
                          execute_runs, run_key)
from ..workloads import shm as workload_shm
from ..workloads.cache import WorkloadCache, params_workload_key
from ..workloads.packed import decode_container, encode_workload
from ..workloads.suite import BENCHMARKS, get_profile
from ..workloads.trace import validate_stream
from . import figures, tables
from .report import Report
from .runner import ExperimentParams, ObsFactory, SuiteRunner
from .schedule import cost_function, predicted_costs

#: Subset used for the (expensive) sensitivity sweeps; spans the
#: pattern space: pointer-chase, random, scan, grid, graph, mixed.
SENSITIVITY_BENCHMARKS = ("astar", "gups", "mcf", "lbm",
                          "ccomponent", "streamcluster")


def _progress_write(stream: TextIO, line: str) -> None:
    """Emit one progress record as a single flushed ``write()``.

    Progress lines land on a stream that pooled completions hammer in
    quick succession; one write per record (never two for text +
    newline) plus an immediate flush is what keeps ``# [k/N]`` lines
    from shearing mid-line when stderr is shared or block-buffered.
    """
    stream.write(line)
    stream.flush()


class CampaignResult(List[Report]):
    """The campaign's reports, plus its resilience bookkeeping.

    A list subclass so existing callers that iterate reports keep
    working; the extra attributes say how the campaign went:

    * ``failures`` — runs that exhausted their attempts (empty = clean);
    * ``simulated`` — fresh simulations actually executed;
    * ``restored`` — runs satisfied from the checkpoint store.
    """

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.failures: List[object] = []
        self.simulated = 0
        self.restored = 0


def campaign_requests(params: ExperimentParams,
                      benchmarks: Iterable[str] = (),
                      include_sensitivity: bool = True) -> List[RunRequest]:
    """Every simulation the campaign's figures will ask for.

    Kept in lockstep with the ``run_all`` emission list: a test asserts
    that rendering the campaign from these runs triggers zero additional
    simulations, which is what makes checkpoint-resume exact.
    """
    names = list(benchmarks) or list(BENCHMARKS)
    requests: List[RunRequest] = []

    def need(benchmark: str, scheme: str,
             run_params: ExperimentParams) -> None:
        requests.append(RunRequest(benchmark, scheme, run_params))

    for name in names:                       # fig8 + fig9/10/11 (pom)
        for scheme in figures.FIG8_SCHEMES:
            need(name, scheme, params)
    native = dataclasses.replace(params, virtualized=False)
    for name in names:                       # fig2 (+ fig3 virtualized half)
        need(name, "baseline", params)
        need(name, "baseline", native)       # fig3 native half
    uncached = dataclasses.replace(params, cache_tlb_entries=False)
    for name in names:                       # fig12 ablation
        need(name, "pom", uncached)
    if include_sensitivity:
        sens = [b for b in SENSITIVITY_BENCHMARKS if b in names]
        for capacity in (8, 16, 32):         # Section 4.6 capacity sweep
            capacity_params = dataclasses.replace(
                params, pom_size_bytes=capacity * addr.MiB)
            for name in sens:
                need(name, "pom", capacity_params)
        for cores in (4, 8):                 # Section 4.6 core sweep
            core_params = dataclasses.replace(params, num_cores=cores)
            for name in sens:
                need(name, "pom", core_params)
    return requests


class _CompiledWorkloads:
    """The campaign's workload compilation state (tentpole of PR 4).

    Each distinct (benchmark, num_cores, refs_per_core, seed, scale)
    workload is compiled to the packed columnar format exactly once in
    the campaign parent — from the on-disk cache when one is configured,
    generated otherwise — instead of once per scheme inside every run.
    Pooled workers attach the compiled bytes through shared memory (one
    physical copy for the whole pool) or mmap the cache file; serial
    runs replay the parent's containers directly.
    """

    def __init__(self, cache_dir: str, parallel: bool) -> None:
        self.cache = WorkloadCache(cache_dir) if cache_dir else None
        self.parallel = parallel
        self.containers = {}   # workload key -> DecodedContainer
        self.refs = {}         # workload key -> WorkloadRef
        self.arena = (workload_shm.WorkloadArena()
                      if parallel and workload_shm.shm_available() else None)
        self.compiled = 0
        self.cache_hits = 0

    def compile(self, requests):
        """Compile every distinct workload; returns requests with refs."""
        for request in requests:
            key = params_workload_key(request.benchmark, request.params)
            if key in self.containers:
                continue
            self._compile_one(key, request)
        if not self.parallel:
            return requests
        return [dataclasses.replace(
                    request, workload_ref=self.refs.get(
                        params_workload_key(request.benchmark,
                                            request.params)))
                for request in requests]

    def _compile_one(self, key: str, request) -> None:
        params = request.params
        blob = None
        if self.cache is not None:
            container, hit = self.cache.get_or_compile(request.benchmark,
                                                       params)
            self.cache_hits += hit
            self.compiled += not hit
            path = self.cache.entry_path(key)
        else:
            profile = get_profile(request.benchmark)
            workload = profile.build(num_cores=params.num_cores,
                                     refs_per_core=params.refs_per_core,
                                     seed=params.seed, scale=params.scale)
            for stream in workload.streams:
                validate_stream(stream)
            blob = encode_workload(workload, validated=True)
            container = decode_container(blob)
            self.compiled += 1
            path = ""
        self.containers[key] = container
        if self.arena is not None:
            if blob is None:
                with open(path, "rb") as handle:
                    blob = handle.read()
            name = self.arena.publish(key, blob)
            self.refs[key] = workload_shm.WorkloadRef(
                benchmark=request.benchmark, key=key, path=path,
                shm_name=name)
        elif self.parallel and path:
            self.refs[key] = workload_shm.WorkloadRef(
                benchmark=request.benchmark, key=key, path=path)

    def workload(self, request):
        """A fresh replay workload for one serial run, or None."""
        key = params_workload_key(request.benchmark, request.params)
        container = self.containers.get(key)
        if container is None:
            return None
        return container.workload()

    def release(self) -> None:
        """Unlink shared segments and drop container buffers."""
        if self.arena is not None:
            self.arena.release()
            self.arena = None
        for container in self.containers.values():
            container.backing.close()
        self.containers = {}
        self.refs = {}


def run_all(params: Optional[ExperimentParams] = None,
            benchmarks: Iterable[str] = (),
            out: TextIO = sys.stdout,
            include_sensitivity: bool = True,
            obs_factory: Optional[ObsFactory] = None,
            checkpoint_path: str = "",
            resume: bool = False,
            faults: FaultPlan = NO_FAULTS,
            progress: Optional[TextIO] = None,
            workload_cache: str = "",
            share_workloads: bool = True,
            telemetry=NO_TELEMETRY) -> CampaignResult:
    """Run the whole campaign, streaming rendered reports to ``out``.

    ``KeyboardInterrupt`` propagates to the caller after worker teardown;
    with a checkpoint configured, everything finished so far is already
    on disk, so the same command with ``resume=True`` picks up where the
    interruption hit.  Per-run progress goes to ``progress`` (default
    stderr); the report stream on ``out`` stays byte-deterministic.

    ``workload_cache`` names a directory for the content-addressed
    packed workload cache (``--workload-cache``); a second campaign
    with the same workload parameters replays from it without
    regenerating a single trace.  ``share_workloads=False`` disables
    workload compilation entirely (every run regenerates its own
    streams) — the status-quo comparator the throughput benchmark and
    equivalence tests measure against.

    ``telemetry`` (default :data:`repro.obs.NO_TELEMETRY`) aggregates
    campaign-wide metrics, streams NDJSON status events, and writes the
    Prometheus/dashboard artifacts on completion — see
    :mod:`repro.obs.telemetry`.  Telemetry writes only to its own files
    and the progress stream; the report on ``out`` stays byte-identical
    with telemetry on or off.
    """
    params = params or ExperimentParams.from_env()
    progress = progress if progress is not None else sys.stderr
    parallel = params.workers > 1
    runner = SuiteRunner(params,
                         obs_factory=None if parallel else obs_factory)
    names = list(benchmarks) or list(BENCHMARKS)
    requests = campaign_requests(params, names, include_sensitivity)

    checkpoint = None
    if checkpoint_path:
        checkpoint = CheckpointStore(checkpoint_path, faults=faults,
                                     load=resume)
        if resume and checkpoint.skipped_lines:
            _progress_write(progress,
                            f"# checkpoint: skipped "
                            f"{checkpoint.skipped_lines} damaged line(s)\n")

    control_obs = obs_factory("campaign", "control") if obs_factory else None
    tracer = control_obs.tracer if control_obs is not None else NULL_TRACER

    retry = RetryPolicy(max_retries=params.max_retries,
                        base_delay_s=params.retry_backoff_s,
                        seed=params.seed)
    total = len(requests)
    done = {"count": 0}

    def on_outcome(outcome) -> None:
        done["count"] += 1
        state = ("restored" if outcome.restored
                 else "ok" if outcome.ok
                 else f"FAILED ({outcome.failure.error.type})")
        _progress_write(progress,
                        f"# [{done['count']}/{total}] "
                        f"{outcome.request.label} {state}\n")

    cost = (cost_function()
            if parallel or telemetry.enabled else None)
    if telemetry.enabled:
        # The LPT accuracy tracker needs the scheduler's prediction for
        # every run, serial campaigns included — calibration is what
        # adaptive sweeps will feed on.  Keys collapse duplicate
        # requests (the sensitivity sweep shares points with the main
        # grid) exactly like the executor does, so runs_planned equals
        # completed + failed + restored at campaign end.
        predictions = predicted_costs(
            requests, cost,
            key=lambda r: run_key(r.benchmark, r.scheme, r.params))
        telemetry.campaign_start(len(predictions), params.workers)
        for key, predicted in predictions.items():
            telemetry.predict(key, predicted)

    workloads = (_CompiledWorkloads(workload_cache, parallel)
                 if share_workloads else None)
    try:
        return _run_all_inner(params, names, requests, out, progress,
                              include_sensitivity, runner, workloads,
                              simulate_parallel=parallel,
                              checkpoint=checkpoint, retry=retry,
                              faults=faults, tracer=tracer,
                              on_outcome=on_outcome, cost=cost,
                              telemetry=telemetry)
    finally:
        # Close the status stream even when the campaign dies mid-way —
        # a tailing `pomtlb top` then sees a complete final line.
        telemetry.close()


def _run_all_inner(params, names, requests, out, progress,
                   include_sensitivity, runner, workloads, *,
                   simulate_parallel, checkpoint, retry, faults, tracer,
                   on_outcome, cost, telemetry) -> CampaignResult:
    parallel = simulate_parallel
    # Monotonic, not wall clock: an NTP step mid-campaign must not
    # corrupt the finishing time (or any duration derived from it).
    started = time.monotonic()
    try:
        if workloads is not None:
            requests = workloads.compile(requests)
            if workloads.cache is not None:
                stats = workloads.cache.stats()
                hits, misses = stats["hits"], stats["misses"]
                rejected = stats["rejected"]
                cache_note = (f" (cache: {hits} hits, {misses} misses"
                              + (f", {rejected} rejected" if rejected
                                 else "") + ")")
            else:
                # No cache directory: every distinct workload was
                # compiled fresh, which the telemetry reconciliation
                # counts as a miss (hits + misses == workloads needed).
                hits, misses, rejected = 0, workloads.compiled, 0
                cache_note = ""
            _progress_write(progress,
                            f"# workloads: {workloads.compiled} compiled, "
                            f"{workloads.cache_hits} cached{cache_note}\n")
            if telemetry.enabled:
                telemetry.workloads_compiled(workloads.compiled, hits,
                                             misses, rejected)

        simulate = None
        if not parallel:
            def simulate(request, fault):  # in-process: keep obs support
                from .runner import simulate_run
                obs = (runner.obs_factory(request.benchmark, request.scheme)
                       if runner.obs_factory else None)
                workload = (workloads.workload(request)
                            if workloads is not None else None)
                return simulate_run(request.benchmark, request.scheme,
                                    request.params, fault=fault, obs=obs,
                                    workload=workload)

        outcomes = execute_runs(requests,
                                workers=params.workers,
                                timeout_s=params.run_timeout_s,
                                retry=retry,
                                faults=faults,
                                checkpoint=checkpoint,
                                tracer=tracer,
                                on_outcome=on_outcome,
                                simulate=simulate,
                                cost=cost if parallel else None,
                                telemetry=telemetry)
    finally:
        if workloads is not None:
            workloads.release()

    result = CampaignResult()
    for outcome in outcomes:
        if outcome.ok:
            runner.install(outcome.run, outcome.request.params)
            if outcome.restored:
                result.restored += 1
            else:
                result.simulated += 1
        else:
            runner.record_failure(outcome.request.benchmark,
                                  outcome.request.scheme,
                                  outcome.failure, outcome.request.params)
            result.failures.append(outcome.failure)

    def emit(report: Report) -> None:
        result.append(report)
        out.write(report.render())
        out.write("\n\n")
        out.flush()

    # Only simulation-relevant fields go into the header: execution
    # knobs (workers, timeouts, verify, batch engine) can never change
    # the report, so two campaigns that differ only in how they ran
    # stay byte-identical.
    sim_params = ", ".join(f"{name}={value!r}" for name, value
                           in params.checkpoint_fields().items())
    out.write(f"# POM-TLB evaluation campaign\n"
              f"# params: {sim_params}\n\n")
    emit(tables.table1(params.system_config()))
    emit(tables.table2())
    emit(figures.fig1_walk_steps())
    emit(figures.fig4_sram_latency())
    emit(figures.fig8_performance(runner, names))
    emit(figures.fig9_hit_ratio(runner, names))
    emit(figures.fig10_predictors(runner, names))
    emit(figures.fig11_row_buffer(runner, names))
    emit(figures.fig2_translation_cycles(runner, names))
    emit(figures.fig3_virt_native_ratio(runner, names))
    emit(figures.fig12_caching_ablation(runner, names))
    if include_sensitivity:
        sens = [b for b in SENSITIVITY_BENCHMARKS if b in names]
        emit(figures.sensitivity_capacity(runner, sens))
        emit(figures.sensitivity_cores(runner, sens))
    if result.failures:
        emit(_failure_summary(result.failures))
    # Timing goes to the progress stream, not the report: the report
    # must be byte-identical run to run for a fixed seed.
    _progress_write(progress,
                    f"# campaign finished in "
                    f"{time.monotonic() - started:.0f}s\n")
    out.flush()
    result.simulated += runner.simulations
    if telemetry.enabled:
        telemetry.campaign_end(simulated=result.simulated)
        for path in telemetry.export():
            _progress_write(progress, f"# telemetry: wrote {path}\n")
    return result


def _failure_summary(failures) -> Report:
    """The closing table a degraded campaign renders (and CLI exit 1)."""
    report = Report(title="Campaign failures",
                    headers=("benchmark", "scheme", "attempts", "error"))
    for failure in failures:
        report.add_row(failure.benchmark, failure.scheme, failure.attempts,
                       f"{failure.error.type}: {failure.error.message}")
    report.add_note("cells for these runs are rendered as n/a; rerun with "
                    "--checkpoint/--resume to retry only the failed runs")
    return report
