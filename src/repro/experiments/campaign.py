"""Full evaluation campaign: regenerate every table and figure in one go.

``run_all`` executes the complete paper evaluation — Tables 1-2 and
Figures 1-4 and 8-12 plus the Section 4.6 sensitivity studies — sharing
one memoised :class:`SuiteRunner` so each (benchmark, scheme, params)
simulation happens exactly once.  The rendered text is what
EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import sys
import time
from typing import Iterable, List, Optional, TextIO

from ..workloads.suite import BENCHMARKS
from . import figures, tables
from .report import Report
from .runner import ExperimentParams, ObsFactory, SuiteRunner

#: Subset used for the (expensive) sensitivity sweeps; spans the
#: pattern space: pointer-chase, random, scan, grid, graph, mixed.
SENSITIVITY_BENCHMARKS = ("astar", "gups", "mcf", "lbm",
                          "ccomponent", "streamcluster")


def run_all(params: Optional[ExperimentParams] = None,
            benchmarks: Iterable[str] = (),
            out: TextIO = sys.stdout,
            include_sensitivity: bool = True,
            obs_factory: Optional[ObsFactory] = None) -> List[Report]:
    """Run the whole campaign, streaming rendered reports to ``out``."""
    params = params or ExperimentParams.from_env()
    runner = SuiteRunner(params, obs_factory=obs_factory)
    names = list(benchmarks) or list(BENCHMARKS)
    reports: List[Report] = []

    def emit(report: Report) -> None:
        reports.append(report)
        out.write(report.render())
        out.write("\n\n")
        out.flush()

    started = time.time()
    out.write(f"# POM-TLB evaluation campaign\n"
              f"# params: {params}\n\n")
    emit(tables.table1(params.system_config()))
    emit(tables.table2())
    emit(figures.fig1_walk_steps())
    emit(figures.fig4_sram_latency())
    emit(figures.fig8_performance(runner, names))
    emit(figures.fig9_hit_ratio(runner, names))
    emit(figures.fig10_predictors(runner, names))
    emit(figures.fig11_row_buffer(runner, names))
    emit(figures.fig2_translation_cycles(runner, names))
    emit(figures.fig3_virt_native_ratio(runner, names))
    emit(figures.fig12_caching_ablation(runner, names))
    if include_sensitivity:
        sens = [b for b in SENSITIVITY_BENCHMARKS if b in names]
        emit(figures.sensitivity_capacity(runner, sens))
        emit(figures.sensitivity_cores(runner, sens))
    out.write(f"# campaign finished in {time.time() - started:.0f}s\n")
    out.flush()
    return reports
