"""Experiment runner: one place that turns (benchmark, scheme) into results.

Every figure driver goes through :class:`SuiteRunner` so that workload
generation, machine construction, warmup policy and the Eq. 2-5 anchor
application are identical across figures — and so results are memoised
when one harness regenerates several figures from the same runs.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..common import addr
from ..common.config import PomTlbConfig, PredictorConfig, SystemConfig
from ..common.errors import ConfigError, RunFailed
from ..core.batch import HAS_NUMPY, resolve_batch_flag
from ..core.perfmodel import PerformanceEstimate, estimate
from ..core.system import Machine, SimulationResult
from ..faults import RaiseAtTranslation, corrupt_streams
from ..obs import Observability
from ..workloads.packed import pack_stream
from ..workloads.suite import BENCHMARKS, get_profile
from ..workloads.trace import validate_stream

#: Builds the per-run Observability for (benchmark, scheme); None means
#: the Machine default (histograms on, tracing off).
ObsFactory = Callable[[str, str], Optional[Observability]]

#: ExperimentParams fields that steer *execution*, not simulation: they
#: can never change a result, so the checkpoint key excludes them.
EXECUTION_FIELDS = ("workers", "run_timeout_s", "max_retries",
                    "retry_backoff_s", "verify", "batch")


@dataclass(frozen=True)
class ExperimentParams:
    """Knobs shared by every experiment.

    The defaults reproduce the paper's 8-core configuration at a
    footprint scale tractable for pure-Python simulation.  Environment
    variables ``POMTLB_CORES``, ``POMTLB_REFS``, ``POMTLB_SCALE`` and
    ``POMTLB_SEED`` override them, which is how the benchmark harness is
    shrunk or grown without touching code.
    """

    num_cores: int = 8
    refs_per_core: int = 6000
    scale: float = 1.0
    seed: int = 42
    pom_size_bytes: int = 16 * addr.MiB
    cache_tlb_entries: bool = True
    virtualized: bool = True
    # Extension / ablation knobs (paper Sections 2.2, 5.1, footnote 2):
    l4_data_cache_bytes: int = 0
    tlb_priority: bool = False
    predictor_entries: int = 512
    size_counter_bits: int = 1
    bypass_enabled: bool = True
    tlb_prefetch: bool = False
    # Execution knobs (resilient campaign engine; never affect results):
    #: process-pool width for campaign execution; <= 1 runs serially
    workers: int = 0
    #: per-run wall-clock budget in seconds (0 = unlimited; enforced
    #: only under process isolation, i.e. workers >= 2)
    run_timeout_s: float = 0.0
    #: additional attempts after a transient failure
    max_retries: int = 2
    #: base exponential-backoff delay between attempts, seconds
    retry_backoff_s: float = 0.25
    #: arm the consistency audit (:mod:`repro.verify`) during each run;
    #: verified runs are bit-identical to unverified ones, so this is an
    #: execution knob and never enters the checkpoint key
    verify: bool = False
    #: replay through the vectorized batch engine (:mod:`repro.core.batch`)
    #: when it applies; batch and scalar replays are bit-identical, so
    #: this too is an execution knob (``--no-batch`` / ``POMTLB_BATCH=0``
    #: force the scalar loop, e.g. for differential debugging)
    batch: bool = True

    @classmethod
    def from_env(cls, **overrides) -> "ExperimentParams":
        """Build params from the environment, then apply ``overrides``.

        A malformed ``POMTLB_*`` value raises
        :class:`~repro.common.errors.ConfigError` naming the variable
        and the offending text (the CLI maps that to exit code 2).
        """
        env = {
            "num_cores": _env_value("POMTLB_CORES", 8, int),
            "refs_per_core": _env_value("POMTLB_REFS", 6000, int),
            "scale": _env_value("POMTLB_SCALE", 1.0, float),
            "seed": _env_value("POMTLB_SEED", 42, int),
            "workers": _env_value("POMTLB_WORKERS", 0, int),
            "batch": resolve_batch_flag(),
        }
        env.update(overrides)
        return cls(**env)

    def checkpoint_fields(self) -> Dict[str, object]:
        """Simulation-relevant fields, for the checkpoint content hash.

        Execution knobs (:data:`EXECUTION_FIELDS`) are excluded: running
        the same campaign with a different worker count or timeout must
        still hit the checkpoint.
        """
        fields = dataclasses.asdict(self)
        for name in EXECUTION_FIELDS:
            fields.pop(name)
        return fields

    def system_config(self) -> SystemConfig:
        return SystemConfig(
            num_cores=self.num_cores,
            pom_tlb=PomTlbConfig(size_bytes=self.pom_size_bytes),
            predictor=PredictorConfig(
                entries=self.predictor_entries,
                size_counter_bits=self.size_counter_bits,
                bypass_enabled=self.bypass_enabled),
            cache_tlb_entries=self.cache_tlb_entries,
            virtualized=self.virtualized,
            l4_data_cache_bytes=self.l4_data_cache_bytes,
            tlb_prefetch=self.tlb_prefetch,
        )


def _env_value(name: str, default, convert):
    """Read one ``POMTLB_*`` variable; ConfigError names bad values."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return convert(raw)
    except ValueError:
        raise ConfigError(
            f"environment variable {name}={raw!r} is not a valid "
            f"{convert.__name__}") from None


def simulate_run(benchmark: str, scheme: str, params: ExperimentParams,
                 fault=None, obs: Optional[Observability] = None,
                 workload=None) -> "BenchmarkRun":
    """Simulate one (benchmark, scheme) pair from scratch.

    The single simulation entry point shared by the in-process runner
    and campaign worker processes, so results cannot depend on *where* a
    run executes.  ``fault`` is a ``(kind, n)`` directive from
    :class:`~repro.faults.FaultPlan` (``raise`` / ``corrupt-trace``;
    process-level kinds are handled by the executor).

    ``workload`` replays a pre-compiled workload (a packed cache /
    shared-memory attach, see :mod:`repro.workloads.cache`) instead of
    regenerating one; results are bit-identical either way.  Streams
    whose ``validated`` flag is set (a trusted cache hit) skip
    re-validation — any mutation, including the ``corrupt-trace``
    fault, clears the flag, so damage is still caught.
    """
    profile = get_profile(benchmark)
    if workload is None:
        workload = profile.build(num_cores=params.num_cores,
                                 refs_per_core=params.refs_per_core,
                                 seed=params.seed, scale=params.scale)
    if fault is not None and fault[0] == "corrupt-trace":
        corrupt_streams(workload.streams)
    for stream in workload.streams:
        if not getattr(stream, "validated", False):
            validate_stream(stream)
    machine_faults = (RaiseAtTranslation(fault[1])
                      if fault is not None and fault[0] == "raise" else None)
    streams = workload.streams
    if params.batch and HAS_NUMPY:
        # The batch engine consumes columnar streams; workload-cache
        # attaches already are packed, fresh builds are columnarised
        # here (validated just above, so the flag is trustworthy).
        # Packed and tuple streams replay bit-identically either way.
        streams = [stream if getattr(stream, "columns", None) is not None
                   else pack_stream(stream, validated=True)
                   for stream in streams]
    machine = Machine(params.system_config(), scheme=scheme,
                      thp_large_fraction=profile.thp_large_fraction,
                      seed=params.seed,
                      tlb_priority=params.tlb_priority,
                      obs=obs, faults=machine_faults,
                      verify=params.verify or None,
                      batch=params.batch)
    result = machine.run(
        streams,
        warmup_references=workload.warmup_by_core
        or workload.warmup_references)
    anchor = profile.anchor(virtualized=params.virtualized)
    perf = estimate(anchor, result.l2_tlb_misses, result.penalty_cycles)
    return BenchmarkRun(benchmark=benchmark, scheme=scheme,
                        result=result, performance=perf)


@dataclass
class BenchmarkRun:
    """Simulation result + anchored performance estimate for one run."""

    benchmark: str
    scheme: str
    result: SimulationResult
    performance: PerformanceEstimate

    @property
    def improvement_percent(self) -> float:
        return self.performance.improvement_percent


class SuiteRunner:
    """Runs suite benchmarks under schemes, memoising by configuration.

    The runner also carries the campaign's resilience state: runs the
    executor restored or computed are installed into the memo cache, and
    runs it gave up on are recorded in :attr:`failures` so a later
    ``run()`` raises :class:`~repro.common.errors.RunFailed` instead of
    silently re-simulating a run the campaign already declared dead.
    """

    def __init__(self, params: Optional[ExperimentParams] = None,
                 obs_factory: Optional[ObsFactory] = None) -> None:
        self.params = params or ExperimentParams()
        self.obs_factory = obs_factory
        self._cache: Dict[Tuple, BenchmarkRun] = {}
        #: (benchmark, scheme, params) -> RunFailure for exhausted runs
        self.failures: Dict[Tuple, object] = {}
        #: fresh simulations performed by this runner (cache misses)
        self.simulations = 0

    def run(self, benchmark: str, scheme: str,
            params: Optional[ExperimentParams] = None) -> BenchmarkRun:
        """Run one (benchmark, scheme) pair; cached per parameter set."""
        params = params or self.params
        key = (benchmark, scheme, params)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        failure = self.failures.get(key)
        if failure is not None:
            raise RunFailed(benchmark, scheme, failure.attempts,
                            f"{failure.error.type}: {failure.error.message}")
        obs = self.obs_factory(benchmark, scheme) if self.obs_factory else None
        run = simulate_run(benchmark, scheme, params, obs=obs)
        self.simulations += 1
        self._cache[key] = run
        return run

    def install(self, run: BenchmarkRun,
                params: Optional[ExperimentParams] = None,
                simulated: bool = False) -> None:
        """Adopt an externally computed run (worker process / checkpoint)."""
        params = params or self.params
        self._cache[(run.benchmark, run.scheme, params)] = run
        if simulated:
            self.simulations += 1

    def record_failure(self, benchmark: str, scheme: str, failure,
                       params: Optional[ExperimentParams] = None) -> None:
        """Mark a pair as failed; ``run()`` raises RunFailed for it."""
        params = params or self.params
        self.failures[(benchmark, scheme, params)] = failure

    def run_suite(self, scheme: str, benchmarks: Iterable[str] = (),
                  params: Optional[ExperimentParams] = None
                  ) -> List[BenchmarkRun]:
        """Run every benchmark (or a subset) under one scheme."""
        names = list(benchmarks) or BENCHMARKS
        return [self.run(name, scheme, params) for name in names]
