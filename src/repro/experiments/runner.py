"""Experiment runner: one place that turns (benchmark, scheme) into results.

Every figure driver goes through :class:`SuiteRunner` so that workload
generation, machine construction, warmup policy and the Eq. 2-5 anchor
application are identical across figures — and so results are memoised
when one harness regenerates several figures from the same runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..common import addr
from ..common.config import PomTlbConfig, PredictorConfig, SystemConfig
from ..core.perfmodel import PerformanceEstimate, estimate
from ..core.system import Machine, SimulationResult
from ..obs import Observability
from ..workloads.suite import BENCHMARKS, get_profile

#: Builds the per-run Observability for (benchmark, scheme); None means
#: the Machine default (histograms on, tracing off).
ObsFactory = Callable[[str, str], Optional[Observability]]


@dataclass(frozen=True)
class ExperimentParams:
    """Knobs shared by every experiment.

    The defaults reproduce the paper's 8-core configuration at a
    footprint scale tractable for pure-Python simulation.  Environment
    variables ``POMTLB_CORES``, ``POMTLB_REFS``, ``POMTLB_SCALE`` and
    ``POMTLB_SEED`` override them, which is how the benchmark harness is
    shrunk or grown without touching code.
    """

    num_cores: int = 8
    refs_per_core: int = 6000
    scale: float = 1.0
    seed: int = 42
    pom_size_bytes: int = 16 * addr.MiB
    cache_tlb_entries: bool = True
    virtualized: bool = True
    # Extension / ablation knobs (paper Sections 2.2, 5.1, footnote 2):
    l4_data_cache_bytes: int = 0
    tlb_priority: bool = False
    predictor_entries: int = 512
    size_counter_bits: int = 1
    bypass_enabled: bool = True
    tlb_prefetch: bool = False

    @classmethod
    def from_env(cls, **overrides) -> "ExperimentParams":
        """Build params from the environment, then apply ``overrides``."""
        env = {
            "num_cores": int(os.environ.get("POMTLB_CORES", 8)),
            "refs_per_core": int(os.environ.get("POMTLB_REFS", 6000)),
            "scale": float(os.environ.get("POMTLB_SCALE", 1.0)),
            "seed": int(os.environ.get("POMTLB_SEED", 42)),
        }
        env.update(overrides)
        return cls(**env)

    def system_config(self) -> SystemConfig:
        return SystemConfig(
            num_cores=self.num_cores,
            pom_tlb=PomTlbConfig(size_bytes=self.pom_size_bytes),
            predictor=PredictorConfig(
                entries=self.predictor_entries,
                size_counter_bits=self.size_counter_bits,
                bypass_enabled=self.bypass_enabled),
            cache_tlb_entries=self.cache_tlb_entries,
            virtualized=self.virtualized,
            l4_data_cache_bytes=self.l4_data_cache_bytes,
            tlb_prefetch=self.tlb_prefetch,
        )


@dataclass
class BenchmarkRun:
    """Simulation result + anchored performance estimate for one run."""

    benchmark: str
    scheme: str
    result: SimulationResult
    performance: PerformanceEstimate

    @property
    def improvement_percent(self) -> float:
        return self.performance.improvement_percent


class SuiteRunner:
    """Runs suite benchmarks under schemes, memoising by configuration."""

    def __init__(self, params: Optional[ExperimentParams] = None,
                 obs_factory: Optional[ObsFactory] = None) -> None:
        self.params = params or ExperimentParams()
        self.obs_factory = obs_factory
        self._cache: Dict[Tuple, BenchmarkRun] = {}

    def run(self, benchmark: str, scheme: str,
            params: Optional[ExperimentParams] = None) -> BenchmarkRun:
        """Run one (benchmark, scheme) pair; cached per parameter set."""
        params = params or self.params
        key = (benchmark, scheme, params)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        profile = get_profile(benchmark)
        workload = profile.build(num_cores=params.num_cores,
                                 refs_per_core=params.refs_per_core,
                                 seed=params.seed, scale=params.scale)
        obs = self.obs_factory(benchmark, scheme) if self.obs_factory else None
        machine = Machine(params.system_config(), scheme=scheme,
                          thp_large_fraction=profile.thp_large_fraction,
                          seed=params.seed,
                          tlb_priority=params.tlb_priority,
                          obs=obs)
        result = machine.run(
            workload.streams,
            warmup_references=workload.warmup_by_core
            or workload.warmup_references)
        anchor = profile.anchor(virtualized=params.virtualized)
        perf = estimate(anchor, result.l2_tlb_misses, result.penalty_cycles)
        run = BenchmarkRun(benchmark=benchmark, scheme=scheme,
                           result=result, performance=perf)
        self._cache[key] = run
        return run

    def run_suite(self, scheme: str, benchmarks: Iterable[str] = (),
                  params: Optional[ExperimentParams] = None
                  ) -> List[BenchmarkRun]:
        """Run every benchmark (or a subset) under one scheme."""
        names = list(benchmarks) or BENCHMARKS
        return [self.run(name, scheme, params) for name in names]
