"""Plain-text and JSON rendering of experiment results.

Every figure driver returns a :class:`Report`: an ordered table plus
notes.  ``render()`` produces the aligned text the benchmark harness and
the examples print — the same rows/series the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

#: ``None`` marks a missing cell — a run the resilient campaign recorded
#: as failed; it renders as ``n/a`` and serialises as JSON ``null``.
Cell = Union[str, int, float, None]


def _format(cell: Cell) -> str:
    if cell is None:
        return "n/a"
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


@dataclass
class Report:
    """One regenerated table/figure as structured rows."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}")
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, header: str) -> List[Cell]:
        """All values of one column, by header name."""
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]

    def row(self, first_cell: Cell) -> Sequence[Cell]:
        """The first row whose leading cell equals ``first_cell``."""
        for row in self.rows:
            if row[0] == first_cell:
                return row
        raise KeyError(first_cell)

    def render(self) -> str:
        """Aligned plain-text table."""
        table = [list(map(_format, self.headers))]
        table.extend([_format(c) for c in row] for row in self.rows)
        widths = [max(len(row[col]) for row in table)
                  for col in range(len(self.headers))]
        lines = [self.title, "=" * len(self.title)]
        for number, row in enumerate(table):
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths)).rstrip())
            if number == 0:
                lines.append("  ".join("-" * width for width in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_bars(self, value_header: str, width: int = 40) -> str:
        """ASCII bar chart of one numeric column (terminal-friendly).

        Bars are scaled to the largest absolute value; negative values
        are marked with ``-`` glyphs so regressions stand out.
        """
        index = list(self.headers).index(value_header)
        values = [None if row[index] is None else float(row[index])
                  for row in self.rows]
        present = [v for v in values if v is not None]
        if not present:
            return self.title
        peak = max(abs(v) for v in present) or 1.0
        label_width = max(len(str(row[0])) for row in self.rows)
        lines = [self.title, "=" * len(self.title)]
        for row, value in zip(self.rows, values):
            if value is None:
                lines.append(f"{str(row[0]).ljust(label_width)}       n/a")
                continue
            length = round(abs(value) / peak * width)
            glyph = "#" if value >= 0 else "-"
            lines.append(f"{str(row[0]).ljust(label_width)}  "
                         f"{value:8.2f} {glyph * length}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable form: {title, headers, rows, notes}."""
        import json

        return json.dumps({
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }, indent=2)

    @classmethod
    def from_json(cls, payload: str) -> "Report":
        """Inverse of :meth:`to_json` (for archiving/diffing results)."""
        import json

        data = json.loads(payload)
        report = cls(title=data["title"], headers=tuple(data["headers"]))
        for row in data["rows"]:
            report.add_row(*row)
        for note in data["notes"]:
            report.add_note(note)
        return report

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
