"""``pomtlb profile``: where does the *simulator* spend wall-clock time?

Runs one benchmark under one scheme with a
:class:`~repro.obs.profiler.SelfTimeProfiler` wrapped around the major
component boundaries and renders the per-component self-time table.
This is the observability companion every optimisation PR should quote:
it tells us which simulated component costs host time, not which
simulated component costs simulated cycles.
"""

from __future__ import annotations

from time import perf_counter

from ..core.batch import HAS_NUMPY
from ..core.system import Machine
from ..obs.profiler import SelfTimeProfiler
from ..workloads.packed import pack_stream
from ..workloads.suite import get_profile
from .report import Report
from .runner import ExperimentParams


def profile_benchmark(params: ExperimentParams, benchmark: str,
                      scheme: str = "pom") -> Report:
    """Profile one simulation run; returns the self-time table."""
    profile = get_profile(benchmark)
    workload = profile.build(num_cores=params.num_cores,
                             refs_per_core=params.refs_per_core,
                             seed=params.seed, scale=params.scale)
    streams = workload.streams
    if params.batch and HAS_NUMPY:
        # Same columnarisation the runner performs, so the profile shows
        # the engine a campaign would actually use.
        streams = [s if getattr(s, "columns", None) is not None
                   else pack_stream(s) for s in streams]
    machine = Machine(params.system_config(), scheme=scheme,
                      thp_large_fraction=profile.thp_large_fraction,
                      seed=params.seed, tlb_priority=params.tlb_priority,
                      batch=params.batch)
    profiler = SelfTimeProfiler()
    profiler.install(machine)
    started = perf_counter()
    machine.run(streams,
                warmup_references=workload.warmup_by_core
                or workload.warmup_references)
    wall = perf_counter() - started
    profiler.uninstall()

    report = Report(
        title=f"Profile: {benchmark} under {scheme} "
              f"({params.num_cores} cores, simulator self-time)",
        headers=("component", "calls", "total_s", "self_s", "self_pct"))
    for row in profiler.rows():
        report.add_row(row["component"], row["calls"], row["total_s"],
                       row["self_s"], row["self_pct"])
    accounted = sum(r["self_s"] for r in profiler.rows())
    report.add_note(f"run wall-clock {wall:.2f}s; "
                    f"{accounted:.2f}s attributed to wrapped components, "
                    "the rest is trace replay and interpreter overhead")
    if machine.last_replay_mode == "batch":
        report.add_note("replay engine: batch (vectorized columnar); "
                        "inlined hit paths bypass the wrapped component "
                        "boundaries, so self-times cover the residual "
                        "scalar calls only")
    else:
        report.add_note("replay engine: scalar"
                        + (f" ({machine.batch_fallback_reason})"
                           if machine.batch_fallback_reason else ""))
    report.add_note("self_s excludes time spent in other wrapped components "
                    "called from this one")
    return report
