"""Drivers regenerating every figure of the paper's evaluation.

Each function returns a :class:`~repro.experiments.report.Report` whose
rows are the series the corresponding paper figure plots.  All accept a
:class:`~repro.experiments.runner.SuiteRunner` so callers control scale
(and so several figures can share one set of memoised simulations), and
an optional benchmark subset for quick runs.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional

from ..common import addr
from ..common.config import SystemConfig
from ..common.errors import ReproError
from ..core.perfmodel import geometric_mean
from ..core.system import Machine
from ..paging.nested import MAX_NESTED_REFS
from ..tlb import latency as sram_latency
from ..workloads.suite import BENCHMARKS, get_profile
from .report import Report
from .runner import ExperimentParams, SuiteRunner


def _benchmarks(subset: Iterable[str]) -> List[str]:
    return list(subset) or list(BENCHMARKS)


def _try_run(runner: SuiteRunner, name: str, scheme: str,
             params: Optional[ExperimentParams] = None):
    """One run, or None when it failed — figures degrade gracefully.

    A failed run (recorded by the resilient campaign executor, or dying
    right here in serial mode) must cost its own cells, not the figure:
    callers render None cells as ``n/a``.
    """
    try:
        return runner.run(name, scheme, params)
    except ReproError:
        return None


def _geomean_cell(speedups: List[float]):
    """Geomean improvement % over the *available* runs (None when empty)."""
    if not speedups:
        return None
    return (geometric_mean(speedups) - 1.0) * 100.0


# -- Figure 1: the 2-D nested walk -----------------------------------------

def fig1_walk_steps() -> Report:
    """Figure 1: memory references of one cold nested walk."""
    machine = Machine(SystemConfig(num_cores=1), scheme="baseline")
    machine.touch(0, 1, 0x1234000)
    walk = machine.walkers.walk(0, 0, 1, 0x1234000)
    report = Report(title="Figure 1: x86 2D page walk in virtualized mode",
                    headers=("quantity", "value"))
    report.add_row("worst-case references", MAX_NESTED_REFS)
    report.add_row("cold-walk references (this system)", walk.memory_refs)
    report.add_row("cold-walk cycles", walk.cycles)
    report.add_note("the host PSC warms during the walk, so even a cold "
                    "walk may skip a few of the 24 references")
    return report


# -- Figures 2 and 3: translation-cost characterisation ----------------------

def fig2_translation_cycles(runner: SuiteRunner,
                            benchmarks: Iterable[str] = ()) -> Report:
    """Figure 2: average translation cycles per L2 TLB miss (virtualized)."""
    report = Report(
        title="Figure 2: Average translation cycles per L2 TLB miss "
              "(virtualized)",
        headers=("benchmark", "paper_measured", "simulated"))
    for name in _benchmarks(benchmarks):
        run = _try_run(runner, name, "baseline")
        profile = get_profile(name)
        report.add_row(name, profile.cycles_per_miss_virtual,
                       run.result.avg_penalty_per_miss if run else None)
    report.add_note("paper column: Skylake perf-counter measurements "
                    "(Table 2); simulated column: this repo's nested-walk "
                    "model on synthetic traces")
    return report


def fig3_virt_native_ratio(runner: SuiteRunner,
                           benchmarks: Iterable[str] = ()) -> Report:
    """Figure 3: ratio of virtualized to native translation cost."""
    native_params = dataclasses.replace(runner.params, virtualized=False)
    report = Report(
        title="Figure 3: Virtualized / native translation cost ratio",
        headers=("benchmark", "paper_ratio", "simulated_ratio"))
    for name in _benchmarks(benchmarks):
        virt = _try_run(runner, name, "baseline")
        native = _try_run(runner, name, "baseline", native_params)
        profile = get_profile(name)
        paper_ratio = (profile.cycles_per_miss_virtual
                       / profile.cycles_per_miss_native)
        if virt is None or native is None:
            report.add_row(name, paper_ratio, None)
            continue
        sim_native = native.result.avg_penalty_per_miss
        sim_ratio = (virt.result.avg_penalty_per_miss / sim_native
                     if sim_native else 0.0)
        report.add_row(name, paper_ratio, sim_ratio)
    return report


# -- Figure 4: SRAM latency scaling --------------------------------------------

def fig4_sram_latency() -> Report:
    """Figure 4: SRAM access latency vs capacity, normalised to 16 KiB."""
    report = Report(
        title="Figure 4: SRAM TLB access latency vs capacity "
              "(normalised to 16KiB)",
        headers=("capacity", "normalised_latency"))
    for capacity, value in sram_latency.capacity_sweep():
        report.add_row(addr.pretty_size(capacity), value)
    report.add_note("CACTI-like analytic model: decode ~ log2(size), "
                    "wire delay ~ sqrt(size)")
    return report


# -- Figure 8: the headline performance comparison ---------------------------

FIG8_SCHEMES = ("pom", "shared_l2", "tsb")


def fig8_performance(runner: SuiteRunner,
                     benchmarks: Iterable[str] = (),
                     schemes: Iterable[str] = FIG8_SCHEMES) -> Report:
    """Figure 8: % performance improvement over the measured baseline."""
    schemes = list(schemes)
    report = Report(
        title="Figure 8: Performance improvement over baseline (%), "
              f"{runner.params.num_cores} cores",
        headers=("benchmark", *schemes))
    speedups = {scheme: [] for scheme in schemes}
    for name in _benchmarks(benchmarks):
        cells = [name]
        for scheme in schemes:
            run = _try_run(runner, name, scheme)
            cells.append(run.improvement_percent if run else None)
            if run is not None:
                speedups[scheme].append(run.performance.speedup)
        report.add_row(*cells)
    geo = ["geomean"]
    for scheme in schemes:
        geo.append(_geomean_cell(speedups[scheme]))
    report.add_row(*geo)
    return report


# -- Figure 9: where POM-TLB entries hit ----------------------------------------

def fig9_hit_ratio(runner: SuiteRunner,
                   benchmarks: Iterable[str] = ()) -> Report:
    """Figure 9: TLB-entry hit ratio at L2D$, L3D$ and the POM-TLB."""
    report = Report(
        title="Figure 9: POM-TLB entry hit ratio per memory level",
        headers=("benchmark", "l2d_hit", "l3d_hit", "pom_hit",
                 "walk_eliminated"))
    for name in _benchmarks(benchmarks):
        run = _try_run(runner, name, "pom")
        if run is None:
            report.add_row(name, None, None, None, None)
            continue
        result = run.result
        report.add_row(name,
                       result.tlb_cache_hit_ratio("l2"),
                       result.tlb_cache_hit_ratio("l3"),
                       result.pom_hit_ratio(),
                       result.walk_elimination)
    return report


# -- Figure 10: predictor accuracy ----------------------------------------------

def fig10_predictors(runner: SuiteRunner,
                     benchmarks: Iterable[str] = ()) -> Report:
    """Figure 10: page-size and cache-bypass predictor accuracy."""
    report = Report(title="Figure 10: Predictor accuracy",
                    headers=("benchmark", "size_accuracy", "bypass_accuracy"))
    for name in _benchmarks(benchmarks):
        run = _try_run(runner, name, "pom")
        if run is None:
            report.add_row(name, None, None)
            continue
        accuracy = run.result.predictor_accuracy()
        report.add_row(name, accuracy["size"], accuracy["bypass"])
    return report


# -- Figure 11: stacked-DRAM row-buffer hits -----------------------------------

def fig11_row_buffer(runner: SuiteRunner,
                     benchmarks: Iterable[str] = ()) -> Report:
    """Figure 11: row-buffer hit rate in the POM-TLB's DRAM."""
    report = Report(title="Figure 11: Row buffer hits in the L3 TLB",
                    headers=("benchmark", "row_buffer_hit_rate"))
    for name in _benchmarks(benchmarks):
        run = _try_run(runner, name, "pom")
        report.add_row(name,
                       run.result.row_buffer_hit_rate() if run else None)
    return report


# -- Figure 12: data-cache ablation ---------------------------------------------

def fig12_caching_ablation(runner: SuiteRunner,
                           benchmarks: Iterable[str] = ()) -> Report:
    """Figure 12: POM-TLB with vs without caching entries in L2D$/L3D$."""
    uncached_params = dataclasses.replace(runner.params,
                                          cache_tlb_entries=False)
    report = Report(
        title="Figure 12: POM-TLB with and without data caching (%)",
        headers=("benchmark", "with_caching", "without_caching"))
    cached_speedups, uncached_speedups = [], []
    for name in _benchmarks(benchmarks):
        cached = _try_run(runner, name, "pom")
        uncached = _try_run(runner, name, "pom", uncached_params)
        report.add_row(name,
                       cached.improvement_percent if cached else None,
                       uncached.improvement_percent if uncached else None)
        if cached is not None:
            cached_speedups.append(cached.performance.speedup)
        if uncached is not None:
            uncached_speedups.append(uncached.performance.speedup)
    report.add_row("geomean",
                   _geomean_cell(cached_speedups),
                   _geomean_cell(uncached_speedups))
    return report


# -- Section 4.6 sensitivity studies ------------------------------------------

def sensitivity_capacity(runner: SuiteRunner,
                         benchmarks: Iterable[str] = (),
                         capacities_mb: Iterable[int] = (8, 16, 32)) -> Report:
    """POM-TLB capacity sensitivity (Section 4.6): 8/16/32 MB."""
    report = Report(
        title="Section 4.6: POM-TLB capacity sensitivity (geomean %)",
        headers=("capacity", "geomean_improvement"))
    names = _benchmarks(benchmarks)
    for capacity in capacities_mb:
        params = dataclasses.replace(
            runner.params, pom_size_bytes=capacity * addr.MiB)
        runs = [_try_run(runner, name, "pom", params) for name in names]
        speedups = [run.performance.speedup for run in runs
                    if run is not None]
        report.add_row(f"{capacity}MiB", _geomean_cell(speedups))
    report.add_note("the paper finds <1% difference across 8-32MB")
    return report


def sensitivity_cores(runner: SuiteRunner,
                      benchmarks: Iterable[str] = (),
                      core_counts: Iterable[int] = (4, 8)) -> Report:
    """Core-count sensitivity (Section 4.6): 4/8(/32) cores."""
    report = Report(
        title="Section 4.6: core-count sensitivity (geomean %)",
        headers=("cores", "geomean_improvement"))
    names = _benchmarks(benchmarks)
    for cores in core_counts:
        params = dataclasses.replace(runner.params, num_cores=cores)
        runs = [_try_run(runner, name, "pom", params) for name in names]
        speedups = [run.performance.speedup for run in runs
                    if run is not None]
        report.add_row(cores, _geomean_cell(speedups))
    return report
