"""Ablations for the design choices DESIGN.md calls out.

Three studies beyond the paper's own figures:

* **TLB-aware caching** (paper Section 5.1) — give cached POM-TLB lines
  replacement priority over data lines in L2D$/L3D$.
* **Predictor hysteresis** (paper footnote 2) — 1-bit flip-on-mistake
  (the paper's design) vs 2-bit saturating size counters, and a larger
  predictor table.
* **Bypass predictor** (paper Section 2.1.5) — the flow with the bypass
  bit active vs always probing the caches first.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List

from ..core.perfmodel import geometric_mean
from ..workloads.suite import BENCHMARKS
from .report import Report
from .runner import SuiteRunner


def _benchmarks(subset: Iterable[str]) -> List[str]:
    return list(subset) or list(BENCHMARKS)


def _geomean_improvement(runner: SuiteRunner, names, params) -> float:
    speedups = [runner.run(name, "pom", params).performance.speedup
                for name in names]
    return (geometric_mean(speedups) - 1.0) * 100.0


def ablation_tlb_priority(runner: SuiteRunner,
                          benchmarks: Iterable[str] = ()) -> Report:
    """Section 5.1: prioritise retaining POM-TLB lines in data caches."""
    names = _benchmarks(benchmarks)
    report = Report(
        title="Ablation: TLB-aware cache replacement (Section 5.1)",
        headers=("benchmark", "lru", "tlb_priority"))
    priority = dataclasses.replace(runner.params, tlb_priority=True)
    plain_speedups, priority_speedups = [], []
    for name in names:
        plain = runner.run(name, "pom")
        pinned = runner.run(name, "pom", priority)
        report.add_row(name, plain.improvement_percent,
                       pinned.improvement_percent)
        plain_speedups.append(plain.performance.speedup)
        priority_speedups.append(pinned.performance.speedup)
    report.add_row("geomean",
                   (geometric_mean(plain_speedups) - 1) * 100,
                   (geometric_mean(priority_speedups) - 1) * 100)
    report.add_note("priority mode never evicts a TLB line while a data "
                    "line remains in the set")
    return report


def ablation_predictor(runner: SuiteRunner,
                       benchmarks: Iterable[str] = ()) -> Report:
    """Footnote 2: hysteresis and table size for the size predictor."""
    names = _benchmarks(benchmarks)
    variants = (
        ("512x1bit (paper)", {}),
        ("512x2bit", {"size_counter_bits": 2}),
        ("2048x1bit", {"predictor_entries": 2048}),
    )
    report = Report(
        title="Ablation: size-predictor hysteresis and capacity",
        headers=("variant", "geomean_improvement", "size_accuracy"))
    for label, overrides in variants:
        params = dataclasses.replace(runner.params, **overrides)
        improvement = _geomean_improvement(runner, names, params)
        accuracies = [runner.run(n, "pom", params)
                      .result.predictor_accuracy()["size"] for n in names]
        report.add_row(label, improvement,
                       sum(accuracies) / len(accuracies))
    return report


def ablation_bypass(runner: SuiteRunner,
                    benchmarks: Iterable[str] = ()) -> Report:
    """Section 2.1.5: does the bypass bit actually help?"""
    names = _benchmarks(benchmarks)
    report = Report(
        title="Ablation: cache-bypass predictor on/off",
        headers=("benchmark", "bypass_on", "bypass_off"))
    off = dataclasses.replace(runner.params, bypass_enabled=False)
    on_speedups, off_speedups = [], []
    for name in names:
        with_bypass = runner.run(name, "pom")
        without = runner.run(name, "pom", off)
        report.add_row(name, with_bypass.improvement_percent,
                       without.improvement_percent)
        on_speedups.append(with_bypass.performance.speedup)
        off_speedups.append(without.performance.speedup)
    report.add_row("geomean",
                   (geometric_mean(on_speedups) - 1) * 100,
                   (geometric_mean(off_speedups) - 1) * 100)
    return report


def ablation_skewed(runner: SuiteRunner,
                    benchmarks: Iterable[str] = ()) -> Report:
    """Footnote 1: partitioned POM-TLB vs unified skew-associative.

    The skewed design removes the static small/large split and its
    conflict pathologies, but each way's candidate slot lives in a
    different 64 B line, so probes can fetch several lines.
    """
    names = _benchmarks(benchmarks)
    report = Report(
        title="Ablation: partitioned vs skew-associative POM-TLB",
        headers=("benchmark", "partitioned", "skewed"))
    part_speedups, skew_speedups = [], []
    for name in names:
        partitioned = runner.run(name, "pom")
        skewed = runner.run(name, "pom_skewed")
        report.add_row(name, partitioned.improvement_percent,
                       skewed.improvement_percent)
        part_speedups.append(partitioned.performance.speedup)
        skew_speedups.append(skewed.performance.speedup)
    report.add_row("geomean",
                   (geometric_mean(part_speedups) - 1) * 100,
                   (geometric_mean(skew_speedups) - 1) * 100)
    report.add_note("the paper leaves the skewed design to future work; "
                    "its extra line fetches usually offset the conflict "
                    "reduction")
    return report


def ablation_prefetch(runner: SuiteRunner,
                      benchmarks: Iterable[str] = ()) -> Report:
    """Related-Work extension: next-page POM-TLB set prefetching.

    Sequential miss streams should see more of their set lines already
    resident in the data caches; scattered streams just waste stacked
    bandwidth.
    """
    names = _benchmarks(benchmarks)
    report = Report(
        title="Ablation: next-page POM-TLB prefetching",
        headers=("benchmark", "no_prefetch", "prefetch"))
    on = dataclasses.replace(runner.params, tlb_prefetch=True)
    off_speedups, on_speedups = [], []
    for name in names:
        plain = runner.run(name, "pom")
        fetched = runner.run(name, "pom", on)
        report.add_row(name, plain.improvement_percent,
                       fetched.improvement_percent)
        off_speedups.append(plain.performance.speedup)
        on_speedups.append(fetched.performance.speedup)
    report.add_row("geomean",
                   (geometric_mean(off_speedups) - 1) * 100,
                   (geometric_mean(on_speedups) - 1) * 100)
    return report
