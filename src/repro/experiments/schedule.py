"""Makespan-aware campaign scheduling: longest expected runs first.

With a process pool of width W, dispatching runs in enumeration order
can strand the pool's tail: a long run launched last keeps one worker
busy while W-1 idle.  The classic LPT (longest-processing-time-first)
heuristic bounds that waste at 1/3 of optimal; for the campaign's run
mix — per-scheme throughput differing by ~2x and sensitivity sweeps
mixing core counts — it is the difference between the pool draining
evenly and one straggler defining the makespan.

Expected run length is ``references / refs_per_sec(scheme)``.  The
per-scheme rates come from the engine benchmark's committed results
(``BENCH_engine.json``, section ``engine_throughput`` — see
benchmarks/test_bench_engine_throughput.py); machines without that file
fall back to frozen defaults capted from the same benchmark.  Accuracy
barely matters — LPT only needs the *ordering* to be roughly right —
so stale rates degrade the schedule, never the results.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Optional

#: refs/sec per scheme measured on the reference machine (the committed
#: BENCH_engine.json at the time this module was written — batch-engine
#: cold-run rates, since campaign runs are cold and use the batch
#: engine when numpy is present); used when no benchmark results file
#: is on disk.  Relative magnitudes are what matter: shared_l2 runs
#: ~2x faster than the POM variants.
DEFAULT_REFS_PER_SEC: Dict[str, float] = {
    "baseline": 7800.0,
    "pom": 5400.0,
    "pom_skewed": 5600.0,
    "shared_l2": 10000.0,
    "tsb": 5600.0,
}

_FALLBACK_RATE = 6000.0  # unknown schemes: mid-pack guess


def load_rates(path: str = "BENCH_engine.json") -> Dict[str, float]:
    """Per-scheme refs/sec from the engine benchmark results, if present.

    Any problem — missing file, damaged JSON, absent section — falls
    back to :data:`DEFAULT_REFS_PER_SEC`; scheduling must never make a
    campaign fail.
    """
    try:
        with open(path) as handle:
            document = json.load(handle)
        schemes = document["engine_throughput"]["schemes"]
        rates = {scheme: float(entry["refs_per_sec"])
                 for scheme, entry in schemes.items()
                 if float(entry.get("refs_per_sec", 0)) > 0}
    except (OSError, ValueError, KeyError, TypeError):
        return dict(DEFAULT_REFS_PER_SEC)
    if not rates:
        return dict(DEFAULT_REFS_PER_SEC)
    return {**DEFAULT_REFS_PER_SEC, **rates}


def expected_cost(request, rates: Dict[str, float]) -> float:
    """Expected wall-clock seconds for one run request.

    References scale with ``num_cores * refs_per_core`` (warmup
    prologues add a roughly constant factor on top, which cannot change
    the ordering); the divisor is the scheme's measured replay rate.
    """
    params = request.params
    references = params.num_cores * params.refs_per_core
    rate = rates.get(request.scheme, _FALLBACK_RATE)
    return references / rate


def cost_function(path: str = "BENCH_engine.json",
                  rates: Optional[Dict[str, float]] = None
                  ) -> Callable[[object], float]:
    """A ``request -> expected seconds`` callable for ``execute_runs``.

    Rates are resolved once up front (not per request): the executor
    sorts its queue with this, so it must be cheap and stable.
    """
    resolved = rates if rates is not None else load_rates(path)
    return lambda request: expected_cost(request, resolved)


def predicted_costs(requests, cost: Callable[[object], float],
                    key: Callable[[object], str]) -> Dict[str, float]:
    """Schedule predictions keyed by run key, for calibration tracking.

    The campaign feeds these into the telemetry LPT-accuracy tracker
    before any run executes; pairing each prediction with the measured
    wall time afterwards yields the calibration error (MAPE/bias) that
    tells whether ``BENCH_engine.json`` rates have drifted from the
    machine actually running the campaign.
    """
    return {key(request): cost(request) for request in requests}
