"""Experiment drivers regenerating every paper table and figure."""

from . import (ablations, campaign, consolidation, contention, details,
               figures, lifecycle, tables, tradeoff)
from .report import Report
from .runner import BenchmarkRun, ExperimentParams, SuiteRunner

__all__ = [
    "BenchmarkRun",
    "ExperimentParams",
    "Report",
    "SuiteRunner",
    "ablations",
    "campaign",
    "consolidation",
    "contention",
    "details",
    "figures",
    "lifecycle",
    "tables",
    "tradeoff",
]
