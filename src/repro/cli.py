"""Command-line interface: regenerate any paper table or figure.

Examples::

    pomtlb list
    pomtlb table2
    pomtlb fig8 --benchmarks mcf,gups --cores 2 --scale 0.2
    pomtlb fig8 --benchmarks gups --trace-out trace.json --trace-sample 10
    pomtlb details --benchmarks mcf --metrics-out windows.json
    pomtlb profile --benchmarks mcf --scheme pom
    pomtlb campaign --output results.txt
    pomtlb campaign --workers 4 --workload-cache ~/.cache/pomtlb-workloads
    pomtlb trace pack core0.trace core0.pwl.gz
    pomtlb trace unpack core0.pwl.gz roundtrip.trace
    pomtlb audit --benchmarks gcc,mcf --refs 2000 --scale 0.05
    pomtlb campaign --verify --output results.txt
    pomtlb campaign --workers 4 --status-out status.ndjson
    pomtlb top status.ndjson --follow
    pomtlb lifecycle churn --benchmarks gups,mcf --generations 10 --verify
    pomtlb lifecycle shootdown --rates 0,1,5,20 --refs 2000
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
from typing import List, Optional

from .common.errors import ConfigError, VerificationError
from .common.fileio import atomic_write_text
from .experiments import (ablations, campaign, consolidation, contention,
                          details, figures, profiling, tables, tradeoff)
from .experiments.runner import ExperimentParams, SuiteRunner
from .faults import NO_FAULTS, FaultPlan
from .obs import (NO_TELEMETRY, ChromeTraceSink, EventTracer, JsonlSink,
                  Observability)
from .workloads.suite import BENCHMARKS

#: Exit codes: 0 ok, 1 campaign degraded (failed runs in the report),
#: 2 usage/configuration error, 130 interrupted (128 + SIGINT).
EXIT_DEGRADED = 1
EXIT_USAGE = 2
EXIT_INTERRUPTED = 130

#: Experiments addressable from the command line.  Static entries take
#: no simulation; dynamic ones run the suite through a SuiteRunner.
_STATIC = {
    "table1": lambda: tables.table1(),
    "table2": lambda: tables.table2(),
    "fig1": lambda: figures.fig1_walk_steps(),
    "fig4": lambda: figures.fig4_sram_latency(),
    "contention": lambda: contention.channel_contention(),
}

_DYNAMIC = {
    "fig2": figures.fig2_translation_cycles,
    "fig3": figures.fig3_virt_native_ratio,
    "fig8": figures.fig8_performance,
    "fig9": figures.fig9_hit_ratio,
    "fig10": figures.fig10_predictors,
    "fig11": figures.fig11_row_buffer,
    "fig12": figures.fig12_caching_ablation,
    "capacity": figures.sensitivity_capacity,
    "cores": figures.sensitivity_cores,
    "ablation-priority": ablations.ablation_tlb_priority,
    "ablation-predictor": ablations.ablation_predictor,
    "ablation-bypass": ablations.ablation_bypass,
    "tradeoff": tradeoff.tradeoff_l4_vs_tlb,
    "ablation-skewed": ablations.ablation_skewed,
    "ablation-prefetch": ablations.ablation_prefetch,
}

_SCHEMES = ("baseline", "pom", "pom_skewed", "shared_l2", "tsb")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pomtlb",
        description="POM-TLB (ISCA 2017) reproduction: regenerate paper "
                    "tables and figures from simulation.")
    parser.add_argument("experiment",
                        choices=sorted(_STATIC) + sorted(_DYNAMIC)
                        + ["campaign", "consolidation", "details", "profile",
                           "list"],
                        help="which table/figure to regenerate")
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated subset (default: all 15)")
    parser.add_argument("--cores", type=int, default=None,
                        help="core count (default: 8 or $POMTLB_CORES)")
    parser.add_argument("--refs", type=int, default=None,
                        help="measured references per core")
    parser.add_argument("--scale", type=float, default=None,
                        help="footprint scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload seed")
    parser.add_argument("--scheme", default="pom", choices=_SCHEMES,
                        help="translation scheme for 'profile' (default pom)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report(s) as JSON")
    parser.add_argument("--bars", metavar="COLUMN", default="",
                        help="render an ASCII bar chart of COLUMN instead "
                             "of the table")
    parser.add_argument("--output", default="",
                        help="write the report here instead of stdout "
                             "(written atomically)")
    parser.add_argument("--trace-out", default="",
                        help="write a structured event trace of every "
                             "simulated run; a .json suffix selects Chrome "
                             "trace-event format (Perfetto-loadable), "
                             "anything else JSONL")
    parser.add_argument("--trace-sample", type=int, default=1, metavar="N",
                        help="trace every N-th translation (default 1 = all)")
    parser.add_argument("--metrics-out", default="",
                        help="write time-windowed metrics (JSON) for every "
                             "simulated run")
    parser.add_argument("--window", type=int, default=1000, metavar="K",
                        help="references per metrics window (default 1000)")
    resilience = parser.add_argument_group(
        "resilience (campaign)",
        "isolated workers, retry with backoff, checkpoint-resume")
    resilience.add_argument("--workers", type=int, default=None, metavar="N",
                            help="run campaign simulations in N worker "
                                 "processes (default: serial or "
                                 "$POMTLB_WORKERS); a crashed or hung "
                                 "worker kills only its own run")
    resilience.add_argument("--timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="per-run wall-clock budget; enforced with "
                                 "--workers >= 2 (default: unlimited)")
    resilience.add_argument("--max-retries", type=int, default=None,
                            metavar="N",
                            help="retries per run after transient failures "
                                 "(timeout/crash; default 2)")
    resilience.add_argument("--retry-backoff", type=float, default=None,
                            metavar="SECONDS",
                            help="base exponential-backoff delay between "
                                 "attempts (default 0.25)")
    resilience.add_argument("--workload-cache", default="", metavar="DIR",
                            help="compile campaign workloads into this "
                                 "content-addressed packed-trace cache; a "
                                 "second campaign with the same workload "
                                 "parameters replays from it instead of "
                                 "regenerating traces")
    resilience.add_argument("--checkpoint", default="", metavar="PATH",
                            help="persist finished campaign runs to this "
                                 "JSONL store as they complete")
    resilience.add_argument("--resume", action="store_true",
                            help="skip runs already present in --checkpoint")
    resilience.add_argument("--inject-faults", default="",
                            metavar="SPEC", help=argparse.SUPPRESS)
    telemetry = parser.add_argument_group(
        "telemetry (campaign)",
        "live status stream, Prometheus metrics, HTML dashboard; "
        "all off (and costless) unless one of these is given")
    telemetry.add_argument("--status-out", default="", metavar="PATH",
                           help="stream campaign status as NDJSON to PATH "
                                "(one event per line, flushed; tail it "
                                "live with 'pomtlb top PATH --follow')")
    telemetry.add_argument("--telemetry-dir", default="", metavar="DIR",
                           help="write campaign_metrics.prom and "
                                "campaign_dashboard.html into DIR at "
                                "campaign end (default: next to --output, "
                                "else the working directory)")
    parser.add_argument("--verify", action="store_true",
                        help="arm the consistency audit (repro.verify) in "
                             "every simulated run; an invariant violation "
                             "aborts with a VerificationError naming the "
                             "invariant")
    parser.add_argument("--no-batch", action="store_true",
                        help="force the scalar replay loop instead of the "
                             "vectorized batch engine (pomtlb[fast]); "
                             "results are bit-identical either way "
                             "(also: POMTLB_BATCH=0)")
    return parser


def _params_from_args(args: argparse.Namespace) -> ExperimentParams:
    overrides = {}
    if args.cores is not None:
        overrides["num_cores"] = args.cores
    if args.refs is not None:
        overrides["refs_per_core"] = args.refs
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.timeout is not None:
        overrides["run_timeout_s"] = args.timeout
    if args.max_retries is not None:
        overrides["max_retries"] = args.max_retries
    if args.retry_backoff is not None:
        overrides["retry_backoff_s"] = args.retry_backoff
    if args.verify:
        overrides["verify"] = True
    if args.no_batch:
        overrides["batch"] = False
    return ExperimentParams.from_env(**overrides)


class _ObsSession:
    """CLI-side observability plumbing shared by every run of one command.

    Owns the trace sink (one file for all runs; ``run_meta`` events keep
    them separable) and collects each run's windowed metrics so they can
    be written as one JSON document at the end.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.sample = args.trace_sample
        self.metrics_out = args.metrics_out
        self.window = args.window if args.metrics_out else 0
        if args.trace_out:
            sink_cls = (ChromeTraceSink if args.trace_out.endswith(".json")
                        else JsonlSink)
            self.sink = sink_cls(args.trace_out)
        else:
            self.sink = None
        self._runs: List[tuple] = []

    @property
    def enabled(self) -> bool:
        return self.sink is not None or self.window > 0

    def factory(self, benchmark: str, scheme: str) -> Observability:
        """The :data:`~repro.experiments.runner.ObsFactory` for this CLI run."""
        tracer = None
        if self.sink is not None:
            tracer = EventTracer([self.sink], sample=self.sample,
                                 meta={"benchmark": benchmark,
                                       "scheme": scheme})
        obs = Observability(tracer=tracer, window=self.window)
        self._runs.append((benchmark, scheme, obs))
        return obs

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()
        if self.metrics_out:
            runs = [{"benchmark": benchmark, "scheme": scheme,
                     **obs.windows.as_dict()}
                    for benchmark, scheme, obs in self._runs
                    if obs.windows is not None]
            _atomic_write(self.metrics_out,
                          json.dumps({"window": self.window, "runs": runs},
                                     indent=2) + "\n")


#: Back-compat alias; the shared helper lives in :mod:`repro.common.fileio`
#: so the checkpoint store and trace sinks use the same idiom.
_atomic_write = atomic_write_text


def _render(args: argparse.Namespace, report) -> str:
    if args.json:
        return report.to_json() + "\n"
    if args.bars:
        return report.render_bars(args.bars) + "\n"
    return report.render() + "\n"


def _trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pomtlb trace",
        description="Convert between the text #pomtlb-trace format and "
                    "the packed binary columnar format (a .gz suffix on "
                    "either side selects gzip).")
    actions = parser.add_subparsers(dest="action", required=True)
    pack = actions.add_parser(
        "pack", help="text trace -> packed binary (records stream "
                     "straight into columns; the trace is never held as "
                     "Python objects)")
    pack.add_argument("input", help="text #pomtlb-trace file (.gz ok)")
    pack.add_argument("output", help="packed trace to write (.gz ok)")
    unpack = actions.add_parser(
        "unpack", help="packed binary -> text trace")
    unpack.add_argument("input", help="packed trace file (.gz ok)")
    unpack.add_argument("output", help="text #pomtlb-trace to write (.gz ok)")
    return parser


def _trace_main(argv: List[str]) -> int:
    from .common.errors import PackedTraceError, TraceFormatError
    from .workloads.packed import load_packed, save_packed, unpack_stream
    from .workloads.trace import load_stream_packed, save_stream

    args = _trace_parser().parse_args(argv)
    try:
        if args.action == "pack":
            stream = load_stream_packed(args.input)
            # _iter_records already enforced per-record invariants;
            # validate_stream adds cross-record monotonicity so the
            # validated flag in the output is trustworthy.
            from .workloads.trace import validate_stream
            validate_stream(stream)
            save_packed(args.output, [stream], validated=True)
            print(f"packed {len(stream)} record(s) "
                  f"(core={stream.core} vm={stream.vm_id} "
                  f"asid={stream.asid}) -> {args.output}")
        else:
            container = load_packed(args.input)
            try:
                if len(container.streams) != 1:
                    print(f"{args.input}: holds {len(container.streams)} "
                          "streams (a compiled workload, not a single "
                          "core trace); the text format is one stream "
                          "per file", file=sys.stderr)
                    return EXIT_USAGE
                stream = unpack_stream(container.streams[0])
            finally:
                container.backing.close()
            save_stream(stream, args.output)
            print(f"unpacked {len(stream)} record(s) "
                  f"(core={stream.core} vm={stream.vm_id} "
                  f"asid={stream.asid}) -> {args.output}")
    except (TraceFormatError, PackedTraceError) as exc:
        print(f"trace error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as exc:
        print(f"cannot {args.action} trace: {exc}", file=sys.stderr)
        return EXIT_USAGE
    return 0


def _audit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pomtlb audit",
        description="Differential consistency audit: replay one workload "
                    "through every translation scheme with the invariant "
                    "checkers armed, cross-check functional page mappings "
                    "between schemes and counters against the frozen "
                    "reference engine.  On a violation the trace is shrunk "
                    "to a minimal repro and written as a packed .pwl "
                    "artifact.")
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated subset (default: all)")
    parser.add_argument("--schemes", default="all",
                        help="comma-separated schemes or 'all' "
                             f"(default; all = {','.join(_SCHEMES)})")
    parser.add_argument("--invariants", default="",
                        help="comma-separated invariant names to run "
                             "(default: all registered invariants)")
    parser.add_argument("--cores", type=int, default=None,
                        help="core count (default: 8 or $POMTLB_CORES)")
    parser.add_argument("--refs", type=int, default=None,
                        help="measured references per core")
    parser.add_argument("--scale", type=float, default=None,
                        help="footprint scale factor")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload seed")
    parser.add_argument("--no-reference", action="store_true",
                        help="skip the frozen-reference counter comparison")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report the violation without shrinking the "
                             "trace to a minimal repro")
    parser.add_argument("--artifacts", default="audit-artifacts",
                        metavar="DIR",
                        help="directory for shrunk violation traces "
                             "(default: audit-artifacts)")
    return parser


def _audit_main(argv: List[str]) -> int:
    from .common.errors import VerificationError
    from .verify import INVARIANT_REGISTRY, audit_benchmark
    from .verify.differential import ALL_SCHEMES

    args = _audit_parser().parse_args(argv)
    benchmarks = [b for b in args.benchmarks.split(",") if b] or \
        list(BENCHMARKS)
    for name in benchmarks:
        if name not in BENCHMARKS:
            print(f"unknown benchmark {name!r}; see 'pomtlb list'",
                  file=sys.stderr)
            return EXIT_USAGE
    if args.schemes == "all":
        schemes = ALL_SCHEMES
    else:
        schemes = tuple(s for s in args.schemes.split(",") if s)
        for name in schemes:
            if name not in _SCHEMES:
                print(f"unknown scheme {name!r} "
                      f"(known: {', '.join(_SCHEMES)})", file=sys.stderr)
                return EXIT_USAGE
    if not schemes:
        print("--schemes selected nothing", file=sys.stderr)
        return EXIT_USAGE
    for name in [i for i in args.invariants.split(",") if i]:
        if name not in INVARIANT_REGISTRY:
            print(f"unknown invariant {name!r} "
                  f"(known: {', '.join(sorted(INVARIANT_REGISTRY))})",
                  file=sys.stderr)
            return EXIT_USAGE

    overrides = {}
    if args.cores is not None:
        overrides["num_cores"] = args.cores
    if args.refs is not None:
        overrides["refs_per_core"] = args.refs
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        params = ExperimentParams.from_env(**overrides)
    except ConfigError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    invariants = tuple(i for i in args.invariants.split(",") if i) or None
    try:
        for benchmark in benchmarks:
            report = audit_benchmark(
                benchmark, params, schemes=schemes,
                invariants=invariants,
                use_reference=not args.no_reference,
                shrink=not args.no_shrink,
                artifact_dir=args.artifacts)
            checked = "+reference" if report.reference_checked else ""
            print(f"audit {benchmark}: OK "
                  f"({len(report.results)} scheme(s){checked})")
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except VerificationError as exc:
        print(f"audit FAILED: {exc}", file=sys.stderr)
        return EXIT_DEGRADED
    return 0


def _lifecycle_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pomtlb lifecycle",
        description="VM lifecycle scenarios: consolidation churn "
                    "(boot/teardown storms with frame reclamation), "
                    "cold-migration bursts, and shootdown-interference "
                    "sweeps, per scheme.")
    parser.add_argument("scenario", choices=("churn", "migrate",
                                             "shootdown", "all"),
                        help="which scenario to run ('all' runs the "
                             "three in sequence)")
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated VM mix for churn/migrate "
                             "(default: the study's mix); single name "
                             "for shootdown")
    parser.add_argument("--generations", type=int, default=5,
                        help="churn: boot/teardown generations per VM "
                             "slot (default 5)")
    parser.add_argument("--bursts", type=int, default=4,
                        help="migrate: cold-migration bursts (default 4)")
    parser.add_argument("--rates", default="",
                        help="shootdown: comma-separated storm rates in "
                             "shootdowns per 1000 refs (default "
                             "0,1,5,20)")
    parser.add_argument("--schemes", default="all",
                        help="comma-separated schemes or 'all' "
                             f"(default; all = {','.join(_SCHEMES)})")
    parser.add_argument("--cores", type=int, default=None,
                        help="core count for shootdown (churn/migrate "
                             "use one core per VM)")
    parser.add_argument("--refs", type=int, default=None,
                        help="measured references per core")
    parser.add_argument("--scale", type=float, default=None,
                        help="footprint scale factor")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload seed")
    parser.add_argument("--verify", action="store_true",
                        help="arm the consistency-audit invariants "
                             "during every run (results are "
                             "bit-identical; violations exit 1)")
    parser.add_argument("--no-batch", action="store_true",
                        help="force the scalar engine even where no "
                             "events are scheduled")
    parser.add_argument("--json", action="store_true",
                        help="emit reports as JSON")
    parser.add_argument("--output", default="", metavar="PATH",
                        help="also write the reports to PATH (atomic)")
    parser.add_argument("--artifacts", default="lifecycle-artifacts",
                        metavar="DIR",
                        help="directory for violation reports when "
                             "--verify trips (default: "
                             "lifecycle-artifacts)")
    return parser


def _lifecycle_main(argv: List[str]) -> int:
    from .experiments import lifecycle

    args = _lifecycle_parser().parse_args(argv)
    benchmarks = [b for b in args.benchmarks.split(",") if b]
    for name in benchmarks:
        if name not in BENCHMARKS:
            print(f"unknown benchmark {name!r}; see 'pomtlb list'",
                  file=sys.stderr)
            return EXIT_USAGE
    if args.schemes == "all":
        schemes = lifecycle.ALL_SCHEMES
    else:
        schemes = tuple(s for s in args.schemes.split(",") if s)
        for name in schemes:
            if name not in _SCHEMES:
                print(f"unknown scheme {name!r} "
                      f"(known: {', '.join(_SCHEMES)})", file=sys.stderr)
                return EXIT_USAGE
    if not schemes:
        print("--schemes selected nothing", file=sys.stderr)
        return EXIT_USAGE
    if args.generations < 1:
        print("--generations must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.bursts < 0:
        print("--bursts must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    try:
        rates = tuple(float(r) for r in args.rates.split(",") if r) or \
            lifecycle.DEFAULT_RATES
    except ValueError:
        print(f"bad --rates value {args.rates!r} (need numbers)",
              file=sys.stderr)
        return EXIT_USAGE
    if any(rate < 0 for rate in rates):
        print("--rates must be >= 0", file=sys.stderr)
        return EXIT_USAGE

    overrides = {"verify": args.verify}
    if args.no_batch:
        overrides["batch"] = False
    if args.cores is not None:
        overrides["num_cores"] = args.cores
    if args.refs is not None:
        overrides["refs_per_core"] = args.refs
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        params = ExperimentParams.from_env(**overrides)
    except ConfigError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    reports = []
    try:
        if args.scenario in ("churn", "all"):
            reports.append(lifecycle.churn_study(
                params,
                benchmarks=benchmarks or lifecycle.DEFAULT_CHURN_MIX,
                generations=args.generations, schemes=schemes))
        if args.scenario in ("migrate", "all"):
            reports.append(lifecycle.migration_study(
                params,
                benchmarks=benchmarks or lifecycle.DEFAULT_MIGRATION_MIX,
                bursts=args.bursts, schemes=schemes))
        if args.scenario in ("shootdown", "all"):
            if len(benchmarks) > 1:
                print("shootdown sweeps one benchmark; pass a single "
                      "--benchmarks name", file=sys.stderr)
                return EXIT_USAGE
            reports.append(lifecycle.shootdown_sweep(
                params, benchmark=benchmarks[0] if benchmarks else "gups",
                rates=rates, schemes=schemes))
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except VerificationError as exc:
        print(f"lifecycle verification FAILED: {exc}", file=sys.stderr)
        if args.artifacts:
            os.makedirs(args.artifacts, exist_ok=True)
            path = os.path.join(args.artifacts, "lifecycle_violation.txt")
            _atomic_write(path, f"scenario: {args.scenario}\n"
                                f"params: {params}\n"
                                f"violation: {exc}\n")
            print(f"violation report written to {path}", file=sys.stderr)
        return EXIT_DEGRADED

    if args.json:
        text = "\n".join(report.to_json() for report in reports) + "\n"
    else:
        text = "\n".join(report.render() for report in reports) + "\n"
    sys.stdout.write(text)
    if args.output:
        _atomic_write(args.output, text)
    return 0


def _top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pomtlb top",
        description="Render a live fleet view of a running (or finished) "
                    "campaign from its --status-out NDJSON stream.")
    parser.add_argument("status", help="NDJSON status file written by "
                                       "'pomtlb campaign --status-out'")
    parser.add_argument("--follow", action="store_true",
                        help="keep tailing and redrawing until the "
                             "campaign_end event (default: render the "
                             "current state once and exit)")
    parser.add_argument("--interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="redraw period with --follow (default 1.0)")
    return parser


def _top_main(argv: List[str]) -> int:
    import time

    from .obs import StatusSnapshot
    from .obs.telemetry import render_top

    args = _top_parser().parse_args(argv)
    if args.interval <= 0:
        print("--interval must be > 0", file=sys.stderr)
        return EXIT_USAGE
    snapshot = StatusSnapshot()
    try:
        stream = open(args.status, "r", encoding="utf-8")
    except OSError as exc:
        print(f"cannot open status file: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        while True:
            # The writer emits whole flushed lines; a partial final line
            # (mid-write) parses as garbage once at worst and is ignored
            # by the tolerant snapshot, then re-read complete next poll.
            position = stream.tell()
            line = stream.readline()
            if line:
                if not line.endswith("\n"):
                    stream.seek(position)
                else:
                    snapshot.apply_line(line)
                    continue
            if not args.follow or snapshot.finished:
                break
            sys.stdout.write("\x1b[2J\x1b[H" + render_top(snapshot) + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        stream.close()
    sys.stdout.write(render_top(snapshot) + "\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "audit":
        return _audit_main(argv[1:])
    if argv and argv[0] == "top":
        return _top_main(argv[1:])
    if argv and argv[0] == "lifecycle":
        return _lifecycle_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.experiment == "list":
        print("static:  ", ", ".join(sorted(_STATIC)))
        print("dynamic: ", ", ".join(sorted(_DYNAMIC)),
              "+ campaign, details, profile")
        print("tools:    trace pack, trace unpack, audit, top, "
              "lifecycle {churn,migrate,shootdown,all}")
        print("benchmarks:", ", ".join(BENCHMARKS))
        return 0

    benchmarks = [b for b in args.benchmarks.split(",") if b]
    for name in benchmarks:
        if name not in BENCHMARKS:
            print(f"unknown benchmark {name!r}; see 'pomtlb list'",
                  file=sys.stderr)
            return 2

    if args.experiment == "campaign" and args.bars:
        print("campaign emits many reports; --bars only applies to "
              "single-report experiments (e.g. 'pomtlb fig8 --bars "
              "improvement_percent')", file=sys.stderr)
        return 2

    if args.trace_sample < 1:
        print("--trace-sample must be >= 1", file=sys.stderr)
        return 2

    if args.experiment != "campaign":
        for flag, name in ((args.checkpoint, "--checkpoint"),
                           (args.resume, "--resume"),
                           (args.workload_cache, "--workload-cache"),
                           (args.inject_faults, "--inject-faults"),
                           (args.status_out, "--status-out"),
                           (args.telemetry_dir, "--telemetry-dir")):
            if flag:
                print(f"{name} only applies to 'pomtlb campaign'",
                      file=sys.stderr)
                return 2
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2

    faults = NO_FAULTS
    if args.inject_faults:
        try:
            faults = FaultPlan.parse(args.inject_faults)
        except ConfigError as exc:
            print(f"bad --inject-faults spec: {exc}", file=sys.stderr)
            return 2

    try:
        params = _params_from_args(args)
    except ConfigError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2

    try:
        obs = _ObsSession(args)
    except OSError as exc:
        print(f"cannot open --trace-out file: {exc}", file=sys.stderr)
        return 2
    obs_factory = obs.factory if obs.enabled else None
    if (obs.enabled and args.experiment == "campaign" and params.workers > 1):
        print("note: per-translation tracing/metrics run in-process; "
              "with --workers > 1 only campaign-level run events are "
              "traced", file=sys.stderr)
    telemetry = NO_TELEMETRY
    if args.status_out or args.telemetry_dir:
        from .obs import CampaignTelemetry
        export_dir = args.telemetry_dir or os.path.dirname(args.output) or "."
        try:
            telemetry = CampaignTelemetry(status_path=args.status_out,
                                          export_dir=export_dir)
        except OSError as exc:
            print(f"cannot open --status-out file: {exc}", file=sys.stderr)
            return 2
    degraded = False
    try:
        if args.experiment == "campaign":
            if args.json:
                result = campaign.run_all(params, benchmarks,
                                          out=io.StringIO(),
                                          obs_factory=obs_factory,
                                          checkpoint_path=args.checkpoint,
                                          resume=args.resume, faults=faults,
                                          workload_cache=args.workload_cache,
                                          telemetry=telemetry)
                text = json.dumps(
                    [json.loads(report.to_json()) for report in result],
                    indent=2) + "\n"
            else:
                buffer = io.StringIO()
                result = campaign.run_all(
                    params, benchmarks,
                    out=buffer if args.output else sys.stdout,
                    obs_factory=obs_factory,
                    checkpoint_path=args.checkpoint,
                    resume=args.resume, faults=faults,
                    workload_cache=args.workload_cache,
                    telemetry=telemetry)
                text = buffer.getvalue()
            if result.failures:
                degraded = True
                print(f"campaign degraded: {len(result.failures)} run(s) "
                      f"failed; see the 'Campaign failures' table",
                      file=sys.stderr)
        else:
            if args.experiment in _STATIC:
                report = _STATIC[args.experiment]()
            elif args.experiment == "details":
                if len(benchmarks) != 1:
                    print("details needs exactly one --benchmarks entry",
                          file=sys.stderr)
                    return 2
                runner = SuiteRunner(params, obs_factory=obs_factory)
                report = details.benchmark_details(runner, benchmarks[0])
            elif args.experiment == "profile":
                if len(benchmarks) != 1:
                    print("profile needs exactly one --benchmarks entry",
                          file=sys.stderr)
                    return 2
                report = profiling.profile_benchmark(
                    params, benchmarks[0], scheme=args.scheme)
            elif args.experiment == "consolidation":
                report = consolidation.consolidation_study(
                    params, benchmarks or consolidation.DEFAULT_MIX)
            else:
                runner = SuiteRunner(params, obs_factory=obs_factory)
                report = _DYNAMIC[args.experiment](runner, benchmarks)
            text = _render(args, report)
    except KeyboardInterrupt:
        print("interrupted"
              + (f"; finished runs are checkpointed in {args.checkpoint}"
                 if args.experiment == "campaign" and args.checkpoint
                 else ""),
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except ConfigError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except VerificationError as exc:
        print(f"verification failed: {exc}", file=sys.stderr)
        return EXIT_DEGRADED
    finally:
        obs.close()

    if args.output:
        try:
            _atomic_write(args.output, text)
        except OSError as exc:
            print(f"cannot write --output file: {exc}", file=sys.stderr)
            return 2
    else:
        sys.stdout.write(text)
    return EXIT_DEGRADED if degraded else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
