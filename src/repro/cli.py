"""Command-line interface: regenerate any paper table or figure.

Examples::

    pomtlb list
    pomtlb table2
    pomtlb fig8 --benchmarks mcf,gups --cores 2 --scale 0.2
    pomtlb campaign --output results.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (ablations, campaign, consolidation, contention,
                          details, figures, tables, tradeoff)
from .experiments.runner import ExperimentParams, SuiteRunner
from .workloads.suite import BENCHMARKS

#: Experiments addressable from the command line.  Static entries take
#: no simulation; dynamic ones run the suite through a SuiteRunner.
_STATIC = {
    "table1": lambda: tables.table1(),
    "table2": lambda: tables.table2(),
    "fig1": lambda: figures.fig1_walk_steps(),
    "fig4": lambda: figures.fig4_sram_latency(),
    "contention": lambda: contention.channel_contention(),
}

_DYNAMIC = {
    "fig2": figures.fig2_translation_cycles,
    "fig3": figures.fig3_virt_native_ratio,
    "fig8": figures.fig8_performance,
    "fig9": figures.fig9_hit_ratio,
    "fig10": figures.fig10_predictors,
    "fig11": figures.fig11_row_buffer,
    "fig12": figures.fig12_caching_ablation,
    "capacity": figures.sensitivity_capacity,
    "cores": figures.sensitivity_cores,
    "ablation-priority": ablations.ablation_tlb_priority,
    "ablation-predictor": ablations.ablation_predictor,
    "ablation-bypass": ablations.ablation_bypass,
    "tradeoff": tradeoff.tradeoff_l4_vs_tlb,
    "ablation-skewed": ablations.ablation_skewed,
    "ablation-prefetch": ablations.ablation_prefetch,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pomtlb",
        description="POM-TLB (ISCA 2017) reproduction: regenerate paper "
                    "tables and figures from simulation.")
    parser.add_argument("experiment",
                        choices=sorted(_STATIC) + sorted(_DYNAMIC)
                        + ["campaign", "consolidation", "details", "list"],
                        help="which table/figure to regenerate")
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated subset (default: all 15)")
    parser.add_argument("--cores", type=int, default=None,
                        help="core count (default: 8 or $POMTLB_CORES)")
    parser.add_argument("--refs", type=int, default=None,
                        help="measured references per core")
    parser.add_argument("--scale", type=float, default=None,
                        help="footprint scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload seed")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    parser.add_argument("--bars", metavar="COLUMN", default="",
                        help="render an ASCII bar chart of COLUMN instead "
                             "of the table")
    parser.add_argument("--output", default="",
                        help="write the report here instead of stdout")
    return parser


def _params_from_args(args: argparse.Namespace) -> ExperimentParams:
    overrides = {}
    if args.cores is not None:
        overrides["num_cores"] = args.cores
    if args.refs is not None:
        overrides["refs_per_core"] = args.refs
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    return ExperimentParams.from_env(**overrides)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.experiment == "list":
        print("static:  ", ", ".join(sorted(_STATIC)))
        print("dynamic: ", ", ".join(sorted(_DYNAMIC)), "+ campaign")
        print("benchmarks:", ", ".join(BENCHMARKS))
        return 0

    benchmarks = [b for b in args.benchmarks.split(",") if b]
    for name in benchmarks:
        if name not in BENCHMARKS:
            print(f"unknown benchmark {name!r}; see 'pomtlb list'",
                  file=sys.stderr)
            return 2

    out = open(args.output, "w") if args.output else sys.stdout
    try:
        if args.experiment == "campaign":
            campaign.run_all(_params_from_args(args), benchmarks, out=out)
        else:
            if args.experiment in _STATIC:
                report = _STATIC[args.experiment]()
            elif args.experiment == "details":
                if len(benchmarks) != 1:
                    print("details needs exactly one --benchmarks entry",
                          file=sys.stderr)
                    return 2
                runner = SuiteRunner(_params_from_args(args))
                report = details.benchmark_details(runner, benchmarks[0])
            elif args.experiment == "consolidation":
                report = consolidation.consolidation_study(
                    _params_from_args(args),
                    benchmarks or consolidation.DEFAULT_MIX)
            else:
                runner = SuiteRunner(_params_from_args(args))
                report = _DYNAMIC[args.experiment](runner, benchmarks)
            if args.json:
                out.write(report.to_json() + "\n")
            elif args.bars:
                out.write(report.render_bars(args.bars) + "\n")
            else:
                out.write(report.render() + "\n")
    finally:
        if args.output:
            out.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
