"""2-D nested page-table walk (paper Figure 1: up to 24 memory references).

In virtualized mode a guest-virtual address is translated by walking the
guest table (gVA -> gPA), but every guest-table pointer is itself a
guest-physical address that must be translated through the host table
(gPA -> hPA) before the guest PTE can be fetched.  Cold, that is
4 guest levels x (4 host refs + 1 guest ref) + 4 host refs for the final
data gPA = **24 references**.

Acceleration modelled, matching the baseline hardware the paper measures:

* a **host PSC** inside each host-dimension walk,
* a **combined guest PSC** whose entries map a gVA prefix directly to the
  *host-physical* base of the guest table, skipping both the guest upper
  levels and their nested host walks, and
* PTE caching in the data caches (via the ``pte_access`` callback).

This is the hottest non-replay loop of the simulator (every L2 TLB miss
of every scheme ends here in virtualized mode), so the walk bodies
hoist attribute lookups, split traced/untraced loops and refill the
PSCs from single tree descents; behaviour is bit-identical to the
frozen reference copy in :mod:`repro.core._refimpl.nested`.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from ..common import addr
from ..common.errors import AddressError
from ..common.stats import StatGroup
from ..obs import events
from ..obs.tracer import NULL_TRACER
from .page_table import LeafMapping, RadixPageTable
from .walk_cache import PagingStructureCache
from .walker import PteAccess

#: Worst-case reference count of one nested walk (paper Figure 1).
MAX_NESTED_REFS = 24


class NestedOutcome(NamedTuple):
    """Result of a nested walk: the end-to-end gVA -> hPA mapping."""

    cycles: int
    memory_refs: int
    host_frame: int   # host-physical frame of the guest page
    large: bool       # effective page size (guest size, host backs it)

    def translate(self, gva: int) -> int:
        return self.host_frame | addr.page_offset(gva, self.large)


class NestedWalker:
    """Walks guest and host tables, issuing every nested memory reference."""

    def __init__(self, guest_table: RadixPageTable, host_table: RadixPageTable,
                 guest_psc: PagingStructureCache, host_psc: PagingStructureCache,
                 pte_access: PteAccess, stats: StatGroup,
                 tracer=NULL_TRACER) -> None:
        self.guest_table = guest_table
        self.host_table = host_table
        self.guest_psc = guest_psc
        self.host_psc = host_psc
        self._pte_access = pte_access
        self.stats = stats
        self.trace = tracer
        self._nested_walks = stats.counter("nested_walks")
        self._nested_cycles = stats.counter("nested_cycles")
        self._nested_refs = stats.counter("nested_refs")
        # Host-physical addresses of guest table frames, memoized for the
        # combined-PSC refill.  Guest table frames are host-mapped when
        # allocated and that mapping is never changed or removed, so the
        # translation is a run constant per frame.
        self._host_base_memo = {}

    # -- host dimension ----------------------------------------------------------

    def host_translate(self, gpa: int) -> Tuple[int, int, int]:
        """Translate a guest-physical address through the host table.

        Returns ``(hpa, cycles, memory_refs)``.  This is one column of
        the paper's Figure 1 grid.
        """
        host_psc = self.host_psc
        host_table = self.host_table
        start_level, table_base, cycles = host_psc.lookup(gpa)
        try:
            if table_base is None:
                steps, leaf = host_table.walk(gpa)
            else:
                steps, leaf = host_table.walk_from(gpa, start_level,
                                                   table_base)
        except AddressError:
            self.stats.inc("host_psc_stale")
            host_psc.invalidate(gpa)
            steps, leaf = host_table.walk(gpa)
        tr = self.trace
        pte_access = self._pte_access
        refs = len(steps)
        if tr.active:
            for step in steps:
                step_cycles = pte_access(step.pte_paddr)
                cycles += step_cycles
                tr.emit(events.WALK_STEP, cycles=step_cycles, dim="host",
                        level=step.level)
        else:
            for step in steps:
                cycles += pte_access(step.pte_paddr)
        # _PrefixCache.fill inlined per level (~3 refills per host walk;
        # warm, the upper levels are already resident-and-newest and the
        # whole body is the get + two compares of the first branch).
        by_level = host_psc.by_level
        for level, base in host_table.table_bases(gpa,
                                                  2 if leaf.large else 1):
            pc = by_level[level]
            cap = pc.capacity
            if not cap:
                continue
            entries = pc._entries
            pkey = gpa >> pc.shift
            resident = entries.get(pkey)
            if resident is not None:
                if resident == base and next(reversed(entries)) == pkey:
                    continue
                del entries[pkey]
            elif len(entries) >= cap:
                del entries[next(iter(entries))]
            entries[pkey] = base
        return leaf.translate(gpa), cycles, refs

    # -- full 2-D walk ------------------------------------------------------

    def walk(self, gva: int) -> NestedOutcome:
        """Translate ``gva`` end to end (gVA -> gPA -> hPA)."""
        guest_psc = self.guest_psc
        guest_table = self.guest_table
        start_level, cached, cycles = guest_psc.lookup(gva)
        try:
            if cached is None:
                steps, leaf = guest_table.walk(gva)
            else:
                steps, leaf = guest_table.walk_from(gva, start_level,
                                                    cached[0])
        except AddressError:
            self.stats.inc("guest_psc_stale")
            guest_psc.invalidate(gva)
            cached = None
            steps, leaf = guest_table.walk(gva)
        tr = self.trace
        tracing = tr.active
        pte_access = self._pte_access
        host_translate = self.host_translate
        total_refs = 0
        first = 0
        if cached is not None:
            # Combined-PSC hit: the host address of this guest table is
            # cached, no nested host walk for it.
            gpa_base, hpa_base = cached
            step = steps[0]
            step_cycles = pte_access(hpa_base + (step.pte_paddr - gpa_base))
            cycles += step_cycles
            total_refs += 1
            if tracing:
                tr.emit(events.WALK_STEP, cycles=step_cycles, dim="guest",
                        level=step.level)
            first = 1
        for step in steps[first:]:
            pte_hpa, host_cycles, host_refs = host_translate(step.pte_paddr)
            cycles += host_cycles
            total_refs += host_refs
            step_cycles = pte_access(pte_hpa)
            cycles += step_cycles
            total_refs += 1
            if tracing:
                tr.emit(events.WALK_STEP, cycles=step_cycles, dim="guest",
                        level=step.level)
        # Final column: translate the data page's gPA through the host.
        host_frame_addr, host_cycles, host_refs = host_translate(leaf.frame)
        cycles += host_cycles
        total_refs += host_refs
        self._refill_guest_psc(gva, leaf)
        slot = self._nested_walks
        slot.value += 1
        slot.touched = True
        slot = self._nested_cycles
        slot.value += cycles
        slot.touched = True
        slot = self._nested_refs
        slot.value += total_refs
        slot.touched = True
        return NestedOutcome(cycles, total_refs, host_frame_addr, leaf.large)

    def _refill_guest_psc(self, gva: int, leaf: LeafMapping) -> None:
        """Refill the combined cache with (gPA, hPA) guest-table bases."""
        memo = self._host_base_memo
        by_level = self.guest_psc.by_level
        for level, gpa_base in self.guest_table.table_bases(
                gva, 2 if leaf.large else 1):
            value = memo.get(gpa_base)
            if value is None:
                hpa_leaf = self.host_table.lookup(gpa_base)
                if hpa_leaf is None:
                    continue
                value = memo[gpa_base] = (gpa_base,
                                          hpa_leaf.translate(gpa_base))
            # _PrefixCache.fill inlined (cf. host_translate).
            pc = by_level[level]
            cap = pc.capacity
            if not cap:
                continue
            entries = pc._entries
            pkey = gva >> pc.shift
            resident = entries.get(pkey)
            if resident is not None:
                if resident == value and next(reversed(entries)) == pkey:
                    continue
                del entries[pkey]
            elif len(entries) >= cap:
                del entries[next(iter(entries))]
            entries[pkey] = value
