"""Paging-structure caches (PSCs) — the MMU caches of Table 1.

A PSC entry caches, for a VA prefix, the base address of the
**next-level table**, letting the walker skip the upper levels of the
radix tree:

* PML4 cache: VA[47:39] -> level-3 (PDPT) table base  (skips 1 access)
* PDP cache:  VA[47:30] -> level-2 (PD) table base    (skips 2 accesses)
* PDE cache:  VA[47:21] -> level-1 (PT) table base    (skips 3 accesses)

In virtualized mode the same structure is used as a *combined* cache:
the cached table base is the **host-physical** address of the guest
table, so a hit also skips the nested host walks of the skipped guest
levels — matching how real MMU caches interact with EPT.

Capacities follow Table 1 (2 / 4 / 32 entries), fully associative, LRU.

Every page walk starts with a PSC probe, so :meth:`lookup` is unrolled
(deepest cache first) over plain insertion-ordered dicts with counter
slots resolved at construction; behaviour is bit-identical to the
frozen reference copy in :mod:`repro.core._refimpl.walk_cache`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..common import addr
from ..common.config import WalkCacheConfig
from ..common.stats import StatGroup

#: (cache name, entry count attr, VA prefix shift, walk start level on hit)
_LEVELS = (
    ("pde", "pde_entries", addr.LARGE_PAGE_SHIFT, 1),         # VA[47:21]
    ("pdp", "pdp_entries", addr.LARGE_PAGE_SHIFT + 9, 2),     # VA[47:30]
    ("pml4", "pml4_entries", addr.LARGE_PAGE_SHIFT + 18, 3),  # VA[47:39]
)

_SHIFT_PDE = _LEVELS[0][2]
_SHIFT_PDP = _LEVELS[1][2]
_SHIFT_PML4 = _LEVELS[2][2]


class _PrefixCache:
    """One fully associative LRU cache over VA prefixes.

    Recency lives in the dict's insertion order (oldest first): a hit
    re-inserts the key at the end, the victim is the first key.
    """

    __slots__ = ("capacity", "shift", "_entries")

    def __init__(self, capacity: int, shift: int) -> None:
        self.capacity = capacity
        self.shift = shift
        self._entries: Dict[int, int] = {}

    def lookup(self, vaddr: int) -> Optional[int]:
        entries = self._entries
        key = vaddr >> self.shift
        base = entries.get(key)
        if base is not None and next(reversed(entries)) != key:
            entries[key] = entries.pop(key)  # move to most-recent position
        return base

    def fill(self, vaddr: int, table_base: int) -> None:
        if self.capacity == 0:
            return
        entries = self._entries
        key = vaddr >> self.shift
        resident = entries.get(key)
        if resident is not None:
            # Already resident with the same base AND already the
            # most-recent entry: del + re-insert would rebuild the exact
            # same dict.  PML4/PDP refills hit this on nearly every walk
            # once the working set's upper levels are cached.
            if resident == table_base and next(reversed(entries)) == key:
                return
            del entries[key]  # re-insert below refreshes recency
        elif len(entries) >= self.capacity:
            del entries[next(iter(entries))]  # oldest
        entries[key] = table_base

    def invalidate(self, vaddr: int) -> None:
        self._entries.pop(vaddr >> self.shift, None)

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class PagingStructureCache:
    """The trio of MMU caches consulted before a page walk."""

    def __init__(self, config: WalkCacheConfig, stats: StatGroup) -> None:
        self.config = config
        self.stats = stats
        self._pde = _PrefixCache(config.pde_entries, _LEVELS[0][2])
        self._pdp = _PrefixCache(config.pdp_entries, _LEVELS[1][2])
        self._pml4 = _PrefixCache(config.pml4_entries, _LEVELS[2][2])
        #: level -> cache (index 0 unused); level order matches _LEVELS.
        #: Public: the walkers' refill loops index it directly, skipping
        #: the range check of :meth:`fill` (their levels come from
        #: ``table_bases`` and are 1..3 by construction).
        self.by_level = (None, self._pde, self._pdp, self._pml4)
        self._by_level = self.by_level
        self._hit_latency = config.hit_latency_cycles
        # Entry-dict aliases for :meth:`lookup` — the sub-caches never
        # rebind ``_entries`` (flush() clears it in place), so probing
        # the dicts directly skips three call frames per walk.
        self._pde_entries = self._pde._entries
        self._pdp_entries = self._pdp._entries
        self._pml4_entries = self._pml4._entries
        self._pde_hits = stats.counter("pde_hits")
        self._pdp_hits = stats.counter("pdp_hits")
        self._pml4_hits = stats.counter("pml4_hits")
        self._misses = stats.counter("misses")

    def lookup(self, vaddr: int) -> Tuple[int, Optional[int], int]:
        """Find the deepest cached table for ``vaddr``.

        Returns ``(start_level, table_base, lookup_cycles)``; when nothing
        hits, ``start_level`` is 4 (walk from the root) and ``table_base``
        is ``None``.  The cycle cost covers probing the PSC hierarchy.
        """
        cycles = self._hit_latency
        # _PrefixCache.lookup inlined per level (deepest first): probe
        # the entry dict, refresh recency on hit unless already newest.
        entries = self._pde_entries
        key = vaddr >> _SHIFT_PDE
        base = entries.get(key)
        if base is not None:
            if next(reversed(entries)) != key:
                entries[key] = entries.pop(key)
            slot = self._pde_hits
            slot.value += 1
            slot.touched = True
            return 1, base, cycles
        entries = self._pdp_entries
        key = vaddr >> _SHIFT_PDP
        base = entries.get(key)
        if base is not None:
            if next(reversed(entries)) != key:
                entries[key] = entries.pop(key)
            slot = self._pdp_hits
            slot.value += 1
            slot.touched = True
            return 2, base, cycles
        entries = self._pml4_entries
        key = vaddr >> _SHIFT_PML4
        base = entries.get(key)
        if base is not None:
            if next(reversed(entries)) != key:
                entries[key] = entries.pop(key)
            slot = self._pml4_hits
            slot.value += 1
            slot.touched = True
            return 3, base, cycles
        slot = self._misses
        slot.value += 1
        slot.touched = True
        return addr.RADIX_LEVELS, None, cycles

    def fill(self, vaddr: int, level: int, table_base: int) -> None:
        """Cache the base of the level-``level`` table covering ``vaddr``."""
        if not 1 <= level <= 3:
            raise ValueError(f"PSCs cache table levels 1..3, got {level}")
        self._by_level[level].fill(vaddr, table_base)

    def invalidate(self, vaddr: int) -> None:
        """Drop every prefix entry covering ``vaddr`` (shootdown)."""
        self._pde.invalidate(vaddr)
        self._pdp.invalidate(vaddr)
        self._pml4.invalidate(vaddr)

    def flush(self) -> None:
        self._pde.flush()
        self._pdp.flush()
        self._pml4.flush()

    def sizes(self) -> dict:
        """Occupancy per sub-cache (tests and debugging)."""
        return {"pde": len(self._pde), "pdp": len(self._pdp),
                "pml4": len(self._pml4)}
