"""Native (1-D) hardware page-table walker.

Used directly in bare-metal mode and as the host-dimension helper of the
nested walker.  Every PTE reference goes through the caller-supplied
``pte_access`` callback (the data-cache hierarchy), so walk cost reflects
PTE caching exactly as in the baseline the paper measures against.

The walk loop hoists its attribute lookups, splits the traced and
untraced PTE loops, refills the PSC from a single tree descent and
bumps its counters through resolved slots; behaviour is bit-identical
to the frozen reference copy in :mod:`repro.core._refimpl.walker`.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from ..common import addr
from ..common.errors import AddressError
from ..common.stats import StatGroup
from ..obs import events
from ..obs.tracer import NULL_TRACER
from .page_table import LeafMapping, RadixPageTable
from .walk_cache import PagingStructureCache

#: PTE access callback: physical address -> CPU cycles.
PteAccess = Callable[[int], int]


class WalkOutcome(NamedTuple):
    """Timing and result of one table walk."""

    cycles: int
    memory_refs: int
    leaf: LeafMapping

    def translate(self, vaddr: int) -> int:
        return self.leaf.translate(vaddr)


class NativeWalker:
    """Walks one radix table, accelerated by a paging-structure cache."""

    def __init__(self, page_table: RadixPageTable, psc: PagingStructureCache,
                 pte_access: PteAccess, stats: StatGroup,
                 tracer=NULL_TRACER) -> None:
        self.page_table = page_table
        self.psc = psc
        self._pte_access = pte_access
        self.stats = stats
        self.trace = tracer
        self._walks = stats.counter("walks")
        self._walk_cycles = stats.counter("walk_cycles")
        self._walk_refs = stats.counter("walk_refs")

    def walk(self, vaddr: int) -> WalkOutcome:
        """Translate ``vaddr``; cycles include PSC lookup and PTE accesses."""
        psc = self.psc
        page_table = self.page_table
        start_level, table_base, cycles = psc.lookup(vaddr)
        try:
            if table_base is None:
                steps, leaf = page_table.walk(vaddr)
            else:
                steps, leaf = page_table.walk_from(vaddr, start_level,
                                                   table_base)
        except AddressError:
            # Stale PSC entry (mapping changed under it): retry from root.
            self.stats.inc("psc_stale")
            psc.invalidate(vaddr)
            steps, leaf = page_table.walk(vaddr)
        tr = self.trace
        pte_access = self._pte_access
        refs = len(steps)
        if tr.active:
            for step in steps:
                step_cycles = pte_access(step.pte_paddr)
                cycles += step_cycles
                tr.emit(events.WALK_STEP, cycles=step_cycles, dim="native",
                        level=step.level)
        else:
            for step in steps:
                cycles += pte_access(step.pte_paddr)
        by_level = psc.by_level
        for level, base in page_table.table_bases(vaddr,
                                                  2 if leaf.large else 1):
            by_level[level].fill(vaddr, base)
        slot = self._walks
        slot.value += 1
        slot.touched = True
        slot = self._walk_cycles
        slot.value += cycles
        slot.touched = True
        slot = self._walk_refs
        slot.value += refs
        slot.touched = True
        return WalkOutcome(cycles, refs, leaf)
