"""Radix page tables, paging-structure caches, native and nested walkers."""

from .nested import MAX_NESTED_REFS, NestedOutcome, NestedWalker
from .page_table import LeafMapping, RadixPageTable, WalkStep
from .walk_cache import PagingStructureCache
from .walker import NativeWalker, WalkOutcome

__all__ = [
    "MAX_NESTED_REFS",
    "LeafMapping",
    "NativeWalker",
    "NestedOutcome",
    "NestedWalker",
    "PagingStructureCache",
    "RadixPageTable",
    "WalkOutcome",
    "WalkStep",
]
