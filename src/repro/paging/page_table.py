"""x86-64-style 4-level radix page table.

One :class:`RadixPageTable` maps an input address space onto an output
address space — used twice in virtualized mode:

* the **guest** table maps gVA -> gPA, its table frames allocated from
  guest-physical memory, and
* the **host** table maps gPA -> hPA, its table frames allocated from
  host-physical memory.

Tables are modelled at entry granularity so the walkers can issue the
*exact* memory references of a hardware walk: every level touched yields
one PTE address (``table base + 8 * index``) that goes through the data
caches and DRAM.

Levels follow the paper's Figure 1 numbering: level 4 = PML4 (root),
3 = PDPT, 2 = PD, 1 = PT.  A 2 MiB mapping terminates at level 2.

This module is on the nested-walk hot path (a cold 2-D walk touches up
to 24 table entries), so the per-level index extraction is inlined and
the walk results are NamedTuples; behaviour is bit-identical to the
frozen reference copy in :mod:`repro.core._refimpl.page_table`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from ..common import addr
from ..common.errors import AddressError, TranslationFault

PTE_BYTES = 8

#: VA shift of the 9-bit index at each level (index 0 unused).
_LEVEL_SHIFT = tuple(
    None if level == 0
    else addr.SMALL_PAGE_SHIFT + addr.RADIX_LEVEL_BITS * (level - 1)
    for level in range(addr.RADIX_LEVELS + 1))
_INDEX_MASK = addr.ENTRIES_PER_TABLE - 1
_ROOT_LEVEL = addr.RADIX_LEVELS
_SHIFT_SMALL = addr.SMALL_PAGE_SHIFT
_SHIFT_LARGE = addr.LARGE_PAGE_SHIFT

#: signature of a frame allocator: returns the base address of a fresh
#: 4 KiB frame in the table's output address space.
FrameAllocator = Callable[[], int]


class LeafMapping(NamedTuple):
    """Result of a successful walk: the mapped frame and its size."""

    frame: int  # frame base address in the output address space
    large: bool

    def translate(self, vaddr: int) -> int:
        """Apply the mapping to a full input address."""
        return self.frame | addr.page_offset(vaddr, self.large)


class WalkStep(NamedTuple):
    """One memory reference of a table walk."""

    level: int       # 4 = PML4 .. 1 = PT
    pte_paddr: int   # address of the entry in the output address space


class _TableNode:
    """One 4 KiB table: 512 entries, each a child node or a leaf."""

    __slots__ = ("base", "children", "leaves")

    def __init__(self, base: int) -> None:
        self.base = base
        self.children: Dict[int, "_TableNode"] = {}
        self.leaves: Dict[int, LeafMapping] = {}

    def entry_paddr(self, index: int) -> int:
        return self.base + PTE_BYTES * index


class RadixPageTable:
    """A 4-level radix tree with explicit table frame addresses."""

    def __init__(self, frame_allocator: FrameAllocator, name: str = "pt") -> None:
        self.name = name
        self._alloc = frame_allocator
        self._root = _TableNode(self._alloc())
        self._mapped_small = 0
        self._mapped_large = 0
        # Memoized complete table_bases() descents.  Safe because table
        # nodes are never deleted or relocated (unmap_page removes only
        # leaves; map_page reuses existing nodes), so a complete
        # (level, base) list for a VA prefix can never change.
        self._bases_memo: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        # Memoized successful walk_from() results, keyed by
        # (page-granular VA prefix, start_level, table_base).  Two tiers
        # so every offset inside a 2 MiB mapping shares one entry.  A
        # successful walk can only go stale when its leaf is replaced or
        # removed — map_page over an existing leaf and unmap_page clear
        # both memos; new mappings need no action (an address that now
        # resolves previously faulted, and faults are never memoized).
        # table_base lives in the key, so the stale-base AddressError
        # path still takes the uncached walk.
        self._walk_memo_small: Dict[Tuple[int, int, int],
                                    Tuple[List[WalkStep], LeafMapping]] = {}
        self._walk_memo_large: Dict[Tuple[int, int, int],
                                    Tuple[List[WalkStep], LeafMapping]] = {}

    @property
    def root_base(self) -> int:
        """Address of the root (PML4) table frame — the CR3 analogue."""
        return self._root.base

    # -- construction --------------------------------------------------------

    def map_page(self, vaddr: int, frame: int, large: bool = False,
                 writable: bool = True) -> None:
        """Install a mapping for the page containing ``vaddr``.

        ``frame`` must be aligned to the page size.  Re-mapping an already
        mapped page replaces the leaf (the OS changing a mapping).
        """
        if frame & (addr.page_size(large) - 1):
            raise AddressError(
                f"frame {frame:#x} not aligned to {'2MiB' if large else '4KiB'}")
        leaf_level = 2 if large else 1
        node = self._root
        for level in range(_ROOT_LEVEL, leaf_level, -1):
            index = (vaddr >> _LEVEL_SHIFT[level]) & _INDEX_MASK
            if index in node.leaves:
                raise AddressError(
                    f"{self.name}: VA {vaddr:#x} already covered by a large page")
            child = node.children.get(index)
            if child is None:
                child = _TableNode(self._alloc())
                node.children[index] = child
            node = child
        index = (vaddr >> _LEVEL_SHIFT[leaf_level]) & _INDEX_MASK
        if large and index in node.children:
            raise AddressError(
                f"{self.name}: VA {vaddr:#x} already covered by small pages")
        if index not in node.leaves:
            if large:
                self._mapped_large += 1
            else:
                self._mapped_small += 1
        elif self._walk_memo_small or self._walk_memo_large:
            # Re-mapping replaces a leaf some memoized walk may end at.
            self._walk_memo_small.clear()
            self._walk_memo_large.clear()
        node.leaves[index] = LeafMapping(frame=frame, large=large)

    def unmap_page(self, vaddr: int, large: bool = False) -> bool:
        """Remove the leaf for the page containing ``vaddr``."""
        leaf_level = 2 if large else 1
        node = self._root
        for level in range(_ROOT_LEVEL, leaf_level, -1):
            node = node.children.get((vaddr >> _LEVEL_SHIFT[level]) & _INDEX_MASK)
            if node is None:
                return False
        index = (vaddr >> _LEVEL_SHIFT[leaf_level]) & _INDEX_MASK
        if index in node.leaves:
            del node.leaves[index]
            if large:
                self._mapped_large -= 1
            else:
                self._mapped_small -= 1
            self._walk_memo_small.clear()
            self._walk_memo_large.clear()
            return True
        return False

    # -- walking ------------------------------------------------------------

    def walk(self, vaddr: int) -> Tuple[List[WalkStep], LeafMapping]:
        """Full walk from the root; returns the steps and the leaf.

        Raises :class:`TranslationFault` when the address is unmapped.
        """
        return self.walk_from(vaddr, _ROOT_LEVEL, self._root.base)

    def walk_from(self, vaddr: int, start_level: int,
                  table_base: int) -> Tuple[List[WalkStep], LeafMapping]:
        """Walk starting at ``start_level`` (a PSC hit skips upper levels).

        ``table_base`` must be the base of the level-``start_level`` table
        covering ``vaddr`` — i.e. what the PSC cached.
        """
        cached = self._walk_memo_large.get(
            (vaddr >> _SHIFT_LARGE, start_level, table_base))
        if cached is None:
            cached = self._walk_memo_small.get(
                (vaddr >> _SHIFT_SMALL, start_level, table_base))
        if cached is not None:
            return cached
        name = self.name
        node = self._root
        for level in range(_ROOT_LEVEL, start_level, -1):
            node = node.children.get((vaddr >> _LEVEL_SHIFT[level]) & _INDEX_MASK)
            if node is None:
                raise TranslationFault(vaddr, space=name)
        if node.base != table_base:
            raise AddressError(
                f"{name}: stale table base {table_base:#x} at level {start_level}")
        steps: List[WalkStep] = []
        append = steps.append
        level = start_level
        while True:
            index = (vaddr >> _LEVEL_SHIFT[level]) & _INDEX_MASK
            append(WalkStep(level, node.base + PTE_BYTES * index))
            leaf = node.leaves.get(index)
            if leaf is not None:
                if level != (2 if leaf.large else 1):
                    raise AddressError(
                        f"{name}: leaf at wrong level {level}")
                result = (steps, leaf)
                if leaf.large:
                    self._walk_memo_large[
                        (vaddr >> _SHIFT_LARGE, start_level, table_base)] = result
                else:
                    self._walk_memo_small[
                        (vaddr >> _SHIFT_SMALL, start_level, table_base)] = result
                return result
            node = node.children.get(index)
            if node is None:
                raise TranslationFault(vaddr, space=name)
            level -= 1

    def table_base(self, vaddr: int, level: int) -> Optional[int]:
        """Base address of the level-``level`` table covering ``vaddr``.

        Used when refilling a paging-structure cache after a walk.  The
        returned table is the one whose entries are indexed at ``level``;
        ``None`` when the covering table does not exist (or ``level`` is
        the root, which needs no cache).
        """
        node = self._root
        for lvl in range(_ROOT_LEVEL, level, -1):
            node = node.children.get((vaddr >> _LEVEL_SHIFT[lvl]) & _INDEX_MASK)
            if node is None:
                return None
        return node.base

    def table_bases(self, vaddr: int, min_level: int) -> List[Tuple[int, int]]:
        """``(level, base)`` of every covering table, level 3 down to
        ``min_level``, in one descent.

        Equivalent to calling :meth:`table_base` once per level (levels
        whose covering table does not exist are skipped), but walks the
        tree once instead of once per level — the PSC-refill loops of
        the walkers call this after every page walk.  Results are in
        ascending level order.
        """
        memo_key = (vaddr >> _LEVEL_SHIFT[min_level + 1], min_level)
        bases = self._bases_memo.get(memo_key)
        if bases is not None:
            return bases
        bases = []
        node = self._root
        for lvl in range(_ROOT_LEVEL, min_level, -1):
            node = node.children.get((vaddr >> _LEVEL_SHIFT[lvl]) & _INDEX_MASK)
            if node is None:
                break
            bases.append((lvl - 1, node.base))
        bases.reverse()
        if len(bases) == _ROOT_LEVEL - min_level:
            # Complete down to min_level: every node on the path exists
            # and node bases are immutable, so this can be cached.
            # Partial results could grow as tables are created; those
            # are recomputed (they only occur off the post-walk path).
            self._bases_memo[memo_key] = bases
        return bases

    # -- functional lookup (no timing) ----------------------------------------

    def lookup(self, vaddr: int) -> Optional[LeafMapping]:
        """Translate without recording steps; ``None`` when unmapped."""
        node = self._root
        for level in range(_ROOT_LEVEL, 0, -1):
            index = (vaddr >> _LEVEL_SHIFT[level]) & _INDEX_MASK
            leaf = node.leaves.get(index)
            if leaf is not None:
                return leaf
            node = node.children.get(index)
            if node is None:
                return None
        return None

    # -- introspection -----------------------------------------------------

    @property
    def mapped_pages(self) -> Tuple[int, int]:
        """(small, large) leaf counts."""
        return self._mapped_small, self._mapped_large

    def table_count(self) -> int:
        """Number of table frames allocated (root included)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    def table_frames(self) -> List[int]:
        """Base addresses of every table frame (root included).

        Table nodes are never deleted or relocated, so this is exactly
        the set of frames the allocator handed out — what a teardown
        must return to the allocator's free list.
        """
        frames: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            frames.append(node.base)
            stack.extend(node.children.values())
        return frames
