"""Shared-memory workload arena: one packed copy, many worker attaches.

The campaign parent compiles each distinct workload once
(:mod:`repro.workloads.cache`), publishes its packed container into a
POSIX shared-memory segment, and hands workers only the segment *name*
(a :class:`WorkloadRef`).  Workers attach and decode zero-copy — the
columns are ``memoryview`` casts straight over the shared pages, so a
pool of N workers replays one physical copy of the trace instead of N
regenerated ones.

Lifecycle rules (tested in ``tests/resilience/test_shm_lifecycle.py``):

* the parent owns every segment — :meth:`WorkloadArena.release` unlinks
  them all and runs in the campaign's ``finally``, so completion,
  ``WorkerCrash``, timeouts and Ctrl-C all clean up;
* workers ``close()`` their attach but never unlink;
* segment names embed the parent PID, so two concurrent campaigns on
  one host cannot collide.

CPython 3.11 quirk: ``SharedMemory`` registers every attach with the
``resource_tracker``.  Under the default ``fork`` start method the
child inherits the parent's tracker, which dedups the re-register and
behaves; a child that *starts its own* tracker (spawn) would unlink the
segment when it exits, destroying it for everyone else.
:func:`attach_container` detects which case it is in and unregisters
the child-side registration only when the tracker was not inherited.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, NamedTuple, Optional

from .packed import DecodedContainer, decode_container, encode_workload
from ..common.errors import PackedTraceError

try:
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - ancient pythons only
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]


def shm_available() -> bool:
    """Whether this platform offers POSIX shared memory."""
    return shared_memory is not None


class WorkloadRef(NamedTuple):
    """Picklable pointer to a compiled workload a worker can open.

    ``shm_name`` names a shared-memory segment published by the parent's
    :class:`WorkloadArena`; ``path`` is the on-disk cache entry fallback
    used when shared memory is unavailable (or in serial mode, where the
    parent's container is passed directly and the ref is unused).
    """

    benchmark: str
    key: str
    path: str = ""
    shm_name: str = ""


def _tracker_inherited() -> bool:
    """True when this process shares the parent's resource tracker.

    Must be probed *before* ``SharedMemory(...)`` runs, because the
    attach itself lazily starts a tracker if none exists.
    """
    if resource_tracker is None:  # pragma: no cover
        return True
    return resource_tracker._resource_tracker._fd is not None


def attach_container(ref: WorkloadRef) -> DecodedContainer:
    """Open the workload behind ``ref`` inside a worker, zero-copy.

    Prefers the shared-memory segment; falls back to mmap-loading the
    cache file when the ref carries no segment name.  The returned
    container's ``backing`` closes the attach (never unlinks) — workers
    release it after each run.
    """
    if ref.shm_name and shm_available():
        inherited = _tracker_inherited()
        try:
            segment = shared_memory.SharedMemory(name=ref.shm_name)
        except FileNotFoundError:
            raise PackedTraceError(
                "shared workload segment vanished (parent released it?)",
                path=ref.shm_name) from None
        if not inherited:
            # This attach registered with a tracker the child started
            # itself; left in place, tracker shutdown would *unlink* the
            # parent-owned segment.  The parent remains responsible.
            try:  # pragma: no cover - spawn-start-method path
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
        return decode_container(segment.buf, path=ref.shm_name,
                                owner=segment)
    if ref.path:
        from .packed import load_packed

        return load_packed(ref.path)
    raise PackedTraceError(f"workload ref for {ref.benchmark!r} carries "
                           "neither a segment nor a cache path")


class WorkloadArena:
    """Parent-side registry of shared-memory workload segments.

    ``publish`` copies one packed container into a fresh segment and
    returns its name; ``release`` closes **and unlinks** everything.
    Always call ``release`` in a ``finally`` — segments outlive the
    process otherwise (they are files under /dev/shm).
    """

    def __init__(self) -> None:
        self._segments: Dict[str, "shared_memory.SharedMemory"] = {}

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def names(self) -> List[str]:
        return list(self._segments)

    def publish(self, key: str, blob: bytes) -> str:
        """Copy ``blob`` into a new segment; returns the segment name."""
        if not shm_available():  # pragma: no cover - posix-only fallback
            raise PackedTraceError("shared memory unavailable on this "
                                   "platform")
        name = f"pomtlb-wl-{key[:12]}-{os.getpid()}"
        if name in self._segments:
            return name
        try:
            segment = shared_memory.SharedMemory(name=name, create=True,
                                                 size=len(blob))
        except FileExistsError:
            # Leftover from a killed earlier campaign of this same PID
            # (PID reuse): adopt by replacement.
            stale = shared_memory.SharedMemory(name=name)
            stale.close()
            stale.unlink()
            segment = shared_memory.SharedMemory(name=name, create=True,
                                                 size=len(blob))
        segment.buf[:len(blob)] = blob
        self._segments[key] = segment
        return name

    def publish_workload(self, key: str, workload,
                         validated: bool = False) -> str:
        """Encode + publish a suite workload (see :meth:`publish`)."""
        return self.publish(key, encode_workload(workload,
                                                 validated=validated))

    def release(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        segments = list(self._segments.values())
        self._segments.clear()
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - exported views remain
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "WorkloadArena":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def segment_exists(name: str) -> bool:
    """Whether a shared-memory segment ``name`` currently exists.

    Used by lifecycle tests; attaches and immediately closes without
    unlinking or leaving a tracker registration behind.
    """
    if not shm_available():  # pragma: no cover
        return False
    inherited = _tracker_inherited()
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    if not inherited:  # pragma: no cover - spawn path
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
    segment.close()
    return True
