"""The benchmark suite: 15 workloads with the paper's Table 2 anchors.

Each :class:`BenchmarkProfile` couples

* the **measured baseline characteristics** from Table 2 of the paper
  (translation overhead %, cycles per L2 TLB miss, native and
  virtualized, large-page fraction) — these anchor the Eq. 2-5
  performance model exactly as the paper anchors it on Skylake perf
  counters; and
* a **synthetic trace recipe** — a weighted mixture of access-pattern
  regions whose footprints, skew and spatial density imitate the
  benchmark's TLB-relevant behaviour (see DESIGN.md for the
  substitution rationale).

SPEC workloads run in SPECrate mode (one copy per core, private address
spaces); PARSEC and the graph workloads run multithreaded (all cores
share one address space), matching Section 3.1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..common import addr
from ..common.rng import make_rng
from ..core.perfmodel import BaselineAnchor
from . import graphgen, synthetic
from .trace import CoreStream, MemoryReference

#: All patterns the suite can reference.
PATTERNS = dict(synthetic.PATTERNS)
PATTERNS["graph"] = graphgen.graph_traversal
PATTERNS["bfs"] = graphgen.bfs_bursts


@dataclass(frozen=True)
class Region:
    """One address-space region of a benchmark."""

    name: str
    pages: int            # footprint in 4 KiB pages (at scale 1.0)
    weight: float         # fraction of page-visits hitting this region
    pattern: str          # key into PATTERNS
    lines_per_visit: int = 1  # cache lines touched per page visit
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class BenchmarkProfile:
    """Trace recipe + measured baseline anchors for one benchmark."""

    name: str
    regions: Tuple[Region, ...]
    inst_per_ref: int
    write_fraction: float
    multithreaded: bool
    # Table 2 rows:
    overhead_native_pct: float
    overhead_virtual_pct: float
    cycles_per_miss_native: float
    cycles_per_miss_virtual: float
    large_page_fraction_pct: float

    def anchor(self, virtualized: bool = True) -> BaselineAnchor:
        """The Eq. 2-5 baseline anchor (measured, from Table 2)."""
        if virtualized:
            return BaselineAnchor(self.overhead_virtual_pct,
                                  self.cycles_per_miss_virtual)
        return BaselineAnchor(self.overhead_native_pct,
                              self.cycles_per_miss_native)

    @property
    def thp_large_fraction(self) -> float:
        return self.large_page_fraction_pct / 100.0

    def footprint_pages(self, scale: float = 1.0) -> int:
        return sum(max(16, int(r.pages * scale)) for r in self.regions)

    # -- trace synthesis ----------------------------------------------------

    def build(self, num_cores: int, refs_per_core: int, seed: int = 0,
              scale: float = 1.0) -> "Workload":
        """Generate per-core streams plus their warmup prologue.

        The prologue touches every page of every region once in address
        order, so a steady-state measurement (``warmup_references``)
        excludes compulsory misses — the paper's 20-billion-instruction
        runs are overwhelmingly steady state.
        """
        streams: List[CoreStream] = []
        warmup_total = 0
        warmup_by_core: Dict[int, int] = {}
        for core in range(num_cores):
            if self.multithreaded:
                vm_id, asid, space_seed = 0, 1, 0
            else:
                vm_id, asid, space_seed = 0, core + 1, core + 1
            rng = make_rng(seed, f"{self.name}:core{core}")
            # ASLR: each address space lays its regions out at different
            # page offsets.  Without this, SPECrate copies (same binary,
            # same VM) would alias onto the same POM-TLB sets — Eq. 1
            # only XORs the VM ID into the index.  Multithreaded
            # workloads share one space and therefore one layout.
            layout_rng = make_rng(seed, f"{self.name}:aslr:{asid}")
            bases = [((i + 1) << 32) + layout_rng.randrange(1 << 18) * 4096
                     for i in range(len(self.regions))]
            # Threads of a shared address space only need one warmup
            # prologue — core 0 touches every page for all of them.  The
            # other threads start their instruction clocks after it (they
            # would be waiting on initialisation in the real program), so
            # the interleaved merge keeps warmup strictly before the
            # measured phase.
            prologue = not (self.multithreaded and core > 0)
            icount_start = (0 if prologue
                            else self.footprint_pages(scale) * self.inst_per_ref)
            refs, warmup = self._stream_refs(rng, refs_per_core, scale,
                                             stagger=core, bases=bases,
                                             prologue=prologue,
                                             icount_start=icount_start)
            warmup_total += warmup
            if warmup:
                warmup_by_core[core] = warmup
            streams.append(CoreStream(core=core, vm_id=vm_id, asid=asid,
                                      references=refs))
        return Workload(profile=self, streams=streams,
                        warmup_references=warmup_total, seed=seed,
                        scale=scale, warmup_by_core=warmup_by_core)

    def _stream_refs(self, rng: random.Random, refs: int, scale: float,
                     stagger: int, bases: List[int], prologue: bool = True,
                     icount_start: int = 0) -> Tuple[List[MemoryReference], int]:
        regions = [(r, max(16, int(r.pages * scale))) for r in self.regions]
        out: List[MemoryReference] = []
        icount = icount_start
        ipr = self.inst_per_ref
        wfrac = self.write_fraction

        # Warmup prologue: sequential touch of every page, one line each.
        if prologue:
            for index, (region, pages) in enumerate(regions):
                base = bases[index]
                for page in range(pages):
                    icount += ipr
                    out.append(MemoryReference(icount, base + page * 4096, False))
        warmup = len(out)

        # Measured phase: weighted interleave of the region generators.
        generators = []
        for index, (region, pages) in enumerate(regions):
            gen = _pattern(region.pattern, pages, rng, dict(region.params))
            # Stagger multithreaded workers into different phases of the
            # same pattern so they do not move in lockstep.
            for _ in range(stagger * 97 % max(1, pages)):
                next(gen)
            generators.append((region, pages, bases[index], gen))
        weights = [r.weight for r, _p, _b, _g in generators]
        picks = rng.choices(range(len(generators)), weights=weights,
                            k=refs)  # upper bound; visits emit >=1 ref
        emitted = 0
        pick_iter = iter(picks)
        while emitted < refs:
            try:
                choice = next(pick_iter)
            except StopIteration:
                pick_iter = iter(rng.choices(range(len(generators)),
                                             weights=weights, k=refs))
                continue
            region, pages, base, gen = generators[choice]
            page = next(gen)
            page_base = base + page * 4096
            sequentialish = region.pattern in ("sequential", "strided")
            for line in range(region.lines_per_visit):
                icount += ipr
                offset = (line * 64 if sequentialish
                          else rng.randrange(64) * 64)
                out.append(MemoryReference(
                    icount, page_base + (offset & 4095),
                    rng.random() < wfrac))
                emitted += 1
                if emitted >= refs:
                    break
        return out, warmup



def _pattern(name: str, pages: int, rng: random.Random,
             params: dict) -> Iterator[int]:
    try:
        factory = PATTERNS[name]
    except KeyError:
        raise ValueError(f"unknown pattern {name!r}") from None
    return factory(pages, rng, params)


@dataclass
class Workload:
    """A generated multi-core workload ready for :meth:`Machine.run`."""

    profile: BenchmarkProfile
    streams: List[CoreStream]
    warmup_references: int
    seed: int
    scale: float
    #: per-core prologue lengths (pass to Machine.run for mixed clocks)
    warmup_by_core: Dict[int, int] = field(default_factory=dict)

    @property
    def references(self) -> int:
        return sum(len(s) for s in self.streams)


def _profile(name: str, regions, ipr: int, wfrac: float, mt: bool,
             table2: Tuple[float, float, float, float, float]) -> BenchmarkProfile:
    ov_n, ov_v, cpm_n, cpm_v, large = table2
    return BenchmarkProfile(
        name=name, regions=tuple(regions), inst_per_ref=ipr,
        write_fraction=wfrac, multithreaded=mt,
        overhead_native_pct=ov_n, overhead_virtual_pct=ov_v,
        cycles_per_miss_native=cpm_n, cycles_per_miss_virtual=cpm_v,
        large_page_fraction_pct=large)


# Footprints are scale-1.0 defaults sized for tractable pure-Python runs;
# experiments pass a larger scale for closer-to-paper footprints.
SUITE: Dict[str, BenchmarkProfile] = {p.name: p for p in (
    _profile("astar", [
        # The open list is re-scanned constantly and slightly exceeds
        # the L2 TLB's reach: the classic hot thrash band that gives
        # astar its 16% translation overhead at ~114 cycles/miss.
        Region("openlist", 6144, 0.45, "sequential", 2),
        Region("heap", 10240, 0.30, "zipf", 4, {"alpha": 1.2}),
        Region("graphmap", 4096, 0.15, "pointer", 2),
        Region("arrays", 4096, 0.10, "sequential", 16),
    ], ipr=8, wfrac=0.25, mt=False, table2=(13.89, 16.08, 98, 114, 41.7)),
    _profile("bwaves", [
        Region("grid", 16384, 0.75, "sequential", 32),
        Region("grid2", 6144, 0.25, "strided", 8, {"stride": 129}),
    ], ipr=6, wfrac=0.30, mt=False, table2=(0.73, 7.70, 128, 151, 0.8)),
    _profile("canneal", [
        Region("netlist", 14336, 0.55, "pointer", 2),
        Region("elements", 4096, 0.45, "zipf", 4, {"alpha": 1.1}),
    ], ipr=10, wfrac=0.30, mt=True, table2=(3.19, 6.34, 53, 61, 16.0)),
    _profile("ccomponent", [
        Region("graph", 20480, 1.00, "graph", 1,
               {"alpha": 0.5, "shuffle": True, "vertex_fraction": 0.2}),
    ], ipr=8, wfrac=0.20, mt=True, table2=(0.73, 7.40, 44, 1158, 50.0)),
    _profile("gcc", [
        Region("ir", 8192, 0.70, "zipf", 8, {"alpha": 1.3}),
        Region("text", 4096, 0.30, "sequential", 16),
    ], ipr=12, wfrac=0.35, mt=False, table2=(0.30, 12.12, 46, 88, 29.0)),
    _profile("GemsFDTD", [
        # Boundary updates revisit a band of the grid every timestep.
        Region("boundary", 6144, 0.35, "sequential", 2),
        Region("grid", 16384, 0.40, "strided", 8, {"stride": 513}),
        Region("fields", 6144, 0.25, "sequential", 32),
    ], ipr=7, wfrac=0.35, mt=False, table2=(10.58, 16.01, 129, 133, 71.0)),
    _profile("graph500", [
        Region("graph", 18432, 1.00, "bfs", 2,
               {"window_pages": 64, "revisits": 3, "alpha": 0.5}),
    ], ipr=9, wfrac=0.20, mt=True, table2=(1.03, 7.66, 79, 80, 7.0)),
    _profile("gups", [
        Region("table", 12288, 0.85, "random", 1),
        Region("index", 2048, 0.15, "sequential", 16),
    ], ipr=5, wfrac=0.50, mt=False, table2=(12.20, 17.20, 43, 70, 2.59)),
    _profile("lbm", [
        Region("lattice", 16384, 0.85, "sequential", 48),
        Region("tmp", 6144, 0.15, "strided", 8, {"stride": 33}),
    ], ipr=6, wfrac=0.40, mt=False, table2=(0.05, 12.02, 110, 290, 57.4)),
    _profile("libquantum", [
        Region("state", 12288, 0.95, "sequential", 64),
        Region("gates", 1024, 0.05, "zipf", 8, {"alpha": 0.8}),
    ], ipr=8, wfrac=0.30, mt=False, table2=(0.02, 7.37, 70, 75, 32.9)),
    _profile("mcf", [
        Region("network", 12288, 0.45, "pointer", 2),
        Region("arcs", 8192, 0.55, "zipf", 4, {"alpha": 1.1}),
    ], ipr=7, wfrac=0.25, mt=False, table2=(10.32, 19.01, 66, 169, 60.7)),
    _profile("pagerank", [
        Region("graph", 18432, 1.00, "graph", 2,
               {"alpha": 0.9, "shuffle": False, "vertex_fraction": 0.3}),
    ], ipr=8, wfrac=0.25, mt=True, table2=(4.07, 6.96, 51, 61, 60.0)),
    _profile("soplex", [
        # Simplex iterations sweep the active columns every pivot: a
        # hot band just past the L2 TLB, plus a skewed matrix heap.
        Region("cols", 6144, 0.40, "strided", 2, {"stride": 3}),
        Region("matrix", 10240, 0.40, "zipf", 4, {"alpha": 1.2}),
        Region("rhs", 4096, 0.20, "sequential", 32),
    ], ipr=8, wfrac=0.30, mt=False, table2=(4.16, 17.07, 144, 145, 12.3)),
    _profile("streamcluster", [
        Region("points", 24576, 0.95, "sequential", 64),
        Region("centers", 512, 0.05, "zipf", 8, {"alpha": 0.8}),
    ], ipr=6, wfrac=0.15, mt=True, table2=(0.07, 2.11, 74, 76, 87.2)),
    _profile("zeusmp", [
        Region("grid", 12288, 0.60, "strided", 16, {"stride": 65}),
        Region("bnd", 8192, 0.40, "sequential", 32),
    ], ipr=7, wfrac=0.35, mt=False, table2=(0.01, 10.22, 136, 137, 72.1)),
)}

#: Suite order used by every figure (matches the paper's x-axes).
BENCHMARKS: List[str] = list(SUITE)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark by name with a helpful error."""
    try:
        return SUITE[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; available: {BENCHMARKS}") from None
