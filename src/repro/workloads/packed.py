"""Packed binary trace format: columnar streams for campaign-scale replay.

The text ``#pomtlb-trace`` format (:mod:`repro.workloads.trace`) is
greppable but expensive to hold: a :class:`MemoryReference` namedtuple
costs ~120 bytes of heap per record and must be re-parsed on every load.
This module stores the same records as three per-stream *columns* —
``icount`` and ``vaddr`` as little-endian 64-bit arrays plus a write
bitmap at one bit per record (17 bytes/record total) — inside a single
fixed-header container that can be

* written atomically to the on-disk workload cache
  (:mod:`repro.workloads.cache`),
* memory-mapped or :class:`~multiprocessing.shared_memory.SharedMemory`-
  attached **zero-copy** (decoding builds ``memoryview`` casts over the
  source buffer; no per-record object is materialised), and
* replayed directly by the simulator's hot loop
  (:meth:`repro.core.system.Machine.run` reads the columns without
  constructing ``MemoryReference`` tuples).

Round-tripping is exact: packing then unpacking reproduces the original
records bit for bit, which is what lets the campaign prove byte-identical
reports whether a run replays a generated, packed, or shared-memory
workload (tests/integration/test_workload_equivalence.py).

Container layout (all integers little-endian)::

    header   "<8sHHIIqdQQH"  magic, version, flags, nstreams, crc32,
                             seed, scale, total_refs, total_warmup,
                             benchmark-name length
    name     UTF-8 benchmark name (may be empty for bare trace files)
    table    nstreams x "<iiiQQ"  core, vm, asid, count, warmup
    payload  per stream: icounts (count x u64), vaddrs (count x u64),
             write bitmap ((count+7)//8 bytes, LSB-first)

``flags`` bit 0 records that every stream passed
:func:`~repro.workloads.trace.validate_stream` before encoding; loaders
verify the CRC-32 (computed over the whole container with the CRC field
zeroed, so header damage is caught too) and propagate the flag so cache
hits skip re-validation.  A ``.gz`` suffix gzips the whole
container (decoded from a decompressed copy — gzip forfeits zero-copy).
"""

from __future__ import annotations

import gzip
import mmap
import struct
import sys
import zlib
from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..common.errors import PackedTraceError
from ..common.fileio import atomic_write_bytes
from .trace import MemoryReference

#: Bumped when the container layout changes; loaders reject other
#: versions, and the workload-cache key embeds it so a format change
#: invalidates every cached entry at once.
FORMAT_VERSION = 1

MAGIC = b"POMTLBW\x01"

#: Header flag bit: every stream was validated before encoding.
FLAG_VALIDATED = 1

_HEADER = struct.Struct("<8sHHIIqdQQH")
_STREAM = struct.Struct("<iiiQQ")

#: Byte span of the CRC field inside the header.  The checksum covers
#: the *entire* container with this field zeroed, so header damage
#: (a flipped validated flag, a resized stream table) is caught, not
#: just payload bit-rot.
_CRC_OFFSET = struct.calcsize("<8sHHI")
_CRC_END = _CRC_OFFSET + 4


def _container_crc(header: bytes, body) -> int:
    """CRC-32 of ``header`` (CRC field zeroed) followed by ``body``."""
    crc = zlib.crc32(header[:_CRC_OFFSET])
    crc = zlib.crc32(b"\x00\x00\x00\x00", crc)
    crc = zlib.crc32(header[_CRC_END:], crc)
    return zlib.crc32(body, crc)

#: Byte cost per record: two u64 columns plus one bitmap bit.
BYTES_PER_RECORD = 17

_LITTLE_ENDIAN = sys.byteorder == "little"

_BOOLS = (False, True)


def _u64_column(view: memoryview) -> Sequence[int]:
    """A random-access u64 sequence over ``view`` (little-endian bytes).

    Zero-copy on little-endian hosts (a ``memoryview`` cast); big-endian
    hosts fall back to a byte-swapped ``array('Q')`` copy so the on-disk
    format stays portable.
    """
    if _LITTLE_ENDIAN:
        return view.cast("Q")
    column = array("Q")
    column.frombytes(view)
    column.byteswap()
    return column


class _RefView(Sequence):
    """Lazy ``Sequence[MemoryReference]`` over a stream's packed columns.

    Only the cold paths (interleave heap boundaries, hand-written tests,
    ``corrupt_streams``) materialise tuples through this view; the
    simulator's hot loop reads the columns directly.
    """

    __slots__ = ("_icounts", "_vaddrs", "_writebits", "_count")

    def __init__(self, icounts, vaddrs, writebits, count: int) -> None:
        self._icounts = icounts
        self._vaddrs = vaddrs
        self._writebits = writebits
        self._count = count

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(index)
        return MemoryReference(
            self._icounts[index], self._vaddrs[index],
            _BOOLS[(self._writebits[index >> 3] >> (index & 7)) & 1])

    def __iter__(self) -> Iterator[MemoryReference]:
        icounts, vaddrs, writebits = self._icounts, self._vaddrs, self._writebits
        for i in range(self._count):
            yield MemoryReference(icounts[i], vaddrs[i],
                                  _BOOLS[(writebits[i >> 3] >> (i & 7)) & 1])


class PackedStream:
    """A core's reference stream backed by columnar arrays.

    Duck-compatible with :class:`~repro.workloads.trace.CoreStream`
    everywhere the simulator and tooling touch streams: ``core`` /
    ``vm_id`` / ``asid``, iteration, ``len``, ``instructions`` and the
    ``references`` sequence.  Assigning ``references`` (what the
    ``corrupt-trace`` fault does) *de-packs* the stream: the columns are
    dropped, the replacement records become the backing store, and
    ``validated`` resets so strict validation sees the damage.
    """

    __slots__ = ("core", "vm_id", "asid", "validated",
                 "_icounts", "_vaddrs", "_writebits", "_count", "_refs")

    def __init__(self, core: int, vm_id: int, asid: int,
                 icounts, vaddrs, writebits, count: int,
                 validated: bool = False) -> None:
        self.core = core
        self.vm_id = vm_id
        self.asid = asid
        self.validated = validated
        self._icounts = icounts
        self._vaddrs = vaddrs
        self._writebits = writebits
        self._count = count
        self._refs: Optional[List[MemoryReference]] = None

    # -- CoreStream protocol --------------------------------------------------

    @property
    def references(self) -> Sequence[MemoryReference]:
        if self._refs is not None:
            return self._refs
        return _RefView(self._icounts, self._vaddrs, self._writebits,
                        self._count)

    @references.setter
    def references(self, refs) -> None:
        # De-pack: whoever replaces the records (fault injection, hand
        # editing in tests) gets plain-list semantics and, crucially,
        # loses the validated waiver.
        self._refs = list(refs)
        self._count = len(self._refs)
        self._icounts = self._vaddrs = self._writebits = None
        self.validated = False

    def __iter__(self) -> Iterator[MemoryReference]:
        return iter(self.references)

    def __len__(self) -> int:
        return len(self._refs) if self._refs is not None else self._count

    @property
    def instructions(self) -> int:
        """Instructions the stream represents (icount of the last ref)."""
        if self._refs is not None:
            return self._refs[-1].icount if self._refs else 0
        return self._icounts[self._count - 1] if self._count else 0

    # -- hot-loop access ------------------------------------------------------

    @property
    def icounts(self) -> Optional[Sequence[int]]:
        """The icount column, or None once the stream was de-packed."""
        return self._icounts if self._refs is None else None

    def columns(self) -> Optional[Tuple]:
        """(icounts, vaddrs, writebits) for columnar replay, or None."""
        if self._refs is not None:
            return None
        return self._icounts, self._vaddrs, self._writebits

    def view(self) -> "PackedStream":
        """A fresh stream sharing these columns.

        Hands each simulation its own mutation scope: a run that
        de-packs its view (corrupt-trace fault) cannot damage the shared
        backing, so one compiled workload can feed many runs.
        """
        if self._refs is not None:
            clone = PackedStream(self.core, self.vm_id, self.asid,
                                 None, None, None, 0, validated=False)
            clone._refs = list(self._refs)
            clone._count = len(clone._refs)
            return clone
        return PackedStream(self.core, self.vm_id, self.asid,
                            self._icounts, self._vaddrs, self._writebits,
                            self._count, validated=self.validated)

    def release(self) -> None:
        """Drop the column references (see :class:`PackedBuffer`)."""
        self._icounts = self._vaddrs = self._writebits = None
        if self._refs is None:
            self._refs = []
            self._count = 0
        self.validated = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PackedStream(core={self.core}, vm={self.vm_id}, "
                f"asid={self.asid}, refs={len(self)}, "
                f"validated={self.validated})")


def pack_stream(stream, validated: bool = False) -> PackedStream:
    """Columnarise one stream (CoreStream or de-packed PackedStream)."""
    refs = stream.references
    count = len(refs)
    icounts = array("Q", (ref[0] for ref in refs))
    vaddrs = array("Q", (ref[1] for ref in refs))
    writebits = bytearray((count + 7) >> 3)
    for i, ref in enumerate(refs):
        if ref[2]:
            writebits[i >> 3] |= 1 << (i & 7)
    return PackedStream(stream.core, stream.vm_id, stream.asid,
                        icounts, vaddrs, bytes(writebits), count,
                        validated=validated)


def unpack_stream(stream: PackedStream):
    """The list-backed :class:`CoreStream` equivalent of ``stream``."""
    from .trace import CoreStream

    return CoreStream(core=stream.core, vm_id=stream.vm_id,
                      asid=stream.asid, references=list(stream.references))


class PackedBuffer:
    """Owns the buffer behind a decoded workload and its exported views.

    Decoding is zero-copy, which means the mmap / shared-memory segment
    must outlive every column view cut from it.  The buffer object rides
    on the decoded workload (``workload.backing``); :meth:`close`
    releases the views *first* (streams drop their columns) and only
    then closes the underlying map — closing an mmap or SharedMemory
    with exported views raises ``BufferError`` otherwise.
    """

    def __init__(self, owner=None, views: Optional[List[memoryview]] = None,
                 streams: Optional[List[PackedStream]] = None) -> None:
        self._owner = owner
        self._views = views or []
        self._streams = streams or []
        self.closed = False

    def adopt(self, streams: List[PackedStream]) -> None:
        self._streams = list(streams)

    def close(self) -> None:
        """Release column views and close the backing map (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for stream in self._streams:
            stream.release()
        self._streams = []
        for view in reversed(self._views):
            try:
                view.release()
            except BufferError:  # pragma: no cover - still-exported view
                pass
        self._views = []
        owner = self._owner
        self._owner = None
        if owner is not None:
            owner.close()


# -- encoding ------------------------------------------------------------------

def _column_bytes(column) -> bytes:
    if isinstance(column, array):
        if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian host
            column = array("Q", column)
            column.byteswap()
        return column.tobytes()
    if isinstance(column, memoryview):
        return column.tobytes() if _LITTLE_ENDIAN else _swapped(column)
    return bytes(column)


def _swapped(view: memoryview) -> bytes:  # pragma: no cover - big-endian
    swap = array("Q")
    swap.frombytes(view)
    swap.byteswap()
    return swap.tobytes()


def encode_streams(streams: Sequence, benchmark: str = "",
                   seed: int = 0, scale: float = 0.0,
                   warmup_by_core: Optional[Dict[int, int]] = None,
                   validated: bool = False) -> bytes:
    """Serialise streams into one packed container (as ``bytes``).

    ``streams`` may mix :class:`PackedStream` and ``CoreStream``; list-
    backed streams are columnarised on the way out.  ``validated`` sets
    the header flag — callers assert it only after running
    :func:`~repro.workloads.trace.validate_stream` on every stream.
    """
    warmups = warmup_by_core or {}
    name = benchmark.encode("utf-8")
    table = bytearray()
    payload = bytearray()
    total = 0
    packed_streams: List[PackedStream] = []
    for stream in streams:
        packed = (stream if isinstance(stream, PackedStream)
                  and stream.columns() is not None else pack_stream(stream))
        packed_streams.append(packed)
    for packed in packed_streams:
        count = len(packed)
        total += count
        table += _STREAM.pack(packed.core, packed.vm_id, packed.asid,
                              count, warmups.get(packed.core, 0))
    for packed in packed_streams:
        icounts, vaddrs, writebits = packed.columns()
        payload += _column_bytes(icounts)
        payload += _column_bytes(vaddrs)
        payload += bytes(writebits)
    body = name + bytes(table) + bytes(payload)
    flags = FLAG_VALIDATED if validated else 0
    header = _HEADER.pack(MAGIC, FORMAT_VERSION, flags,
                          len(packed_streams), 0,
                          seed, scale, total, sum(warmups.values()),
                          len(name))
    crc = _container_crc(header, body)
    header = (header[:_CRC_OFFSET] + struct.pack("<I", crc)
              + header[_CRC_END:])
    return header + body


def encode_workload(workload, validated: bool = False) -> bytes:
    """Serialise a suite :class:`~repro.workloads.suite.Workload`."""
    return encode_streams(workload.streams,
                          benchmark=workload.profile.name,
                          seed=workload.seed, scale=workload.scale,
                          warmup_by_core=workload.warmup_by_core,
                          validated=validated)


# -- decoding ------------------------------------------------------------------

class DecodedContainer:
    """A parsed container: stream columns plus the header metadata."""

    def __init__(self, benchmark: str, seed: int, scale: float,
                 validated: bool, streams: List[PackedStream],
                 warmup_by_core: Dict[int, int], warmup_total: int,
                 backing: PackedBuffer) -> None:
        self.benchmark = benchmark
        self.seed = seed
        self.scale = scale
        self.validated = validated
        self.streams = streams
        self.warmup_by_core = warmup_by_core
        self.warmup_total = warmup_total
        self.backing = backing

    def workload(self, profile=None):
        """Rehydrate the suite :class:`Workload` this container stores.

        ``profile`` defaults to the suite profile named in the header.
        Streams are fresh :meth:`PackedStream.view`\\ s sharing the
        container's columns, so one container feeds many runs: a run
        that mutates its streams (the ``corrupt-trace`` fault de-packs
        them) cannot taint a sibling run or the shared backing.  The
        workload keeps a reference to the container's
        :class:`PackedBuffer` (``workload.backing``) so zero-copy
        columns stay alive as long as the workload does.
        """
        from .suite import Workload, get_profile

        if profile is None:
            profile = get_profile(self.benchmark)
        workload = Workload(profile=profile,
                            streams=[s.view() for s in self.streams],
                            warmup_references=self.warmup_total,
                            seed=self.seed, scale=self.scale,
                            warmup_by_core=dict(self.warmup_by_core))
        workload.backing = self.backing
        return workload


def decode_container(buffer, path: str = "", owner=None,
                     verify_crc: bool = True) -> DecodedContainer:
    """Parse a packed container from any bytes-like buffer, zero-copy.

    ``owner`` (an mmap or SharedMemory-like object with ``close()``)
    is adopted by the returned container's :class:`PackedBuffer` so its
    lifetime is tied to the decoded streams.  Raises
    :class:`~repro.common.errors.PackedTraceError` on any damage —
    truncation, bad magic, version skew, or CRC mismatch.
    """
    view = memoryview(buffer)
    views = [view]
    try:
        if len(view) < _HEADER.size:
            raise PackedTraceError("truncated packed trace (no header)",
                                   path=path)
        (magic, version, flags, nstreams, crc, seed, scale, total,
         warmup_total, name_len) = _HEADER.unpack(view[:_HEADER.size])
        if magic != MAGIC:
            raise PackedTraceError("not a packed pomtlb trace "
                                   "(bad magic)", path=path)
        if version != FORMAT_VERSION:
            raise PackedTraceError(
                f"unsupported packed-trace version {version} "
                f"(expected {FORMAT_VERSION})", path=path)
        body = view[_HEADER.size:]
        views.append(body)
        if verify_crc and _container_crc(bytes(view[:_HEADER.size]),
                                         body) != crc:
            raise PackedTraceError(
                "checksum mismatch (corrupted packed trace)", path=path)
        offset = _HEADER.size
        try:
            benchmark = bytes(view[offset:offset + name_len]).decode("utf-8")
        except UnicodeDecodeError:
            raise PackedTraceError("corrupt benchmark name", path=path
                                   ) from None
        offset += name_len
        table_end = offset + nstreams * _STREAM.size
        if table_end > len(view):
            raise PackedTraceError("truncated stream table", path=path)
        entries = []
        expected = 0
        for i in range(nstreams):
            entry = _STREAM.unpack(
                view[offset + i * _STREAM.size:
                     offset + (i + 1) * _STREAM.size])
            entries.append(entry)
            expected += entry[3]
        if expected != total:
            raise PackedTraceError(
                f"stream table sums to {expected} records, header "
                f"says {total}", path=path)
        validated = bool(flags & FLAG_VALIDATED)
        offset = table_end
        streams: List[PackedStream] = []
        warmup_by_core: Dict[int, int] = {}
        for core, vm_id, asid, count, warmup in entries:
            ic_end = offset + count * 8
            va_end = ic_end + count * 8
            wb_end = va_end + ((count + 7) >> 3)
            if wb_end > len(view):
                raise PackedTraceError("truncated column payload",
                                       path=path)
            ic_view = view[offset:ic_end]
            va_view = view[ic_end:va_end]
            wb_view = view[va_end:wb_end]
            views += [ic_view, va_view, wb_view]
            streams.append(PackedStream(
                core, vm_id, asid,
                _u64_column(ic_view), _u64_column(va_view), wb_view,
                count, validated=validated))
            if warmup:
                warmup_by_core[core] = warmup
            offset = wb_end
        if offset != len(view):
            raise PackedTraceError(
                f"{len(view) - offset} trailing byte(s) after payload",
                path=path)
    except (PackedTraceError, struct.error) as exc:
        for pending in reversed(views):
            try:
                pending.release()
            except BufferError:  # pragma: no cover
                pass
        if owner is not None:
            owner.close()
        if isinstance(exc, struct.error):
            raise PackedTraceError(f"malformed packed trace ({exc})",
                                   path=path) from None
        raise
    backing = PackedBuffer(owner=owner, views=views, streams=streams)
    return DecodedContainer(benchmark=benchmark, seed=seed, scale=scale,
                            validated=validated, streams=streams,
                            warmup_by_core=warmup_by_core,
                            warmup_total=warmup_total, backing=backing)


# -- files ---------------------------------------------------------------------

def save_packed(path: str, streams: Sequence, benchmark: str = "",
                seed: int = 0, scale: float = 0.0,
                warmup_by_core: Optional[Dict[int, int]] = None,
                validated: bool = False) -> None:
    """Write a packed container atomically (gzip when ``path`` is .gz)."""
    blob = encode_streams(streams, benchmark=benchmark, seed=seed,
                          scale=scale, warmup_by_core=warmup_by_core,
                          validated=validated)
    if path.endswith(".gz"):
        # mtime pinned to zero so identical workloads gzip to identical
        # bytes — the cache and tests compare files, not just contents.
        blob = gzip.compress(blob, mtime=0)
    atomic_write_bytes(path, blob)


def save_packed_workload(path: str, workload, validated: bool = False) -> None:
    """Write a suite workload as a packed container (see save_packed)."""
    save_packed(path, workload.streams, benchmark=workload.profile.name,
                seed=workload.seed, scale=workload.scale,
                warmup_by_core=workload.warmup_by_core, validated=validated)


def load_packed(path: str, use_mmap: bool = True) -> DecodedContainer:
    """Load a packed container from disk.

    Plain files are memory-mapped so the columns alias the page cache
    (zero-copy); gzip files decompress into one bytes object first.
    Raises :class:`~repro.common.errors.PackedTraceError` on damage and
    ``OSError`` on I/O failure.
    """
    if path.endswith(".gz"):
        try:
            with gzip.open(path, "rb") as handle:
                blob = handle.read()
        except (EOFError, zlib.error, gzip.BadGzipFile) as exc:
            raise PackedTraceError(f"torn gzip container ({exc})",
                                   path=path) from None
        return decode_container(blob, path=path)
    with open(path, "rb") as handle:
        if use_mmap:
            try:
                mapped = mmap.mmap(handle.fileno(), 0,
                                   access=mmap.ACCESS_READ)
            except ValueError:  # empty file cannot be mapped
                raise PackedTraceError("truncated packed trace (empty file)",
                                       path=path) from None
            return decode_container(mapped, path=path, owner=mapped)
        return decode_container(handle.read(), path=path)
