"""VM lifecycle workloads: consolidation churn, migration, shootdown storms.

The paper evaluates one virtualized guest; the POM-TLB's pitch is the
consolidated cloud host, where guests boot and tear down continuously
and TLB shootdowns from *other* tenants interfere with everyone's
translations (ROADMAP item 4).  This module generates those scenarios as
plain workloads plus a schedule of :class:`LifecycleEvent`\\ s that
:meth:`~repro.core.system.Machine.run` fires mid-replay:

* :func:`build_churn` — N heterogeneous guests per generation, each torn
  down (``Machine.destroy_vm``) the moment its trace ends, for G
  generations: an ``invalidate_vm`` storm that also exercises frame
  reclamation (teardown must not grow ``bytes_allocated``).
* :func:`build_migration` — long-lived guests that are cold-migrated
  mid-run: the VM is destroyed while its stream continues, so the next
  touch re-boots it on the same vm_id with reused frames and a cold
  translation set.
* :func:`build_shootdown_storm` — one guest under a periodic shootdown
  storm: every ``interval`` references the most recently touched page is
  shot down, modelling unrelated-tenant unmap/IPI interference at a
  controlled rate.

Event positions are indices in the **global interleaved merge** (the
exact replay order of :func:`~repro.workloads.trace.interleave_batched`,
warmup included), computed here by walking that merge, so scenarios are
deterministic and engine-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .suite import get_profile
from .trace import CoreStream, MemoryReference, interleave_batched


@dataclass(frozen=True)
class LifecycleEvent:
    """One OS-level operation scheduled at a global replay position.

    Fires *before* the reference at index ``position`` of the global
    interleaved merge (warmup included); a position at or past the end
    of the trace fires after the last reference.
    """

    position: int
    kind: str       # "destroy_vm" | "shootdown"
    vm_id: int
    asid: int = 0
    vaddr: int = 0

    def apply(self, machine) -> None:
        if self.kind == "destroy_vm":
            machine.destroy_vm(self.vm_id)
        elif self.kind == "shootdown":
            machine.shootdown(self.vm_id, self.asid, self.vaddr)
        else:
            raise ValueError(f"unknown lifecycle event kind {self.kind!r}")


@dataclass
class LifecycleWorkload:
    """Streams plus the event schedule of one lifecycle scenario."""

    kind: str
    streams: List[CoreStream]
    events: List[LifecycleEvent]
    #: per-VM THP fractions for ``Machine(thp_fractions=...)``
    thp_fractions: Dict[int, float]
    num_cores: int
    boots: int = 0
    teardowns: int = 0
    shootdowns: int = 0
    warmup_references: int = 0
    warmup_by_core: Dict[int, int] = field(default_factory=dict)

    @property
    def references(self) -> int:
        return sum(len(s) for s in self.streams)


# -- merge-order helpers ------------------------------------------------------


def _merge_boundaries(streams: Sequence[CoreStream]
                      ) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Global positions after each stream's first and last reference.

    Keyed by ``id(stream)``; computed by walking the exact chunk order
    :func:`interleave_batched` yields, which is the replay order.
    """
    first_after: Dict[int, int] = {}
    last_after: Dict[int, int] = {}
    position = 0
    for stream, lo, hi in interleave_batched(streams):
        if lo == 0 and id(stream) not in first_after:
            first_after[id(stream)] = position + 1
        position += hi - lo
        if hi == len(stream):
            last_after[id(stream)] = position
    return first_after, last_after


def _refs_at(streams: Sequence[CoreStream], positions: Sequence[int]
             ) -> List[Tuple[CoreStream, MemoryReference]]:
    """The (stream, reference) replayed at each global index.

    ``positions`` must be sorted ascending; out-of-range indices are
    skipped.
    """
    wanted = list(positions)
    out: List[Tuple[CoreStream, MemoryReference]] = []
    cursor = 0
    position = 0
    for stream, lo, hi in interleave_batched(streams):
        size = hi - lo
        while cursor < len(wanted) and wanted[cursor] < position + size:
            index = lo + (wanted[cursor] - position)
            out.append((stream, stream.references[index]))
            cursor += 1
        position += size
        if cursor == len(wanted):
            break
    return out


def _shifted(stream: CoreStream, offset: int) -> CoreStream:
    """The same stream with every icount shifted by ``offset``."""
    if not offset:
        return stream
    stream.references = [MemoryReference(ic + offset, va, w)
                         for ic, va, w in stream.references]
    return stream


# -- scenario builders --------------------------------------------------------


def build_churn(benchmarks: Sequence[str], generations: int = 5,
                refs_per_core: int = 1500, seed: int = 0,
                scale: float = 0.1) -> LifecycleWorkload:
    """Consolidation churn: G generations of heterogeneous guests.

    Each generation boots one VM per benchmark (one core each); every
    VM is destroyed the moment its trace ends, and the next generation's
    VM boots on the same core with fresh vm_id and *reused* frames.  The
    per-slot seed is constant across generations, so each slot's
    boot/teardown cycle allocates an identical footprint — which makes
    "``bytes_allocated`` is non-growing across teardowns" an exact
    property, not a statistical one.
    """
    if not benchmarks:
        raise ValueError("need at least one benchmark")
    if generations < 1:
        raise ValueError("generations must be positive")
    slots = len(benchmarks)
    streams: List[CoreStream] = []
    thp: Dict[int, float] = {}
    stream_vm: Dict[int, int] = {}
    offsets = [0] * slots
    for generation in range(generations):
        for slot, name in enumerate(benchmarks):
            profile = get_profile(name)
            vm_id = generation * slots + slot + 1
            workload = profile.build(num_cores=1,
                                     refs_per_core=refs_per_core,
                                     seed=seed + slot + 1, scale=scale)
            stream = workload.streams[0]
            stream.core = slot
            stream.vm_id = vm_id
            _shifted(stream, offsets[slot])
            # Next generation on this core starts strictly after us.
            offsets[slot] = stream.references[-1][0] + profile.inst_per_ref
            streams.append(stream)
            thp[vm_id] = profile.thp_large_fraction
            stream_vm[id(stream)] = vm_id
    _first, last_after = _merge_boundaries(streams)
    events = [LifecycleEvent(position=last_after[sid], kind="destroy_vm",
                             vm_id=vm_id)
              for sid, vm_id in stream_vm.items()]
    events.sort(key=lambda e: e.position)
    return LifecycleWorkload(kind="churn", streams=streams, events=events,
                             thp_fractions=thp, num_cores=slots,
                             boots=generations * slots,
                             teardowns=generations * slots)


def build_migration(benchmarks: Sequence[str], refs_per_core: int = 2000,
                    seed: int = 0, scale: float = 0.1,
                    bursts: int = 4) -> LifecycleWorkload:
    """Live-migration bursts: guests cold-migrated while still running.

    One VM per benchmark runs continuously; ``bursts`` times during the
    run a VM (round-robin) is destroyed mid-stream.  Its very next
    reference re-boots the vm_id — the cold-migration arrival — so the
    measurement captures the invalidation storm, the re-fault burst and
    the frame reuse together.
    """
    if not benchmarks:
        raise ValueError("need at least one benchmark")
    if bursts < 0:
        raise ValueError("bursts must be >= 0")
    streams: List[CoreStream] = []
    thp: Dict[int, float] = {}
    vm_stream: Dict[int, CoreStream] = {}
    for slot, name in enumerate(benchmarks):
        profile = get_profile(name)
        vm_id = slot + 1
        workload = profile.build(num_cores=1, refs_per_core=refs_per_core,
                                 seed=seed + vm_id, scale=scale)
        stream = workload.streams[0]
        stream.core = slot
        stream.vm_id = vm_id
        streams.append(stream)
        thp[vm_id] = profile.thp_large_fraction
        vm_stream[vm_id] = stream
    total = sum(len(s) for s in streams)
    first_after, last_after = _merge_boundaries(streams)
    events: List[LifecycleEvent] = []
    for burst in range(bursts):
        vm_id = burst % len(benchmarks) + 1
        stream = vm_stream[vm_id]
        position = total * (burst + 1) // (bursts + 1)
        # The victim must already be booted and must run on afterwards
        # (otherwise this is churn, not migration).
        position = max(position, first_after[id(stream)])
        if position >= last_after[id(stream)]:
            continue
        events.append(LifecycleEvent(position=position, kind="destroy_vm",
                                     vm_id=vm_id))
    events.sort(key=lambda e: e.position)
    return LifecycleWorkload(kind="migration", streams=streams,
                             events=events, thp_fractions=thp,
                             num_cores=len(benchmarks),
                             boots=len(benchmarks) + len(events),
                             teardowns=len(events))


def build_shootdown_storm(benchmark: str, num_cores: int = 2,
                          refs_per_core: int = 2000, seed: int = 0,
                          scale: float = 0.1,
                          per_1k_refs: float = 0.0) -> LifecycleWorkload:
    """One guest under a periodic shootdown storm.

    Every ``1000 / per_1k_refs`` measured references, the page of the
    most recently replayed reference is shot down — a recently-touched
    (hence TLB-resident) translation, so each storm tick invalidates
    live state the way another tenant's unmap IPI would.  Rate 0 is the
    interference-free control.
    """
    if per_1k_refs < 0:
        raise ValueError("per_1k_refs must be >= 0")
    profile = get_profile(benchmark)
    workload = profile.build(num_cores=num_cores,
                             refs_per_core=refs_per_core,
                             seed=seed, scale=scale)
    streams = workload.streams
    total = sum(len(s) for s in streams)
    warmup_total = workload.warmup_references
    events: List[LifecycleEvent] = []
    if per_1k_refs > 0:
        interval = max(1, round(1000.0 / per_1k_refs))
        positions = list(range(warmup_total + interval, total, interval))
        targets = _refs_at(streams, [p - 1 for p in positions])
        events = [LifecycleEvent(position=p, kind="shootdown",
                                 vm_id=stream.vm_id, asid=stream.asid,
                                 vaddr=ref[1])
                  for p, (stream, ref) in zip(positions, targets)]
    vm_ids = {s.vm_id for s in streams}
    thp = {vm_id: profile.thp_large_fraction for vm_id in vm_ids}
    return LifecycleWorkload(kind="shootdown", streams=streams,
                             events=events, thp_fractions=thp,
                             num_cores=num_cores, boots=len(vm_ids),
                             shootdowns=len(events),
                             warmup_references=workload.warmup_references,
                             warmup_by_core=workload.warmup_by_core)
