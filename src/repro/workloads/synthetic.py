"""Synthetic memory-access pattern generators.

Each generator produces an endless stream of **page indices** inside one
region of a benchmark's address space; the suite composes weighted
mixtures of regions into full reference traces.  The patterns are the
canonical ones the paper's workloads exhibit:

``sequential``
    streaming sweeps (lbm, libquantum, streamcluster): page i, i+1, ...
    wrap-around.  Misses arrive in address order, which is what produces
    the POM-TLB's spatial locality (4 entries per 64 B set line, 32 sets
    per DRAM row).
``strided``
    grid walks (GemsFDTD, zeusmp): constant page stride, co-prime with
    the region so every page is visited per pass.
``zipf``
    skewed heap reuse (gcc, soplex, astar): Zipf-popular pages with the
    hot set **clustered at the start of the region** — hot data
    structures are contiguous in real address spaces.
``random``
    gups: uniform random pages, the TLB worst case.
``pointer``
    pointer chasing (mcf, canneal): follows a fixed random permutation
    cycle, so the sequence is unpredictable but repeats — enormous reuse
    distance, zero spatial locality.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator

from ..common.rng import ZipfSampler

#: A pattern factory: (pages, rng, params) -> infinite iterator of page ids.
PatternFactory = Callable[[int, random.Random, dict], Iterator[int]]


def sequential(pages: int, rng: random.Random, params: dict) -> Iterator[int]:
    """Wrap-around streaming sweep, optionally starting at a random page."""
    page = rng.randrange(pages) if params.get("random_start", False) else 0
    while True:
        yield page
        page += 1
        if page >= pages:
            page = 0


def strided(pages: int, rng: random.Random, params: dict) -> Iterator[int]:
    """Constant-stride sweep; the stride is forced co-prime with the size."""
    stride = int(params.get("stride", 17))
    while _gcd(stride, pages) != 1:
        stride += 1
    page = 0
    while True:
        yield page
        page = (page + stride) % pages


def zipf(pages: int, rng: random.Random, params: dict) -> Iterator[int]:
    """Zipf-popular pages, hot set clustered at low page indices."""
    alpha = float(params.get("alpha", 0.9))
    sampler = ZipfSampler(pages, alpha, rng)
    while True:
        yield sampler.sample()


def uniform_random(pages: int, rng: random.Random, params: dict) -> Iterator[int]:
    """Uniform random pages — the gups pattern."""
    while True:
        yield rng.randrange(pages)


def pointer_chase(pages: int, rng: random.Random, params: dict) -> Iterator[int]:
    """Walk a fixed random single-cycle permutation of the region's pages."""
    successor = _random_cycle(pages, rng)
    page = 0
    while True:
        yield page
        page = successor[page]


def _random_cycle(n: int, rng: random.Random) -> list:
    """A permutation of 0..n-1 forming one cycle (a 'sattolo' shuffle)."""
    items = list(range(n))
    for i in range(n - 1, 0, -1):
        j = rng.randrange(i)
        items[i], items[j] = items[j], items[i]
    successor = [0] * n
    # items, read in order, is the cycle: items[k] -> items[k+1].
    for k in range(n):
        successor[items[k]] = items[(k + 1) % n]
    return successor


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


PATTERNS: Dict[str, PatternFactory] = {
    "sequential": sequential,
    "strided": strided,
    "zipf": zipf,
    "random": uniform_random,
    "pointer": pointer_chase,
}


def make_pattern(name: str, pages: int, rng: random.Random,
                 params: dict = None) -> Iterator[int]:
    """Instantiate a pattern generator by name."""
    try:
        factory = PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown pattern {name!r}; pick one of {sorted(PATTERNS)}") from None
    if pages <= 0:
        raise ValueError("pattern needs a positive page count")
    return factory(pages, rng, params or {})
