"""Workloads: trace format, pattern generators, the Table 2 suite."""

from . import analysis, graphgen, synthetic
from .consolidation import ConsolidatedWorkload, VmAssignment, build_consolidation
from .lifecycle import (
    LifecycleEvent,
    LifecycleWorkload,
    build_churn,
    build_migration,
    build_shootdown_storm,
)
from .suite import BENCHMARKS, SUITE, BenchmarkProfile, Region, Workload, get_profile
from .trace import (
    CoreStream,
    MemoryReference,
    interleave,
    load_stream,
    save_stream,
    validate_stream,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "ConsolidatedWorkload",
    "CoreStream",
    "LifecycleEvent",
    "LifecycleWorkload",
    "MemoryReference",
    "Region",
    "SUITE",
    "VmAssignment",
    "Workload",
    "analysis",
    "build_churn",
    "build_consolidation",
    "build_migration",
    "build_shootdown_storm",
    "get_profile",
    "graphgen",
    "interleave",
    "load_stream",
    "save_stream",
    "synthetic",
    "validate_stream",
]
