"""Graph-workload access patterns (graph500, pagerank, connected components).

Graph analytics has a characteristic two-region signature the TLB sees:

* a **vertex region** read in index order (frontier/rank arrays), and
* an **edge region** whose targets scatter with a power-law degree
  distribution — a few celebrity vertices absorb many edges, the long
  tail is touched rarely but keeps the footprint huge.

We synthesise the signature directly instead of materialising a graph:
one vertex-array reference followed by ``degree`` edge-target references
drawn Zipf over the vertex space (mapped into the edge region), with the
degree itself resampled per vertex.  ``shuffle`` controls whether edge
targets are address-clustered (pagerank re-sorted graphs) or fully
scattered (connected components on raw edge lists — the paper's worst
observed translation cost, 1158 cycles per miss).
"""

from __future__ import annotations

import random
from typing import Iterator

from ..common.rng import ZipfSampler, shuffled_ranks


def graph_traversal(pages: int, rng: random.Random, params: dict) -> Iterator[int]:
    """Interleaved vertex sweep + power-law scattered edge lookups.

    The region's pages split: the first ``vertex_fraction`` act as the
    vertex arrays, the rest as edge/property data.
    """
    vertex_fraction = float(params.get("vertex_fraction", 0.25))
    alpha = float(params.get("alpha", 0.6))
    mean_degree = max(1, int(params.get("mean_degree", 4)))
    shuffle = bool(params.get("shuffle", False))
    vertex_pages = max(1, int(pages * vertex_fraction))
    edge_pages = max(1, pages - vertex_pages)
    sampler = ZipfSampler(edge_pages, alpha, rng)
    scatter = shuffled_ranks(edge_pages, rng) if shuffle else None
    vertex = 0
    while True:
        yield vertex  # frontier/rank array, sequential
        vertex = (vertex + 1) % vertex_pages
        degree = rng.randrange(1, 2 * mean_degree + 1)
        for _ in range(degree):
            target = sampler.sample()
            if scatter is not None:
                target = scatter[target]
            yield vertex_pages + target


def bfs_bursts(pages: int, rng: random.Random, params: dict) -> Iterator[int]:
    """graph500-style BFS: frontier bursts with level-local reuse.

    Each burst revisits a small frontier window several times (queue +
    visited-bitmap locality) before jumping to a new random window.
    """
    window_pages = max(1, int(params.get("window_pages", 64)))
    revisits = max(1, int(params.get("revisits", 3)))
    alpha = float(params.get("alpha", 0.5))
    sampler = ZipfSampler(max(1, pages - window_pages), alpha, rng)
    while True:
        start = rng.randrange(max(1, pages - window_pages))
        for _ in range(revisits):
            for offset in range(window_pages):
                yield start + offset
                if rng.random() < 0.25:
                    yield sampler.sample()  # neighbour off the frontier
