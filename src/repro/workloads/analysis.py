"""Trace analysis: the characterisation tooling behind workload design.

Answers the questions the paper's Section 3.1 answers with PIN + perf:
how big is a trace's footprint, how skewed is its page reuse, and what
TLB miss rate should a given TLB capacity expect (via stack distances).
Used to validate that the synthetic suite reproduces the intended
TLB-relevant behaviour, and useful to anyone bringing their own traces.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..common import addr
from .trace import CoreStream, MemoryReference


@dataclass(frozen=True)
class TraceSummary:
    """Headline characterisation of one stream."""

    references: int
    instructions: int
    footprint_pages: int
    footprint_bytes: int
    write_fraction: float
    refs_per_page_touch: float

    @property
    def memory_intensity(self) -> float:
        """Memory references per instruction."""
        if self.instructions == 0:
            return 0.0
        return self.references / self.instructions


def summarize(stream: CoreStream) -> TraceSummary:
    """Footprint, write ratio and page-touch density of a stream."""
    pages = set()
    writes = 0
    touches = 0
    last_page = None
    for ref in stream.references:
        page = ref.vaddr >> addr.SMALL_PAGE_SHIFT
        pages.add(page)
        if page != last_page:
            touches += 1
            last_page = page
        if ref.write:
            writes += 1
    count = len(stream.references)
    return TraceSummary(
        references=count,
        instructions=stream.instructions,
        footprint_pages=len(pages),
        footprint_bytes=len(pages) * addr.SMALL_PAGE_SIZE,
        write_fraction=writes / count if count else 0.0,
        refs_per_page_touch=count / touches if touches else 0.0,
    )


def page_popularity(stream: CoreStream, top: int = 10) -> List[tuple]:
    """The ``top`` most-touched pages as (page, touch count)."""
    counts = Counter(ref.vaddr >> addr.SMALL_PAGE_SHIFT
                     for ref in stream.references)
    return counts.most_common(top)


def reuse_distance_histogram(stream: CoreStream,
                             buckets: Iterable[int] = (),
                             max_tracked: int = 1 << 20) -> Dict[str, int]:
    """LRU stack-distance histogram at page granularity.

    The reuse distance of a reference is the number of *distinct* pages
    touched since the last touch of its page — infinite for first
    touches.  Bucketised so the histogram reads directly against TLB
    capacities: a reference with distance < 1536 would hit a 1536-entry
    fully associative L2 TLB.
    """
    edges = sorted(buckets) or [64, 1536, 8192, 65536]
    labels = [f"<{edge}" for edge in edges] + [f">={edges[-1]}", "cold"]
    histogram = {label: 0 for label in labels}
    stack: "OrderedDict[int, None]" = OrderedDict()
    for ref in stream.references:
        page = ref.vaddr >> addr.SMALL_PAGE_SHIFT
        if page in stack:
            distance = 0
            for resident in reversed(stack):
                if resident == page:
                    break
                distance += 1
            stack.move_to_end(page)
            for edge, label in zip(edges, labels):
                if distance < edge:
                    histogram[label] += 1
                    break
            else:
                histogram[f">={edges[-1]}"] += 1
        else:
            histogram["cold"] += 1
            stack[page] = None
            if len(stack) > max_tracked:
                stack.popitem(last=False)
    return histogram


def estimate_tlb_miss_rate(stream: CoreStream, entries: int,
                           skip_cold: bool = True) -> float:
    """Miss-rate estimate for a fully associative LRU TLB of ``entries``.

    Classic stack-distance argument: a reference misses iff its reuse
    distance is >= the TLB's capacity.  ``skip_cold`` excludes first
    touches (steady-state view, matching the simulator's warmup).
    """
    if entries <= 0:
        raise ValueError("TLB capacity must be positive")
    stack: "OrderedDict[int, None]" = OrderedDict()
    misses = 0
    total = 0
    for ref in stream.references:
        page = ref.vaddr >> addr.SMALL_PAGE_SHIFT
        if page in stack:
            distance = 0
            for resident in reversed(stack):
                if resident == page:
                    break
                distance += 1
            stack.move_to_end(page)
            total += 1
            if distance >= entries:
                misses += 1
        else:
            stack[page] = None
            if not skip_cold:
                total += 1
                misses += 1
    return misses / total if total else 0.0


def region_breakdown(stream: CoreStream,
                     region_shift: int = 32) -> Dict[int, int]:
    """References per address-space region (suite regions are 4 GiB-aligned)."""
    counts: Dict[int, int] = {}
    for ref in stream.references:
        region = ref.vaddr >> region_shift
        counts[region] = counts.get(region, 0) + 1
    return counts
