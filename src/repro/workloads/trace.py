"""Memory-trace format.

A trace is what the paper's PIN + pagemap tooling produced: per-thread
streams of memory references annotated with the instruction count at
which they issue.  The simulator merges per-core streams by instruction
order (Ramulator-style issue cadence); the instruction counts therefore
also encode how much non-memory work separates the references.

Records are deliberately minimal — ``(icount, vaddr, write)`` — page
sizes and physical placement are decided by the simulated OS (THP policy
+ demand paging), exactly as in the paper's methodology where pagemap
metadata comes from the OS, not the application.
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, NamedTuple, Sequence

from ..common.errors import TraceFormatError


class MemoryReference(NamedTuple):
    """One memory instruction of a trace."""

    icount: int  # instructions retired before this reference (per thread)
    vaddr: int   # virtual address touched
    write: bool  # store (True) or load (False)


@dataclass
class CoreStream:
    """The reference stream one core executes, plus its software context."""

    core: int
    vm_id: int
    asid: int
    references: Sequence[MemoryReference] = field(default_factory=list)

    def __iter__(self) -> Iterator[MemoryReference]:
        return iter(self.references)

    def __len__(self) -> int:
        return len(self.references)

    @property
    def instructions(self) -> int:
        """Instructions the stream represents (icount of the last ref)."""
        return self.references[-1].icount if self.references else 0


# -- serialization -------------------------------------------------------------
#
# One line per record: "<icount> <vaddr-hex> <R|W>", preceded by a single
# header line "#pomtlb-trace core=<c> vm=<v> asid=<a>".  Gzip when the
# path ends in .gz.  The format is intentionally greppable.

_HEADER_PREFIX = "#pomtlb-trace"


def _open(path: str, mode: str):
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t")
    return io.open(path, mode)


def save_stream(stream: CoreStream, path: str) -> None:
    """Write one core's stream to ``path`` (gzip if ``.gz``)."""
    with _open(path, "w") as out:
        out.write(f"{_HEADER_PREFIX} core={stream.core} "
                  f"vm={stream.vm_id} asid={stream.asid}\n")
        for ref in stream.references:
            out.write(f"{ref.icount} {ref.vaddr:x} {'W' if ref.write else 'R'}\n")


def load_stream(path: str) -> CoreStream:
    """Read one core's stream back from ``path``."""
    with _open(path, "r") as inp:
        header = inp.readline().strip()
        if not header.startswith(_HEADER_PREFIX):
            raise TraceFormatError(f"{path}: missing trace header")
        fields = dict(part.split("=", 1) for part in header.split()[1:])
        try:
            stream = CoreStream(core=int(fields["core"]),
                                vm_id=int(fields["vm"]),
                                asid=int(fields["asid"]))
        except KeyError as missing:
            raise TraceFormatError(f"{path}: header missing {missing}") from None
        refs: List[MemoryReference] = []
        for lineno, line in enumerate(inp, start=2):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 3 or parts[2] not in ("R", "W"):
                raise TraceFormatError(f"{path}:{lineno}: bad record {line!r}")
            try:
                refs.append(MemoryReference(icount=int(parts[0]),
                                            vaddr=int(parts[1], 16),
                                            write=parts[2] == "W"))
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{lineno}: bad record {line!r}") from None
        stream.references = refs
        return stream


def validate_stream(stream: CoreStream) -> None:
    """Check trace invariants; raises :class:`TraceFormatError`.

    Instruction counts must be non-decreasing (references issue in
    program order) and addresses non-negative.
    """
    last = -1
    for position, ref in enumerate(stream.references):
        if ref.icount < last:
            raise TraceFormatError(
                f"record {position}: icount {ref.icount} goes backwards")
        if ref.vaddr < 0:
            raise TraceFormatError(f"record {position}: negative address")
        last = ref.icount


def interleave(streams: Iterable[CoreStream]) -> Iterator[tuple]:
    """Merge streams by instruction count: yields (stream, reference).

    Ties break by core id so runs are deterministic.
    """
    import heapq

    heap = []
    iterators = []
    for stream in streams:
        iterator = iter(stream.references)
        iterators.append((stream, iterator))
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(heap, (first.icount, stream.core, len(iterators) - 1, first))
    while heap:
        _icount, _core, index, ref = heapq.heappop(heap)
        stream, iterator = iterators[index]
        yield stream, ref
        nxt = next(iterator, None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.icount, stream.core, index, nxt))
