"""Memory-trace format.

A trace is what the paper's PIN + pagemap tooling produced: per-thread
streams of memory references annotated with the instruction count at
which they issue.  The simulator merges per-core streams by instruction
order (Ramulator-style issue cadence); the instruction counts therefore
also encode how much non-memory work separates the references.

Records are deliberately minimal — ``(icount, vaddr, write)`` — page
sizes and physical placement are decided by the simulated OS (THP policy
+ demand paging), exactly as in the paper's methodology where pagemap
metadata comes from the OS, not the application.
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, NamedTuple, Sequence

from ..common.errors import TraceFormatError


class MemoryReference(NamedTuple):
    """One memory instruction of a trace."""

    icount: int  # instructions retired before this reference (per thread)
    vaddr: int   # virtual address touched
    write: bool  # store (True) or load (False)


@dataclass
class CoreStream:
    """The reference stream one core executes, plus its software context."""

    core: int
    vm_id: int
    asid: int
    references: Sequence[MemoryReference] = field(default_factory=list)

    def __iter__(self) -> Iterator[MemoryReference]:
        return iter(self.references)

    def __len__(self) -> int:
        return len(self.references)

    @property
    def instructions(self) -> int:
        """Instructions the stream represents (icount of the last ref)."""
        return self.references[-1].icount if self.references else 0


# -- serialization -------------------------------------------------------------
#
# One line per record: "<icount> <vaddr-hex> <R|W>", preceded by a single
# header line "#pomtlb-trace core=<c> vm=<v> asid=<a>".  Gzip when the
# path ends in .gz.  The format is intentionally greppable.

_HEADER_PREFIX = "#pomtlb-trace"

#: Virtual addresses are at most this many bits; anything wider in a
#: trace is corruption (a flipped sign bit, a torn write), not a bigger
#: machine.
MAX_ADDRESS_BITS = 64
_MAX_VADDR = (1 << MAX_ADDRESS_BITS) - 1


def _open(path: str, mode: str):
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t")
    return io.open(path, mode)


def save_stream(stream: CoreStream, path: str) -> None:
    """Write one core's stream to ``path`` (gzip if ``.gz``)."""
    with _open(path, "w") as out:
        out.write(f"{_HEADER_PREFIX} core={stream.core} "
                  f"vm={stream.vm_id} asid={stream.asid}\n")
        for ref in stream.references:
            out.write(f"{ref.icount} {ref.vaddr:x} {'W' if ref.write else 'R'}\n")


def _parse_header(inp, path: str) -> tuple:
    """Parse the ``#pomtlb-trace`` header line; returns (core, vm, asid)."""
    try:
        header = inp.readline().strip()
    except (EOFError, OSError) as exc:
        # A torn gzip archive can fail on the very first read.
        raise TraceFormatError(f"truncated trace file ({exc})",
                               path=path, lineno=1) from None
    if not header:
        raise TraceFormatError("empty trace file (truncated?)",
                               path=path, lineno=1)
    if not header.startswith(_HEADER_PREFIX):
        raise TraceFormatError("missing trace header",
                               path=path, lineno=1, text=header)
    fields = dict(part.split("=", 1) for part in header.split()[1:])
    try:
        return int(fields["core"]), int(fields["vm"]), int(fields["asid"])
    except KeyError as missing:
        raise TraceFormatError(f"header missing field {missing}",
                               path=path, lineno=1, text=header) from None
    except ValueError:
        raise TraceFormatError("non-integer header field",
                               path=path, lineno=1, text=header) from None


def _iter_records(inp, path: str) -> Iterator[tuple]:
    """Yield validated ``(icount, vaddr, write)`` tuples, one per line.

    A generator so both loaders decode strictly line-by-line — gzip
    included — and the packed loader never holds the whole trace as
    Python objects.  Every diagnostic carries the file, the line number
    and the offending text, so a corrupt trace points at its own damage
    instead of surfacing as a simulator crash thousands of references
    later.
    """
    lineno = 1
    try:
        for lineno, line in enumerate(inp, start=2):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 3:
                raise TraceFormatError(
                    "truncated record (expected '<icount> <vaddr-hex> "
                    "<R|W>')", path=path, lineno=lineno,
                    text=line.rstrip("\n"))
            if parts[2] not in ("R", "W"):
                raise TraceFormatError(
                    f"bad access type {parts[2]!r} (expected R or W)",
                    path=path, lineno=lineno, text=line.rstrip("\n"))
            try:
                icount = int(parts[0])
                vaddr = int(parts[1], 16)
            except ValueError:
                raise TraceFormatError(
                    "non-numeric record field", path=path, lineno=lineno,
                    text=line.rstrip("\n")) from None
            if icount < 0:
                raise TraceFormatError(
                    "negative instruction count", path=path,
                    lineno=lineno, text=line.rstrip("\n"))
            if vaddr < 0 or vaddr > _MAX_VADDR:
                raise TraceFormatError(
                    f"address out of range (not a {MAX_ADDRESS_BITS}-bit "
                    "virtual address)", path=path, lineno=lineno,
                    text=line.rstrip("\n"))
            yield icount, vaddr, parts[2] == "W"
    except (EOFError, OSError) as exc:
        # gzip raises on a torn archive mid-iteration.
        raise TraceFormatError(f"truncated trace file ({exc})",
                               path=path, lineno=lineno) from None


def load_stream(path: str) -> CoreStream:
    """Read one core's stream back from ``path``.

    Strictly validated (see :func:`_iter_records`) and streamed
    line-by-line even through gzip — the decompressed text is never
    buffered whole.
    """
    with _open(path, "r") as inp:
        core, vm_id, asid = _parse_header(inp, path)
        refs = [MemoryReference(icount=i, vaddr=v, write=w)
                for i, v, w in _iter_records(inp, path)]
        return CoreStream(core=core, vm_id=vm_id, asid=asid,
                          references=refs)


def load_stream_packed(path: str):
    """Read a text trace straight into a packed columnar stream.

    Same grammar and diagnostics as :func:`load_stream`, but records
    stream directly into ``array('Q')`` columns (~17 bytes/record)
    instead of a ``MemoryReference`` list (~120 bytes/record), so
    converting a large trace never holds it as Python objects — this is
    what ``pomtlb trace pack`` runs.
    """
    from array import array

    from .packed import PackedStream

    with _open(path, "r") as inp:
        core, vm_id, asid = _parse_header(inp, path)
        icounts = array("Q")
        vaddrs = array("Q")
        writebits = bytearray()
        count = 0
        for icount, vaddr, write in _iter_records(inp, path):
            if not count & 7:
                writebits.append(0)
            if write:
                writebits[-1] |= 1 << (count & 7)
            icounts.append(icount)
            vaddrs.append(vaddr)
            count += 1
        return PackedStream(core, vm_id, asid, icounts, vaddrs,
                            bytes(writebits), count)


def validate_stream(stream: CoreStream) -> None:
    """Check trace invariants; raises :class:`TraceFormatError`.

    Instruction counts must be non-decreasing (references issue in
    program order) and addresses must fit a 64-bit virtual address.
    Runs before every simulation (except on validated workload-cache
    hits, whose header flag records this check already passed), so a
    corrupt stream — hand-edited, torn, or injected by the fault
    harness — fails with a diagnostic instead of poisoning results.
    """
    icounts = getattr(stream, "icounts", None)
    if icounts is not None:
        # Columnar fast path: u64 columns cannot hold an out-of-range
        # address, so only icount monotonicity needs checking.
        last = -1
        for position, icount in enumerate(icounts):
            if icount < last:
                raise TraceFormatError(
                    f"record {position}: icount {icount} goes backwards "
                    f"(previous {last})", lineno=position + 1,
                    text=repr(stream.references[position]))
            last = icount
        return
    last = -1
    for position, ref in enumerate(stream.references):
        if ref.icount < last:
            raise TraceFormatError(
                f"record {position}: icount {ref.icount} goes backwards "
                f"(previous {last})", lineno=position + 1, text=repr(ref))
        if ref.vaddr < 0 or ref.vaddr > _MAX_VADDR:
            raise TraceFormatError(
                f"record {position}: address out of range (not a "
                f"{MAX_ADDRESS_BITS}-bit virtual address)",
                lineno=position + 1, text=repr(ref))
        last = ref.icount


def interleave(streams: Iterable[CoreStream]) -> Iterator[tuple]:
    """Merge streams by instruction count: yields (stream, reference).

    Ties break by core id so runs are deterministic.
    """
    import heapq

    heap = []
    iterators = []
    for stream in streams:
        iterator = iter(stream.references)
        iterators.append((stream, iterator))
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(heap, (first.icount, stream.core, len(iterators) - 1, first))
    while heap:
        _icount, _core, index, ref = heapq.heappop(heap)
        stream, iterator = iterators[index]
        yield stream, ref
        nxt = next(iterator, None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.icount, stream.core, index, nxt))


def interleave_batched(streams: Iterable[CoreStream]) -> Iterator[tuple]:
    """Merge streams like :func:`interleave`, but yield runs as chunks.

    Yields ``(stream, lo, hi)`` where ``stream.references[lo:hi]`` is a
    maximal run of consecutive references that :func:`interleave` would
    deliver back-to-back from the same stream.  Flattening the chunks
    reproduces the exact :func:`interleave` order — ties still break by
    core id, then by stream arrival order.  The simulator's hot loop
    consumes chunks so per-stream constants (core, packed context, page
    maps) are hoisted out of the per-reference path.
    """
    import heapq

    sources = []
    positions = []
    heap = []
    for stream in streams:
        refs = stream.references
        if len(refs):
            # Packed streams expose their icount column; keying chunk
            # boundaries off it skips MemoryReference materialization.
            icounts = getattr(stream, "icounts", None)
            if icounts is None:
                first = refs[0].icount
            else:
                first = icounts[0]
            heap.append((first, stream.core, len(sources)))
            sources.append((stream, refs, icounts, len(refs)))
            positions.append(0)
    heapq.heapify(heap)
    while heap:
        _icount, core, index = heapq.heappop(heap)
        stream, refs, icounts, length = sources[index]
        lo = positions[index]
        hi = lo + 1
        if heap:
            # Nothing is pushed until this chunk closes, so the head is
            # fixed; extend while our next reference still sorts first.
            # Strict '<' is exact: full tuples never compare equal
            # (stream indices are unique).
            head = heap[0]
            if icounts is None:
                while hi < length and (refs[hi].icount, core, index) < head:
                    hi += 1
            else:
                while hi < length and (icounts[hi], core, index) < head:
                    hi += 1
        else:
            hi = length
        positions[index] = hi
        yield stream, lo, hi
        if hi < length:
            nxt = refs[hi].icount if icounts is None else icounts[hi]
            heapq.heappush(heap, (nxt, core, index))

