"""Multi-VM consolidation workloads (paper Section 5.2).

Cloud hosts run many VMs at once; the POM-TLB's pitch for that world is
that one large shared structure retains every VM's translations
simultaneously, keyed by VM ID.  This module builds such mixes: each VM
runs one suite benchmark on its own cores, and the resulting streams can
be fed to a single :class:`~repro.core.system.Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .suite import BenchmarkProfile, get_profile
from .trace import CoreStream


@dataclass
class VmAssignment:
    """One VM of the mix: which benchmark it runs and on which cores."""

    vm_id: int
    profile: BenchmarkProfile
    cores: Tuple[int, ...]


@dataclass
class ConsolidatedWorkload:
    """Streams of every VM plus the combined warmup budget."""

    assignments: List[VmAssignment]
    streams: List[CoreStream]
    warmup_references: int
    #: per-core prologue lengths; benchmarks tick their instruction
    #: clocks at different rates, so Machine.run needs the mapping form
    warmup_by_core: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Index assignments by vm_id once: thp_fraction_for is called
        # per VM per scheme, and a silent duplicate would make one VM's
        # THP policy shadow another's.
        self._by_vm: Dict[int, VmAssignment] = {}
        for assignment in self.assignments:
            if assignment.vm_id in self._by_vm:
                raise ValueError(
                    f"duplicate vm_id {assignment.vm_id} in consolidated "
                    f"workload (assignments must be unique per VM)")
            self._by_vm[assignment.vm_id] = assignment

    @property
    def references(self) -> int:
        return sum(len(s) for s in self.streams)

    def thp_fraction_for(self, vm_id: int) -> float:
        try:
            return self._by_vm[vm_id].profile.thp_large_fraction
        except KeyError:
            known = sorted(self._by_vm)
            raise KeyError(f"no VM {vm_id} in this workload "
                           f"(assigned vm_ids: {known})") from None

    def thp_fractions(self) -> Dict[int, float]:
        """``{vm_id: large fraction}`` for ``Machine(thp_fractions=...)``."""
        return {vm_id: a.profile.thp_large_fraction
                for vm_id, a in self._by_vm.items()}


def build_consolidation(benchmarks: Sequence[str], cores_per_vm: int = 1,
                        refs_per_core: int = 3000, seed: int = 0,
                        scale: float = 0.25) -> ConsolidatedWorkload:
    """Assign each benchmark to its own VM on a disjoint core set.

    VM ids start at 1; core ids are packed (VM i gets cores
    ``[i*cores_per_vm, (i+1)*cores_per_vm)``), so the total machine
    needs ``len(benchmarks) * cores_per_vm`` cores.
    """
    if not benchmarks:
        raise ValueError("need at least one benchmark")
    if cores_per_vm < 1:
        raise ValueError("cores_per_vm must be positive")
    assignments: List[VmAssignment] = []
    streams: List[CoreStream] = []
    warmup_total = 0
    warmup_by_core: Dict[int, int] = {}
    for index, name in enumerate(benchmarks):
        profile = get_profile(name)
        vm_id = index + 1
        base_core = index * cores_per_vm
        workload = profile.build(num_cores=cores_per_vm,
                                 refs_per_core=refs_per_core,
                                 seed=seed + vm_id, scale=scale)
        for stream in workload.streams:
            warmup = workload.warmup_by_core.get(stream.core, 0)
            stream.core += base_core
            stream.vm_id = vm_id
            streams.append(stream)
            if warmup:
                warmup_by_core[stream.core] = warmup
        warmup_total += workload.warmup_references
        assignments.append(VmAssignment(
            vm_id=vm_id, profile=profile,
            cores=tuple(range(base_core, base_core + cores_per_vm))))
    return ConsolidatedWorkload(assignments=assignments, streams=streams,
                                warmup_references=warmup_total,
                                warmup_by_core=warmup_by_core)
