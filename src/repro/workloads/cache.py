"""Content-addressed on-disk cache of compiled (packed) workloads.

``profile.build(...)`` is deterministic in exactly five inputs —
benchmark name, ``num_cores``, ``refs_per_core``, ``seed`` and
``scale`` — yet the campaign engine used to re-run it inside every pool
worker, once per scheme.  This cache compiles each distinct workload to
the packed columnar format (:mod:`repro.workloads.packed`) once and
keys the file by a content hash of those five inputs, the same
canonical-JSON + sha256-prefix discipline as the checkpoint store's
:func:`repro.resilience.checkpoint.run_key`.

Simulation knobs (POM capacity, DRAM timings, scheme) deliberately do
**not** participate in the key: they cannot change the reference
stream, so every scheme of a sweep hits the same entry.  The packed
format version *does* participate, so a layout change orphans stale
entries instead of misreading them.

Entries are written atomically and carry the format's ``validated``
header flag: a cache hit whose flag is set skips ``validate_stream``
re-validation (the satellite-3 fast path), while any corruption —
bit-rot, torn writes, hand editing — fails the CRC and is treated as a
miss after the damaged file is discarded.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

from .packed import (FORMAT_VERSION, load_packed, save_packed_workload)
from ..common.errors import PackedTraceError

#: Filename suffix for cache entries (packed workload containers).
ENTRY_SUFFIX = ".pwl"


def workload_key(benchmark: str, num_cores: int, refs_per_core: int,
                 seed: int, scale: float) -> str:
    """Content-hash key of one compiled workload.

    Mirrors :func:`repro.resilience.checkpoint.run_key`: canonical JSON
    with sorted keys, sha256, first 32 hex digits.  ``format`` pins the
    packed layout version so incompatible entries never collide.
    """
    payload = {"format": FORMAT_VERSION, "benchmark": benchmark,
               "num_cores": num_cores, "refs_per_core": refs_per_core,
               "seed": seed, "scale": scale}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def params_workload_key(benchmark: str, params) -> str:
    """:func:`workload_key` for an ExperimentParams-shaped object."""
    return workload_key(benchmark, params.num_cores, params.refs_per_core,
                        params.seed, params.scale)


class WorkloadCache:
    """Directory of packed workloads addressed by :func:`workload_key`.

    The directory is created lazily on the first store; lookups against
    a missing directory are plain misses.  ``hits`` / ``misses`` /
    ``rejected`` counters feed the campaign progress line and tests.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.rejected = 0

    def entry_path(self, key: str) -> str:
        return os.path.join(self.root, key + ENTRY_SUFFIX)

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.entry_path(key))

    def load(self, key: str):
        """The decoded container for ``key``, or None on a miss.

        A present-but-damaged entry (CRC or header failure) is deleted
        and counted in ``rejected`` — the caller regenerates and
        re-stores, so one corrupted file costs one compile, never a
        wrong result.
        """
        path = self.entry_path(key)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            container = load_packed(path)
        except PackedTraceError:
            self.rejected += 1
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return container

    def store(self, key: str, workload, validated: bool = False) -> str:
        """Pack ``workload`` into the cache atomically; returns the path."""
        os.makedirs(self.root, exist_ok=True)
        path = self.entry_path(key)
        save_packed_workload(path, workload, validated=validated)
        return path

    def get_or_compile(self, benchmark: str, params,
                       validate: bool = True) -> Tuple[object, bool]:
        """The packed workload for (benchmark, params): ``(container, hit)``.

        On a miss the workload is generated via the suite profile,
        validated (unless ``validate=False``), stored, and re-loaded
        from the cache so hits and misses exercise the identical decode
        path — one code path, one equivalence surface.
        """
        from .suite import get_profile
        from .trace import validate_stream

        key = params_workload_key(benchmark, params)
        container = self.load(key)
        if container is not None:
            return container, True
        profile = get_profile(benchmark)
        workload = profile.build(num_cores=params.num_cores,
                                 refs_per_core=params.refs_per_core,
                                 seed=params.seed, scale=params.scale)
        if validate:
            for stream in workload.streams:
                validate_stream(stream)
        self.store(key, workload, validated=validate)
        container = self.load(key)
        if container is None:  # pragma: no cover - a write we just made
            raise PackedTraceError("cache entry unreadable after store",
                                   path=self.entry_path(key))
        self.hits -= 1  # the re-load is not a real hit
        return container, False

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "rejected": self.rejected}
