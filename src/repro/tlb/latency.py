"""CACTI-like analytic SRAM access-latency model (paper Figure 4).

The paper uses CACTI to argue that naively growing the L2 TLB's SRAM
array does not scale: access latency rises steeply with capacity, so a
"just make the SRAM bigger" design loses its latency advantage long
before it reaches POM-TLB capacities.

We reproduce the argument with the standard first-order decomposition of
SRAM access time:

* decode/wordline delay grows with ``log2`` of the number of rows, and
* wordline + bitline RC delay grows with the **square root** of the array
  area (wire length scales with the array's linear dimension).

Absolute calibration is irrelevant for Figure 4 (it is normalised to a
16 KiB array); only the growth shape matters.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from ..common import addr

#: Reference capacity the paper normalises to.
REFERENCE_CAPACITY = 16 * addr.KiB

# First-order delay weights (dimensionless).  Chosen so the modelled
# curve matches published CACTI trends: ~1.6x at 64 KiB, ~3-4x at 1 MiB,
# >10x at 16 MiB relative to 16 KiB.
_DECODE_WEIGHT = 0.25
_WIRE_WEIGHT = 0.75


def access_time(capacity_bytes: int) -> float:
    """Un-normalised SRAM access time (arbitrary units) for a capacity."""
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    ratio = capacity_bytes / REFERENCE_CAPACITY
    decode = _DECODE_WEIGHT * (1.0 + math.log2(max(ratio, 1.0)) / 4.0)
    wire = _WIRE_WEIGHT * math.sqrt(ratio)
    return decode + wire


def normalized_latency(capacity_bytes: int) -> float:
    """Access latency normalised to the 16 KiB reference (Figure 4 y-axis)."""
    return access_time(capacity_bytes) / access_time(REFERENCE_CAPACITY)


def latency_cycles(capacity_bytes: int, base_cycles: int = 9) -> int:
    """CPU-cycle latency of an SRAM array of the given capacity.

    ``base_cycles`` anchors the model: the paper's 1536-entry L2 TLB
    (~24 KiB of SRAM) costs 9 cycles to access.
    """
    anchor = access_time(24 * addr.KiB)
    return max(1, round(base_cycles * access_time(capacity_bytes) / anchor))


def tlb_array_bytes(entries: int, entry_bytes: int = 16) -> int:
    """SRAM footprint of a TLB with the given entry count."""
    return entries * entry_bytes


def capacity_sweep(capacities: Iterable[int] = ()) -> List[Tuple[int, float]]:
    """(capacity, normalised latency) pairs for the Figure 4 sweep.

    Defaults to the power-of-two range 16 KiB .. 16 MiB.
    """
    points = list(capacities)
    if not points:
        points = [16 * addr.KiB << i for i in range(11)]  # 16KiB..16MiB
    return [(c, normalized_latency(c)) for c in points]


def figure4_series() -> Dict[str, float]:
    """Figure 4 as a {label: normalised latency} mapping."""
    return {addr.pretty_size(c): lat for c, lat in capacity_sweep()}
