"""Set-associative SRAM TLB (L1 split / L2 unified / shared baselines).

Lookups are keyed by **packed integer keys** (:func:`repro.tlb.entry.pack_key`);
the named :class:`~repro.tlb.entry.TlbKey` view is reconstructed only for
introspection.  A unified TLB in real hardware probes its sets once per
supported page size; here the MMU probes with the translation's true
size, which produces identical hit/miss outcomes (a wrong-size probe can
never hit: the entry was installed under its true size).

Recency is the insertion order of each set's dict: a hit deletes and
reinserts the key (``move_to_end``), the victim is the first key in
iteration order.  That reproduces the seed-era per-set ``LruPolicy``
victim sequence exactly with no side structure to maintain.

Invalidation supports the shootdown granularities the paper's
mostly-inclusive consistency scheme needs: single page, ASID, VM, or
full flush.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common import addr
from ..common.config import TlbConfig
from ..common.stats import StatGroup
from .entry import (KEY_CONTEXT_MASK, KEY_VM_FIELD_MASK, TlbEntry, TlbKey,
                    pack_context, unpack_key)


class SramTlb:
    """One SRAM TLB level, keyed by packed integer keys."""

    def __init__(self, config: TlbConfig, stats: StatGroup) -> None:
        self.config = config
        self.stats = stats
        self._num_sets = config.num_sets
        self._set_mask = self._num_sets - 1
        self._ways = config.ways
        self._sets: Tuple[Dict[int, TlbEntry], ...] = tuple(
            {} for _ in range(self._num_sets))
        self._hits = stats.counter("hits")
        self._misses = stats.counter("misses")
        self._fills = stats.counter("fills")
        self._evictions = stats.counter("evictions")
        #: Set index of the most recent :meth:`lookup`; the schemes read
        #: it to :meth:`insert_at` after a miss without re-hashing.
        self.probe_index = 0

    def _set_index(self, key: int) -> int:
        # XOR in vm/asid so co-running guests spread over the sets; the
        # paper applies the same trick to the POM-TLB set mapping.
        # Field extraction inlined from entry.py's packed layout.
        return ((key >> 33)
                ^ (((key >> 1) & 0xFFFF) * 0x9E37)
                ^ (((key >> 17) & 0xFFFF) * 0x85EB)) & self._set_mask

    # -- operations -----------------------------------------------------------

    def lookup(self, key: int) -> Optional[TlbEntry]:
        """Probe for ``key``; refreshes recency and stats.

        Leaves the probed set index in :attr:`probe_index` so a
        following :meth:`insert_at` skips the second hash.
        """
        set_idx = ((key >> 33)
                   ^ (((key >> 1) & 0xFFFF) * 0x9E37)
                   ^ (((key >> 17) & 0xFFFF) * 0x85EB)) & self._set_mask
        self.probe_index = set_idx
        entries = self._sets[set_idx]
        entry = entries.get(key)
        if entry is not None:
            slot = self._hits
            slot.value += 1
            slot.touched = True
            # move_to_end: delete + reinsert keeps dict order == recency.
            del entries[key]
            entries[key] = entry
            return entry
        slot = self._misses
        slot.value += 1
        slot.touched = True
        return None

    def contains(self, key: int) -> bool:
        """Presence check with no side effects."""
        return key in self._sets[self._set_index(key)]

    def insert(self, key: int, entry: TlbEntry) -> Optional[int]:
        """Install a translation; returns the evicted key, if any."""
        return self.insert_at(self._set_index(key), key, entry)

    def insert_at(self, set_idx: int, key: int,
                  entry: TlbEntry) -> Optional[int]:
        """Install ``key`` into a set whose index the caller already has."""
        entries = self._sets[set_idx]
        evicted: Optional[int] = None
        if key in entries:
            del entries[key]
        elif len(entries) >= self._ways:
            evicted = next(iter(entries))
            del entries[evicted]
            slot = self._evictions
            slot.value += 1
            slot.touched = True
        entries[key] = entry
        slot = self._fills
        slot.value += 1
        slot.touched = True
        return evicted

    # -- batch-replay support -------------------------------------------------

    def batch_view(self) -> Tuple[Tuple[Dict[int, TlbEntry], ...], int, int]:
        """``(sets, set_mask, ways)`` for the batched replay engine.

        :mod:`repro.core.batch` vectorizes :meth:`_set_index` over whole
        vaddr columns with numpy and then probes the **live** set dicts
        directly, replicating :meth:`lookup`'s hit path (delete +
        reinsert, hits counter) bit-identically.  Exposing the storage
        through one accessor keeps that engine honest about what it
        depends on: dict-per-set storage in recency order, the
        :meth:`_set_index` hash, and ``ways``-bounded sets.
        """
        return self._sets, self._set_mask, self._ways

    # -- invalidation (TLB shootdown support) -------------------------------

    def invalidate_page(self, key: int) -> bool:
        """Drop one translation (shootdown of a single page)."""
        set_idx = self._set_index(key)
        if key in self._sets[set_idx]:
            del self._sets[set_idx][key]
            self.stats.inc("shootdowns")
            return True
        return False

    def invalidate_asid(self, vm_id: int, asid: int) -> int:
        """Drop all translations of one guest process; returns count."""
        context = pack_context(vm_id, asid)
        return self._invalidate_if(
            lambda k: k & KEY_CONTEXT_MASK == context)

    def invalidate_vm(self, vm_id: int) -> int:
        """Drop all translations of one VM (e.g. VM teardown)."""
        vm_bits = pack_context(vm_id, 0)
        return self._invalidate_if(
            lambda k: k & KEY_VM_FIELD_MASK == vm_bits)

    def flush(self) -> int:
        """Full flush; returns the number of entries dropped."""
        return self._invalidate_if(lambda k: True)

    def _invalidate_if(self, predicate) -> int:
        dropped = 0
        for entries in self._sets:
            doomed = [key for key in entries if predicate(key)]
            for key in doomed:
                del entries[key]
            dropped += len(doomed)
        if dropped:
            self.stats.inc("shootdowns", dropped)
        return dropped

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def keys(self) -> List[TlbKey]:
        """All resident translations (tests and consistency checks)."""
        found: List[TlbKey] = []
        for entries in self._sets:
            found.extend(unpack_key(key) for key in entries)
        return found

    def hit_rate(self) -> float:
        return self.stats.ratio("hits", "lookups") if "lookups" in self.stats else (
            self.stats["hits"] / (self.stats["hits"] + self.stats["misses"])
            if (self.stats["hits"] + self.stats["misses"]) else 0.0)

    @property
    def reach_bytes(self) -> int:
        """Bytes of address space covered if filled with 4 KiB entries."""
        return self.config.entries * addr.SMALL_PAGE_SIZE
