"""Set-associative SRAM TLB (L1 split / L2 unified / shared baselines).

Lookups are keyed by :class:`~repro.tlb.entry.TlbKey`.  A unified TLB in
real hardware probes its sets once per supported page size; here the MMU
probes with the translation's true size, which produces identical
hit/miss outcomes (a wrong-size probe can never hit: the entry was
installed under its true size).

Invalidation supports the shootdown granularities the paper's
mostly-inclusive consistency scheme needs: single page, ASID, VM, or
full flush.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common import addr
from ..common.config import TlbConfig
from ..common.stats import StatGroup
from ..cache.replacement import LruPolicy
from .entry import TlbEntry, TlbKey


class SramTlb:
    """One SRAM TLB level."""

    def __init__(self, config: TlbConfig, stats: StatGroup) -> None:
        self.config = config
        self.stats = stats
        self._num_sets = config.num_sets
        self._set_mask = self._num_sets - 1
        self._sets: Tuple[Dict[TlbKey, TlbEntry], ...] = tuple(
            {} for _ in range(self._num_sets))
        self._lru: Tuple[LruPolicy, ...] = tuple(
            LruPolicy() for _ in range(self._num_sets))

    def _set_index(self, key: TlbKey) -> int:
        # XOR in vm/asid so co-running guests spread over the sets; the
        # paper applies the same trick to the POM-TLB set mapping.
        return (key.vpn ^ (key.vm_id * 0x9E37) ^ (key.asid * 0x85EB)) & self._set_mask

    # -- operations -----------------------------------------------------------

    def lookup(self, key: TlbKey) -> Optional[TlbEntry]:
        """Probe for ``key``; refreshes recency and stats."""
        set_idx = self._set_index(key)
        entry = self._sets[set_idx].get(key)
        if entry is not None:
            self.stats.inc("hits")
            self._lru[set_idx].touch(key)
            return entry
        self.stats.inc("misses")
        return None

    def contains(self, key: TlbKey) -> bool:
        """Presence check with no side effects."""
        return key in self._sets[self._set_index(key)]

    def insert(self, key: TlbKey, entry: TlbEntry) -> Optional[TlbKey]:
        """Install a translation; returns the evicted key, if any."""
        set_idx = self._set_index(key)
        entries = self._sets[set_idx]
        lru = self._lru[set_idx]
        evicted: Optional[TlbKey] = None
        if key not in entries and len(entries) >= self.config.ways:
            evicted = lru.victim()
            del entries[evicted]
            lru.remove(evicted)
            self.stats.inc("evictions")
        entries[key] = entry
        lru.touch(key)
        self.stats.inc("fills")
        return evicted

    # -- invalidation (TLB shootdown support) -------------------------------

    def invalidate_page(self, key: TlbKey) -> bool:
        """Drop one translation (shootdown of a single page)."""
        set_idx = self._set_index(key)
        if key in self._sets[set_idx]:
            del self._sets[set_idx][key]
            self._lru[set_idx].remove(key)
            self.stats.inc("shootdowns")
            return True
        return False

    def invalidate_asid(self, vm_id: int, asid: int) -> int:
        """Drop all translations of one guest process; returns count."""
        return self._invalidate_if(lambda k: k.vm_id == vm_id and k.asid == asid)

    def invalidate_vm(self, vm_id: int) -> int:
        """Drop all translations of one VM (e.g. VM teardown)."""
        return self._invalidate_if(lambda k: k.vm_id == vm_id)

    def flush(self) -> int:
        """Full flush; returns the number of entries dropped."""
        return self._invalidate_if(lambda k: True)

    def _invalidate_if(self, predicate) -> int:
        dropped = 0
        for entries, lru in zip(self._sets, self._lru):
            doomed = [key for key in entries if predicate(key)]
            for key in doomed:
                del entries[key]
                lru.remove(key)
            dropped += len(doomed)
        if dropped:
            self.stats.inc("shootdowns", dropped)
        return dropped

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def keys(self) -> List[TlbKey]:
        """All resident translations (tests and consistency checks)."""
        found: List[TlbKey] = []
        for entries in self._sets:
            found.extend(entries)
        return found

    def hit_rate(self) -> float:
        return self.stats.ratio("hits", "lookups") if "lookups" in self.stats else (
            self.stats["hits"] / (self.stats["hits"] + self.stats["misses"])
            if (self.stats["hits"] + self.stats["misses"]) else 0.0)

    @property
    def reach_bytes(self) -> int:
        """Bytes of address space covered if filled with 4 KiB entries."""
        return self.config.entries * addr.SMALL_PAGE_SIZE
