"""TLB entry and key types shared by all translation structures.

A translation is identified by the tuple (VM ID, process/ASID, VPN, page
size) — the same fields the paper's POM-TLB metadata stores (Figure 5:
valid, VM ID, Process ID, VPN, PPN, attributes).

Two representations exist:

* :class:`TlbKey` — the named, documented shape.  Cold paths, tests and
  reporting use it.
* **packed integer keys** — the hot-path representation.  All four
  fields are packed into one int (:func:`pack_key`), so building a key
  is a handful of shifts/ors instead of a NamedTuple allocation, and
  set dictionaries hash a machine int instead of a 4-tuple.  The
  translation structures (:class:`~repro.tlb.tlb.SramTlb`, the POM-TLB
  partitions, the skewed POM-TLB) are keyed by packed ints.

Packed layout, LSB first (widths checked by ``pack_key_checked`` and
the property tests)::

    bit  0         large-page flag (1 bit)
    bits 1 .. 16   vm_id  (KEY_VM_BITS = 16)
    bits 17 .. 32  asid   (KEY_ASID_BITS = 16)
    bits 33 ..     vpn    (unbounded; <= 36 bits for 48-bit VAs)

Distinct (vm_id, asid, vpn, large) tuples within the field widths map
to distinct packed ints — the representation is a bijection, which is
what makes counter equivalence with the NamedTuple engine automatic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

KEY_VM_BITS = 16
KEY_ASID_BITS = 16

KEY_VM_SHIFT = 1
KEY_ASID_SHIFT = KEY_VM_SHIFT + KEY_VM_BITS    # 17
KEY_VPN_SHIFT = KEY_ASID_SHIFT + KEY_ASID_BITS  # 33

KEY_VM_MASK = (1 << KEY_VM_BITS) - 1
KEY_ASID_MASK = (1 << KEY_ASID_BITS) - 1

#: Mask selecting the (vm_id, asid) bits of a packed key — one ``&``
#: compares a key's software context against a packed context.
KEY_CONTEXT_MASK = ((KEY_ASID_MASK << KEY_ASID_SHIFT)
                    | (KEY_VM_MASK << KEY_VM_SHIFT))

#: Mask selecting the (vm_id) bits of a packed key.
KEY_VM_FIELD_MASK = KEY_VM_MASK << KEY_VM_SHIFT


def pack_key(vm_id: int, asid: int, vpn: int, large: bool) -> int:
    """Pack a translation identity into one integer (unchecked)."""
    return ((vpn << KEY_VPN_SHIFT) | (asid << KEY_ASID_SHIFT)
            | (vm_id << KEY_VM_SHIFT) | (1 if large else 0))


def pack_context(vm_id: int, asid: int) -> int:
    """Pack only the software context; OR in ``vpn``/``large`` later.

    ``Machine.run`` interns one packed context per stream, so the
    per-reference key build is two shift-or operations.
    """
    return (asid << KEY_ASID_SHIFT) | (vm_id << KEY_VM_SHIFT)


def pack_key_checked(vm_id: int, asid: int, vpn: int, large: bool) -> int:
    """:func:`pack_key` with field-width validation (cold paths only)."""
    if not 0 <= vm_id <= KEY_VM_MASK:
        raise ValueError(f"vm_id {vm_id} does not fit {KEY_VM_BITS} bits")
    if not 0 <= asid <= KEY_ASID_MASK:
        raise ValueError(f"asid {asid} does not fit {KEY_ASID_BITS} bits")
    if vpn < 0:
        raise ValueError(f"vpn must be non-negative, got {vpn}")
    return pack_key(vm_id, asid, vpn, large)


def unpack_key(packed: int) -> "TlbKey":
    """Inverse of :func:`pack_key`."""
    return TlbKey(vm_id=(packed >> KEY_VM_SHIFT) & KEY_VM_MASK,
                  asid=(packed >> KEY_ASID_SHIFT) & KEY_ASID_MASK,
                  vpn=packed >> KEY_VPN_SHIFT,
                  large=bool(packed & 1))


class TlbKey(NamedTuple):
    """Identity of one translation, unique system-wide (named view)."""

    vm_id: int
    asid: int
    vpn: int
    large: bool

    def pack(self) -> int:
        """The packed-integer form of this key (validated)."""
        return pack_key_checked(self.vm_id, self.asid, self.vpn, self.large)

    @classmethod
    def from_packed(cls, packed: int) -> "TlbKey":
        return unpack_key(packed)


@dataclass
class TlbEntry:
    """Payload of one translation: the host-physical frame + attributes.

    ``writable`` stands in for the protection bits of the paper's ``attr``
    field; LRU bits are kept by the containing structure, not the entry.
    """

    ppn: int
    writable: bool = True

    def translate(self, vaddr: int, page_shift: int) -> int:
        """Apply this mapping to a full virtual address."""
        offset_mask = (1 << page_shift) - 1
        return (self.ppn << page_shift) | (vaddr & offset_mask)
