"""TLB entry and key types shared by all translation structures.

A translation is identified by the tuple (VM ID, process/ASID, VPN, page
size) — the same fields the paper's POM-TLB metadata stores (Figure 5:
valid, VM ID, Process ID, VPN, PPN, attributes).  Keys are plain tuples
in the hot path; this module gives them a named, documented shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple


class TlbKey(NamedTuple):
    """Identity of one translation, unique system-wide."""

    vm_id: int
    asid: int
    vpn: int
    large: bool


@dataclass
class TlbEntry:
    """Payload of one translation: the host-physical frame + attributes.

    ``writable`` stands in for the protection bits of the paper's ``attr``
    field; LRU bits are kept by the containing structure, not the entry.
    """

    ppn: int
    writable: bool = True

    def translate(self, vaddr: int, page_shift: int) -> int:
        """Apply this mapping to a full virtual address."""
        offset_mask = (1 << page_shift) - 1
        return (self.ppn << page_shift) | (vaddr & offset_mask)
