"""SRAM TLB structures, the shared-TLB baseline and the latency model."""

from . import latency
from .entry import TlbEntry, TlbKey
from .shared_l2 import SharedLastLevelTlb
from .tlb import SramTlb

__all__ = [
    "SharedLastLevelTlb",
    "SramTlb",
    "TlbEntry",
    "TlbKey",
    "latency",
]
