"""Shared last-level SRAM TLB baseline (paper's "Shared_L2").

Implements the scheme of Bhattacharjee et al. [9] as the paper describes
it: the private per-core L2 TLBs are replaced by a **single shared SRAM
TLB** with the aggregate capacity.  An L1 TLB miss looks up the shared
structure; a shared-TLB miss starts a page walk.

Sharing is not free, which is central to the paper's comparison: the
default (banked, as in the reference proposal) charges an interconnect
hop on top of the private-L2 array latency; the monolithic variant
(``banked=False``) instead grows the array latency with the CACTI-like
model of :mod:`repro.tlb.latency`.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import SharedL2Config, TlbConfig
from ..common.stats import StatGroup
from . import latency as sram_latency
from .entry import TlbEntry
from .tlb import SramTlb


class SharedLastLevelTlb:
    """One SRAM TLB shared by every core."""

    #: Batch-replay contract (:mod:`repro.core.batch`): resolving a miss
    #: through this structure never touches another core's L1 TLB or L1
    #: data cache (see :class:`repro.core.pom_tlb.PomTlb`).
    L1_PRIVATE = True

    def __init__(self, config: SharedL2Config, num_cores: int,
                 stats: StatGroup) -> None:
        self.config = config
        base = config.tlb_config(num_cores)
        if config.banked:
            # Per-core banks keep the array access at private-L2 cost;
            # only the interconnect hop is extra.
            access = config.array_latency_cycles
        else:
            array_bytes = sram_latency.tlb_array_bytes(base.entries)
            access = sram_latency.latency_cycles(array_bytes)
        self.tlb_config = TlbConfig(
            name=base.name, entries=base.entries, ways=base.ways,
            latency_cycles=access + config.interconnect_cycles)
        self._tlb = SramTlb(self.tlb_config, stats)
        self.stats = stats

    @property
    def latency(self) -> int:
        """Round-trip lookup latency in CPU cycles (array + interconnect)."""
        return self.tlb_config.latency_cycles

    @property
    def probe_index(self) -> int:
        """Set index of the most recent lookup (for ``insert_at``)."""
        return self._tlb.probe_index

    def lookup(self, key: int) -> Optional[TlbEntry]:
        return self._tlb.lookup(key)

    def insert(self, key: int, entry: TlbEntry) -> Optional[int]:
        return self._tlb.insert(key, entry)

    def insert_at(self, set_idx: int, key: int,
                  entry: TlbEntry) -> Optional[int]:
        return self._tlb.insert_at(set_idx, key, entry)

    def invalidate_page(self, key: int) -> bool:
        return self._tlb.invalidate_page(key)

    def invalidate_vm(self, vm_id: int) -> int:
        """Drop every entry of one VM; returns the count dropped."""
        return self._tlb.invalidate_vm(vm_id)

    def contains(self, key: int) -> bool:
        return self._tlb.contains(key)

    def keys(self):
        return self._tlb.keys()

    def flush(self) -> int:
        return self._tlb.flush()

    def __len__(self) -> int:
        return len(self._tlb)
