#!/usr/bin/env python3
"""Why the POM-TLB deserves its own DRAM channel (paper Section 2.2).

Translation requests are blocking — the core stalls until the PFN comes
back — so queueing them behind data bursts would erase the POM-TLB's
latency win.  This example drives the command-level FR-FCFS scheduler
with data traffic of increasing density and shows the TLB stream's mean
latency on a shared channel vs a dedicated one, as an ASCII bar chart.

Run:  python examples/channel_contention.py
"""

from repro.experiments.contention import channel_contention


def main() -> None:
    report = channel_contention(data_intervals=(128, 96, 64, 48, 32, 24))
    print(report.render())
    print()
    print(report.render_bars("slowdown", width=30))
    print("\nbars show shared-channel slowdown relative to the dedicated "
          "channel: queueing grows without bound as data traffic\n"
          "approaches channel saturation, while the dedicated channel's "
          "latency never moves — the JEDEC multi-channel HBM layout\n"
          "the paper assumes makes the isolation free.")


if __name__ == "__main__":
    main()
