#!/usr/bin/env python3
"""Characterise a workload's TLB behaviour before simulating it.

Uses the trace-analysis toolkit to answer, for one suite benchmark, the
questions the paper answers with PIN + perf in Section 3.1: footprint,
page-reuse skew, and the TLB miss rate different capacities would see
(stack-distance estimates) — which is exactly why a 16 MB POM-TLB
succeeds where kilobyte-scale SRAM TLBs thrash.

Run:  python examples/trace_characterization.py [benchmark]
"""

import sys

from repro.workloads import analysis
from repro.workloads.suite import get_profile


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    profile = get_profile(name)
    workload = profile.build(num_cores=1, refs_per_core=8000, seed=3,
                             scale=0.25)
    stream = workload.streams[0]

    summary = analysis.summarize(stream)
    print(f"{name}: {summary.references} refs over "
          f"{summary.footprint_pages} pages "
          f"({summary.footprint_bytes >> 20} MiB), "
          f"{summary.write_fraction:.0%} writes, "
          f"{summary.refs_per_page_touch:.1f} refs per page touch")

    print("\npage reuse distances (distinct pages between touches):")
    histogram = analysis.reuse_distance_histogram(
        stream, buckets=[64, 1536, 8192])
    total = sum(histogram.values())
    for label, count in histogram.items():
        print(f"  {label:>7s}: {count:6d} ({count / total:5.1%})")
    print("  -> '<64' would hit the L1 TLB, '<1536' the L2 TLB; "
          "everything else needs the POM-TLB or a walk.")

    print("\nestimated steady-state miss rate vs TLB capacity:")
    for entries in (64, 1536, 8192, 65536):
        rate = analysis.estimate_tlb_miss_rate(stream, entries)
        print(f"  {entries:6d} entries: {rate:6.1%}")
    print("  -> the POM-TLB's half-million-entry reach is why its miss "
          "rate is ~0 where SRAM TLBs keep missing.")

    print("\nhottest pages:")
    for page, count in analysis.page_popularity(stream, top=5):
        print(f"  page {page:#014x}: {count} touches")


if __name__ == "__main__":
    main()
