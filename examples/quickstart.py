#!/usr/bin/env python3
"""Quickstart: simulate the POM-TLB on one benchmark and print the story.

Runs the `mcf` workload (pointer-chasing, the paper's best case) on a
2-core machine under the baseline page-walk scheme and under the
POM-TLB, then prints walk elimination, penalty per L2 TLB miss and the
anchored performance improvement — the core claim of the paper in ~30
lines of API.

Run:  python examples/quickstart.py
"""

from repro.common.config import SystemConfig
from repro.core.perfmodel import estimate
from repro.core.system import Machine
from repro.workloads.suite import get_profile


def main() -> None:
    profile = get_profile("mcf")
    workload = profile.build(num_cores=2, refs_per_core=4000, seed=7,
                             scale=0.25)
    print(f"workload: {profile.name}  "
          f"(footprint {profile.footprint_pages(0.25)} pages/core, "
          f"{profile.large_page_fraction_pct}% large pages)")

    results = {}
    for scheme in ("baseline", "pom"):
        machine = Machine(SystemConfig(num_cores=2), scheme=scheme,
                          thp_large_fraction=profile.thp_large_fraction,
                          seed=7)
        results[scheme] = machine.run(
            workload.streams, warmup_references=workload.warmup_references)

    base, pom = results["baseline"], results["pom"]
    print(f"\nL2 TLB misses (steady state): {base.l2_tlb_misses}")
    print(f"baseline: every miss walks the 2-D page table "
          f"({base.page_walks} walks, "
          f"{base.avg_penalty_per_miss:.0f} cycles/miss)")
    print(f"POM-TLB:  {pom.page_walks} walks "
          f"({100 * pom.walk_elimination:.1f}% eliminated), "
          f"{pom.avg_penalty_per_miss:.0f} cycles/miss")
    print(f"POM-TLB entry hits: L2D$ {pom.tlb_cache_hit_ratio('l2'):.0%}, "
          f"L3D$ {pom.tlb_cache_hit_ratio('l3'):.0%}")

    perf = estimate(profile.anchor(virtualized=True),
                    pom.l2_tlb_misses, pom.penalty_cycles)
    print(f"\nanchored on the paper's measured baseline "
          f"({profile.overhead_virtual_pct}% translation overhead, "
          f"{profile.cycles_per_miss_virtual} cycles/miss):")
    print(f"  performance improvement: {perf.improvement_percent:.1f}%")


if __name__ == "__main__":
    main()
