#!/usr/bin/env python3
"""Characterise virtualization's translation tax (paper Figures 2 and 3).

Runs three benchmarks under the baseline page-walk scheme twice — once
bare metal (1-D walks, up to 4 references) and once virtualized (2-D
nested walks, up to 24 references) — and prints the per-miss translation
cost of each plus the virtualized/native ratio, next to the paper's
measured Skylake numbers.

Run:  python examples/virtualized_vs_native.py
"""

import dataclasses

from repro.experiments.runner import ExperimentParams, SuiteRunner
from repro.workloads.suite import get_profile

BENCHMARKS = ("gups", "mcf", "canneal")


def main() -> None:
    params = ExperimentParams(num_cores=2, refs_per_core=4000, scale=0.25,
                              seed=11)
    runner = SuiteRunner(params)
    native_params = dataclasses.replace(params, virtualized=False)

    print(f"{'benchmark':12s} {'sim native':>11s} {'sim virt':>9s} "
          f"{'sim ratio':>9s} {'paper ratio':>11s}")
    for name in BENCHMARKS:
        virt = runner.run(name, "baseline").result
        native = runner.run(name, "baseline", native_params).result
        profile = get_profile(name)
        sim_ratio = (virt.avg_penalty_per_miss / native.avg_penalty_per_miss
                     if native.avg_penalty_per_miss else float("nan"))
        paper_ratio = (profile.cycles_per_miss_virtual
                       / profile.cycles_per_miss_native)
        print(f"{name:12s} {native.avg_penalty_per_miss:11.1f} "
              f"{virt.avg_penalty_per_miss:9.1f} {sim_ratio:9.2f} "
              f"{paper_ratio:11.2f}")

    print("\nvirtualized walks reference both guest and host tables "
          "(up to 24 accesses vs 4 native), which is the overhead the "
          "POM-TLB is built to avoid.")


if __name__ == "__main__":
    main()
