#!/usr/bin/env python3
"""POM-TLB capacity and SRAM-scaling sweeps (Figure 4 + Section 4.6).

Part 1 prints the CACTI-like SRAM latency curve: why simply growing the
L2 TLB's SRAM array is a dead end.
Part 2 sweeps the POM-TLB over 4-32 MiB on two benchmarks and shows the
paper's Section 4.6 finding: beyond a modest size, capacity stops
mattering because the structure already holds every translation.

Run:  python examples/capacity_sweep.py
"""

import dataclasses

from repro.common import addr
from repro.experiments.runner import ExperimentParams, SuiteRunner
from repro.tlb import latency as sram_latency

BENCHMARKS = ("mcf", "gups")
CAPACITIES_MB = (4, 8, 16, 32)


def main() -> None:
    print("Part 1 — SRAM latency vs capacity (normalised to 16 KiB):")
    for capacity, value in sram_latency.capacity_sweep():
        bar = "#" * round(value * 2)
        print(f"  {addr.pretty_size(capacity):>7s} {value:6.2f}x {bar}")
    print("  -> a 16 MiB SRAM TLB would be ~25x slower to access;"
          " DRAM capacity with cacheable entries is the way out.\n")

    print("Part 2 — POM-TLB capacity sweep (anchored improvement %):")
    params = ExperimentParams(num_cores=2, refs_per_core=4000, scale=0.25,
                              seed=17)
    runner = SuiteRunner(params)
    header = "  capacity " + "".join(f"{b:>10s}" for b in BENCHMARKS)
    print(header)
    for capacity in CAPACITIES_MB:
        swept = dataclasses.replace(params,
                                    pom_size_bytes=capacity * addr.MiB)
        cells = []
        for name in BENCHMARKS:
            run = runner.run(name, "pom", swept)
            cells.append(f"{run.improvement_percent:9.1f}%")
        print(f"  {capacity:5d}MiB " + "".join(cells))
    print("  -> the curve flattens once the working set fits "
          "(the paper reports <1% change between 8 and 32 MiB).")


if __name__ == "__main__":
    main()
