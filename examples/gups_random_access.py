#!/usr/bin/env python3
"""gups: the TLB stress test, under all four translation schemes.

gups performs random updates over a giant table — the paper's probe for
how well each scheme *retains* translations (Section 4.1 singles it out:
TSB manages 1.8% improvement while the POM-TLB reaches 16%).  This
example runs gups under baseline / Shared_L2 / TSB / POM-TLB and prints
penalties, walk elimination and anchored improvements side by side.

Run:  python examples/gups_random_access.py
"""

from repro.experiments.runner import ExperimentParams, SuiteRunner
from repro.workloads.suite import get_profile

SCHEMES = ("baseline", "shared_l2", "tsb", "pom")


def main() -> None:
    profile = get_profile("gups")
    params = ExperimentParams(num_cores=2, refs_per_core=5000, scale=0.3,
                              seed=13)
    runner = SuiteRunner(params)

    print(f"gups: uniform random updates over "
          f"{profile.footprint_pages(params.scale)} pages/core\n")
    print(f"{'scheme':10s} {'cycles/miss':>11s} {'walks avoided':>13s} "
          f"{'improvement':>11s}")
    for scheme in SCHEMES:
        run = runner.run(scheme=scheme, benchmark="gups")
        result = run.result
        print(f"{scheme:10s} {result.avg_penalty_per_miss:11.1f} "
              f"{result.walk_elimination:13.1%} "
              f"{run.improvement_percent:10.1f}%")

    pom = runner.run("gups", "pom").result
    print(f"\nwhy POM-TLB wins: its 16 MiB reach holds the whole table's "
          f"translations ({pom.pom_hit_ratio():.0%} set-probe hit rate), "
          f"and each 64 B line carries 4 entries, so even random misses "
          f"find {pom.tlb_cache_hit_ratio('l2'):.0%} of their sets in the "
          f"L2D$ and {pom.tlb_cache_hit_ratio('l3'):.0%} in the L3D$.")


if __name__ == "__main__":
    main()
