#!/usr/bin/env python3
"""VM consolidation: the Section 5.2 benefit, measured.

Four VMs run different benchmarks on four cores of one host.  Their
translations share every structure but are keyed by VM ID, so nothing
aliases.  With only SRAM TLBs (baseline), each VM competes for private
L2 TLB entries and every miss is a 2-D nested walk.  The POM-TLB retains
all four VMs' translations simultaneously, so consolidation costs a
cached lookup instead of a walk.

Run:  python examples/multi_vm_consolidation.py
"""

from repro.common.config import SystemConfig
from repro.core.system import Machine
from repro.workloads.consolidation import build_consolidation

BENCHMARKS = ("gcc", "mcf", "canneal", "gups")


def main() -> None:
    workload = build_consolidation(BENCHMARKS, cores_per_vm=1,
                                   refs_per_core=3000, seed=21, scale=0.2)
    thp = {a.vm_id: a.profile.thp_large_fraction
           for a in workload.assignments}
    print("VM assignment:")
    for assignment in workload.assignments:
        print(f"  vm{assignment.vm_id} runs {assignment.profile.name:8s} "
              f"on core {assignment.cores[0]}")

    print()
    for scheme in ("baseline", "pom"):
        machine = Machine(SystemConfig(num_cores=len(BENCHMARKS)),
                          scheme=scheme, thp_fractions=thp, seed=21)
        result = machine.run(workload.streams,
                             warmup_references=workload.warmup_by_core)
        print(f"{scheme:9s} L2-TLB misses: {result.l2_tlb_misses:6d}  "
              f"page walks: {result.page_walks:6d}  "
              f"cycles/miss: {result.avg_penalty_per_miss:6.1f}")
        if scheme == "pom":
            occupancy = machine.scheme.pom.occupancy()
            print(f"\nPOM-TLB holds {occupancy['small']} small + "
                  f"{occupancy['large']} large entries across all "
                  f"{len(BENCHMARKS)} VMs at once — the consolidation "
                  f"headroom SRAM TLBs cannot offer (paper Section 5.2).")


if __name__ == "__main__":
    main()
