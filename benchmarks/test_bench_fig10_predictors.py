"""Figure 10: page-size and cache-bypass predictor accuracy.

Shape targets: the size predictor is highly accurate (paper: 95%
average); the bypass predictor is markedly less reliable (paper: 45.8%
average) but excellent on streaming workloads (bwaves, lbm, libquantum).
"""

from repro.experiments import figures


def test_bench_fig10_predictors(benchmark, runner):
    report = benchmark.pedantic(
        figures.fig10_predictors, args=(runner,), rounds=1, iterations=1)
    print("\n" + report.render())
    rows = {row[0]: (row[1], row[2]) for row in report.rows}
    size_acc = [s for s, _b in rows.values() if s > 0]
    # Size prediction is near-paper-accurate on average.
    assert sum(size_acc) / len(size_acc) > 0.85
    # The streaming workloads give the bypass predictor an easy time.
    easy = [rows[b][1] for b in ("lbm", "libquantum") if rows[b][1] > 0]
    for accuracy in easy:
        assert accuracy > 0.7
