"""Figure 4: SRAM access latency does not scale with capacity."""

from repro.experiments import figures


def test_bench_fig04_sram_latency(benchmark):
    report = benchmark(figures.fig4_sram_latency)
    print("\n" + report.render())
    series = report.column("normalised_latency")
    # Monotone growth, starting at the 16KiB reference point.
    assert series[0] == 1.0
    assert series == sorted(series)
    # The paper's argument: MB-scale SRAM is an order of magnitude
    # slower — "naively increasing the SRAM capacity does not scale".
    assert series[-1] > 10.0
