"""Benchmarks regenerating Table 1 and Table 2."""

from repro.experiments import tables


def test_bench_table1(benchmark):
    report = benchmark(tables.table1)
    print("\n" + report.render())
    values = report.column("value")
    assert any("16MiB" in str(v) for v in values)   # POM-TLB capacity
    assert any("11-11-11" in str(v) for v in values)  # stacked timings


def test_bench_table2(benchmark):
    report = benchmark(tables.table2)
    print("\n" + report.render())
    assert len(report.rows) == 15
    # Spot-check the anchors against the paper.
    assert report.row("ccomponent")[4] == 1158
    assert report.row("gups")[2] == 17.20
