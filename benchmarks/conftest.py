"""Shared fixtures for the figure-regeneration benchmark harness.

Scale knobs (environment variables):

=================  ======================  =========================
variable           harness default         paper-scale value
=================  ======================  =========================
POMTLB_CORES       4                       8
POMTLB_REFS        2500                    6000
POMTLB_SCALE       0.35                    1.0
POMTLB_SEED        42                      42
=================  ======================  =========================

The harness default finishes in minutes on a laptop; the paper-scale
settings regenerate the numbers quoted in EXPERIMENTS.md.  All figures
share one session-scoped :class:`SuiteRunner`, so simulations common to
several figures (e.g. the POM runs feeding Figures 8-11) execute once.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentParams, SuiteRunner

#: Machine-performance results shared by the engine benchmarks
#: (throughput, observability overhead).  Sections merge: each bench
#: rewrites only its own key, so partial runs keep the other sections.
BENCH_ENGINE_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Campaign-scale results (workload cache, shared-memory pool replay);
#: same merge discipline, separate file so the engine numbers and the
#: campaign numbers can be regenerated independently.
BENCH_CAMPAIGN_JSON = (Path(__file__).resolve().parent.parent
                       / "BENCH_campaign.json")


def _merge_section(path: Path, section: str, payload) -> None:
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def update_bench_json(section: str, payload) -> None:
    """Merge ``payload`` under ``section`` in ``BENCH_engine.json``."""
    _merge_section(BENCH_ENGINE_JSON, section, payload)


def update_campaign_json(section: str, payload) -> None:
    """Merge ``payload`` under ``section`` in ``BENCH_campaign.json``."""
    _merge_section(BENCH_CAMPAIGN_JSON, section, payload)


@pytest.fixture(scope="session")
def bench_json():
    return update_bench_json


@pytest.fixture(scope="session")
def campaign_json():
    return update_campaign_json


def _harness_params() -> ExperimentParams:
    return ExperimentParams(
        num_cores=int(os.environ.get("POMTLB_CORES", 4)),
        refs_per_core=int(os.environ.get("POMTLB_REFS", 2500)),
        scale=float(os.environ.get("POMTLB_SCALE", 0.35)),
        seed=int(os.environ.get("POMTLB_SEED", 42)),
    )


@pytest.fixture(scope="session")
def params() -> ExperimentParams:
    return _harness_params()


@pytest.fixture(scope="session")
def runner(params) -> SuiteRunner:
    return SuiteRunner(params)
