"""Channel-contention bench (paper Section 2.2, "Channel Contention").

Shape target: on a shared channel the POM-TLB's request latency grows as
data traffic densifies; on its own dedicated channel it stays flat —
the paper's justification for giving the L3 TLB a private channel.
"""

from repro.experiments.contention import channel_contention


def test_bench_contention(benchmark):
    report = benchmark(channel_contention)
    print("\n" + report.render())
    shared = report.column("shared_channel")
    dedicated = report.column("dedicated_channel")
    slowdown = report.column("slowdown")
    # Dedicated latency is load-independent.
    assert max(dedicated) - min(dedicated) < 1e-6
    # Shared latency grows monotonically with load (rows sweep from
    # light to heavy traffic).
    assert shared == sorted(shared)
    # Under the heaviest load the dedicated channel clearly wins.
    assert slowdown[-1] > 1.5
