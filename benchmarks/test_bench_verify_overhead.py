"""Perf guard: consistency auditing must stay cheap in the hot loop.

The verify tentpole adds one hoisted ``if verifier_active`` check per
translation to the engine's hot loops.  This benchmark holds the
subsystem to two promises:

* **disabled is free** — a default Machine (:data:`NO_VERIFIER`) runs
  within 5% of itself with the hook sites exercised by an *armed but
  empty* verifier, so the dispatch machinery costs nothing measurable;
* **armed accounting is cheap** — the default checker set (whose only
  hot-path member is the stat-conservation accumulator; the rest are
  event-driven or end-of-run) stays within the same 5% budget, so
  ``--verify`` campaigns remain practical.

A small absolute slack absorbs timer noise on short runs.
"""

from time import perf_counter

from repro.common.config import SystemConfig
from repro.core.system import Machine
from repro.verify import Verifier
from repro.workloads.suite import get_profile

_ROUNDS = 5
_SLACK_SECONDS = 0.05


def _make_run(verify_builder):
    profile = get_profile("gups")
    workload = profile.build(num_cores=2, refs_per_core=3000,
                             seed=7, scale=0.2)

    def run():
        machine = Machine(SystemConfig(num_cores=2), scheme="pom",
                          thp_large_fraction=profile.thp_large_fraction,
                          seed=7, verify=verify_builder())
        machine.run(workload.streams)

    return run


def _best_of(fn, rounds=_ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def test_bench_verify_overhead(benchmark, bench_json):
    disabled_run = _make_run(lambda: None)  # NO_VERIFIER
    empty_run = _make_run(lambda: Verifier([]))
    armed_run = _make_run(Verifier)

    disabled_run()  # shared warm-up: imports, allocator, branch caches
    empty_run()
    armed_run()

    disabled = _best_of(disabled_run)
    empty = _best_of(empty_run)
    armed = benchmark.pedantic(lambda: _best_of(armed_run),
                               rounds=1, iterations=1)
    empty_overhead = empty / disabled - 1.0
    armed_overhead = armed / disabled - 1.0
    print(f"\ndisabled {disabled:.3f}s, armed-empty {empty:.3f}s "
          f"({100 * empty_overhead:+.1f}%), armed {armed:.3f}s "
          f"({100 * armed_overhead:+.1f}%)")
    bench_json("verify_overhead", {
        "workload": "gups",
        "params": {"num_cores": 2, "refs_per_core": 3000,
                   "scale": 0.2, "seed": 7},
        "rounds": _ROUNDS,
        "disabled_s": round(disabled, 4),
        "armed_empty_s": round(empty, 4),
        "armed_s": round(armed, 4),
        "armed_overhead_pct": round(100 * armed_overhead, 2),
        "budget_pct": 5.0,
    })
    assert empty <= disabled * 1.05 + _SLACK_SECONDS, (
        f"armed-but-empty verifier costs {100 * empty_overhead:.1f}% "
        f"(budget 5%): the hook dispatch itself regressed")
    assert armed <= disabled * 1.05 + _SLACK_SECONDS, (
        f"default checker set costs {100 * armed_overhead:.1f}% "
        f"(budget 5%)")
