"""Throughput benchmark: batch + scalar engines vs the frozen reference.

Three engines replay the same workload on the same inputs in the same
process:

* **reference** — :mod:`repro.core.refcheck`, the verbatim frozen copy
  of the seed-era hot loops (the machine-independent yardstick),
* **scalar** — the optimized per-reference loop in ``Machine.run``
  (packed keys, slot counters, dict-ordering LRU, inlined cache
  cascades), the semantics of record and the fallback when numpy is
  absent, and
* **batch** — the vectorized columnar engine (:mod:`repro.core.batch`,
  the ``pomtlb[fast]`` path), which consumes packed streams.

Each scheme is timed **cold** (first run of a fresh machine: demand
paging, stream debuts, compulsory misses — what a campaign run pays)
and **warm** (second run of the same machine: the sustained replay rate
with the working set resident, where vectorization pays most).  Rounds
interleave the engines (reference, scalar, batch, reference, ...) and
each (engine, phase) keeps its best time, so background load biases
nobody.

Promises enforced:

* **scalar speed** — cold geometric-mean speedup over the reference of
  at least ``POMTLB_MIN_SPEEDUP`` (default 2x) with a per-scheme floor,
  the gate carried since the scalar rewrite landed;
* **batch speed** — warm (sustained) geometric-mean speedup over the
  reference of at least ``POMTLB_MIN_BATCH_SPEEDUP`` (default 3x);
  skipped, with the scalar fallback still fully measured, when numpy
  is unavailable;
* **equivalence** — every ``SimulationResult`` scalar and every
  StatRegistry counter identical across all three engines, on the cold
  run and the warm run.

Results land in ``BENCH_engine.json`` under ``engine_throughput``;
per-scheme ``refs_per_sec`` reflects the engine a campaign would use
(batch when available), which is what the campaign scheduler reads.
The pre-batch scalar headline (2.021x) is retained under
``historical`` for continuity.

Scale knobs: the shared POMTLB_* variables (see conftest), plus
``POMTLB_BENCH_ROUNDS`` (default 3) and the two floors above (CI
lowers both on reduced-refs runs where fixed per-run overhead dilutes
the hot loop).
"""

import math
import os
from time import perf_counter

from repro.core.batch import HAS_NUMPY
from repro.core.refcheck import ReferenceMachine
from repro.core.system import Machine
from repro.workloads.packed import pack_stream
from repro.workloads.suite import get_profile

SCHEMES = ("baseline", "pom", "pom_skewed", "shared_l2", "tsb")

RESULT_FIELDS = ("scheme", "references", "instructions", "l2_tlb_misses",
                 "penalty_cycles", "translation_cycles", "data_cycles",
                 "page_walks")

_ROUNDS = int(os.environ.get("POMTLB_BENCH_ROUNDS", 3))
_MIN_AGGREGATE = float(os.environ.get("POMTLB_MIN_SPEEDUP", 2.0))
_MIN_PER_SCHEME = 1.3
_MIN_BATCH = float(os.environ.get("POMTLB_MIN_BATCH_SPEEDUP", 3.0))

#: Scalar-engine headline at the PR that introduced this gate, kept in
#: the results file for continuity now that the headline engine is the
#: batch one.
_HISTORICAL_SCALAR = {"geomean_speedup": 2.021,
                      "note": "scalar engine vs reference, cold, at the "
                              "pre-batch revision of this benchmark"}


def _equivalent(reference, other) -> bool:
    return (all(getattr(reference, f) == getattr(other, f)
                for f in RESULT_FIELDS)
            and reference.stats.as_nested_dict()
            == other.stats.as_nested_dict())


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


class _EngineTimer:
    """Best-of-N cold/warm times for one engine on one scheme."""

    def __init__(self, factory, streams, warmup):
        self.factory = factory
        self.streams = streams
        self.warmup = warmup
        self.cold = self.warm = float("inf")
        self.cold_result = self.warm_result = None
        self.machine = None

    def round(self):
        machine = self.factory()
        started = perf_counter()
        self.cold_result = machine.run(self.streams,
                                       warmup_references=self.warmup)
        self.cold = min(self.cold, perf_counter() - started)
        started = perf_counter()
        self.warm_result = machine.run(self.streams,
                                       warmup_references=self.warmup)
        self.warm = min(self.warm, perf_counter() - started)
        self.machine = machine


def test_bench_engine_throughput(params, bench_json):
    profile = get_profile("gups")
    workload = profile.build(num_cores=params.num_cores,
                             refs_per_core=params.refs_per_core,
                             seed=params.seed, scale=params.scale)
    warmup = workload.warmup_by_core or workload.warmup_references
    packed = [pack_stream(s) for s in workload.streams]
    config = params.system_config()

    per_scheme = {}
    scalar_speedups = []
    batch_cold_speedups = []
    batch_warm_speedups = []
    failures = []
    for scheme in SCHEMES:
        def reference():
            return ReferenceMachine(
                config, scheme=scheme,
                thp_large_fraction=profile.thp_large_fraction,
                seed=params.seed)

        def scalar():
            return Machine(
                config, scheme=scheme,
                thp_large_fraction=profile.thp_large_fraction,
                seed=params.seed, batch=False)

        def batch():
            return Machine(
                config, scheme=scheme,
                thp_large_fraction=profile.thp_large_fraction,
                seed=params.seed, batch=True)

        timers = [_EngineTimer(reference, workload.streams, warmup),
                  _EngineTimer(scalar, workload.streams, warmup)]
        batch_timer = None
        if HAS_NUMPY:
            batch_timer = _EngineTimer(batch, packed, warmup)
            timers.append(batch_timer)
        for _ in range(_ROUNDS):
            for timer in timers:
                timer.round()

        ref_timer, scalar_timer = timers[0], timers[1]
        equal = (_equivalent(ref_timer.cold_result,
                             scalar_timer.cold_result)
                 and _equivalent(ref_timer.warm_result,
                                 scalar_timer.warm_result))
        if batch_timer is not None:
            assert batch_timer.machine.last_replay_mode == "batch", (
                scheme, batch_timer.machine.batch_fallback_reason)
            equal = (equal
                     and _equivalent(ref_timer.cold_result,
                                     batch_timer.cold_result)
                     and _equivalent(ref_timer.warm_result,
                                     batch_timer.warm_result))
        if not equal:
            failures.append(scheme)

        refs = scalar_timer.cold_result.references
        scalar_speedup = ref_timer.cold / scalar_timer.cold
        scalar_speedups.append(scalar_speedup)
        current = batch_timer or scalar_timer
        entry = {
            "refs": refs,
            "refs_per_sec": round(refs / current.cold, 1),
            "total_s": round(current.cold, 4),
            "ref_refs_per_sec": round(refs / ref_timer.cold, 1),
            "ref_total_s": round(ref_timer.cold, 4),
            "warm_ref_s": round(ref_timer.warm, 4),
            "scalar_refs_per_sec": round(refs / scalar_timer.cold, 1),
            "scalar_total_s": round(scalar_timer.cold, 4),
            "warm_scalar_s": round(scalar_timer.warm, 4),
            "scalar_speedup": round(scalar_speedup, 3),
            "equal": equal,
        }
        line = (f"\n{scheme:11s} ref {ref_timer.cold:6.3f}s "
                f"scalar {scalar_timer.cold:6.3f}s "
                f"({scalar_speedup:.2f}x)")
        if batch_timer is not None:
            cold_speedup = ref_timer.cold / batch_timer.cold
            warm_speedup = ref_timer.warm / batch_timer.warm
            batch_cold_speedups.append(cold_speedup)
            batch_warm_speedups.append(warm_speedup)
            entry.update({
                "batch_total_s": round(batch_timer.cold, 4),
                "batch_speedup": round(cold_speedup, 3),
                "warm_batch_s": round(batch_timer.warm, 4),
                "warm_batch_speedup": round(warm_speedup, 3),
                "speedup": round(cold_speedup, 3),
            })
            line += (f" batch {batch_timer.cold:6.3f}s "
                     f"({cold_speedup:.2f}x cold, "
                     f"{warm_speedup:.2f}x warm)")
        else:
            entry["speedup"] = round(scalar_speedup, 3)
        per_scheme[scheme] = entry
        print(line + f" equal={equal}")

    scalar_geomean = _geomean(scalar_speedups)
    payload = {
        "workload": "gups",
        "params": {"num_cores": params.num_cores,
                   "refs_per_core": params.refs_per_core,
                   "scale": params.scale, "seed": params.seed},
        "rounds": _ROUNDS,
        "batch_available": HAS_NUMPY,
        "schemes": per_scheme,
        "scalar_geomean_speedup": round(scalar_geomean, 3),
        "historical": _HISTORICAL_SCALAR,
    }
    if HAS_NUMPY:
        payload["batch_geomean_speedup"] = round(
            _geomean(batch_cold_speedups), 3)
        payload["batch_warm_geomean_speedup"] = round(
            _geomean(batch_warm_speedups), 3)
        payload["geomean_speedup"] = payload["batch_warm_geomean_speedup"]
    else:
        payload["geomean_speedup"] = round(scalar_geomean, 3)
    bench_json("engine_throughput", payload)

    assert not failures, (
        f"engines diverged from the reference for {failures}; "
        "see tests/integration/test_engine_equivalence.py for the "
        "counter-level diff")
    laggards = {s: round(v, 2) for s, v in zip(SCHEMES, scalar_speedups)
                if v < _MIN_PER_SCHEME}
    assert not laggards, (
        f"per-scheme scalar speedup floor {_MIN_PER_SCHEME}x violated: "
        f"{laggards}")
    assert scalar_geomean >= _MIN_AGGREGATE, (
        f"scalar aggregate speedup {scalar_geomean:.2f}x < target "
        f"{_MIN_AGGREGATE}x "
        f"(per scheme: {[round(s, 2) for s in scalar_speedups]})")
    if HAS_NUMPY:
        batch_geomean = _geomean(batch_warm_speedups)
        assert batch_geomean >= _MIN_BATCH, (
            f"batch sustained speedup {batch_geomean:.2f}x < target "
            f"{_MIN_BATCH}x (per scheme: "
            f"{[round(s, 2) for s in batch_warm_speedups]})")
