"""Throughput benchmark: optimized engine vs the frozen reference engine.

The fast-path rewrite (packed keys, slot counters, dict-ordering LRU,
batched replay, walk-path memoization) is only worth carrying if it
actually pays.  This benchmark measures references/second per scheme
for both engines on the default harness workload and holds the rewrite
to two promises:

* **speed** — aggregate (geometric-mean) speedup over the frozen
  reference engine of at least ``POMTLB_MIN_SPEEDUP`` (default 2x),
  with a per-scheme sanity floor, and
* **equivalence** — every StatRegistry counter and every
  ``SimulationResult`` scalar identical between the two engines
  (the same contract tests/integration/test_engine_equivalence.py
  enforces at tier 1, re-checked here at benchmark scale).

The reference engine is :mod:`repro.core.refcheck`, a verbatim frozen
copy of the pre-rewrite hot loops, so the ratio is machine-independent:
both engines run in the same process on the same inputs.  Rounds are
interleaved (reference, optimized, reference, ...) and each side keeps
its best time, so background load biases neither engine.

Results land in ``BENCH_engine.json`` under ``engine_throughput``.

Scale knobs: the shared POMTLB_* variables (see conftest), plus
``POMTLB_BENCH_ROUNDS`` (default 3) and ``POMTLB_MIN_SPEEDUP``
(default 2.0; CI lowers it on reduced-refs runs where fixed per-run
overhead dilutes the hot loop).
"""

import math
import os
from time import perf_counter

from repro.core.refcheck import ReferenceMachine
from repro.core.system import Machine
from repro.workloads.suite import get_profile

SCHEMES = ("baseline", "pom", "pom_skewed", "shared_l2", "tsb")

RESULT_FIELDS = ("scheme", "references", "instructions", "l2_tlb_misses",
                 "penalty_cycles", "translation_cycles", "data_cycles",
                 "page_walks")

_ROUNDS = int(os.environ.get("POMTLB_BENCH_ROUNDS", 3))
_MIN_AGGREGATE = float(os.environ.get("POMTLB_MIN_SPEEDUP", 2.0))
_MIN_PER_SCHEME = 1.3


def _equivalent(reference, optimized) -> bool:
    return (all(getattr(reference, f) == getattr(optimized, f)
                for f in RESULT_FIELDS)
            and reference.stats.as_nested_dict()
            == optimized.stats.as_nested_dict())


def _timed_run(factory, streams, warmup):
    machine = factory()
    started = perf_counter()
    result = machine.run(streams, warmup_references=warmup)
    return perf_counter() - started, result


def test_bench_engine_throughput(params, bench_json):
    profile = get_profile("gups")
    workload = profile.build(num_cores=params.num_cores,
                             refs_per_core=params.refs_per_core,
                             seed=params.seed, scale=params.scale)
    warmup = workload.warmup_by_core or workload.warmup_references
    config = params.system_config()

    per_scheme = {}
    speedups = []
    failures = []
    for scheme in SCHEMES:
        def reference():
            return ReferenceMachine(
                config, scheme=scheme,
                thp_large_fraction=profile.thp_large_fraction,
                seed=params.seed)

        def optimized():
            return Machine(
                config, scheme=scheme,
                thp_large_fraction=profile.thp_large_fraction,
                seed=params.seed)

        ref_best = opt_best = float("inf")
        ref_result = opt_result = None
        for _ in range(_ROUNDS):
            elapsed, ref_result = _timed_run(reference, workload.streams,
                                             warmup)
            ref_best = min(ref_best, elapsed)
            elapsed, opt_result = _timed_run(optimized, workload.streams,
                                             warmup)
            opt_best = min(opt_best, elapsed)

        equal = _equivalent(ref_result, opt_result)
        if not equal:
            failures.append(scheme)
        refs = opt_result.references
        speedup = ref_best / opt_best
        speedups.append(speedup)
        per_scheme[scheme] = {
            "refs": refs,
            "refs_per_sec": round(refs / opt_best, 1),
            "total_s": round(opt_best, 4),
            "ref_refs_per_sec": round(refs / ref_best, 1),
            "ref_total_s": round(ref_best, 4),
            "speedup": round(speedup, 3),
            "equal": equal,
        }
        print(f"\n{scheme:11s} ref {ref_best:6.3f}s opt {opt_best:6.3f}s "
              f"speedup {speedup:.2f}x equal={equal}")

    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    bench_json("engine_throughput", {
        "workload": "gups",
        "params": {"num_cores": params.num_cores,
                   "refs_per_core": params.refs_per_core,
                   "scale": params.scale, "seed": params.seed},
        "rounds": _ROUNDS,
        "schemes": per_scheme,
        "geomean_speedup": round(geomean, 3),
    })

    assert not failures, (
        f"optimized engine diverged from the reference for {failures}; "
        "see tests/integration/test_engine_equivalence.py for the "
        "counter-level diff")
    laggards = {s: round(v, 2) for s, v in zip(SCHEMES, speedups)
                if v < _MIN_PER_SCHEME}
    assert not laggards, (
        f"per-scheme speedup floor {_MIN_PER_SCHEME}x violated: {laggards}")
    assert geomean >= _MIN_AGGREGATE, (
        f"aggregate speedup {geomean:.2f}x < target {_MIN_AGGREGATE}x "
        f"(per scheme: {[round(s, 2) for s in speedups]})")
