"""Section 4.6 sensitivity: POM-TLB capacity and core count.

Shape target: capacity barely matters between 8 and 32 MiB (the paper
reports <1% change), because even 8 MiB holds the full working set's
translations; the improvement survives across core counts.
"""

from repro.experiments import figures
from repro.experiments.campaign import SENSITIVITY_BENCHMARKS


def test_bench_sensitivity_capacity(benchmark, runner):
    report = benchmark.pedantic(
        figures.sensitivity_capacity,
        args=(runner, SENSITIVITY_BENCHMARKS), rounds=1, iterations=1)
    print("\n" + report.render())
    values = report.column("geomean_improvement")
    assert max(values) - min(values) < 2.0  # paper: < 1%
    assert all(v > 0 for v in values)


def test_bench_sensitivity_cores(benchmark, runner):
    core_counts = (2, runner.params.num_cores)
    report = benchmark.pedantic(
        figures.sensitivity_cores,
        args=(runner, SENSITIVITY_BENCHMARKS, core_counts),
        rounds=1, iterations=1)
    print("\n" + report.render())
    values = report.column("geomean_improvement")
    # The win is present at every core count (paper: "approximately the
    # same" across 4-32 cores).
    assert all(v > 0 for v in values)
