"""Figure 12: POM-TLB with vs without caching entries in the data caches.

Shape target: caching TLB entries in L2D$/L3D$ adds a clear chunk of the
total win (the paper: ~5 points on the mean) — it does not change how
many walks are eliminated, only how fast the surviving lookups are.
"""

from repro.experiments import figures


def test_bench_fig12_no_cache(benchmark, runner):
    report = benchmark.pedantic(
        figures.fig12_caching_ablation, args=(runner,),
        rounds=1, iterations=1)
    print("\n" + report.render())
    geomean = report.row("geomean")
    with_caching, without_caching = geomean[1], geomean[2]
    assert with_caching > without_caching
    # Both variants still beat doing nothing on the mean: the capacity
    # win exists without caching, the latency win needs it.
    assert with_caching - without_caching > 0.5
