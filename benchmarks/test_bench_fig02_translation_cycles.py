"""Figure 2: translation cycles per L2 TLB miss in virtualized mode.

Shape target: scattered-access workloads (gups, mcf, ccomponent) cost
more per miss than streaming ones (canneal, streamcluster) — who is
expensive should match the paper even if absolute cycles differ.
"""

from repro.experiments import figures


def test_bench_fig02_translation_cycles(benchmark, runner):
    report = benchmark.pedantic(
        figures.fig2_translation_cycles, args=(runner,),
        rounds=1, iterations=1)
    print("\n" + report.render())
    simulated = dict(zip(report.column("benchmark"),
                         report.column("simulated")))
    # Every benchmark with steady-state misses reports a positive cost.
    assert all(v >= 0 for v in simulated.values())
    with_misses = {k: v for k, v in simulated.items() if v > 0}
    assert len(with_misses) >= 10
    # Costs land in the tens-to-hundreds band the paper reports.
    assert all(10 < v < 2000 for v in with_misses.values())
    # Shape: random access (gups) costs more per miss than a streaming
    # workload whose PTE lines stay cache-resident (libquantum).
    if simulated["gups"] > 0 and simulated["libquantum"] > 0:
        assert simulated["gups"] > simulated["libquantum"] * 0.8
