"""Campaign-scale throughput: packed workload cache + pooled shm replay.

PR 4's workload compilation layer is a transport optimisation, so it is
held to two promises, mirroring the engine benchmark's discipline:

* **speed** — a warm workload-cache compile beats cold generation by at
  least ``POMTLB_MIN_CAMPAIGN_SPEEDUP`` (default 1.5x) per workload,
  and the shipped campaign configuration (process pool + warm cache +
  LPT dispatch) beats the status quo (serial, every run regenerating
  its own streams) by the same factor end to end;
* **equivalence** — every cell of the measurement matrix produces a
  byte-identical campaign report (only the ``# params:`` header line
  may differ, carrying the worker count).

The matrix is serial/pooled x cold/warm plus the status-quo comparator,
all on one fixed workload mix (two benchmarks, sensitivity sweeps
included so run lengths vary and LPT has something to schedule).  Cells
are measured in interleaved rounds, each cell keeping its best time, so
background load and allocator warm-up bias no cell.

Wall-clock pool speedup needs hardware parallelism: per-reference
simulation cost dwarfs trace generation (~3%) and tuple
materialization, so the end-to-end headline is a *pool* win.  On a
single-CPU machine the pooled cells are serial-plus-overhead and the
end-to-end gate degrades to a sanity floor (the warm cells must not be
slower than the status quo); the per-workload compile gate — what the
cache itself promises — holds everywhere.  CPU count is recorded in
the results so a reader can tell which gate a given file exercised.

Results land in ``BENCH_campaign.json``:

* ``campaign_throughput`` — seconds per cell plus derived speedups;
* ``workload_cache`` — per-workload compile cost, cold vs warm.

Scale knobs: ``POMTLB_CAMPAIGN_REFS`` (default 1200, CI reduces),
``POMTLB_CAMPAIGN_WORKERS`` (default 2), ``POMTLB_CAMPAIGN_ROUNDS``
(default 2), and the gate ``POMTLB_MIN_CAMPAIGN_SPEEDUP`` (default
1.5; CI lowers it on reduced-refs runs where pool start-up overhead
dilutes the ratio).
"""

import io
import os
import shutil
from time import perf_counter

from repro.experiments import campaign
from repro.experiments.runner import ExperimentParams
from repro.workloads.cache import WorkloadCache

BENCHMARKS = ("gups", "gcc")

_REFS = int(os.environ.get("POMTLB_CAMPAIGN_REFS", 1200))
_WORKERS = int(os.environ.get("POMTLB_CAMPAIGN_WORKERS", 2))
_ROUNDS = int(os.environ.get("POMTLB_CAMPAIGN_ROUNDS", 2))
_MIN_SPEEDUP = float(os.environ.get("POMTLB_MIN_CAMPAIGN_SPEEDUP", 1.5))


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _params(workers: int = 0) -> ExperimentParams:
    return ExperimentParams(num_cores=2, refs_per_core=_REFS, scale=0.15,
                            seed=42, workers=workers,
                            max_retries=0, retry_backoff_s=0.0)


def _timed_campaign(params, **kwargs):
    out = io.StringIO()
    started = perf_counter()
    result = campaign.run_all(params, list(BENCHMARKS), out=out,
                              progress=io.StringIO(), **kwargs)
    elapsed = perf_counter() - started
    assert not result.failures
    return elapsed, out.getvalue()


def _strip_params(text: str) -> str:
    return "\n".join(line for line in text.splitlines()
                     if not line.startswith("# params:"))


def test_bench_campaign_throughput(campaign_json, tmp_path):
    serial = _params()
    pooled = _params(workers=_WORKERS)
    warm_dir = str(tmp_path / "wl-warm")

    # Warm allocators, imports and the persistent cache once, untimed;
    # the cold cells get their own fresh directory every round.
    _timed_campaign(serial, workload_cache=warm_dir)

    fresh = {"round": 0}

    def cold_dir():
        fresh["round"] += 1
        path = str(tmp_path / f"wl-cold-{fresh['round']}")
        return path

    cells = {}
    reports = {}

    def measure(cell, params, **kwargs):
        elapsed, text = _timed_campaign(params, **kwargs)
        if cell not in cells or elapsed < cells[cell]:
            cells[cell] = elapsed
        reports[cell] = text

    print()
    for round_index in range(_ROUNDS):
        measure("status_quo", serial, share_workloads=False)
        measure("serial_cold", serial, workload_cache=cold_dir())
        measure("serial_warm", serial, workload_cache=warm_dir)
        measure("pooled_cold", pooled, workload_cache=cold_dir())
        measure("pooled_warm", pooled, workload_cache=warm_dir)
        print(f"  round {round_index + 1}/{_ROUNDS}: " +
              "  ".join(f"{cell}={cells[cell]:.2f}s"
                        for cell in ("status_quo", "serial_cold",
                                     "serial_warm", "pooled_cold",
                                     "pooled_warm")))
    for leftover in range(1, fresh["round"] + 1):
        shutil.rmtree(str(tmp_path / f"wl-cold-{leftover}"),
                      ignore_errors=True)

    # Equivalence across every cell: transport must not touch results.
    reference = _strip_params(reports["status_quo"])
    mismatched = [cell for cell, text in reports.items()
                  if _strip_params(text) != reference]
    assert not mismatched, f"report drift in cells: {mismatched}"

    speedups = {
        "pooled_warm_vs_status_quo":
            cells["status_quo"] / cells["pooled_warm"],
        "serial_warm_vs_status_quo":
            cells["status_quo"] / cells["serial_warm"],
        "pooled_vs_serial_warm":
            cells["serial_warm"] / cells["pooled_warm"],
        "warm_vs_cold_serial": cells["serial_cold"] / cells["serial_warm"],
        "warm_vs_cold_pooled": cells["pooled_cold"] / cells["pooled_warm"],
    }
    for name, value in sorted(speedups.items()):
        print(f"  {name}: {value:.2f}x")

    cpus = _cpus()
    campaign_json("campaign_throughput", {
        "benchmarks": list(BENCHMARKS),
        "refs_per_core": _REFS,
        "workers": _WORKERS,
        "rounds": _ROUNDS,
        "cpus": cpus,
        "min_speedup": _MIN_SPEEDUP,
        "cells_seconds": {k: round(v, 3) for k, v in cells.items()},
        "speedups": {k: round(v, 3) for k, v in speedups.items()},
    })

    # Nothing in the matrix may lose to the status quo (small tolerance
    # for timer noise on the closest cells).
    assert speedups["serial_warm_vs_status_quo"] > 0.95, cells
    assert speedups["warm_vs_cold_serial"] > 0.85, cells
    assert speedups["warm_vs_cold_pooled"] > 0.85, cells

    if cpus >= 2:
        # The headline: shipped configuration vs the status quo.
        assert speedups["pooled_warm_vs_status_quo"] >= _MIN_SPEEDUP, (
            f"campaign speedup "
            f"{speedups['pooled_warm_vs_status_quo']:.2f}x below the "
            f"{_MIN_SPEEDUP}x floor; cells: {cells}")
    else:
        # One CPU: the pool cannot beat wall-clock; it must merely not
        # capsize (isolation + timeouts are worth a bounded premium).
        print(f"  [1 cpu: pooled headline gate skipped, "
              f"sanity floor only]")
        assert speedups["pooled_warm_vs_status_quo"] > 0.7, cells


def test_bench_workload_compile_cache(campaign_json, tmp_path):
    """Cold generation vs warm cache hit, per distinct workload.

    This is the cache's own promise, independent of pool hardware: a
    warm compile (CRC-checked mmap of the packed entry) must beat cold
    generation (build + validate + encode + store) by the same
    ``POMTLB_MIN_CAMPAIGN_SPEEDUP`` floor the end-to-end gate uses.
    """
    params = _params()
    rounds = int(os.environ.get("POMTLB_BENCH_ROUNDS", 3))

    results = {}
    for benchmark in BENCHMARKS:
        cold = warm = float("inf")
        for round_index in range(rounds):
            root = str(tmp_path / f"c-{benchmark}-{round_index}")
            cache = WorkloadCache(root)

            started = perf_counter()
            container, hit = cache.get_or_compile(benchmark, params)
            cold = min(cold, perf_counter() - started)
            container.backing.close()
            assert not hit

            started = perf_counter()
            container, hit = cache.get_or_compile(benchmark, params)
            warm = min(warm, perf_counter() - started)
            container.backing.close()
            assert hit
        results[benchmark] = {"cold_s": round(cold, 5),
                              "warm_s": round(warm, 5),
                              "speedup": round(cold / warm, 2)}
        print(f"\n  {benchmark}: cold {cold * 1e3:.1f}ms "
              f"warm {warm * 1e3:.1f}ms "
              f"({cold / warm:.1f}x)")

    campaign_json("workload_cache", {
        "refs_per_core": _REFS,
        "rounds": rounds,
        "benchmarks": results,
    })
    for benchmark, row in results.items():
        assert row["speedup"] >= _MIN_SPEEDUP, (benchmark, row)
