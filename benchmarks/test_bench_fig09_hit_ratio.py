"""Figure 9: where POM-TLB entries are found (L2D$ / L3D$ / POM).

Shape targets: the caches + POM-TLB together capture the overwhelming
majority of L2 TLB misses (the paper eliminates ~99% of page walks), and
the POM structure itself has a high set-probe hit rate.
"""

from repro.core.perfmodel import geometric_mean
from repro.experiments import figures


def test_bench_fig09_hit_ratio(benchmark, runner):
    report = benchmark.pedantic(
        figures.fig9_hit_ratio, args=(runner,), rounds=1, iterations=1)
    print("\n" + report.render())
    eliminated = [row[4] for row in report.rows]
    pom_hits = [row[3] for row in report.rows]
    # Nearly all page walks eliminated (paper: 99% at 16MB).
    assert sum(eliminated) / len(eliminated) > 0.9
    # The POM structure itself rarely misses once warm.
    assert sum(pom_hits) / len(pom_hits) > 0.85
    # Cache hit ratios are valid probabilities and the L3D$ catches most
    # of what the L2D$ misses.
    for _name, l2d, l3d, _pom, _elim in report.rows:
        assert 0.0 <= l2d <= 1.0 and 0.0 <= l3d <= 1.0
