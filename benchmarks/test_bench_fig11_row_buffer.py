"""Figure 11: row-buffer hit rate in the POM-TLB's stacked DRAM.

Shape target: workloads whose miss streams have spatial locality
(streaming scans) enjoy high row-buffer hit rates; scattered-access
workloads sit much lower.  The paper reports a 71% average with
streamcluster near the top.
"""

from repro.experiments import figures


def test_bench_fig11_row_buffer(benchmark, runner):
    report = benchmark.pedantic(
        figures.fig11_row_buffer, args=(runner,), rounds=1, iterations=1)
    print("\n" + report.render())
    rates = dict(zip(report.column("benchmark"),
                     report.column("row_buffer_hit_rate")))
    assert all(0.0 <= v <= 1.0 for v in rates.values())
    # Spatial-locality shape: sequential scans beat random access.
    streaming = [rates[b] for b in ("lbm", "libquantum", "streamcluster")
                 if rates[b] > 0]
    scattered = rates["gups"]
    if streaming:
        assert max(streaming) > scattered
