"""Section 2.2 trade-off bench: L4 data cache vs L3 TLB.

Shape target: on most benchmarks the 16 MB saves more cycles as a very
large TLB than as another data-cache level — the paper's core argument
for spending the capacity on translations.
"""

from repro.experiments import tradeoff
from repro.experiments.campaign import SENSITIVITY_BENCHMARKS


def test_bench_tradeoff_l4_vs_tlb(benchmark, runner):
    report = benchmark.pedantic(
        tradeoff.tradeoff_l4_vs_tlb,
        args=(runner, SENSITIVITY_BENCHMARKS), rounds=1, iterations=1)
    print("\n" + report.render())
    winners = report.column("winner")
    pom_wins = sum(1 for w in winners if w == "pom_tlb")
    assert pom_wins >= len(winners) // 2 + 1  # TLB use wins the majority
