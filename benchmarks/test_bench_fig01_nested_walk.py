"""Figure 1: the 2-D nested page walk costs up to 24 references."""

from repro.experiments import figures
from repro.paging.nested import MAX_NESTED_REFS


def test_bench_fig01_nested_walk(benchmark):
    report = benchmark(figures.fig1_walk_steps)
    print("\n" + report.render())
    cold_refs = report.row("cold-walk references (this system)")[1]
    assert report.row("worst-case references")[1] == 24
    # A cold nested walk must reference far more memory than the 4-step
    # native walk, bounded by the paper's 24.
    assert 4 < cold_refs <= MAX_NESTED_REFS
