"""Perf guard: the disabled-observability hot path must stay free.

The observability tentpole promises that with tracing off the
instrumentation compiled into the simulator costs one attribute check
per event site.  This benchmark holds it to that: a default Machine
(null tracer, histograms on) must run within 5% of a Machine with
observability fully disabled (the seed simulator's exact hot path),
plus a small absolute slack to absorb timer noise on short runs.
"""

from time import perf_counter

from repro.common.config import SystemConfig
from repro.core.system import Machine
from repro.obs import Observability
from repro.workloads.suite import get_profile

_ROUNDS = 5
_SLACK_SECONDS = 0.05


def _make_run(obs_builder):
    profile = get_profile("gups")
    workload = profile.build(num_cores=2, refs_per_core=3000,
                             seed=7, scale=0.2)

    def run():
        machine = Machine(SystemConfig(num_cores=2), scheme="pom",
                          thp_large_fraction=profile.thp_large_fraction,
                          seed=7, obs=obs_builder())
        machine.run(workload.streams)

    return run


def _best_of(fn, rounds=_ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def test_bench_disabled_observability_overhead(benchmark, bench_json):
    baseline_run = _make_run(Observability.disabled)
    default_run = _make_run(lambda: None)  # Machine's default Observability

    baseline_run()  # shared warm-up: imports, allocator, branch caches
    default_run()

    baseline = _best_of(baseline_run)
    instrumented = benchmark.pedantic(lambda: _best_of(default_run),
                                      rounds=1, iterations=1)
    overhead = instrumented / baseline - 1.0
    print(f"\nbaseline {baseline:.3f}s, instrumented {instrumented:.3f}s, "
          f"overhead {100 * overhead:+.1f}%")
    bench_json("obs_overhead", {
        "workload": "gups",
        "params": {"num_cores": 2, "refs_per_core": 3000,
                   "scale": 0.2, "seed": 7},
        "rounds": _ROUNDS,
        "disabled_s": round(baseline, 4),
        "default_s": round(instrumented, 4),
        "overhead_pct": round(100 * overhead, 2),
        "budget_pct": 5.0,
    })
    assert instrumented <= baseline * 1.05 + _SLACK_SECONDS, (
        f"disabled-observability hot path costs {100 * overhead:.1f}% "
        f"(budget 5%)")


def _make_campaign_run(telemetry_factory):
    import io

    from repro.experiments import campaign
    from repro.experiments.runner import ExperimentParams

    params = ExperimentParams(num_cores=1, refs_per_core=2000, scale=0.05,
                              seed=7, max_retries=0, retry_backoff_s=0.0)

    def run():
        campaign.run_all(params, ["gups"], out=io.StringIO(),
                         progress=io.StringIO(),
                         telemetry=telemetry_factory())

    return run


def test_bench_campaign_telemetry_overhead(benchmark, bench_json, tmp_path):
    """Telemetry must ride the campaign for free.

    The null object (the default) gates every hook behind one attribute
    check per *run*; the full hub adds dict updates and one flushed
    write per event.  Both are noise next to a simulation, so even the
    fully-enabled campaign must stay within the 5% budget of the
    disabled one — which bounds the disabled path's own cost far below
    that.
    """
    from repro.obs import NO_TELEMETRY, CampaignTelemetry

    disabled_run = _make_campaign_run(lambda: NO_TELEMETRY)
    # "w" mode truncates, so every round reuses the same stream file.
    enabled_run = _make_campaign_run(lambda: CampaignTelemetry(
        status_path=str(tmp_path / "status.ndjson"),
        export_dir=str(tmp_path)))

    disabled_run()  # shared warm-up
    enabled_run()

    disabled = _best_of(disabled_run)
    enabled = benchmark.pedantic(lambda: _best_of(enabled_run),
                                 rounds=1, iterations=1)
    overhead = enabled / disabled - 1.0
    print(f"\ndisabled {disabled:.3f}s, enabled {enabled:.3f}s, "
          f"overhead {100 * overhead:+.1f}%")
    bench_json("campaign_telemetry_overhead", {
        "workload": "gups",
        "params": {"num_cores": 1, "refs_per_core": 2000,
                   "scale": 0.05, "seed": 7},
        "rounds": _ROUNDS,
        "disabled_s": round(disabled, 4),
        "enabled_s": round(enabled, 4),
        "overhead_pct": round(100 * overhead, 2),
        "budget_pct": 5.0,
    })
    assert enabled <= disabled * 1.05 + _SLACK_SECONDS, (
        f"campaign telemetry costs {100 * overhead:.1f}% (budget 5%)")
