"""Figure 3: virtualized / native translation-cost ratio.

Shape target: the ratio exceeds 1 wherever misses exist — 2-D nested
walks reference strictly more memory than 1-D native walks.
"""

from repro.experiments import figures


def test_bench_fig03_virt_native_ratio(benchmark, runner):
    report = benchmark.pedantic(
        figures.fig3_virt_native_ratio, args=(runner,),
        rounds=1, iterations=1)
    print("\n" + report.render())
    ratios = [row[2] for row in report.rows if row[2] > 0]
    assert len(ratios) >= 10
    # Virtualization makes translation more expensive across the board.
    above_one = sum(1 for r in ratios if r > 1.0)
    assert above_one >= len(ratios) * 0.8
