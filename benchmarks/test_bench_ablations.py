"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these quantify the extension ideas the paper sketches
(Section 5.1 TLB-aware caching, footnote 2 predictor hysteresis) and the
bypass predictor's contribution, on a representative benchmark subset.
"""

from repro.experiments import ablations
from repro.experiments.campaign import SENSITIVITY_BENCHMARKS


def test_bench_ablation_tlb_priority(benchmark, runner):
    report = benchmark.pedantic(
        ablations.ablation_tlb_priority,
        args=(runner, SENSITIVITY_BENCHMARKS), rounds=1, iterations=1)
    print("\n" + report.render())
    geomean = report.row("geomean")
    # Pinning TLB lines must not collapse performance; it usually helps
    # the scattered-access workloads a little.
    assert geomean[2] > geomean[1] - 2.0


def test_bench_ablation_predictor(benchmark, runner):
    report = benchmark.pedantic(
        ablations.ablation_predictor,
        args=(runner, SENSITIVITY_BENCHMARKS), rounds=1, iterations=1)
    print("\n" + report.render())
    paper = report.row("512x1bit (paper)")
    hysteresis = report.row("512x2bit")
    # Hysteresis may not change the geomean much, but accuracy must not
    # degrade (footnote 2 expects it to improve or stay flat).
    assert hysteresis[2] >= paper[2] - 0.02


def test_bench_ablation_bypass(benchmark, runner):
    report = benchmark.pedantic(
        ablations.ablation_bypass,
        args=(runner, SENSITIVITY_BENCHMARKS), rounds=1, iterations=1)
    print("\n" + report.render())
    geomean = report.row("geomean")
    # The bypass bit is a latency tweak; disabling it must not move the
    # mean by much in either direction.
    assert abs(geomean[1] - geomean[2]) < 3.0
