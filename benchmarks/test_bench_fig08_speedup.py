"""Figure 8: the headline result — POM-TLB vs Shared_L2 vs TSB.

Shape targets from the paper (Section 4.1): POM-TLB wins on the mean
(9.57% vs 6.10% Shared_L2 vs 4.27% TSB), with the largest gains on
high-overhead workloads (mcf, soplex, GemsFDTD, astar, gups) and almost
nothing on streamcluster (2.11% headroom).
"""

from repro.experiments import figures


def test_bench_fig08_speedup(benchmark, runner):
    report = benchmark.pedantic(
        figures.fig8_performance, args=(runner,), rounds=1, iterations=1)
    print("\n" + report.render())
    geomean = report.row("geomean")
    pom_mean, shared_mean, tsb_mean = geomean[1], geomean[2], geomean[3]
    # Ordering: the POM-TLB beats both prior schemes on the mean.
    assert pom_mean > shared_mean
    assert pom_mean > tsb_mean
    assert pom_mean > 3.0  # a solid average win, paper: ~10%
    # Per-benchmark shape: POM-TLB never loses badly anywhere.
    # streamcluster is the known near-zero-headroom case (2.11%
    # overhead, a handful of steady-state misses): its estimate is
    # noise around zero, so it gets a wider band.
    pom_column = dict(zip(report.column("benchmark"), report.column("pom")))
    assert all(v > -2.0 for b, v in pom_column.items()
               if b not in ("geomean", "streamcluster"))
    assert -6.0 < pom_column["streamcluster"] < 3.0
    # The high-overhead workloads show strong gains.
    strong = [pom_column[b] for b in ("mcf", "soplex", "astar", "gups")]
    assert sum(1 for v in strong if v > 6.0) >= 3
