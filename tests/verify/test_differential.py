"""Differential audit: smoke, shrinking, and violation artifacts."""

import os

import pytest

from repro.common.errors import VerificationError
from repro.experiments.runner import ExperimentParams
from repro.verify import INVARIANT_REGISTRY, InvariantChecker
from repro.verify.differential import (ALL_SCHEMES, audit_benchmark,
                                       shrink_trace)
from repro.workloads.packed import load_packed, unpack_stream
from repro.workloads.trace import CoreStream

PARAMS = ExperimentParams(num_cores=1, refs_per_core=400, scale=0.02, seed=3)


class TestAuditSmoke:

    def test_all_schemes_pass_with_reference(self):
        report = audit_benchmark("gups", PARAMS)
        assert report.ok
        assert report.reference_checked
        assert set(report.results) == set(ALL_SCHEMES)

    def test_invariant_subset_runs(self):
        report = audit_benchmark("gcc", PARAMS, schemes=("pom",),
                                 invariants=("set-address",),
                                 use_reference=False)
        assert report.ok
        assert not report.reference_checked

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ValueError, match="unknown invariant"):
            audit_benchmark("gcc", PARAMS, schemes=("pom",),
                            invariants=("bogus",), use_reference=False)


class TestShrinkTrace:

    @staticmethod
    def _streams(values, cores=2):
        per_core = len(values) // cores
        return [CoreStream(core=c, vm_id=0, asid=1,
                           references=values[c * per_core:
                                             (c + 1) * per_core])
                for c in range(cores)]

    def test_shrinks_to_single_culprit(self):
        streams = self._streams(list(range(100)))

        def still_fails(candidate):
            return any(ref == 57 for s in candidate for ref in s.references)

        minimal = shrink_trace(streams, still_fails)
        kept = [ref for s in minimal for ref in s.references]
        assert kept == [57]

    def test_budget_caps_evaluations(self):
        streams = self._streams(list(range(64)))
        calls = []

        def still_fails(candidate):
            calls.append(1)
            return 7 in [r for s in candidate for r in s.references]

        shrink_trace(streams, still_fails, budget=5)
        assert len(calls) <= 5

    def test_preserves_stream_identity(self):
        streams = self._streams(list(range(40)), cores=2)

        def still_fails(candidate):
            return any(s.core == 1 and s.references for s in candidate)

        minimal = shrink_trace(streams, still_fails)
        assert all(s.core == 1 for s in minimal)
        assert all(s.vm_id == 0 and s.asid == 1 for s in minimal)


class _FailAtTen(InvariantChecker):
    """Test invariant: violated whenever >= 10 references were measured."""

    name = "fail-at-ten"

    def __init__(self) -> None:
        self.count = 0

    def on_translation(self, result) -> None:
        self.count += 1

    def reset(self) -> None:
        self.count = 0

    def check_final(self, machine, result) -> None:
        if self.count >= 10:
            self.fail(f"saw {self.count} references (threshold 10)")


class TestViolationArtifact:

    def test_violation_shrinks_and_writes_packed_repro(self, tmp_path):
        INVARIANT_REGISTRY[_FailAtTen.name] = _FailAtTen
        try:
            params = ExperimentParams(num_cores=1, refs_per_core=60,
                                      scale=0.02, seed=3)
            with pytest.raises(VerificationError) as exc_info:
                audit_benchmark("gcc", params, schemes=("baseline",),
                                invariants=(_FailAtTen.name,),
                                use_reference=False,
                                artifact_dir=str(tmp_path))
        finally:
            del INVARIANT_REGISTRY[_FailAtTen.name]
        violation = exc_info.value
        assert violation.invariant == _FailAtTen.name
        assert "[gcc/baseline]" in violation.detail
        assert violation.artifact.endswith("gcc-baseline-violation.pwl")
        assert os.path.exists(violation.artifact)
        container = load_packed(violation.artifact)
        try:
            total = sum(len(unpack_stream(s)) for s in container.streams)
        finally:
            container.backing.close()
        # ddmin converges on the threshold: 10 refs fail, 9 pass.
        assert total == 10

    def test_no_shrink_raises_unwrapped(self):
        INVARIANT_REGISTRY[_FailAtTen.name] = _FailAtTen
        try:
            params = ExperimentParams(num_cores=1, refs_per_core=60,
                                      scale=0.02, seed=3)
            with pytest.raises(VerificationError) as exc_info:
                audit_benchmark("gcc", params, schemes=("baseline",),
                                invariants=(_FailAtTen.name,),
                                use_reference=False, shrink=False)
        finally:
            del INVARIANT_REGISTRY[_FailAtTen.name]
        assert exc_info.value.artifact == ""
