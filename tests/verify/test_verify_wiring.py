"""Verification wiring: runner flag, result identity, CLI contract."""

import pytest

from repro.cli import main
from repro.experiments.runner import (EXECUTION_FIELDS, ExperimentParams,
                                      simulate_run)

_COUNTERS = ("references", "instructions", "l2_tlb_misses", "penalty_cycles",
             "translation_cycles", "data_cycles", "page_walks")

PARAMS = ExperimentParams(num_cores=2, refs_per_core=500, scale=0.05, seed=7)


class TestRunnerWiring:

    @pytest.mark.parametrize("scheme", ["baseline", "pom", "tsb"])
    def test_verified_run_is_bit_identical(self, scheme):
        plain = simulate_run("gups", scheme, PARAMS)
        import dataclasses
        verified = simulate_run(
            "gups", scheme, dataclasses.replace(PARAMS, verify=True))
        for name in _COUNTERS:
            assert getattr(verified.result, name) == \
                getattr(plain.result, name), name
        assert verified.performance.speedup == plain.performance.speedup

    def test_verify_is_an_execution_field(self):
        # Toggling verification must not invalidate campaign checkpoints.
        assert "verify" in EXECUTION_FIELDS
        import dataclasses
        assert dataclasses.replace(PARAMS, verify=True).checkpoint_fields() \
            == PARAMS.checkpoint_fields()


class TestAuditCli:

    def test_audit_ok(self, capsys):
        code = main(["audit", "--benchmarks", "gcc",
                     "--schemes", "baseline,pom", "--cores", "1",
                     "--refs", "300", "--scale", "0.02", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "audit gcc: OK" in out
        assert "+reference" in out

    def test_audit_invariant_subset(self, capsys):
        code = main(["audit", "--benchmarks", "gcc", "--schemes", "pom",
                     "--invariants", "set-address,lru-wellformed",
                     "--cores", "1", "--refs", "300", "--scale", "0.02",
                     "--no-reference"])
        assert code == 0
        assert "audit gcc: OK" in capsys.readouterr().out

    def test_audit_rejects_unknown_benchmark(self, capsys):
        assert main(["audit", "--benchmarks", "nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_audit_rejects_unknown_scheme(self, capsys):
        assert main(["audit", "--schemes", "nope"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_audit_rejects_unknown_invariant(self, capsys):
        assert main(["audit", "--invariants", "nope"]) == 2
        assert "unknown invariant" in capsys.readouterr().err

    def test_verify_flag_on_experiment(self, capsys):
        code = main(["fig8", "--benchmarks", "gcc", "--cores", "1",
                     "--refs", "200", "--scale", "0.02", "--verify"])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out
