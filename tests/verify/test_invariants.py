"""Each invariant checker must catch its planted violation.

Every test class plants the exact inconsistency its checker exists to
detect — the state each fixed defect used to leave behind (or would
leave behind if reintroduced) — and asserts the checker raises
:class:`VerificationError`; a clean machine must pass the same check.
"""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import VerificationError
from repro.core.system import Machine
from repro.obs import EventTracer, ListSink, Observability
from repro.tlb.entry import TlbEntry, pack_key
from repro.verify import (ConservationChecker, InclusionChecker, LruChecker,
                          SetAddressChecker, StaleLineChecker, Verifier)
from repro.workloads.suite import get_profile


def make_machine(scheme, cores=2, **kwargs):
    return Machine(SystemConfig(num_cores=cores), scheme=scheme, seed=3,
                   **kwargs)


def run_some(machine, vm=0, asid=1, n=64):
    for i in range(n):
        va = 0x10000 + i * 0x1000
        page = machine.touch(vm, asid, va)
        machine.scheme.translate(0, vm, asid, va, page)


def plant_private(scheme_obj, vm=0, asid=1, va=0x3000):
    key_small = pack_key(vm, asid, va >> 12, False)
    key_large = pack_key(vm, asid, va >> 21, True)
    for tlbs in scheme_obj.cores:
        tlbs.l1_small.insert(key_small, TlbEntry(1))
        tlbs.l1_large.insert(key_large, TlbEntry(1))
        tlbs.l2.insert(key_small, TlbEntry(1))
        tlbs.l2.insert(key_large, TlbEntry(1))


class TestInclusionChecker:

    def test_clean_shootdown_passes(self):
        machine = make_machine("pom")
        checker = InclusionChecker()
        plant_private(machine.scheme)
        machine.scheme.shootdown(0, 1, 0x3000, False)
        checker.check_shootdown(machine, 0, 1, 0x3000, None)

    def test_skipped_front_end_drop_is_caught(self):
        # The shootdown size-asymmetry bug left exactly this state: a
        # private entry surviving an invalidation that should be global.
        machine = make_machine("pom")
        checker = InclusionChecker()
        plant_private(machine.scheme)
        with pytest.raises(VerificationError, match="inclusion"):
            checker.check_shootdown(machine, 0, 1, 0x3000, None)

    def test_backend_leftover_after_vm_teardown_is_caught(self):
        machine = make_machine("pom")
        checker = InclusionChecker()
        run_some(machine)
        # Drop only the private SRAM copies; the POM-TLB keeps VM 0.
        for tlbs in machine.scheme.cores:
            for tlb in (tlbs.l1_small, tlbs.l1_large, tlbs.l2):
                tlb.invalidate_vm(0)
        with pytest.raises(VerificationError, match="backend still holds"):
            checker.check_invalidate_vm(machine, 0, None)

    def test_clean_vm_teardown_passes(self):
        machine = make_machine("pom")
        checker = InclusionChecker()
        run_some(machine)
        machine.scheme.invalidate_vm(0)
        checker.check_invalidate_vm(machine, 0, None)


class TestStaleLineChecker:

    @pytest.mark.parametrize("scheme", ["pom", "pom_skewed"])
    def test_uninvalidated_cached_lines_are_caught(self, scheme):
        # The invalidate_vm staleness bug: backing entries dropped, but
        # the L2D$/L3D$ copies of their lines kept serving dead sets.
        machine = make_machine(scheme)
        checker = StaleLineChecker()
        run_some(machine)
        token = checker.token_invalidate_vm(machine, 0)
        assert token, "expected resident VM-0 backing lines"
        machine.scheme.pom.invalidate_vm(0)  # no cache invalidation
        with pytest.raises(VerificationError, match="still serves"):
            checker.check_invalidate_vm(machine, 0, token)

    @pytest.mark.parametrize("scheme", ["pom", "pom_skewed", "tsb"])
    def test_full_invalidation_passes(self, scheme):
        machine = make_machine(scheme)
        checker = StaleLineChecker()
        run_some(machine)
        token = checker.token_invalidate_vm(machine, 0)
        machine.invalidate_vm(0)
        checker.check_invalidate_vm(machine, 0, token)
        checker.check_final(machine, None)

    def test_final_rejects_tlb_lines_on_sram_only_scheme(self):
        machine = make_machine("baseline")
        checker = StaleLineChecker()
        run_some(machine)
        checker.check_final(machine, None)  # clean: no TLB-kind lines
        pom_machine = make_machine("pom")
        run_some(pom_machine)
        assert pom_machine.hierarchy.tlb_lines(), "expected cached lines"
        checker.check_final(pom_machine, None)  # all inside POM range


class TestSetAddressChecker:

    def test_resident_entries_pass(self):
        machine = make_machine("pom")
        run_some(machine)
        SetAddressChecker().check_final(machine, None)

    def test_misplaced_pom_entry_is_caught(self):
        machine = make_machine("pom")
        run_some(machine)
        pom = machine.scheme.pom
        sets = pom._sets[False]
        index, entries = next(iter(sets.items()))
        key, entry = next(iter(entries.items()))
        del entries[key]
        wrong = (index + 1) & pom._small_mask
        sets.setdefault(wrong, {})[key] = entry
        with pytest.raises(VerificationError, match="set-address"):
            SetAddressChecker().check_final(machine, None)

    def test_misplaced_skewed_entry_is_caught(self):
        machine = make_machine("pom_skewed")
        run_some(machine)
        pom = machine.scheme.pom
        (way, slot), resident = next(iter(pom._slots.items()))
        del pom._slots[(way, slot)]
        pom._slots[(way, (slot + 1) & pom._mask)] = resident
        with pytest.raises(VerificationError, match="way hash"):
            SetAddressChecker().check_final(machine, None)


class TestLruChecker:

    def test_wellformed_machine_passes(self):
        machine = make_machine("pom")
        run_some(machine)
        LruChecker().check_final(machine, None)

    def test_overfull_sram_set_is_caught(self):
        machine = make_machine("baseline")
        tlb = machine.scheme.cores[0].l1_small
        for i in range(tlb._ways + 1):
            tlb._sets[0][pack_key(0, 1, i * tlb._num_sets, False)] = \
                TlbEntry(1)
        with pytest.raises(VerificationError, match="lru-wellformed"):
            LruChecker().check_final(machine, None)

    def test_overfull_pom_set_is_caught(self):
        machine = make_machine("pom")
        pom = machine.scheme.pom
        overfull = pom._sets[False].setdefault(0, {})
        for i in range(pom._ways + 1):
            overfull[pack_key(0, 1, i, False)] = TlbEntry(1)
        with pytest.raises(VerificationError, match="holds"):
            LruChecker().check_final(machine, None)


class TestConservationChecker:

    def _run_verified(self, scheme):
        checker = ConservationChecker()
        verifier = Verifier([checker])
        profile = get_profile("gups")
        workload = profile.build(num_cores=2, refs_per_core=400,
                                 seed=7, scale=0.05)
        machine = Machine(SystemConfig(num_cores=2), scheme=scheme,
                          thp_large_fraction=profile.thp_large_fraction,
                          seed=7, verify=verifier)
        result = machine.run(workload.streams)
        return machine, checker, verifier, result

    @pytest.mark.parametrize("scheme",
                             ["baseline", "pom", "shared_l2", "tsb"])
    def test_balanced_run_passes(self, scheme):
        # machine.run already called verifier.finish without raising.
        machine, checker, _verifier, result = self._run_verified(scheme)
        assert result.references == checker.references

    def test_tampered_counter_is_caught(self):
        machine, checker, verifier, result = self._run_verified("pom")
        checker.references += 1
        with pytest.raises(VerificationError, match="stat-conservation"):
            verifier.finish(machine, result)


class TestVerifier:

    def test_for_names_selects_subset(self):
        verifier = Verifier.for_names(["inclusion", "lru-wellformed"])
        assert [type(c) for c in verifier.checkers] == \
            [InclusionChecker, LruChecker]

    def test_for_names_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown invariant"):
            Verifier.for_names(["no-such-invariant"])

    def test_violation_emits_trace_event(self):
        sink = ListSink()
        obs = Observability(tracer=EventTracer([sink], sample=1))
        machine = make_machine("baseline", obs=obs,
                               verify=Verifier.for_names(["lru-wellformed"]))
        tlb = machine.scheme.cores[0].l1_small
        for i in range(tlb._ways + 1):
            tlb._sets[0][pack_key(0, 1, i * tlb._num_sets, False)] = \
                TlbEntry(1)
        with pytest.raises(VerificationError):
            machine.verifier.finish(machine, None)
        violations = [e for e in sink.events
                      if e.get("type") == "verify_violation"]
        assert violations and \
            violations[0]["invariant"] == "lru-wellformed"
