"""Unit tests for the translation schemes (paper Figure 7 flow and baselines)."""

import pytest

from repro.common import addr
from repro.common.config import SystemConfig
from repro.core.system import Machine


def make_machine(scheme, large_fraction=0.0, **config_overrides):
    config = SystemConfig(num_cores=2).copy_with(**config_overrides)
    return Machine(config, scheme=scheme, thp_large_fraction=large_fraction,
                   seed=7)


def translate(machine, vaddr, core=0, vm=0, asid=1):
    page = machine.touch(vm, asid, vaddr)
    return machine.scheme.translate(core, vm, asid, vaddr, page)


class TestFrontEnd:
    """L1/L2 TLB behaviour shared by all schemes."""

    def test_first_access_misses_l2(self):
        m = make_machine("baseline")
        result = translate(m, 0x1000)
        assert result.l2_miss
        assert result.penalty > 0

    def test_repeat_access_hits_l1(self):
        m = make_machine("baseline")
        translate(m, 0x1000)
        result = translate(m, 0x1000)
        assert not result.l2_miss
        assert result.penalty == 0
        assert result.cycles == 1  # L1 TLB latency

    def test_l1_evicted_entry_hits_l2(self):
        m = make_machine("baseline")
        translate(m, 0x1000)
        # Blow the L1 set (4 ways, 16 sets -> stride of 16 pages) with a
        # few fills while staying well inside the 12-way L2 TLB sets.
        for i in range(1, 30):
            translate(m, 0x1000 + i * addr.SMALL_PAGE_SIZE * 16)
        result = translate(m, 0x1000)
        assert not result.l2_miss
        assert result.cycles == 1 + 9  # L1 + L2 latency

    def test_penalty_includes_l2_miss_overhead(self):
        m = make_machine("baseline")
        result = translate(m, 0x1000)
        assert result.penalty >= m.config.mmu.l2_unified.miss_penalty_cycles

    def test_large_pages_use_the_large_l1(self):
        m = make_machine("baseline", large_fraction=1.0)
        translate(m, 0x1000)
        stats = m.stats["core0.l1_tlb_2m"]
        assert stats["misses"] == 1
        assert m.stats["core0.l1_tlb_4k"]["misses"] == 0


class TestBaselineWalkScheme:
    def test_every_l2_miss_walks(self):
        m = make_machine("baseline")
        for va in (0x1000, 0x2000, 0x3000):
            translate(m, va)
        assert m.stats["mmu"]["page_walks"] == 3

    def test_walk_cycles_accumulate(self):
        m = make_machine("baseline")
        translate(m, 0x1000)
        assert m.stats["mmu"]["page_walk_cycles"] > 0


class TestPomTlbScheme:
    def test_first_miss_walks_and_fills_pom(self):
        m = make_machine("pom")
        translate(m, 0x1000)
        assert m.stats["mmu"]["page_walks"] == 1
        assert m.stats["pom_flow"]["resolved_by_walk"] == 1

    def test_pom_hit_after_private_tlbs_flushed(self):
        m = make_machine("pom")
        translate(m, 0x1000)
        # Drop only the private SRAM TLBs; POM keeps the entry.
        for tlbs in m.scheme.cores:
            tlbs.l1_small.flush()
            tlbs.l2.flush()
        result = translate(m, 0x1000)
        assert result.l2_miss
        assert m.stats["mmu"]["page_walks"] == 1  # no second walk
        assert m.stats["pom_flow"]["resolved_first_try"] == 1

    def test_pom_resolution_is_cheaper_than_walk(self):
        m = make_machine("pom")
        first = translate(m, 0x1000)
        for tlbs in m.scheme.cores:
            tlbs.l1_small.flush()
            tlbs.l2.flush()
        second = translate(m, 0x1000)
        assert second.penalty < first.penalty

    def test_entry_is_shared_across_cores(self):
        m = make_machine("pom")
        translate(m, 0x1000, core=0)
        result = translate(m, 0x1000, core=1)
        assert result.l2_miss  # core 1's private TLBs were cold
        assert m.stats["mmu"]["page_walks"] == 1  # but POM had it

    def test_set_fetch_prefers_data_caches(self):
        m = make_machine("pom")
        # Access 1: walk + fill.  The bypass bit trains toward bypass
        # (the line was not cached before the walk), so access 2 goes to
        # DRAM, observes the line is now cached, and untrains.  Access 3
        # probes the data caches and hits.
        for _ in range(3):
            translate(m, 0x1000)
            for tlbs in m.scheme.cores:
                tlbs.l1_small.flush()
                tlbs.l2.flush()
        flow = m.stats["pom_flow"]
        assert flow["set_from_l2"] + flow["set_from_l3"] >= 1

    def test_caching_disabled_goes_straight_to_dram(self):
        m = make_machine("pom", cache_tlb_entries=False)
        translate(m, 0x1000)
        flow = m.stats["pom_flow"]
        assert flow["set_from_dram_uncached"] >= 1
        assert flow.get("set_from_l2", 0) == 0

    def test_size_predictor_learns_large_pages(self):
        m = make_machine("pom", large_fraction=1.0)
        translate(m, 0x1000)          # mispredicts small first
        flow_before = m.stats["pom_flow"]["resolved_second_try"]
        for tlbs in m.scheme.cores:
            tlbs.l1_large.flush()
            tlbs.l2.flush()
        translate(m, 0x1000)          # now predicts large
        assert m.stats["core0.predictor"]["size_wrong"] == 1
        assert m.stats["core0.predictor"]["size_correct"] >= 1

    def test_translation_correctness_under_pom(self):
        m = make_machine("pom")
        page = m.touch(0, 1, 0x1000)
        m.scheme.translate(0, 0, 1, 0x1000, page)
        entry = m.scheme.pom.probe(
            0x1000, _key(m, 0, 1, 0x1000, page.large))
        assert entry.ppn == page.host_frame >> addr.SMALL_PAGE_SHIFT


def _key(machine, vm, asid, vaddr, large):
    from repro.tlb.entry import TlbKey
    return TlbKey(vm_id=vm, asid=asid,
                  vpn=vaddr >> addr.page_shift(large), large=large).pack()


class TestSharedL2Scheme:
    def test_shared_hit_counts_extra_latency_as_penalty(self):
        m = make_machine("shared_l2")
        translate(m, 0x1000)  # cold: walk
        # Evict from core-0 L1 only (L1 is tiny); shared retains it.
        m.scheme.cores[0].l1_small.flush()
        result = translate(m, 0x1000)
        assert not result.l2_miss
        assert result.penalty > 0  # shared array slower than private L2

    def test_entry_shared_across_cores_without_walk(self):
        m = make_machine("shared_l2")
        translate(m, 0x1000, core=0)
        translate(m, 0x1000, core=1)
        assert m.stats["mmu"]["page_walks"] == 1

    def test_miss_walks(self):
        m = make_machine("shared_l2")
        translate(m, 0x1000)
        assert m.stats["mmu"]["page_walks"] == 1
        assert m.stats["mmu"]["l2_tlb_misses"] == 1


class TestTsbScheme:
    def test_tsb_miss_walks_and_fills(self):
        m = make_machine("tsb")
        translate(m, 0x1000)
        assert m.stats["mmu"]["page_walks"] == 1
        assert m.scheme.tsb.occupancy() == {"guest": 1, "host": 1}

    def test_tsb_hit_avoids_walk(self):
        m = make_machine("tsb")
        translate(m, 0x1000)
        for tlbs in m.scheme.cores:
            tlbs.l1_small.flush()
            tlbs.l2.flush()
        result = translate(m, 0x1000)
        assert result.l2_miss
        assert m.stats["mmu"]["page_walks"] == 1

    def test_every_miss_pays_the_trap(self):
        m = make_machine("tsb")
        result = translate(m, 0x1000)
        assert result.penalty >= m.scheme.tsb_config.trap_cycles

    def test_tsb_hit_still_pays_trap_plus_two_accesses(self):
        m = make_machine("tsb")
        translate(m, 0x1000)
        for tlbs in m.scheme.cores:
            tlbs.l1_small.flush()
            tlbs.l2.flush()
        result = translate(m, 0x1000)
        # Trap plus two dependent memory accesses (L1 hits at best).
        assert result.penalty >= m.scheme.tsb_config.trap_cycles + 8


class TestShootdown:
    @pytest.mark.parametrize("scheme", ["baseline", "pom", "shared_l2", "tsb"])
    def test_shootdown_forces_rewalk(self, scheme):
        m = make_machine(scheme)
        translate(m, 0x1000)
        walks_before = m.stats["mmu"]["page_walks"]
        m.scheme.shootdown(0, 1, 0x1000, large=False)
        result = translate(m, 0x1000)
        assert result.l2_miss
        assert m.stats["mmu"]["page_walks"] == walks_before + 1

    def test_shootdown_counter(self):
        m = make_machine("pom")
        translate(m, 0x1000)
        m.scheme.shootdown(0, 1, 0x1000, large=False)
        assert m.stats["mmu"]["shootdowns"] == 1


class TestMakeScheme:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            make_machine("magic")
