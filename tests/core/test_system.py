"""Unit tests for the Machine system simulator."""

import pytest

from repro.common import addr
from repro.common.config import SystemConfig
from repro.core.system import Machine
from repro.workloads.trace import CoreStream, MemoryReference


def looping_stream(core, pages, repeats, vm=0, asid=1, stride=1):
    """A stream touching ``pages`` 4 KiB pages round-robin ``repeats`` times."""
    refs = []
    icount = 0
    for _ in range(repeats):
        for p in range(0, pages, stride):
            icount += 10
            refs.append(MemoryReference(icount, p * addr.SMALL_PAGE_SIZE, False))
    return CoreStream(core=core, vm_id=vm, asid=asid, references=refs)


class TestRun:
    def test_reference_count(self):
        m = Machine(SystemConfig(num_cores=1), scheme="baseline")
        result = m.run([looping_stream(0, pages=10, repeats=3)])
        assert result.references == 30

    def test_max_references_caps_run(self):
        m = Machine(SystemConfig(num_cores=1), scheme="baseline")
        result = m.run([looping_stream(0, pages=10, repeats=3)],
                       max_references=7)
        assert result.references == 7

    def test_rejects_stream_beyond_core_count(self):
        m = Machine(SystemConfig(num_cores=1), scheme="baseline")
        with pytest.raises(ValueError):
            m.run([looping_stream(1, pages=4, repeats=1)])

    def test_small_working_set_has_few_misses(self):
        m = Machine(SystemConfig(num_cores=1), scheme="baseline")
        result = m.run([looping_stream(0, pages=8, repeats=100)])
        # 8 pages fit in the L1 TLB: compulsory misses only.
        assert result.l2_tlb_misses == 8
        assert result.page_walks == 8

    def test_instructions_accumulate(self):
        m = Machine(SystemConfig(num_cores=1), scheme="baseline")
        stream = looping_stream(0, pages=10, repeats=2)
        result = m.run([stream])
        assert result.instructions == stream.instructions


class TestPomWalkElimination:
    def test_pom_eliminates_capacity_walks(self):
        # Working set larger than the 1536-entry L2 TLB but tiny for the
        # POM-TLB: after the first pass, walks stop.
        pages = 4096
        base = Machine(SystemConfig(num_cores=1), scheme="baseline")
        pom = Machine(SystemConfig(num_cores=1), scheme="pom")
        stream = looping_stream(0, pages=pages, repeats=3)
        r_base = base.run([stream])
        r_pom = pom.run([stream])
        assert r_base.page_walks > pages  # baseline keeps walking
        assert r_pom.page_walks == pages  # POM: compulsory only
        assert r_pom.walk_elimination > 0.6



class TestResultMetrics:
    def run_pom(self, repeats=3):
        m = Machine(SystemConfig(num_cores=1), scheme="pom")
        return m.run([looping_stream(0, pages=4096, repeats=repeats)])

    def test_avg_penalty(self):
        r = self.run_pom()
        assert r.avg_penalty_per_miss == pytest.approx(
            r.penalty_cycles / r.l2_tlb_misses)

    def test_mpki(self):
        r = self.run_pom()
        assert r.mpki == pytest.approx(1000 * r.l2_tlb_misses / r.instructions)

    def test_fig9_ratios_populated(self):
        r = self.run_pom()
        assert 0 <= r.tlb_cache_hit_ratio("l2") <= 1
        assert 0 <= r.tlb_cache_hit_ratio("l3") <= 1
        assert r.pom_hit_ratio() > 0

    def test_predictor_accuracy_populated(self):
        r = self.run_pom()
        acc = r.predictor_accuracy()
        assert acc["size"] > 0.9  # all-small workload: near-perfect

    def test_row_buffer_hit_rate_range(self):
        r = self.run_pom()
        assert 0 <= r.row_buffer_hit_rate() <= 1

    def test_metrics_zero_safe_on_empty_run(self):
        m = Machine(SystemConfig(num_cores=1), scheme="pom")
        r = m.run([])
        assert r.avg_penalty_per_miss == 0
        assert r.mpki == 0
        assert r.walk_elimination == 0
        assert r.pom_hit_ratio() == 0


class TestNativeMode:
    def test_native_run(self):
        cfg = SystemConfig(num_cores=1, virtualized=False)
        m = Machine(cfg, scheme="baseline")
        result = m.run([looping_stream(0, pages=64, repeats=2)])
        assert result.page_walks == 64

    def test_native_walks_are_cheaper_than_virtualized(self):
        stream = looping_stream(0, pages=2048, repeats=2)
        virt = Machine(SystemConfig(num_cores=1, virtualized=True),
                       scheme="baseline").run([stream])
        native = Machine(SystemConfig(num_cores=1, virtualized=False),
                         scheme="baseline").run([stream])
        assert native.avg_penalty_per_miss < virt.avg_penalty_per_miss


class TestMultiCore:
    def test_streams_interleave_across_cores(self):
        m = Machine(SystemConfig(num_cores=2), scheme="pom")
        streams = [looping_stream(0, pages=128, repeats=2, asid=1),
                   looping_stream(1, pages=128, repeats=2, asid=2)]
        result = m.run(streams)
        assert result.references == 2 * 2 * 128
        # Both cores saw TLB activity.
        assert m.stats["core0.l2_tlb"]["misses"] > 0
        assert m.stats["core1.l2_tlb"]["misses"] > 0

    def test_multi_vm_isolation(self):
        m = Machine(SystemConfig(num_cores=2), scheme="pom")
        streams = [looping_stream(0, pages=64, repeats=1, vm=1, asid=1),
                   looping_stream(1, pages=64, repeats=1, vm=2, asid=1)]
        m.run(streams)
        # Two VMs with identical gVAs must not share translations.
        assert m.stats["mmu"]["page_walks"] == 128


class TestShootdownIntegration:
    def test_machine_shootdown(self):
        m = Machine(SystemConfig(num_cores=1), scheme="pom")
        m.run([looping_stream(0, pages=4, repeats=2)])
        walks = m.stats["mmu"]["page_walks"]
        m.shootdown(0, 1, 0)
        m.run([looping_stream(0, pages=1, repeats=1)])
        assert m.stats["mmu"]["page_walks"] == walks + 1
