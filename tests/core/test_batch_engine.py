"""Edge cases of the vectorized batch-replay engine (repro.core.batch).

The integration suite (tests/integration/test_engine_equivalence.py)
holds the batch engine bit-identical to the frozen reference at
workload scale.  This module aims at the seams instead: slice
boundaries, warmup resets landing mid-slice, invalidations between
runs, degenerate streams, the fallback ladder (numpy absent, tuple
streams, explicit disable), and the lexsort-vs-heap-merge order
equivalence the whole design rests on.

Everything here compares against the scalar ``Machine`` loop, which is
the semantics of record (itself pinned to ``repro.core.refcheck`` by
the integration suite).
"""

import pytest

import repro.core.batch as batch_mod
from repro.core.batch import HAS_NUMPY, resolve_batch_flag
from repro.core.system import Machine
from repro.experiments.runner import ExperimentParams
from repro.workloads.packed import pack_stream
from repro.workloads.suite import get_profile
from repro.workloads.trace import (CoreStream, MemoryReference,
                                   interleave_batched)

needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy unavailable (pomtlb[fast] not installed)")

PARAMS = ExperimentParams(num_cores=2, refs_per_core=700, scale=0.1, seed=11)

RESULT_FIELDS = ("scheme", "references", "instructions", "l2_tlb_misses",
                 "penalty_cycles", "translation_cycles", "data_cycles",
                 "page_walks")


def _workload(params=PARAMS, benchmark="gups"):
    profile = get_profile(benchmark)
    workload = profile.build(num_cores=params.num_cores,
                             refs_per_core=params.refs_per_core,
                             seed=params.seed, scale=params.scale)
    return profile, workload


def _machine(profile, scheme="pom", params=PARAMS, batch=True, **kwargs):
    return Machine(params.system_config(), scheme=scheme,
                   thp_large_fraction=profile.thp_large_fraction,
                   seed=params.seed, batch=batch, **kwargs)


def _assert_same(scalar, batched):
    for field in RESULT_FIELDS:
        assert getattr(batched, field) == getattr(scalar, field), field
    assert (batched.stats.as_nested_dict()
            == scalar.stats.as_nested_dict())


# -- slice boundaries ------------------------------------------------------


@needs_numpy
def test_warmup_reset_mid_slice(monkeypatch):
    """A warmup boundary inside a slice must reset tallies exactly.

    Shrinking the slice makes every boundary interior: warmup ends
    mid-slice, streams debut mid-slice, and the run end truncates a
    slice, all within a workload that stays test-sized.
    """
    monkeypatch.setattr(batch_mod, "_SLICE", 64)
    profile, workload = _workload()
    warm = workload.warmup_by_core or workload.warmup_references
    assert warm, "workload must actually exercise the warmup reset"
    scalar = _machine(profile, batch=False).run(
        workload.streams, warmup_references=warm)
    machine = _machine(profile)
    batched = machine.run([pack_stream(s) for s in workload.streams],
                          warmup_references=warm)
    assert machine.last_replay_mode == "batch"
    _assert_same(scalar, batched)


@needs_numpy
def test_max_references_truncates_identically(monkeypatch):
    monkeypatch.setattr(batch_mod, "_SLICE", 50)
    profile, workload = _workload()
    # A cap that lands mid-slice and mid-stream.
    cap = sum(len(s) for s in workload.streams) // 3 + 7
    scalar = _machine(profile, batch=False).run(
        workload.streams, max_references=cap)
    machine = _machine(profile)
    batched = machine.run([pack_stream(s) for s in workload.streams],
                          max_references=cap)
    assert machine.last_replay_mode == "batch"
    assert batched.references == scalar.references
    _assert_same(scalar, batched)


# -- invalidations between runs -------------------------------------------


@needs_numpy
@pytest.mark.parametrize("scheme", ("pom", "tsb", "shared_l2"))
def test_shootdown_between_runs(scheme):
    """TLB shootdown state must replay identically on the next run."""
    profile, workload = _workload()
    warm = workload.warmup_by_core or workload.warmup_references
    packed = [pack_stream(s) for s in workload.streams]
    target = workload.streams[0]
    vaddr = target.references[0].vaddr

    scalar_m = _machine(profile, scheme=scheme, batch=False)
    scalar_m.run(workload.streams, warmup_references=warm)
    scalar_m.shootdown(target.vm_id, target.asid, vaddr)
    scalar = scalar_m.run(workload.streams, warmup_references=warm)

    batch_m = _machine(profile, scheme=scheme)
    batch_m.run(packed, warmup_references=warm)
    batch_m.shootdown(target.vm_id, target.asid, vaddr)
    batched = batch_m.run(packed, warmup_references=warm)
    assert batch_m.last_replay_mode == "batch"
    _assert_same(scalar, batched)


@needs_numpy
def test_invalidate_vm_between_runs():
    """A whole-VM invalidation (teardown) between runs stays identical."""
    profile, workload = _workload()
    warm = workload.warmup_by_core or workload.warmup_references
    packed = [pack_stream(s) for s in workload.streams]
    vm_id = workload.streams[0].vm_id

    scalar_m = _machine(profile, batch=False)
    scalar_m.run(workload.streams, warmup_references=warm)
    dropped_scalar = scalar_m.invalidate_vm(vm_id)
    scalar = scalar_m.run(workload.streams, warmup_references=warm)

    batch_m = _machine(profile)
    batch_m.run(packed, warmup_references=warm)
    dropped_batch = batch_m.invalidate_vm(vm_id)
    batched = batch_m.run(packed, warmup_references=warm)
    assert batch_m.last_replay_mode == "batch"
    assert dropped_batch == dropped_scalar
    _assert_same(scalar, batched)


# -- degenerate streams ----------------------------------------------------


def _tiny_stream(core=0, vm_id=1, asid=1, refs=()):
    return CoreStream(core=core, vm_id=vm_id, asid=asid,
                      references=[MemoryReference(*r) for r in refs])


@needs_numpy
def test_single_reference_stream():
    profile, _ = _workload()
    streams = [_tiny_stream(refs=[(0, 0x1234, False)])]
    scalar = _machine(profile, batch=False).run(streams)
    machine = _machine(profile)
    batched = machine.run([pack_stream(s) for s in streams])
    assert machine.last_replay_mode == "batch"
    assert batched.references == 1
    _assert_same(scalar, batched)


@needs_numpy
def test_empty_streams_fall_back_to_scalar():
    """All-empty input declines cleanly (and still counts nothing)."""
    profile, _ = _workload()
    machine = _machine(profile)
    result = machine.run([pack_stream(_tiny_stream())])
    assert machine.last_replay_mode == "scalar"
    assert machine.batch_fallback_reason == "no non-empty streams"
    assert result.references == 0


@needs_numpy
def test_empty_stream_beside_live_stream():
    profile, _ = _workload()
    streams = [_tiny_stream(core=0),
               _tiny_stream(core=1, refs=[(0, 0x2000, False),
                                          (3, 0x4000, True)])]
    scalar = _machine(profile, batch=False).run(streams)
    machine = _machine(profile)
    batched = machine.run([pack_stream(s) for s in streams])
    assert machine.last_replay_mode == "batch"
    _assert_same(scalar, batched)


# -- fallback ladder -------------------------------------------------------


def test_tuple_streams_fall_back():
    """Un-packed (tuple) streams take the scalar loop, same results."""
    profile, workload = _workload()
    machine = _machine(profile)
    result = machine.run(workload.streams)
    assert machine.last_replay_mode == "scalar"
    if HAS_NUMPY:
        assert "tuple streams" in machine.batch_fallback_reason
    reference = _machine(profile, batch=False).run(workload.streams)
    _assert_same(reference, result)


def test_batch_disabled_by_flag():
    profile, workload = _workload()
    machine = _machine(profile, batch=False)
    machine.run([pack_stream(s) for s in workload.streams])
    assert machine.last_replay_mode == "scalar"
    assert machine.batch_fallback_reason == "batching disabled"


def test_numpy_absent_falls_back(monkeypatch):
    """Simulate a numpy-less install: decline reason names the extra."""
    monkeypatch.setattr(batch_mod, "_np", None)
    profile, workload = _workload()
    machine = _machine(profile)
    result = machine.run([pack_stream(s) for s in workload.streams])
    assert machine.last_replay_mode == "scalar"
    assert "numpy unavailable" in machine.batch_fallback_reason
    assert "pomtlb[fast]" in machine.batch_fallback_reason
    reference = _machine(profile, batch=False).run(
        [pack_stream(s) for s in workload.streams])
    _assert_same(reference, result)


def test_resolve_batch_flag(monkeypatch):
    monkeypatch.delenv("POMTLB_BATCH", raising=False)
    assert resolve_batch_flag() is True
    assert resolve_batch_flag(False) is False
    for raw, expected in (("0", False), ("false", False), ("no", False),
                          ("off", False), ("", False), ("1", True),
                          ("true", True), ("yes", True)):
        monkeypatch.setenv("POMTLB_BATCH", raw)
        assert resolve_batch_flag() is expected, raw
    monkeypatch.setenv("POMTLB_BATCH", "0")
    assert resolve_batch_flag(True) is True  # explicit flag beats env


# -- merge-order property --------------------------------------------------


@needs_numpy
def test_lexsort_order_matches_heap_merge():
    """np.lexsort((source, core, icount)) == the scalar k-way merge.

    The batch engine's global replay order is a stable lexsort; the
    scalar loop's is interleave_batched's heap merge.  Build streams
    with heavy icount ties across cores and within a core (two streams
    sharing core 1) and require the flattened orders to agree exactly.
    """
    import numpy as np

    streams = [
        _tiny_stream(core=0, asid=1,
                     refs=[(0, 0x1000, False), (5, 0x2000, False),
                           (5, 0x3000, False), (9, 0x4000, False)]),
        _tiny_stream(core=1, asid=2,
                     refs=[(0, 0x5000, False), (5, 0x6000, False),
                           (7, 0x7000, False)]),
        _tiny_stream(core=1, asid=3,
                     refs=[(5, 0x8000, False), (5, 0x9000, False),
                           (9, 0xA000, False)]),
    ]
    merged = []
    for stream, lo, hi in interleave_batched(streams):
        for ref in stream.references[lo:hi]:
            merged.append((ref.icount, stream.core, ref.vaddr))

    ic = np.concatenate([np.array([r.icount for r in s.references],
                                  dtype=np.uint64) for s in streams])
    cores = np.concatenate([np.full(len(s), s.core, dtype=np.int16)
                            for s in streams])
    src = np.concatenate([np.full(len(s), i, dtype=np.int16)
                          for i, s in enumerate(streams)])
    va = np.concatenate([np.array([r.vaddr for r in s.references],
                                  dtype=np.uint64) for s in streams])
    order = np.lexsort((src, cores, ic))
    lexsorted = [(int(ic[i]), int(cores[i]), int(va[i])) for i in order]
    assert lexsorted == merged


# -- mid-run lifecycle events ----------------------------------------------
#
# The batch engine replays whole runs with no per-reference hook points,
# so a run with scheduled mid-run events (shootdown storms, VM
# teardowns) cannot batch soundly.  The contract: either the engine
# would replay them bit-identically, or it declines with a recorded
# ``batch_fallback_reason`` — never a silent divergence.


def _storm_events(workload):
    from repro.workloads.lifecycle import LifecycleEvent

    # Past the warmup prologue, so the fired shootdowns survive the
    # warmup-boundary stats reset and are visible in the results.
    warmup_total = sum(workload.warmup_by_core.values()) or \
        workload.warmup_references
    target = workload.streams[0]
    return [LifecycleEvent(position=warmup_total + 50, kind="shootdown",
                           vm_id=target.vm_id, asid=target.asid,
                           vaddr=target.references[-100].vaddr),
            LifecycleEvent(position=warmup_total + 200, kind="shootdown",
                           vm_id=target.vm_id, asid=target.asid,
                           vaddr=target.references[-50].vaddr)]


def test_events_force_scalar_with_recorded_reason():
    profile, workload = _workload()
    warm = workload.warmup_by_core or workload.warmup_references
    events = _storm_events(workload)

    batch_m = _machine(profile)
    batched = batch_m.run(workload.streams, warmup_references=warm,
                          events=events)
    assert batch_m.last_replay_mode == "scalar"
    assert batch_m.batch_fallback_reason == (
        "mid-run lifecycle events scheduled")

    scalar_m = _machine(profile, batch=False)
    scalar = scalar_m.run(workload.streams, warmup_references=warm,
                          events=events)
    _assert_same(scalar, batched)
    assert (batch_m.stats["mmu"]["shootdowns"]
            == scalar_m.stats["mmu"]["shootdowns"] == 2)


@needs_numpy
def test_event_free_run_batches_after_declined_run():
    """The decline is per run: the next event-free run batches again."""
    profile, workload = _workload()
    warm = workload.warmup_by_core or workload.warmup_references
    packed = [pack_stream(s) for s in workload.streams]

    machine = _machine(profile)
    machine.run(packed, warmup_references=warm,
                events=_storm_events(workload))
    assert machine.last_replay_mode == "scalar"
    machine.run(packed, warmup_references=warm)
    assert machine.last_replay_mode == "batch"


def test_destroy_vm_event_replays_identically():
    """A mid-run teardown produces the same results however executed."""
    from repro.workloads.lifecycle import LifecycleEvent

    profile, workload = _workload()
    warm = workload.warmup_by_core or workload.warmup_references
    vm_id = workload.streams[0].vm_id
    events = [LifecycleEvent(position=300, kind="destroy_vm", vm_id=vm_id)]

    scalar_m = _machine(profile, batch=False)
    scalar = scalar_m.run(workload.streams, warmup_references=warm,
                          events=events)
    batch_m = _machine(profile)
    batched = batch_m.run(workload.streams, warmup_references=warm,
                          events=events)
    assert batch_m.last_replay_mode == "scalar"
    _assert_same(scalar, batched)
