"""Unit tests for TLB shootdown cost accounting."""

import pytest

from repro.common.config import SystemConfig
from repro.core.system import Machine


def make_machine(scheme, cores=2):
    return Machine(SystemConfig(num_cores=cores), scheme=scheme, seed=3)


def touch_translate(machine, va=0x3000):
    page = machine.touch(0, 1, va)
    machine.scheme.translate(0, 0, 1, va, page)
    return page


class TestShootdownCost:
    @pytest.mark.parametrize("scheme",
                             ["baseline", "pom", "pom_skewed",
                              "shared_l2", "tsb"])
    def test_cost_at_least_base(self, scheme):
        machine = make_machine(scheme)
        touch_translate(machine)
        cycles = machine.shootdown(0, 1, 0x3000)
        base = machine.scheme.SHOOTDOWN_BASE_CYCLES
        assert cycles >= base

    def test_cost_scales_with_core_count(self):
        small = make_machine("baseline", cores=1)
        big = make_machine("baseline", cores=8)
        touch_translate(small)
        touch_translate(big)
        assert big.shootdown(0, 1, 0x3000) > small.shootdown(0, 1, 0x3000)

    def test_pom_shootdown_pays_dram_writeback(self):
        pom = make_machine("pom")
        base = make_machine("baseline")
        touch_translate(pom)
        touch_translate(base)
        # The POM set exists and must be written back, so its shootdown
        # costs more than the SRAM-only baseline's.
        assert pom.shootdown(0, 1, 0x3000) > base.shootdown(0, 1, 0x3000)

    def test_cycles_accumulate_in_stats(self):
        machine = make_machine("pom")
        touch_translate(machine)
        cycles = machine.shootdown(0, 1, 0x3000)
        assert machine.stats["mmu"]["shootdown_cycles"] == cycles
        assert machine.stats["mmu"]["shootdowns"] == 1

    def test_shootdown_of_untouched_page_still_costs_ipi(self):
        machine = make_machine("pom")
        cycles = machine.shootdown(0, 1, 0x9000)
        assert cycles >= machine.scheme.SHOOTDOWN_BASE_CYCLES
