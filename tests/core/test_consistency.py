"""Shootdown / VM-invalidation consistency tests across all 5 schemes.

The paper's mostly-inclusive consistency model (Section 2.1) requires
that an explicit invalidation reaches every structure that may hold the
translation: the private L1/L2 SRAM TLBs, the scheme's backing structure
(POM-TLB / shared TLB / TSB), and any data-cache copy of the backing
structure's 64 B lines.  These tests lock in two defects:

* shootdown size asymmetry — the front end used to drop only the
  caller-supplied page size from the private TLBs while every backend
  drops both sizes, so a stale other-size entry survived privately;
* VM-level invalidation staleness — ``invalidate_vm`` dropped POM-TLB /
  TSB entries without invalidating the cached copies of their lines,
  so the L2D$/L3D$ kept serving dead sets.
"""

import pytest

from repro.common.config import SystemConfig
from repro.core.mmu import _key_for
from repro.core.system import Machine
from repro.tlb.entry import TlbEntry, pack_key

SCHEMES = ["baseline", "pom", "pom_skewed", "shared_l2", "tsb"]


def make_machine(scheme, cores=2):
    return Machine(SystemConfig(num_cores=cores), scheme=scheme, seed=3)


def plant_both_sizes(scheme_obj, vm=0, asid=1, va=0x3000):
    """Install translations of *both* page sizes for ``va`` privately.

    A THP promotion (or demotion) leaves exactly this state behind: the
    old-size entry is stale but still resident until a shootdown.
    """
    key_small = _key_for(vm, asid, va, False)
    key_large = _key_for(vm, asid, va, True)
    for tlbs in scheme_obj.cores:
        tlbs.l1_small.insert(key_small, TlbEntry(1))
        tlbs.l1_large.insert(key_large, TlbEntry(1))
        tlbs.l2.insert(key_small, TlbEntry(1))
        tlbs.l2.insert(key_large, TlbEntry(1))
    return key_small, key_large


class TestShootdownDropsBothSizes:
    """Front end and backends must agree: a shootdown drops both sizes."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("requested_large", [False, True])
    def test_other_size_does_not_survive_privately(self, scheme,
                                                   requested_large):
        machine = make_machine(scheme)
        key_small, key_large = plant_both_sizes(machine.scheme)
        machine.scheme.shootdown(0, 1, 0x3000, requested_large)
        for tlbs in machine.scheme.cores:
            assert not tlbs.l1_small.contains(key_small)
            assert not tlbs.l1_large.contains(key_large)
            assert not tlbs.l2.contains(key_small), \
                "small-page entry survived the shootdown in a private L2"
            assert not tlbs.l2.contains(key_large), \
                "large-page entry survived the shootdown in a private L2"

    def test_backend_agrees_with_front_end_pom(self):
        """After the shootdown neither size is anywhere: private or POM."""
        machine = make_machine("pom")
        pom = machine.scheme.pom
        va, vm, asid = 0x3000, 0, 1
        key_small, key_large = plant_both_sizes(machine.scheme)
        pom.insert(va, key_small, TlbEntry(1), vm, False)
        pom.insert(va, key_large, TlbEntry(1), vm, True)
        machine.scheme.shootdown(vm, asid, va, False)
        assert not pom.contains(va, key_small, vm, False)
        assert not pom.contains(va, key_large, vm, True)
        for tlbs in machine.scheme.cores:
            assert not tlbs.l2.contains(key_large)

    def test_shared_l2_shadow_drops_both_sizes(self):
        machine = make_machine("shared_l2")
        scheme = machine.scheme
        key_small, key_large = plant_both_sizes(scheme)
        for shadow in scheme._shadow:
            shadow.insert(key_small, TlbEntry(1))
            shadow.insert(key_large, TlbEntry(1))
        scheme.shootdown(0, 1, 0x3000, True)
        for tlbs in scheme.cores:
            assert not tlbs.l2.contains(key_small)
        for shadow in scheme._shadow:
            assert not shadow.contains(key_small)
            assert not shadow.contains(key_large)


class TestShootdownOfUnmappedPage:
    """``Machine.shootdown`` after the mapping is gone drops both sizes.

    The fallback used to assume ``large=False`` when the page could not
    be resolved (the mapping was already unmapped — the common shootdown
    ordering).  The size is unknowable then, so the invalidation must
    drop *both* page sizes end-to-end; a THP page that was demoted and
    unmapped would otherwise leave its large-size entry resident
    forever.
    """

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_large_entry_dropped_when_mapping_is_gone(self, scheme):
        machine = make_machine(scheme)
        va, vm, asid = 0x3000, 0, 1
        machine.touch(vm, asid, 0x1000)  # boot the VM/process
        # A large-page entry survives from before the (unmapped) page
        # went away — e.g. a THP demotion the IPI is catching up with.
        key_small, key_large = plant_both_sizes(machine.scheme,
                                                vm=vm, asid=asid, va=va)
        assert machine.host.vms[vm].resolve(asid, va) is None
        machine.shootdown(vm, asid, va)
        for tlbs in machine.scheme.cores:
            assert not tlbs.l1_large.contains(key_large), \
                "unmapped-page shootdown left the large-size L1 entry"
            assert not tlbs.l2.contains(key_large), \
                "unmapped-page shootdown left the large-size L2 entry"
            assert not tlbs.l1_small.contains(key_small)
            assert not tlbs.l2.contains(key_small)

    def test_pom_backend_drops_both_sizes_when_unmapped(self):
        machine = make_machine("pom")
        pom = machine.scheme.pom
        va, vm, asid = 0x3000, 0, 1
        machine.touch(vm, asid, 0x1000)
        key_small, key_large = plant_both_sizes(machine.scheme,
                                                vm=vm, asid=asid, va=va)
        pom.insert(va, key_small, TlbEntry(1), vm, False)
        pom.insert(va, key_large, TlbEntry(1), vm, True)
        machine.shootdown(vm, asid, va)
        assert not pom.contains(va, key_small, vm, False)
        assert not pom.contains(va, key_large, vm, True)

    def test_native_shootdown_does_not_create_a_process(self):
        """The native fallback resolved via ``_native_process`` — which
        *creates* the process (allocating a root table frame) as a side
        effect of what should be a pure invalidation."""
        machine = Machine(SystemConfig(num_cores=1, virtualized=False),
                          scheme="pom", seed=3)
        before = machine.host.memory.bytes_allocated
        machine.shootdown(0, 42, 0x5000)
        assert 42 not in machine._native_processes
        assert machine.host.memory.bytes_allocated == before


class TestInvalidateVmReportsLines:
    """invalidate_vm must report the touched set/line addresses."""

    def test_pom_returns_set_addresses(self):
        machine = make_machine("pom")
        pom = machine.scheme.pom
        k1 = pack_key(1, 1, 0x1, False)
        k2 = pack_key(1, 1, 0x300, True)
        k3 = pack_key(2, 1, 0x2, False)
        pom.insert(0x1000, k1, TlbEntry(1), 1, False)
        pom.insert(0x60000000, k2, TlbEntry(2), 1, True)
        pom.insert(0x2000, k3, TlbEntry(3), 2, False)
        dropped = pom.invalidate_vm(1)
        assert len(dropped) == 2
        addressing = pom.addressing
        assert addressing.set_address(0x1000, 1, False) in dropped
        assert addressing.set_address(0x60000000, 1, True) in dropped
        for paddr in dropped:
            assert addressing.config.contains(paddr)

    def test_skewed_returns_line_addresses(self):
        machine = make_machine("pom_skewed")
        pom = machine.scheme.pom
        k1 = pack_key(1, 1, 0x1, False)
        k2 = pack_key(2, 1, 0x2, False)
        pom.insert(k1, TlbEntry(1))
        pom.insert(k2, TlbEntry(2))
        dropped = pom.invalidate_vm(1)
        assert len(dropped) == 1
        assert dropped[0] in pom.lines_for_key(k1)
        assert not pom.contains(k1)
        assert pom.contains(k2)

    def test_tsb_invalidate_vm_returns_entry_addresses(self):
        machine = make_machine("tsb")
        tsb = machine.scheme.tsb
        tsb.fill_guest(1, 1, 0x10, False, 0x4000)
        tsb.fill_host(1, 0x4, 0x8000)
        tsb.fill_guest(2, 1, 0x20, False, 0x5000)
        dropped = tsb.invalidate_vm(1)
        assert len(dropped) == 2
        assert tsb.probe_guest(1, 1, 0x10, False) is None
        assert tsb.probe_guest(2, 1, 0x20, False) is not None


class TestInvalidateVmCacheCoherence:
    """Machine-level VM invalidation must drop cached backing lines."""

    def _run_some(self, machine, vm=0, asid=1, n=64):
        for i in range(n):
            va = 0x10000 + i * 0x1000
            page = machine.touch(vm, asid, va)
            machine.scheme.translate(0, vm, asid, va, page)

    @staticmethod
    def _occupied_lines(scheme, pom):
        """Line address of every set/slot currently holding an entry."""
        if scheme == "pom":
            return {(pom._large_base if large else pom._small_base)
                    + index * 64
                    for large, index, _key in pom.resident()}
        return {pom._line_address(way, slot)
                for way, slot, _key in pom.resident()}

    @pytest.mark.parametrize("scheme", ["pom", "pom_skewed"])
    def test_no_stale_cached_tlb_line_after_invalidate_vm(self, scheme):
        # Lines cached for sets that never held a dropped entry stay —
        # they are coherent (other VMs share the set space) — but every
        # set that *lost* an entry must leave the L2D$/L3D$.
        machine = make_machine(scheme)
        self._run_some(machine)
        hierarchy = machine.hierarchy
        pom = machine.scheme.pom
        occupied = self._occupied_lines(scheme, pom)
        cached_before = occupied & set(hierarchy.tlb_lines())
        assert cached_before, "expected cached POM-TLB set lines"
        dropped = machine.invalidate_vm(0)
        assert dropped > 0
        still_cached = set(hierarchy.tlb_lines())
        stale = cached_before & still_cached
        assert not stale, (
            "L2D$/L3D$ still serve POM-TLB lines of the torn-down VM")

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_invalidate_vm_empties_private_tlbs(self, scheme):
        machine = make_machine(scheme)
        self._run_some(machine)
        machine.invalidate_vm(0)
        for tlbs in machine.scheme.cores:
            assert len(tlbs.l1_small) == 0
            assert len(tlbs.l1_large) == 0
            assert len(tlbs.l2) == 0

    def test_multi_vm_invalidate_is_selective(self):
        machine = make_machine("pom")
        self._run_some(machine, vm=0)
        self._run_some(machine, vm=1)
        machine.invalidate_vm(0)
        pom = machine.scheme.pom
        survivors = [key for _large, _index, key in pom.resident()]
        assert survivors, "VM 1's translations must survive"
        assert all((key >> 1) & 0xFFFF == 1 for key in survivors)
        for tlbs in machine.scheme.cores:
            for tlb in (tlbs.l1_small, tlbs.l1_large, tlbs.l2):
                assert all(k.vm_id == 1 for k in tlb.keys())

    def test_tsb_invalidate_vm_drops_cached_entry_lines(self):
        machine = make_machine("tsb")
        self._run_some(machine)
        tsb = machine.scheme.tsb
        addresses = [tsb.guest_entry_address(0, 1, (0x10000 + i * 0x1000) >> 12)
                     for i in range(64)]
        cached_before = [a for a in addresses
                         if any(machine.hierarchy.l2(c).contains(a)
                                for c in range(machine.config.num_cores))
                         or machine.hierarchy.l3.contains(a)]
        assert cached_before, "expected cached TSB entry lines"
        machine.invalidate_vm(0)
        for a in cached_before:
            for c in range(machine.config.num_cores):
                assert not machine.hierarchy.l2(c).contains(a)
            assert not machine.hierarchy.l3.contains(a)
