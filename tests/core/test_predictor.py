"""Unit tests for the page-size + bypass predictor."""

from repro.common.config import PredictorConfig
from repro.common.stats import StatGroup
from repro.core.predictor import SizeBypassPredictor


def make_predictor(entries=512):
    return SizeBypassPredictor(PredictorConfig(entries=entries),
                               StatGroup("pred"))


class TestSizePrediction:
    def test_initial_prediction_is_small(self):
        p = make_predictor()
        assert p.predict_size(0x1234000) is False

    def test_wrong_prediction_flips_entry(self):
        p = make_predictor()
        assert not p.record_size(0xABC000, actual_large=True)  # wrong
        assert p.predict_size(0xABC000) is True
        assert p.record_size(0xABC000, actual_large=True)  # now right

    def test_correct_prediction_keeps_entry(self):
        p = make_predictor()
        p.record_size(0xABC000, actual_large=False)
        assert p.predict_size(0xABC000) is False

    def test_indexing_ignores_page_offset(self):
        p = make_predictor()
        p.record_size(0xABC000, actual_large=True)
        assert p.predict_size(0xABCFFF) is True

    def test_aliasing_across_index_range(self):
        p = make_predictor(entries=512)
        stride = 512 << 12  # wraps the 9 index bits
        p.record_size(0x0, actual_large=True)
        assert p.predict_size(stride) is True  # aliases to the same entry

    def test_accuracy_tracking(self):
        p = make_predictor()
        p.record_size(0x1000, actual_large=False)  # correct (init small)
        p.record_size(0x1000, actual_large=True)   # wrong
        assert p.size_accuracy() == 0.5

    def test_accuracy_empty_is_zero(self):
        assert make_predictor().size_accuracy() == 0.0


class TestBypassPrediction:
    def test_initial_prediction_is_no_bypass(self):
        p = make_predictor()
        assert p.predict_bypass(0x1000) is False

    def test_uncached_line_trains_towards_bypass(self):
        p = make_predictor()
        p.record_bypass(0x1000, line_was_cached=False)
        assert p.predict_bypass(0x1000) is True

    def test_cached_line_trains_towards_probe(self):
        p = make_predictor()
        p.record_bypass(0x1000, line_was_cached=False)
        p.record_bypass(0x1000, line_was_cached=True)
        assert p.predict_bypass(0x1000) is False

    def test_bypass_accuracy(self):
        p = make_predictor()
        # predicted no-bypass, line cached -> correct
        p.record_bypass(0x1000, line_was_cached=True)
        # predicted no-bypass, line not cached -> wrong
        p.record_bypass(0x1000, line_was_cached=False)
        assert p.bypass_accuracy() == 0.5


class TestStorage:
    def test_storage_is_128_bytes_for_512_entries(self):
        # Paper Section 2.1.4: 512 x 2 bits = 128 bytes per core.
        assert make_predictor(512).storage_bytes == 128

    def test_size_and_bypass_bits_are_independent(self):
        p = make_predictor()
        p.record_size(0x1000, actual_large=True)
        assert p.predict_bypass(0x1000) is False
        p.record_bypass(0x1000, line_was_cached=False)
        assert p.predict_size(0x1000) is True


class TestHysteresis:
    def test_one_bit_flips_immediately(self):
        from repro.common.config import PredictorConfig
        from repro.common.stats import StatGroup
        p = SizeBypassPredictor(PredictorConfig(size_counter_bits=1),
                                StatGroup("p"))
        p.record_size(0x1000, actual_large=True)
        assert p.predict_size(0x1000) is True
        p.record_size(0x1000, actual_large=False)
        assert p.predict_size(0x1000) is False

    def test_two_bit_needs_two_mistakes_to_flip(self):
        from repro.common.config import PredictorConfig
        from repro.common.stats import StatGroup
        p = SizeBypassPredictor(PredictorConfig(size_counter_bits=2),
                                StatGroup("p"))
        # Saturate towards large.
        for _ in range(3):
            p.record_size(0x1000, actual_large=True)
        assert p.predict_size(0x1000) is True
        # One small observation must NOT flip the prediction...
        p.record_size(0x1000, actual_large=False)
        assert p.predict_size(0x1000) is True
        # ...but a second one does.
        p.record_size(0x1000, actual_large=False)
        assert p.predict_size(0x1000) is False

    def test_counter_saturates(self):
        from repro.common.config import PredictorConfig
        from repro.common.stats import StatGroup
        p = SizeBypassPredictor(PredictorConfig(size_counter_bits=2),
                                StatGroup("p"))
        for _ in range(10):
            p.record_size(0x1000, actual_large=True)
        # Two small observations flip it back even after long saturation.
        p.record_size(0x1000, actual_large=False)
        p.record_size(0x1000, actual_large=False)
        assert p.predict_size(0x1000) is False

    def test_storage_grows_with_counter_bits(self):
        from repro.common.config import PredictorConfig
        from repro.common.stats import StatGroup
        one = SizeBypassPredictor(PredictorConfig(size_counter_bits=1),
                                  StatGroup("a"))
        two = SizeBypassPredictor(PredictorConfig(size_counter_bits=2),
                                  StatGroup("b"))
        assert one.storage_bytes == 128
        assert two.storage_bytes > one.storage_bytes

    def test_rejects_bad_counter_bits(self):
        import pytest
        from repro.common.config import PredictorConfig
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            PredictorConfig(size_counter_bits=0)
        with pytest.raises(ConfigError):
            PredictorConfig(size_counter_bits=5)
