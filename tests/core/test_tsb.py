"""Unit tests for the TSB baseline structure."""

from repro.common import addr
from repro.common.config import TsbConfig
from repro.common.stats import StatGroup
from repro.core.tsb import TranslationStorageBuffer


def make_tsb(size_mb=16):
    return TranslationStorageBuffer(TsbConfig(size_bytes=size_mb * addr.MiB),
                                    StatGroup("tsb"))


class TestGuestHalf:
    def test_cold_probe_misses(self):
        tsb = make_tsb()
        assert tsb.probe_guest(0, 1, 5, False) is None
        assert tsb.stats["guest_misses"] == 1

    def test_fill_then_hit(self):
        tsb = make_tsb()
        tsb.fill_guest(0, 1, 5, False, gpa_frame=0xAA000)
        assert tsb.probe_guest(0, 1, 5, False) == 0xAA000

    def test_tag_mismatch_misses(self):
        tsb = make_tsb()
        tsb.fill_guest(0, 1, 5, False, 0xAA000)
        assert tsb.probe_guest(0, 2, 5, False) is None  # other asid
        assert tsb.probe_guest(0, 1, 5, True) is None   # other size

    def test_direct_mapped_conflict_evicts(self):
        tsb = make_tsb()
        half = tsb._half_entries
        tsb.fill_guest(0, 1, 0, False, 0x1000)
        tsb.fill_guest(0, 1, half, False, 0x2000)  # same index
        assert tsb.probe_guest(0, 1, 0, False) is None
        assert tsb.stats["guest_conflict_evictions"] == 1

    def test_entry_addresses_in_guest_half(self):
        tsb = make_tsb()
        a = tsb.guest_entry_address(0, 1, 5)
        assert tsb.config.base_address <= a < tsb._host_base
        assert a % tsb.config.entry_bytes == 0


class TestHostHalf:
    def test_fill_then_hit(self):
        tsb = make_tsb()
        tsb.fill_host(0, 123, 0xBB000)
        assert tsb.probe_host(0, 123) == 0xBB000

    def test_vm_disambiguates(self):
        tsb = make_tsb()
        tsb.fill_host(1, 123, 0xBB000)
        assert tsb.probe_host(2, 123) is None

    def test_entry_addresses_in_host_half(self):
        tsb = make_tsb()
        a = tsb.host_entry_address(0, 123)
        limit = tsb.config.base_address + tsb.config.size_bytes
        assert tsb._host_base <= a < limit

    def test_gpa_vpn_is_4k_granular(self):
        assert TranslationStorageBuffer.gpa_vpn(0x5123) == 0x5


class TestInvalidateAndReporting:
    def test_invalidate_guest(self):
        tsb = make_tsb()
        tsb.fill_guest(0, 1, 5, False, 0xAA000)
        entry_addr = tsb.invalidate_guest(0, 1, 5, False)
        assert entry_addr == tsb.guest_entry_address(0, 1, 5)
        assert tsb.probe_guest(0, 1, 5, False) is None

    def test_invalidate_absent_is_none(self):
        tsb = make_tsb()
        assert tsb.invalidate_guest(0, 1, 5, False) is None

    def test_occupancy(self):
        tsb = make_tsb()
        tsb.fill_guest(0, 1, 5, False, 0xAA000)
        tsb.fill_host(0, 123, 0xBB000)
        assert tsb.occupancy() == {"guest": 1, "host": 1}

    def test_full_translation_hit_rate(self):
        tsb = make_tsb()
        tsb.fill_guest(0, 1, 5, False, 0xAA000)
        tsb.probe_guest(0, 1, 5, False)
        tsb.probe_guest(0, 1, 6, False)
        assert tsb.full_translation_hit_rate() == 0.5
