"""Unit tests for the Eq. 2-5 performance model."""

import pytest

from repro.core.perfmodel import (
    BaselineAnchor,
    estimate,
    geometric_mean,
)


class TestBaselineAnchor:
    def test_valid(self):
        anchor = BaselineAnchor(overhead_pct=16.0, cycles_per_l2_miss=114)
        assert anchor.overhead_pct == 16.0

    def test_rejects_bad_overhead(self):
        with pytest.raises(ValueError):
            BaselineAnchor(overhead_pct=-1, cycles_per_l2_miss=100)
        with pytest.raises(ValueError):
            BaselineAnchor(overhead_pct=100, cycles_per_l2_miss=100)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            BaselineAnchor(overhead_pct=10, cycles_per_l2_miss=-5)


class TestEstimate:
    def test_equations_2_to_4(self):
        # 10% overhead, 100 cycles/miss, 1000 misses.
        anchor = BaselineAnchor(overhead_pct=10.0, cycles_per_l2_miss=100)
        est = estimate(anchor, l2_tlb_misses=1000, scheme_penalty_cycles=50_000)
        assert est.baseline_penalty == 100_000          # P_total = M * P_avg
        assert est.baseline_cycles == 1_000_000         # C_total = P/0.1
        assert est.ideal_cycles == 900_000              # Eq. 2
        assert est.scheme_cycles == 950_000             # Eq. 4

    def test_improvement_percent(self):
        anchor = BaselineAnchor(overhead_pct=10.0, cycles_per_l2_miss=100)
        est = estimate(anchor, 1000, 50_000)
        assert est.speedup == pytest.approx(1_000_000 / 950_000)
        assert est.improvement_percent == pytest.approx(5.263, abs=0.01)

    def test_perfect_scheme_recovers_full_overhead(self):
        anchor = BaselineAnchor(overhead_pct=10.0, cycles_per_l2_miss=100)
        est = estimate(anchor, 1000, 0)
        assert est.improvement_percent == pytest.approx(100 / 9, abs=0.01)

    def test_scheme_equal_to_baseline_is_zero_improvement(self):
        anchor = BaselineAnchor(overhead_pct=10.0, cycles_per_l2_miss=100)
        est = estimate(anchor, 1000, 100_000)
        assert est.improvement_percent == pytest.approx(0.0)

    def test_worse_scheme_is_negative(self):
        anchor = BaselineAnchor(overhead_pct=10.0, cycles_per_l2_miss=100)
        est = estimate(anchor, 1000, 200_000)
        assert est.improvement_percent < 0

    def test_no_misses_is_a_wash(self):
        anchor = BaselineAnchor(overhead_pct=10.0, cycles_per_l2_miss=100)
        est = estimate(anchor, 0, 0)
        assert est.improvement_percent == 0.0
        assert est.speedup == 1.0

    def test_zero_overhead_surfaces_added_penalty(self):
        # A zero-overhead anchor means the baseline pays nothing for
        # translation: its measured cycles are all execution (C_ideal).
        # A scheme that *adds* penalty on top of that must report a
        # slowdown, not a wash — Eq. 4 with C_ideal from the anchor.
        anchor = BaselineAnchor(overhead_pct=0.0, cycles_per_l2_miss=100)
        est = estimate(anchor, 1000, 50_000)
        assert est.ideal_cycles == 100_000
        assert est.scheme_cycles == 150_000
        assert est.baseline_penalty == 0.0
        assert est.speedup == pytest.approx(100_000 / 150_000)
        assert est.improvement_percent < 0

    def test_zero_overhead_zero_penalty_is_a_wash(self):
        anchor = BaselineAnchor(overhead_pct=0.0, cycles_per_l2_miss=100)
        est = estimate(anchor, 1000, 0)
        assert est.speedup == 1.0
        assert est.improvement_percent == 0.0

    def test_rejects_negative_inputs(self):
        anchor = BaselineAnchor(overhead_pct=10.0, cycles_per_l2_miss=100)
        with pytest.raises(ValueError):
            estimate(anchor, -1, 0)
        with pytest.raises(ValueError):
            estimate(anchor, 1, -1)

    def test_higher_overhead_means_more_headroom(self):
        low = BaselineAnchor(overhead_pct=2.0, cycles_per_l2_miss=100)
        high = BaselineAnchor(overhead_pct=19.0, cycles_per_l2_miss=100)
        est_low = estimate(low, 1000, 10_000)
        est_high = estimate(high, 1000, 10_000)
        assert est_high.improvement_percent > est_low.improvement_percent


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.0]) == 3.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
