"""Edge cases for the per-core warmup mapping form of Machine.run."""

import pytest

from repro.common import addr
from repro.common.config import SystemConfig
from repro.core.system import Machine
from repro.workloads.trace import CoreStream, MemoryReference


def stream(core, pages, ipr, passes=2, asid=None):
    """Sequential passes; ``ipr`` sets the stream's instruction clock."""
    refs = []
    icount = 0
    for _ in range(passes):
        for p in range(pages):
            icount += ipr
            refs.append(MemoryReference(icount, p * addr.SMALL_PAGE_SIZE,
                                        False))
    return CoreStream(core=core, vm_id=0, asid=asid or core + 1,
                      references=refs)


class TestMappingWarmup:
    def test_mixed_clock_rates_still_warm_both_cores(self):
        # Core 0 ticks 10x slower; a global count would cut it off
        # mid-prologue while core 1 races ahead.
        slow = stream(0, pages=500, ipr=100)
        fast = stream(1, pages=500, ipr=10)
        machine = Machine(SystemConfig(num_cores=2), scheme="pom", seed=1)
        result = machine.run([slow, fast],
                             warmup_references={0: 500, 1: 500})
        # Steady state: no walks for either core's second pass.
        assert result.page_walks == 0

    def test_global_int_form_still_works(self):
        s = stream(0, pages=300, ipr=10)
        machine = Machine(SystemConfig(num_cores=1), scheme="pom", seed=1)
        result = machine.run([s], warmup_references=300)
        assert result.page_walks == 0
        assert result.references == 300

    def test_empty_mapping_means_no_warmup(self):
        s = stream(0, pages=100, ipr=10)
        machine = Machine(SystemConfig(num_cores=1), scheme="pom", seed=1)
        result = machine.run([s], warmup_references={})
        assert result.references == 200  # everything measured

    def test_zero_counts_ignored(self):
        s = stream(0, pages=100, ipr=10)
        machine = Machine(SystemConfig(num_cores=1), scheme="pom", seed=1)
        result = machine.run([s], warmup_references={0: 0})
        assert result.references == 200

    def test_mapping_exhausting_trace_rejected(self):
        s = stream(0, pages=50, ipr=10, passes=1)
        machine = Machine(SystemConfig(num_cores=1), scheme="pom", seed=1)
        with pytest.raises(ValueError):
            machine.run([s], warmup_references={0: 500})

    def test_per_core_counts_only_count_their_core(self):
        # Core 1 delivers many refs before core 0's prologue is done;
        # those must not drain core 0's budget.
        slow = stream(0, pages=200, ipr=50)
        fast = stream(1, pages=1000, ipr=1, passes=1)
        machine = Machine(SystemConfig(num_cores=2), scheme="baseline",
                          seed=1)
        result = machine.run([slow, fast],
                             warmup_references={0: 200})
        # Core 0's measured pass re-walks nothing new (same 200 pages),
        # so walks are only core 1's compulsory misses post-reset.
        assert machine.stats["core0.l2_tlb"]["misses"] == 0 \
            or result.page_walks < 1200
