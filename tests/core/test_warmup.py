"""Unit tests for steady-state (warmup) measurement semantics."""

import pytest

from repro.common import addr
from repro.common.config import SystemConfig
from repro.core.system import Machine
from repro.workloads.trace import CoreStream, MemoryReference


def two_pass_stream(pages=3000):
    """Two sequential passes over a footprint bigger than the L2 TLB."""
    refs = []
    icount = 0
    for _ in range(2):
        for p in range(pages):
            icount += 10
            refs.append(MemoryReference(icount, p * addr.SMALL_PAGE_SIZE,
                                        False))
    return CoreStream(core=0, vm_id=0, asid=1, references=refs), pages


class TestWarmup:
    def test_warmup_excludes_compulsory_misses(self):
        stream, pages = two_pass_stream()
        cold = Machine(SystemConfig(num_cores=1), scheme="pom")
        warm = Machine(SystemConfig(num_cores=1), scheme="pom")
        r_cold = cold.run([stream])
        r_warm = warm.run([stream], warmup_references=pages)
        # Without warmup, first-touch walks dominate; with warmup, the
        # POM-TLB already holds everything and no walk remains.
        assert r_cold.page_walks == pages
        assert r_warm.page_walks == 0
        assert r_warm.references == pages  # only the measured pass counts

    def test_warmup_resets_all_statistics(self):
        stream, pages = two_pass_stream()
        machine = Machine(SystemConfig(num_cores=1), scheme="pom")
        result = machine.run([stream], warmup_references=pages)
        # Eviction/fill counters must reflect only the measured phase:
        # the POM flow counters cannot exceed measured misses * 2 sizes.
        flow = result.stats["pom_flow"]
        resolved = (flow["resolved_first_try"] + flow["resolved_second_try"]
                    + flow["resolved_by_walk"])
        assert resolved == result.l2_tlb_misses

    def test_warmup_preserves_structure_state(self):
        stream, pages = two_pass_stream()
        machine = Machine(SystemConfig(num_cores=1), scheme="pom")
        machine.run([stream], warmup_references=pages)
        # The POM-TLB still holds the warmup-phase insertions.
        assert machine.scheme.pom.occupancy()["small"] == pages

    def test_instructions_count_measured_phase_only(self):
        stream, pages = two_pass_stream()
        machine = Machine(SystemConfig(num_cores=1), scheme="baseline")
        result = machine.run([stream], warmup_references=pages)
        assert result.instructions == pytest.approx(pages * 10, rel=0.01)

    def test_warmup_consuming_whole_trace_rejected(self):
        stream, pages = two_pass_stream(pages=50)
        machine = Machine(SystemConfig(num_cores=1), scheme="baseline")
        with pytest.raises(ValueError):
            machine.run([stream], warmup_references=10 * len(stream))

    def test_zero_warmup_is_default_behaviour(self):
        stream, _ = two_pass_stream(pages=100)
        a = Machine(SystemConfig(num_cores=1), scheme="baseline")
        b = Machine(SystemConfig(num_cores=1), scheme="baseline")
        assert a.run([stream]).l2_tlb_misses == \
            b.run([stream], warmup_references=0).l2_tlb_misses
