"""Unit tests for the skew-associative unified POM-TLB (footnote 1)."""

import pytest

from repro.common import addr
from repro.common.config import PomTlbConfig, SystemConfig
from repro.common.stats import StatRegistry
from repro.core.skewed_pom import SkewedPomTlb
from repro.core.system import Machine
from repro.tlb.entry import TlbEntry, TlbKey


def make_skewed(size_mb=1):
    cfg = SystemConfig(pom_tlb=PomTlbConfig(size_bytes=size_mb * addr.MiB))
    return SkewedPomTlb(cfg, StatRegistry())


def key(vpn, vm=0, asid=0, large=False):
    """Packed key — the representation the skewed POM-TLB is keyed by."""
    return TlbKey(vm_id=vm, asid=asid, vpn=vpn, large=large).pack()


class TestStructure:
    def test_insert_then_probe_some_way_hits(self):
        pom = make_skewed()
        pom.insert(key(5), TlbEntry(ppn=9))
        found = [pom.probe_way(key(5), w) for w in range(4)]
        hits = [e for e in found if e is not None]
        assert len(hits) == 1 and hits[0].ppn == 9

    def test_unified_storage_holds_both_sizes(self):
        pom = make_skewed()
        pom.insert(key(5, large=False), TlbEntry(1))
        pom.insert(key(5, large=True), TlbEntry(2))
        assert pom.contains(key(5, large=False))
        assert pom.contains(key(5, large=True))
        occupancy = pom.occupancy()
        assert occupancy == {"small": 1, "large": 1}

    def test_reinsert_updates_in_place(self):
        pom = make_skewed()
        pom.insert(key(5), TlbEntry(1))
        pom.insert(key(5), TlbEntry(2))
        assert sum(pom.occupancy().values()) == 1

    def test_ways_use_different_hashes(self):
        pom = make_skewed()
        lines = pom.lines_for_key(key(12345))
        assert len(lines) == 4
        assert len(set(lines)) >= 2  # skewing: not all the same index

    def test_lines_live_in_distinct_way_regions(self):
        pom = make_skewed()
        lines = pom.lines_for_key(key(12345))
        way_bytes = pom.config.size_bytes // 4
        regions = {(l - pom.config.base_address) // way_bytes for l in lines}
        assert regions == {0, 1, 2, 3}

    def test_candidate_lines_are_line_aligned(self):
        pom = make_skewed()
        for line in pom.candidate_lines(0x123456789, 3, False):
            assert line % 64 == 0
            assert pom.config.contains(line)


class TestEviction:
    def test_eviction_only_when_all_candidates_full(self):
        pom = make_skewed()
        # Insert far fewer entries than capacity: no evictions expected.
        for vpn in range(200):
            _line, evicted = pom.insert(key(vpn), TlbEntry(vpn))
            assert evicted is None

    def test_lru_among_candidates(self):
        pom = make_skewed()
        # Force conflicts by shrinking: emulate via direct slot collisions
        # is hash-dependent; instead verify the invariant that an evicted
        # key is no longer resident.
        evictions = 0
        for vpn in range(200000):
            _line, evicted = pom.insert(key(vpn), TlbEntry(1))
            if evicted is not None:
                evictions += 1
                assert not pom.contains(evicted)
                break
        # 1MiB = 64Ki entries; 200k inserts must evict eventually.
        assert evictions == 1


class TestInvalidation:
    def test_invalidate_present(self):
        pom = make_skewed()
        pom.insert(key(5), TlbEntry(1))
        line = pom.invalidate(key(5))
        assert line is not None
        assert not pom.contains(key(5))

    def test_invalidate_absent(self):
        pom = make_skewed()
        assert pom.invalidate(key(5)) is None

    def test_invalidate_vm(self):
        pom = make_skewed()
        pom.insert(key(1, vm=1), TlbEntry(1))
        pom.insert(key(2, vm=2), TlbEntry(2))
        dropped = pom.invalidate_vm(1)
        assert len(dropped) == 1  # one line address per dropped entry
        assert sum(pom.occupancy().values()) == 1


class TestSchemeIntegration:
    def test_scheme_eliminates_walks(self):
        m = Machine(SystemConfig(num_cores=1), scheme="pom_skewed")
        page = m.touch(0, 1, 0x1000)
        m.scheme.translate(0, 0, 1, 0x1000, page)
        for tlbs in m.scheme.cores:
            tlbs.l1_small.flush()
            tlbs.l2.flush()
        m.scheme.translate(0, 0, 1, 0x1000, page)
        assert m.stats["mmu"]["page_walks"] == 1  # second hit in POM

    def test_scheme_shootdown(self):
        m = Machine(SystemConfig(num_cores=1), scheme="pom_skewed")
        page = m.touch(0, 1, 0x1000)
        m.scheme.translate(0, 0, 1, 0x1000, page)
        m.scheme.shootdown(0, 1, 0x1000, large=False)
        m.scheme.translate(0, 0, 1, 0x1000, page)
        assert m.stats["mmu"]["page_walks"] == 2

    def test_hit_rate_reporting(self):
        pom = make_skewed()
        pom.insert(key(5), TlbEntry(1))
        for w in range(4):
            if pom.probe_way(key(5), w):
                break
        for w in range(4):
            pom.probe_way(key(99), w)
        assert 0 < pom.hit_rate() < 1
