"""Unit tests for POM-TLB set addressing (paper Eq. 1)."""

import pytest

from repro.common import addr
from repro.common.config import PomTlbConfig
from repro.core.addressing import PomTlbAddressing


@pytest.fixture
def addressing():
    return PomTlbAddressing(PomTlbConfig())


class TestSetIndex:
    def test_index_in_range(self, addressing):
        cfg = addressing.config
        for va in (0, 0x1234567, 1 << 40):
            assert 0 <= addressing.set_index(va, 0, False) < cfg.small_sets
            assert 0 <= addressing.set_index(va, 0, True) < cfg.large_sets

    def test_same_small_page_same_set(self, addressing):
        assert addressing.set_index(0x5000, 0, False) == \
            addressing.set_index(0x5FFF, 0, False)

    def test_adjacent_pages_adjacent_sets(self, addressing):
        # VPN indexes directly, so consecutive pages fill consecutive
        # sets — the spatial locality behind the Fig 11 row-buffer hits.
        a = addressing.set_index(0x5000, 0, False)
        b = addressing.set_index(0x6000, 0, False)
        assert b == (a + 1) % addressing.config.small_sets

    def test_vm_id_changes_mapping(self, addressing):
        assert addressing.set_index(0x5000, 0, False) != \
            addressing.set_index(0x5000, 1, False)

    def test_large_uses_21_bit_shift(self, addressing):
        assert addressing.set_index(0, 0, True) == \
            addressing.set_index(addr.LARGE_PAGE_SIZE - 1, 0, True)
        assert addressing.set_index(0, 0, True) != \
            addressing.set_index(addr.LARGE_PAGE_SIZE, 0, True)


class TestSetAddress:
    def test_small_partition_range(self, addressing):
        cfg = addressing.config
        a = addressing.set_address(0x5000, 0, False)
        assert cfg.small_base <= a < cfg.small_base + cfg.small_size_bytes

    def test_large_partition_range(self, addressing):
        cfg = addressing.config
        a = addressing.set_address(0x5000, 0, True)
        assert cfg.large_base <= a < cfg.large_base + cfg.large_size_bytes

    def test_addresses_are_line_aligned(self, addressing):
        for va in (0, 0x1000, 0xABCDE000):
            assert addressing.set_address(va, 3, False) % 64 == 0
            assert addressing.set_address(va, 3, True) % 64 == 0

    def test_partition_of(self, addressing):
        small = addressing.set_address(0x1000, 0, False)
        large = addressing.set_address(0x1000, 0, True)
        assert addressing.partition_of(small) is False
        assert addressing.partition_of(large) is True

    def test_partition_of_rejects_outside_range(self, addressing):
        with pytest.raises(ValueError):
            addressing.partition_of(0x1000)

    def test_distinct_pages_can_conflict_only_modulo_sets(self, addressing):
        cfg = addressing.config
        va = 0x7000
        conflict_va = va + cfg.small_sets * addr.SMALL_PAGE_SIZE
        assert addressing.set_address(va, 0, False) == \
            addressing.set_address(conflict_va, 0, False)
