"""Unit tests for the POM-TLB structure."""

import pytest

from repro.common import addr
from repro.common.config import PomTlbConfig, SystemConfig
from repro.common.stats import StatRegistry
from repro.core.pom_tlb import PomTlb
from repro.tlb.entry import TlbEntry, TlbKey


def make_pom(size_mb=16):
    cfg = SystemConfig(pom_tlb=PomTlbConfig(size_bytes=size_mb * addr.MiB))
    return PomTlb(cfg, StatRegistry())


def key(vpn, vm=0, asid=0, large=False):
    """Packed key — the representation the POM-TLB is keyed by."""
    return TlbKey(vm_id=vm, asid=asid, vpn=vpn, large=large).pack()


class TestProbeInsert:
    def test_cold_probe_misses(self):
        pom = make_pom()
        assert pom.probe(0x5000, key(5)) is None
        assert pom.stats["misses_small"] == 1

    def test_insert_then_hit(self):
        pom = make_pom()
        pom.insert(0x5000, key(5), TlbEntry(ppn=99))
        entry = pom.probe(0x5000, key(5))
        assert entry is not None and entry.ppn == 99
        assert pom.stats["hits_small"] == 1

    def test_partitions_are_independent(self):
        pom = make_pom()
        pom.insert(0x5000, key(5, large=False), TlbEntry(1))
        assert pom.probe(0x5000, key(0, large=True)) is None
        assert pom.stats["misses_large"] == 1

    def test_vm_and_asid_disambiguate(self):
        pom = make_pom()
        pom.insert(0x5000, key(5, vm=1, asid=1), TlbEntry(1))
        assert pom.probe(0x5000, key(5, vm=2, asid=1)) is None
        assert pom.probe(0x5000, key(5, vm=1, asid=2)) is None

    def test_reinsert_updates(self):
        pom = make_pom()
        pom.insert(0x5000, key(5), TlbEntry(1))
        pom.insert(0x5000, key(5), TlbEntry(2))
        assert pom.probe(0x5000, key(5)).ppn == 2
        assert pom.occupancy()["small"] == 1

    def test_contains_has_no_side_effects(self):
        pom = make_pom()
        pom.insert(0x5000, key(5), TlbEntry(1))
        before = dict(pom.stats.as_dict())
        assert pom.contains(0x5000, key(5))
        assert dict(pom.stats.as_dict()) == before


class TestAssociativityAndLru:
    def conflict_vas(self, pom, count):
        """Virtual addresses all mapping to small-partition set 0, VM 0."""
        stride = pom.config.small_sets * addr.SMALL_PAGE_SIZE
        return [i * stride for i in range(count)]

    def test_four_ways_coexist(self):
        pom = make_pom()
        vas = self.conflict_vas(pom, 4)
        for va in vas:
            pom.insert(va, key(va >> 12), TlbEntry(va >> 12))
        for va in vas:
            assert pom.probe(va, key(va >> 12)) is not None

    def test_fifth_way_evicts_lru(self):
        pom = make_pom()
        vas = self.conflict_vas(pom, 5)
        for va in vas[:4]:
            pom.insert(va, key(va >> 12), TlbEntry(1))
        pom.probe(vas[0], key(vas[0] >> 12))  # refresh the oldest
        _, evicted = pom.insert(vas[4], key(vas[4] >> 12), TlbEntry(1))
        assert evicted == key(vas[1] >> 12)  # second-oldest was LRU
        assert pom.stats["evictions"] == 1

    def test_insert_returns_set_address(self):
        pom = make_pom()
        set_paddr, _ = pom.insert(0x5000, key(5), TlbEntry(1))
        assert set_paddr == pom.set_address(0x5000, 0, False)
        assert pom.config.contains(set_paddr)


class TestDramTiming:
    def test_dram_access_returns_cycles(self):
        pom = make_pom()
        cycles = pom.dram_access(pom.set_address(0x5000, 0, False))
        assert cycles > 0

    def test_same_row_accesses_hit_row_buffer(self):
        pom = make_pom()
        a = pom.set_address(0x5000, 0, False)
        pom.dram_access(a)
        cold = pom.stats  # row stats live on the stacked_dram group
        first = pom.dram.stats["row_hits"]
        pom.dram_access(a + 64)  # neighbouring set, same 2KiB row
        assert pom.dram.stats["row_hits"] == first + 1


class TestInvalidation:
    def test_invalidate_present_returns_set_address(self):
        pom = make_pom()
        pom.insert(0x5000, key(5), TlbEntry(1))
        set_paddr = pom.invalidate(0x5000, key(5))
        assert set_paddr == pom.set_address(0x5000, 0, False)
        assert pom.probe(0x5000, key(5)) is None

    def test_invalidate_absent_returns_none(self):
        pom = make_pom()
        assert pom.invalidate(0x5000, key(5)) is None

    def test_invalidate_vm(self):
        pom = make_pom()
        pom.insert(0x1000, key(1, vm=1), TlbEntry(1))
        pom.insert(0x2000, key(2, vm=1), TlbEntry(2))
        pom.insert(0x3000, key(3, vm=2), TlbEntry(3))
        dropped = pom.invalidate_vm(1)
        assert len(dropped) == 2  # one set address per dropped entry
        assert pom.occupancy()["small"] == 1


class TestCapacityAndReach:
    def test_reach_is_orders_of_magnitude_beyond_sram(self):
        pom = make_pom(16)
        # 8MiB small partition = 512K entries covering 2GiB, plus the
        # large partition covering 1TiB — paper: "orders of magnitude
        # larger than today's on-chip TLBs".
        assert pom.reach_bytes > 1 << 40

    def test_hit_rate(self):
        pom = make_pom()
        pom.insert(0x5000, key(5), TlbEntry(1))
        pom.probe(0x5000, key(5))
        pom.probe(0x6000, key(6))
        assert pom.hit_rate() == pytest.approx(0.5)
