"""Unit tests for the walker pool."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SystemConfig
from repro.common.stats import StatRegistry
from repro.core.walkers import WalkerPool
from repro.vmm.thp import ThpPolicy
from repro.vmm.vm import Host, NativeProcess


def make_pool(virtualized=True):
    config = SystemConfig(num_cores=2, virtualized=virtualized)
    stats = StatRegistry()
    hierarchy = CacheHierarchy(config, stats)
    host = Host(memory_bytes=8 << 30)
    natives = {}

    def resolver(asid):
        if asid not in natives:
            natives[asid] = NativeProcess(asid, host.memory, ThpPolicy(0.0))
        return natives[asid]

    pool = WalkerPool(config, stats, hierarchy, host, native_resolver=resolver)
    return pool, host, resolver


class TestVirtualizedWalks:
    def test_walk_returns_host_frame(self):
        pool, host, _ = make_pool()
        vm = host.create_vm(0, ThpPolicy(0.0))
        page = vm.touch(1, 0x4000)
        result = pool.walk(core=0, vm_id=0, asid=1, vaddr=0x4000)
        assert result.host_frame == page.host_frame
        assert not result.large
        assert result.cycles > 0
        assert result.memory_refs > 4  # nested, not native

    def test_walkers_cached_per_context(self):
        pool, host, _ = make_pool()
        host.create_vm(0, ThpPolicy(0.0)).touch(1, 0x4000)
        pool.walk(0, 0, 1, 0x4000)
        pool.walk(0, 0, 1, 0x4000)
        assert len(pool._walkers) == 1
        pool.walk(1, 0, 1, 0x4000)  # other core: new PSC state
        assert len(pool._walkers) == 2

    def test_warm_walk_cheaper_than_cold(self):
        pool, host, _ = make_pool()
        host.create_vm(0, ThpPolicy(0.0)).touch(1, 0x4000)
        cold = pool.walk(0, 0, 1, 0x4000)
        warm = pool.walk(0, 0, 1, 0x4000)
        assert warm.memory_refs < cold.memory_refs

    def test_invalidate_drops_psc_entries(self):
        pool, host, _ = make_pool()
        host.create_vm(0, ThpPolicy(0.0)).touch(1, 0x4000)
        warm_refs = None
        pool.walk(0, 0, 1, 0x4000)
        warm_refs = pool.walk(0, 0, 1, 0x4000).memory_refs
        pool.invalidate(0, 1, 0x4000)
        after = pool.walk(0, 0, 1, 0x4000).memory_refs
        assert after >= warm_refs  # PSC shortcut removed


class TestNativeWalks:
    def test_native_walk(self):
        pool, _host, resolver = make_pool(virtualized=False)
        proc = resolver(1)
        page = proc.touch(0x4000)
        result = pool.walk(0, 0, 1, 0x4000)
        assert result.host_frame == page.host_frame
        assert result.memory_refs == 4  # cold 1-D walk

    def test_native_mode_without_resolver_rejected(self):
        config = SystemConfig(num_cores=1, virtualized=False)
        stats = StatRegistry()
        pool = WalkerPool(config, stats, CacheHierarchy(config, stats),
                          Host(memory_bytes=1 << 30), native_resolver=None)
        with pytest.raises(ValueError):
            pool.walk(0, 0, 1, 0x4000)

    def test_large_page_native_walk(self):
        pool, _host, resolver = make_pool(virtualized=False)
        proc = resolver(2)
        proc.thp = ThpPolicy(1.0)
        page = proc.touch(0x4000)
        result = pool.walk(0, 0, 2, 0x4000)
        assert result.large
        assert result.host_frame == page.host_frame
