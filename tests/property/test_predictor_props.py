"""Property-based tests for the size/bypass predictor."""

from hypothesis import given, settings, strategies as st

from repro.common.config import PredictorConfig
from repro.common.stats import StatGroup
from repro.core.predictor import SizeBypassPredictor

vaddrs = st.integers(0, (1 << 48) - 1)
events = st.lists(st.tuples(vaddrs, st.booleans()), max_size=200)
counter_bits = st.integers(1, 4)


class TestPredictorProperties:
    @settings(max_examples=40, deadline=None)
    @given(events, counter_bits)
    def test_accuracy_accounting_conserved(self, history, bits):
        p = SizeBypassPredictor(PredictorConfig(size_counter_bits=bits),
                                StatGroup("p"))
        for vaddr, large in history:
            p.record_size(vaddr, large)
        total = p.stats["size_correct"] + p.stats["size_wrong"]
        assert total == len(history)

    @settings(max_examples=40, deadline=None)
    @given(vaddrs, counter_bits)
    def test_repetition_converges_to_correct(self, vaddr, bits):
        p = SizeBypassPredictor(PredictorConfig(size_counter_bits=bits),
                                StatGroup("p"))
        for _ in range(1 << bits):
            p.record_size(vaddr, actual_large=True)
        assert p.predict_size(vaddr) is True
        for _ in range(1 << bits):
            p.record_size(vaddr, actual_large=False)
        assert p.predict_size(vaddr) is False

    @settings(max_examples=40, deadline=None)
    @given(events)
    def test_stable_stream_reaches_high_accuracy(self, history):
        """A single-size stream mispredicts at most once per entry."""
        p = SizeBypassPredictor(PredictorConfig(), StatGroup("p"))
        for vaddr, _large in history:
            p.record_size(vaddr, actual_large=True)
        wrong = p.stats["size_wrong"]
        assert wrong <= min(len(history), p.config.entries)

    @settings(max_examples=40, deadline=None)
    @given(events)
    def test_bypass_bit_tracks_last_observation(self, history):
        p = SizeBypassPredictor(PredictorConfig(), StatGroup("p"))
        last: dict = {}
        for vaddr, cached in history:
            p.record_bypass(vaddr, line_was_cached=cached)
            last[p._index(vaddr)] = cached
        for index, cached in last.items():
            probe_vaddr = index << 12
            assert p.predict_bypass(probe_vaddr) == (not cached)
