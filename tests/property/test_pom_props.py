"""Property-based tests for the POM-TLB structure and addressing."""

from hypothesis import given, settings, strategies as st

from repro.common import addr
from repro.common.config import PomTlbConfig, SystemConfig
from repro.common.stats import StatRegistry
from repro.core.pom_tlb import PomTlb
from repro.tlb.entry import TlbEntry, TlbKey


def make_pom():
    cfg = SystemConfig(pom_tlb=PomTlbConfig(size_bytes=1 * addr.MiB))
    return PomTlb(cfg, StatRegistry())


vaddrs = st.integers(min_value=0, max_value=(1 << 48) - 1)
vm_ids = st.integers(0, 7)
refs = st.lists(st.tuples(vaddrs, vm_ids, st.integers(0, 3), st.booleans()),
                max_size=120)


class TestAddressingProperties:
    @settings(max_examples=60, deadline=None)
    @given(vaddrs, vm_ids, st.booleans())
    def test_set_address_inside_partition(self, va, vm, large):
        pom = make_pom()
        address = pom.set_address(va, vm, large)
        cfg = pom.config
        assert cfg.contains(address)
        assert pom.addressing.partition_of(address) == large
        assert address % addr.CACHE_LINE_SIZE == 0

    @settings(max_examples=60, deadline=None)
    @given(vaddrs, vm_ids, st.booleans())
    def test_same_page_same_set(self, va, vm, large):
        pom = make_pom()
        base = addr.page_base(va, large)
        assert pom.set_address(va, vm, large) == \
            pom.set_address(base, vm, large)


class TestContentProperties:
    @settings(max_examples=40, deadline=None)
    @given(refs)
    def test_insert_then_probe_hits(self, items):
        pom = make_pom()
        for va, vm, asid, large in items:
            key = TlbKey(vm, asid, va >> addr.page_shift(large), large).pack()
            pom.insert(va, key, TlbEntry(ppn=asid))
            found = pom.probe(va, key)
            assert found is not None and found.ppn == asid

    @settings(max_examples=40, deadline=None)
    @given(refs)
    def test_set_occupancy_bounded_by_ways(self, items):
        pom = make_pom()
        for va, vm, asid, large in items:
            key = TlbKey(vm, asid, va >> addr.page_shift(large), large).pack()
            pom.insert(va, key, TlbEntry(1))
        for sets in pom._sets:
            for entries in sets.values():
                assert len(entries) <= pom.config.ways

    @settings(max_examples=40, deadline=None)
    @given(refs)
    def test_invalidate_removes(self, items):
        pom = make_pom()
        for va, vm, asid, large in items:
            key = TlbKey(vm, asid, va >> addr.page_shift(large), large).pack()
            pom.insert(va, key, TlbEntry(1))
        for va, vm, asid, large in items:
            key = TlbKey(vm, asid, va >> addr.page_shift(large), large).pack()
            pom.invalidate(va, key)
            assert not pom.contains(va, key)

    @settings(max_examples=30, deadline=None)
    @given(refs, st.integers(0, 7))
    def test_vm_invalidation_complete(self, items, vm):
        pom = make_pom()
        for va, v, asid, large in items:
            key = TlbKey(v, asid, va >> addr.page_shift(large), large).pack()
            pom.insert(va, key, TlbEntry(1))
        pom.invalidate_vm(vm)
        from repro.tlb.entry import unpack_key
        for sets in pom._sets:
            for entries in sets.values():
                assert all(unpack_key(k).vm_id != vm for k in entries)
