"""Property-based tests for the set-associative cache."""

from hypothesis import given, settings, strategies as st

from repro.cache.cache import DATA, TLB, SetAssociativeCache
from repro.common import addr
from repro.common.config import CacheConfig
from repro.common.stats import StatGroup


def make_cache(size=8 * addr.KiB, ways=4):
    cfg = CacheConfig(name="c", size_bytes=size, ways=ways, latency_cycles=4)
    return SetAssociativeCache(cfg, StatGroup("c"))


addresses = st.integers(min_value=0, max_value=1 << 30)
operations = st.lists(
    st.tuples(st.sampled_from(["fill", "lookup", "invalidate"]),
              addresses,
              st.sampled_from([DATA, TLB])),
    max_size=200)


class TestCacheInvariants:
    @settings(max_examples=50, deadline=None)
    @given(operations)
    def test_capacity_never_exceeded(self, ops):
        cache = make_cache()
        capacity = cache.config.num_sets * cache.config.ways
        for op, address, kind in ops:
            if op == "fill":
                cache.fill(address, kind)
            elif op == "lookup":
                cache.lookup(address, kind)
            else:
                cache.invalidate(address)
            assert len(cache) <= capacity

    @settings(max_examples=50, deadline=None)
    @given(operations, addresses)
    def test_fill_then_contains(self, ops, probe):
        cache = make_cache()
        for op, address, kind in ops:
            if op == "fill":
                cache.fill(address, kind)
                assert cache.contains(address)
            elif op == "invalidate":
                cache.invalidate(address)
                assert not cache.contains(address)

    @settings(max_examples=50, deadline=None)
    @given(operations)
    def test_occupancy_matches_len(self, ops):
        cache = make_cache()
        for op, address, kind in ops:
            if op == "fill":
                cache.fill(address, kind)
            elif op == "invalidate":
                cache.invalidate(address)
        occupancy = cache.occupancy()
        assert occupancy[DATA] + occupancy[TLB] == len(cache)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(addresses, min_size=1, max_size=100))
    def test_eviction_returns_previously_resident_line(self, fills):
        cache = make_cache(size=2 * addr.KiB, ways=1)
        resident = set()
        for address in fills:
            line = addr.cache_line_base(address)
            evicted = cache.fill(address)
            if evicted is not None:
                assert evicted in resident
                resident.discard(evicted)
            resident.add(line)
        for line in resident:
            assert cache.contains(line)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(addresses, min_size=1, max_size=50))
    def test_lookup_after_fill_always_hits(self, fills):
        cache = make_cache()
        for address in fills:
            cache.fill(address)
            assert cache.lookup(address)
